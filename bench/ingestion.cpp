// Streaming-ingestion benchmark (docs/LIBRARY.md): generates a synthetic
// multi-structure GDS layout, then times the three stages of the library
// pipeline separately so a regression points at the guilty layer:
//
//   * stream    — record-level streaming read of the file with no squishing
//                 (io/gds_stream.h); reported as MB/s.
//   * ingest    — the full GDS -> windows -> squish -> store pipeline into an
//                 in-memory store (pattlib/ingest.h); reported as windows/s.
//   * store     — appending distinct patterns to a persistent store and
//                 replaying the file on reopen (pattlib/pattern_store.h);
//                 reported as ops/s for both directions.
//
// Results are written to BENCH_ingestion.json (override with --json FILE).
// Flags: --structures N, --rects N (per structure), --patterns N (store
// stage), --window NM, --outdir DIR, --json FILE, --seed S.
//
// Absolute numbers are one-core, sample-count limited; the orderings and the
// stream-vs-ingest gap (squish cost dominates I/O) are the reproducible part.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "io/gds.h"
#include "io/gds_stream.h"
#include "pattlib/ingest.h"
#include "util/cli.h"
#include "util/fs.h"
#include "util/json.h"
#include "util/rng.h"

using namespace cp;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// A dense synthetic layout: every structure carries `rects` bars laid out
/// row-major over a grid, so the 2048-nm windowing pass finds work in nearly
/// every window. Geometry varies per structure to defeat dedup.
io::GdsLibrary make_layout(int structures, int rects, util::Rng& rng) {
  io::GdsLibrary lib;
  lib.name = "INGESTION_BENCH";
  for (int s = 0; s < structures; ++s) {
    io::GdsStructure str;
    str.name = "CELL" + std::to_string(s);
    str.layer = 1;
    const int per_row = 64;
    for (int i = 0; i < rects; ++i) {
      const geometry::Coord x = (i % per_row) * 256;
      const geometry::Coord y = (i / per_row) * 256;
      const geometry::Coord w = 96 + static_cast<geometry::Coord>(rng.next_u64() % 96);
      const geometry::Coord h = 96 + static_cast<geometry::Coord>(rng.next_u64() % 96);
      str.rects.push_back({x, y, x + w, y + h});
    }
    lib.structures.push_back(std::move(str));
  }
  return lib;
}

/// A random topology with a fresh canonical hash (w.h.p.) for the store stage.
squish::SquishPattern random_pattern(int n, util::Rng& rng) {
  squish::SquishPattern p;
  p.topology = squish::Topology(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) p.topology.set(r, c, static_cast<int>(rng.next_u64() & 1));
  }
  p.dx = squish::uniform_deltas(n, 2048);
  p.dy = squish::uniform_deltas(n, 2048);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const int structures = static_cast<int>(flags.get_int("structures", 48));
  const int rects = static_cast<int>(flags.get_int("rects", 1024));
  const int patterns = static_cast<int>(flags.get_int("patterns", 2000));
  const long long window_nm = flags.get_int("window", 2048);
  const std::string outdir = flags.get("outdir", ".");
  const std::string json_path =
      (outdir == "." ? std::string() : outdir + "/") + flags.get("json", "BENCH_ingestion.json");
  util::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));

  if (outdir != ".") std::filesystem::create_directories(outdir);
  const std::string work = (outdir == "." ? std::string(".") : outdir);
  const std::string gds_path = work + "/bench_ingestion.gds";
  const std::string store_path = work + "/bench_ingestion.cppl";
  std::remove(store_path.c_str());

  std::printf("[setup] writing %d structures x %d rects...\n", structures, rects);
  io::write_gds(gds_path, make_layout(structures, rects, rng));
  const std::uint64_t gds_bytes = std::filesystem::file_size(gds_path);

  util::Json j;
  j["structures"] = structures;
  j["rects_per_structure"] = rects;
  j["gds_bytes"] = static_cast<long long>(gds_bytes);
  j["window_nm"] = window_nm;

  {
    const auto t0 = std::chrono::steady_clock::now();
    long long streamed_rects = 0;
    const io::StreamStats st = io::stream_gds_structures(
        gds_path, [&](io::GdsStructure&& s) { streamed_rects += static_cast<long long>(s.rects.size()); });
    const double secs = seconds_since(t0);
    const double mb_per_s = static_cast<double>(st.bytes) / 1e6 / secs;
    j["stream_s"] = secs;
    j["stream_mb_per_s"] = mb_per_s;
    std::printf("[stream] %lld rects, %.1f MB in %.3f s = %.1f MB/s\n", streamed_rects,
                static_cast<double>(st.bytes) / 1e6, secs, mb_per_s);
  }

  {
    pattlib::PatternStore store;  // in-memory: isolates squish + index cost
    pattlib::IngestConfig cfg;
    cfg.window.window_nm = window_nm;
    const auto t0 = std::chrono::steady_clock::now();
    const pattlib::IngestStats st = pattlib::ingest_gds(gds_path, store, cfg);
    const double secs = seconds_since(t0);
    const double windows_per_s = static_cast<double>(st.windows_kept) / secs;
    j["windows_seen"] = st.windows_seen;
    j["windows_kept"] = st.windows_kept;
    j["ingest_added"] = st.added;
    j["ingest_s"] = secs;
    j["windows_per_s"] = windows_per_s;
    std::printf("[ingest] %lld windows (%lld unique) in %.3f s = %.1f windows/s\n",
                st.windows_kept, st.added, secs, windows_per_s);
  }

  {
    std::vector<squish::SquishPattern> fresh;
    fresh.reserve(static_cast<std::size_t>(patterns));
    for (int i = 0; i < patterns; ++i) fresh.push_back(random_pattern(24, rng));
    long long added = 0;
    double add_secs = 0;
    {
      pattlib::PatternStore store(store_path);
      const auto t0 = std::chrono::steady_clock::now();
      for (const squish::SquishPattern& p : fresh) {
        if (store.add(p, {}).inserted) ++added;
      }
      store.flush();
      add_secs = seconds_since(t0);
    }
    const auto t1 = std::chrono::steady_clock::now();
    pattlib::PatternStore reopened(store_path);
    const double replay_secs = seconds_since(t1);
    j["store_adds"] = added;
    j["store_add_s"] = add_secs;
    j["store_ops_per_s"] = static_cast<double>(added) / add_secs;
    j["store_replay_s"] = replay_secs;
    j["store_replay_ops_per_s"] = static_cast<double>(reopened.size()) / replay_secs;
    std::printf("[store] %lld appends in %.3f s = %.1f ops/s; replay of %zu in %.3f s = %.1f ops/s\n",
                added, add_secs, static_cast<double>(added) / add_secs, reopened.size(),
                replay_secs, static_cast<double>(reopened.size()) / replay_secs);
  }

  util::atomic_write_file(json_path, j.dump(2) + "\n");
  std::printf("[json] wrote %s\n", json_path.c_str());
  std::remove(gds_path.c_str());
  std::remove(store_path.c_str());
  return 0;
}
