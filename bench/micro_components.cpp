// Micro-benchmarks (google-benchmark) for the substrate components:
// squish/unsquish, normalisation, DRC checking, legalization, diffusion
// reverse steps and full 128^2 sampling. Engineering numbers, not part of
// the paper's tables.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dataset/builder.h"
#include "diffusion/cascade.h"
#include "diffusion/trainer.h"
#include "legalize/legalizer.h"
#include "nn/gemm.h"
#include "obs/manifest.h"
#include "obs/registry.h"
#include "squish/normalize.h"
#include "util/fault.h"

namespace {

using namespace cp;

struct Fixture {
  dataset::Dataset dataset;
  std::vector<geometry::Rect> map;
  diffusion::NoiseSchedule schedule{diffusion::ScheduleConfig{}};
  std::unique_ptr<diffusion::TabularDenoiser> fine;
  std::unique_ptr<diffusion::TabularDenoiser> coarse;
  std::unique_ptr<diffusion::CascadeSampler> sampler;
  legalize::Legalizer legalizer{drc::rules_for_style("Layer-10001")};

  Fixture() {
    dataset::DatasetConfig dc;
    dc.style = 0;
    dc.count = 64;
    dc.seed = 5;
    dataset = dataset::build_dataset(dc);
    util::Rng rng(7);
    map = dataset::generate_map(dataset::style_params(0), 8192, rng);

    diffusion::TabularConfig tc;
    tc.conditions = 1;
    tc.draws_per_bucket = 2;
    std::vector<squish::Topology> coarse_data;
    for (const auto& t : dataset.topologies) {
      coarse_data.push_back(squish::downsample_majority(t, 4));
    }
    fine = std::make_unique<diffusion::TabularDenoiser>(
        diffusion::fit_tabular(schedule, tc, {dataset.topologies}, 9));
    coarse = std::make_unique<diffusion::TabularDenoiser>(
        diffusion::fit_tabular(schedule, tc, {coarse_data}, 10));
    sampler = std::make_unique<diffusion::CascadeSampler>(schedule, *coarse, *fine,
                                                          diffusion::CascadeConfig{});
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_Squish2048Window(benchmark::State& state) {
  Fixture& f = fixture();
  const geometry::Rect window{512, 512, 2560, 2560};
  for (auto _ : state) {
    benchmark::DoNotOptimize(squish::squish(f.map, window));
  }
}
BENCHMARK(BM_Squish2048Window);

void BM_Unsquish(benchmark::State& state) {
  Fixture& f = fixture();
  const auto pattern = squish::squish(f.map, geometry::Rect{512, 512, 2560, 2560});
  for (auto _ : state) {
    benchmark::DoNotOptimize(squish::unsquish(pattern));
  }
}
BENCHMARK(BM_Unsquish);

void BM_NormalizeTo128(benchmark::State& state) {
  Fixture& f = fixture();
  const auto pattern = squish::squish(f.map, geometry::Rect{512, 512, 2560, 2560});
  for (auto _ : state) {
    benchmark::DoNotOptimize(squish::normalize_to(pattern, 128));
  }
}
BENCHMARK(BM_NormalizeTo128);

void BM_DrcCheck128(benchmark::State& state) {
  Fixture& f = fixture();
  const auto res = f.legalizer.legalize(f.dataset.topologies[0], 2048, 2048);
  for (auto _ : state) {
    benchmark::DoNotOptimize(drc::check(*res.pattern, f.legalizer.rules()));
  }
}
BENCHMARK(BM_DrcCheck128);

void BM_Legalize128(benchmark::State& state) {
  Fixture& f = fixture();
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.legalizer.legalize(f.dataset.topologies[i++ % f.dataset.topologies.size()], 2048,
                             2048));
  }
}
BENCHMARK(BM_Legalize128);

void BM_RequiredWidthDiagnostic(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.legalizer.required_width_nm(f.dataset.topologies[0]));
  }
}
BENCHMARK(BM_RequiredWidthDiagnostic);

void BM_TabularPredict128(benchmark::State& state) {
  Fixture& f = fixture();
  util::Rng rng(3);
  const auto xk = diffusion::forward_noise(f.dataset.topologies[0], f.schedule, 30, rng);
  diffusion::ProbGrid p0;
  for (auto _ : state) {
    f.fine->predict_x0(xk, 30, 0, p0);
    benchmark::DoNotOptimize(p0);
  }
}
BENCHMARK(BM_TabularPredict128);

void BM_ReverseStepSequential128(benchmark::State& state) {
  Fixture& f = fixture();
  diffusion::DiffusionSampler s(f.schedule, *f.fine);
  util::Rng rng(4);
  const auto xk = diffusion::forward_noise(f.dataset.topologies[0], f.schedule, 30, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.reverse_step(xk, 30, 25, 0, rng));
  }
}
BENCHMARK(BM_ReverseStepSequential128);

void BM_CascadeSample128(benchmark::State& state) {
  Fixture& f = fixture();
  util::Rng rng(5);
  diffusion::SampleConfig sc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sampler->sample(sc, rng));
  }
}
BENCHMARK(BM_CascadeSample128);

void BM_ForwardNoise128(benchmark::State& state) {
  Fixture& f = fixture();
  util::Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        diffusion::forward_noise(f.dataset.topologies[0], f.schedule, 500, rng));
  }
}
BENCHMARK(BM_ForwardNoise128);

void BM_ComplexityMetric(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.dataset.topologies[0].complexity());
  }
}
BENCHMARK(BM_ComplexityMetric);

// ---- fault-injection overhead (docs/ROBUSTNESS.md) ------------------------
// Disarmed fault points sit on hot paths (denoiser/infer, legalize/run);
// their cost must stay one relaxed atomic load.

void BM_FaultPointDisarmed(benchmark::State& state) {
  util::fault::clear();
  for (auto _ : state) {
    util::fault::point("bench/disarmed");
  }
}
BENCHMARK(BM_FaultPointDisarmed);

void BM_FaultPointArmedOtherName(benchmark::State& state) {
  // Worst realistic case: some schedule is armed, so every point pays the
  // registry lookup even though its own name never fires.
  util::fault::configure("bench/other=every:1000000000");
  for (auto _ : state) {
    util::fault::point("bench/armed_miss");
  }
  util::fault::clear();
}
BENCHMARK(BM_FaultPointArmedOtherName);

// ---- nn/gemm kernels (the MLP denoiser's hidden-layer shape) --------------

struct GemmFixture {
  static constexpr int kN = 4096, kIn = 64, kOut = 64;
  std::vector<float> x, w, wt, b, y;
  GemmFixture()
      : x(static_cast<std::size_t>(kN) * kIn),
        w(static_cast<std::size_t>(kOut) * kIn),
        wt(w.size()),
        b(kOut),
        y(static_cast<std::size_t>(kN) * kOut) {
    util::Rng rng(8);
    for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 1.0));
    for (auto& v : w) v = static_cast<float>(rng.normal(0.0, 1.0));
    for (auto& v : b) v = static_cast<float>(rng.normal(0.0, 1.0));
  }
};

GemmFixture& gemm_fixture() {
  static GemmFixture f;
  return f;
}

void BM_GemmNaive4096x64x64(benchmark::State& state) {
  GemmFixture& f = gemm_fixture();
  for (auto _ : state) {
    nn::gemm::forward_naive(GemmFixture::kN, GemmFixture::kIn, GemmFixture::kOut, f.x.data(),
                            f.w.data(), f.b.data(), f.y.data());
    benchmark::DoNotOptimize(f.y.data());
  }
}
BENCHMARK(BM_GemmNaive4096x64x64);

void BM_GemmPacked4096x64x64(benchmark::State& state) {
  GemmFixture& f = gemm_fixture();
  nn::gemm::pack_wt(GemmFixture::kIn, GemmFixture::kOut, f.w.data(), f.wt.data());
  for (auto _ : state) {
    nn::gemm::forward_packed(GemmFixture::kN, GemmFixture::kIn, GemmFixture::kOut, f.x.data(),
                             f.wt.data(), f.b.data(), f.y.data());
    benchmark::DoNotOptimize(f.y.data());
  }
}
BENCHMARK(BM_GemmPacked4096x64x64);

// ---- MLP denoiser inference (stateless infer path, warm workspace) --------

struct MlpFixture {
  diffusion::NoiseSchedule schedule{diffusion::ScheduleConfig{}};
  std::unique_ptr<diffusion::MlpDenoiser> denoiser;
  squish::Topology xk{1, 1};
  MlpFixture() {
    util::Rng rng(9);
    denoiser =
        std::make_unique<diffusion::MlpDenoiser>(schedule, diffusion::MlpConfig{2, 64, 2}, rng);
    squish::Topology x0(64, 64);
    for (int r = 0; r < 64; ++r) {
      for (int c = 0; c < 64; ++c) x0.set(r, c, (c / 3) % 2);
    }
    util::Rng noise(10);
    xk = diffusion::forward_noise(x0, schedule, 40, noise);
  }
};

MlpFixture& mlp_fixture() {
  static MlpFixture f;
  return f;
}

void BM_MlpPredictX0Grid64(benchmark::State& state) {
  MlpFixture& f = mlp_fixture();
  diffusion::ProbGrid p0;
  for (auto _ : state) {
    f.denoiser->predict_x0(f.xk, 40, 0, p0);
    benchmark::DoNotOptimize(p0);
  }
}
BENCHMARK(BM_MlpPredictX0Grid64);

void BM_MlpPredictX0Pixel(benchmark::State& state) {
  MlpFixture& f = mlp_fixture();
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.denoiser->predict_x0_pixel(f.xk, i % 64, (i / 64) % 64, 40, 0));
    ++i;
  }
}
BENCHMARK(BM_MlpPredictX0Pixel);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark rejects flags it
// does not know, so the shared --manifest/--outdir options are stripped from
// argv before benchmark::Initialize sees them. With --manifest the global
// observability registry is enabled for the run and a JSON run manifest
// (instrumented spans/counters from the exercised components) is written on
// exit — see docs/OBSERVABILITY.md.
int main(int argc, char** argv) {
  std::string manifest_path;
  std::string outdir;
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    auto take_value = [&](const char* flag, std::string* out) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 < argc) *out = argv[++i];
      return true;
    };
    if (take_value("--manifest", &manifest_path) || take_value("--outdir", &outdir)) continue;
    bench_argv.push_back(argv[i]);
  }
  if (!manifest_path.empty()) cp::obs::Registry::global().set_enabled(true);

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!manifest_path.empty()) {
    if (!outdir.empty() && outdir != "." && manifest_path.front() != '/') {
      manifest_path = outdir + "/" + manifest_path;
    }
    cp::obs::RunManifest manifest;
    manifest.tool = "micro_components";
    for (int i = 1; i < argc; ++i) manifest.args.push_back(argv[i]);
    std::string error;
    if (!manifest.write(manifest_path, cp::obs::Registry::global(), &error)) {
      std::fprintf(stderr, "error: manifest: %s\n", error.c_str());
      return 2;
    }
    std::printf("[manifest] wrote %s\n", manifest_path.c_str());
  }
  return 0;
}
