// Section 4.2: evaluation of the LLM agent.
//
// (a) Requirement auto-formatting — the paper's running example plus a
//     paraphrase suite, printing the structured requirement lists;
// (b) Unseen mistake-processing — a pattern that cannot pass legalization is
//     injected; the transcript shows the agent reading the failure log and
//     in-painting the reported region (the paper's Thought/Action example);
// (c) the full Figure-4 pipeline end to end, scaled down.

#include "bench/common.h"

using namespace cp;

int main(int argc, char** argv) {
  bench::Env env = bench::make_env(argc, argv, /*default_samples=*/3);

  std::printf("\n== (a) Requirement Auto-Formatting ==\n");
  agent::ScriptedBrain formatter;
  const char* requests[] = {
      // The paper's running example (Figure 4 / Section 4.2).
      "Please generate 50,000 patterns with topology size 200x200 and physical size "
      "1500x1500 nm in Layer-10001 style using out-painting. Then create 20,000 patterns of "
      "256x256 in Layer-10003 style.",
      "I need 10k layouts sized 128 for both styles, no drops, within 30 minutes.",
      "make 1,500 samples of 4096x4096 nm in layer 10003 with in-painting and seed 7",
  };
  for (const char* request : requests) {
    std::printf("\nUser: %s\n", request);
    std::vector<std::string> notes;
    const auto subtasks = formatter.format_requirements(request, &notes);
    int index = 0;
    for (const auto& req : subtasks) {
      std::printf("%s", req.to_text(++index).c_str());
      const std::string problem = agent::validate(req);
      if (!problem.empty()) std::printf("  !! would be rejected: %s\n", problem.c_str());
    }
  }

  std::printf("\n== (b) Unseen mistake-processing ==\n");
  {
    // Plant a pattern whose centre is a checkerboard — locally far denser
    // than any legal layout, so legalization reliably fails there. The
    // recovery loop below is exactly what the executor does; it is driven
    // manually here so the Thought/Action/Action-Input transcript of the
    // paper's example prints verbatim.
    util::Rng rng(env.seed + 17);
    diffusion::SampleConfig sc;
    sc.condition = 0;
    squish::Topology defective = env.chat->sampler().sample(sc, rng);
    for (int r = 40; r < 80; ++r) {
      for (int c = 40; c < 80; ++c) defective.set(r, c, (r + c) % 2);
    }
    std::string current = env.chat->store().put_topology(defective);
    std::printf("(planted a defective 128x128 topology: checkerboard in rows/cols 40..80)\n");
    int failures = 0;
    for (int attempt = 1; attempt <= 4; ++attempt) {
      util::Json legalize;
      legalize["topology_id"] = current;
      legalize["width_nm"] = 2048;
      legalize["height_nm"] = 2048;
      legalize["style"] = "Layer-10001";
      const agent::ToolResult res = env.chat->tools().call("topology_legalization", legalize);
      if (res.ok) {
        std::printf("Observation: {\"legal\": true} -- recovered after %d failure(s)\n",
                    failures);
        break;
      }
      ++failures;
      std::printf("Observation: %s\n", res.payload.dump().c_str());
      const util::Json& region = res.payload.at("region");
      std::printf(
          "Thought: Since legalization has failed %s in the same region, I will try to "
          "in-paint that specific area with the same style and then attempt legalization "
          "again.\n",
          failures >= 2 ? "twice" : "once");
      util::Json mod;
      mod["topology_id"] = current;
      mod["upper"] = region.get_int("upper", 0);
      mod["left"] = region.get_int("left", 0);
      mod["bottom"] = region.get_int("bottom", 128);
      mod["right"] = region.get_int("right", 128);
      mod["style"] = "Layer-10001";
      mod["seed"] = 42 + attempt;
      std::printf("Action: Topology_Modification\nAction Input: %s\n", mod.dump().c_str());
      const agent::ToolResult repaired = env.chat->tools().call("topology_modification", mod);
      if (!repaired.ok) {
        std::printf("modification failed: %s\n",
                    repaired.payload.get_string("error", "").c_str());
        break;
      }
      current = repaired.payload.get_string("topology_id", "");
      std::printf("%% Continue Processing\n");
    }
  }

  std::printf("\n== (c) Figure 4 pipeline, scaled down ==\n");
  {
    agent::SessionReport report = env.chat->customize(util::format(
        "Generate %lld patterns of 128x128 in Layer-10001 style with seed 3. Then generate "
        "%lld patterns of 256x256 in Layer-10003 style using out-painting with seed 4.",
        env.samples, env.samples));
    std::printf("%s\n", report.transcript.c_str());
    std::printf("produced %lld / %lld requested\n", report.total_produced(),
                report.total_requested());
    // Experience accumulated during the session is the agent's "learning
    // from experience" state.
    std::printf("experience: %s\n", env.chat->experience().to_json().dump().c_str());
    env.manifest.metrics["produced"] = report.total_produced();
    env.manifest.metrics["requested"] = report.total_requested();
  }
  bench::write_manifest(env);
  return 0;
}
