// Parallel batch-generation scaling: samples/sec of the ablation-sampler
// workload (default cascade at 128^2, 16 visited steps) at 1/2/4/8 worker
// threads, plus a determinism audit — every thread count must produce a
// bit-identical batch, because sample i always consumes Rng stream fork(i)
// (see diffusion/batch_sampler.h). Results are written to
// BENCH_parallel.json (override with --json FILE).
//
// Extra flags on top of bench/common.h: --json FILE, --maxthreads N.
// Speedup is bounded by the machine: on a single-core container every row
// measures ~1x and the JSON records hardware_threads so readers can tell
// scheduler overhead from genuine scaling.

#include <chrono>

#include "bench/common.h"
#include "diffusion/batch_sampler.h"
#include "util/json.h"
#include "util/thread_pool.h"

using namespace cp;

namespace {

/// Order-sensitive FNV-1a over the batch contents, for cheap bit-identity
/// comparison between thread counts.
std::uint64_t batch_hash(const std::vector<squish::Topology>& batch) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const auto& t : batch) {
    mix(static_cast<std::uint64_t>(t.rows()));
    mix(static_cast<std::uint64_t>(t.cols()));
    for (int r = 0; r < t.rows(); ++r) {
      for (int c = 0; c < t.cols(); ++c) mix(t.at(r, c));
    }
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Env env = bench::make_env(argc, argv, /*default_samples=*/8);
  util::CliFlags flags(argc, argv);
  const std::string json_path = bench::out_path(env, flags.get("json", "BENCH_parallel.json"));
  const int max_threads = static_cast<int>(flags.get_int("maxthreads", 8));
  const int n = static_cast<int>(env.samples);

  // The ablation-sampler workload: the default cascade over tabular
  // denoisers (thread-safe inference), style Layer-10001 at 128^2.
  std::vector<std::vector<squish::Topology>> fine_data, coarse_data;
  for (int s = 0; s < 2; ++s) {
    fine_data.push_back(env.chat->training_set(s).topologies);
    std::vector<squish::Topology> coarse;
    for (const auto& t : fine_data.back()) coarse.push_back(squish::downsample_majority(t, 4));
    coarse_data.push_back(std::move(coarse));
  }
  diffusion::TabularConfig tc;
  tc.conditions = 2;
  tc.draws_per_bucket = env.config.draws_per_bucket;
  const auto fine = diffusion::fit_tabular(env.chat->schedule(), tc, fine_data, env.seed + 41);
  const auto coarse =
      diffusion::fit_tabular(env.chat->schedule(), tc, coarse_data, env.seed + 42);
  const diffusion::CascadeSampler cascade(env.chat->schedule(), coarse, fine,
                                          diffusion::CascadeConfig{});

  diffusion::SampleConfig sc;
  sc.condition = 0;
  sc.sample_steps = 16;
  const util::Rng root(env.seed + 7000);

  std::printf("\n== Parallel batch scaling (cascade 128^2, %d samples per row) ==\n", n);
  std::printf("hardware threads: %d\n\n", util::ThreadPool::hardware_threads());
  std::printf("%8s | %9s | %11s | %8s | %s\n", "threads", "seconds", "samples/sec", "speedup",
              "batch hash");
  std::printf("%s\n", std::string(64, '-').c_str());

  util::JsonArray rows;
  double base_sec = 0.0;
  std::uint64_t base_hash = 0;
  bool deterministic = true;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);
    const diffusion::BatchSampler batch(cascade, pool.get());

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<squish::Topology> out = batch.sample_batch(sc, n, root);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const std::uint64_t h = batch_hash(out);
    if (threads == 1) {
      base_sec = sec;
      base_hash = h;
    }
    deterministic = deterministic && h == base_hash;
    const double rate = static_cast<double>(n) / sec;
    std::printf("%8d | %9.3f | %11.3f | %7.2fx | %016llx%s\n", threads, sec, rate,
                base_sec / sec, static_cast<unsigned long long>(h),
                h == base_hash ? "" : "  << MISMATCH");
    bench::csv_row(env, util::format("parallel_scaling,%d,%.4f,%.4f", threads, sec, rate));

    util::JsonObject row;
    row["threads"] = threads;
    row["seconds"] = sec;
    row["samples_per_sec"] = rate;
    row["speedup_vs_1"] = base_sec / sec;
    row["bit_identical_to_1_thread"] = h == base_hash;
    rows.push_back(util::Json(std::move(row)));
  }

  env.manifest.metrics["deterministic_across_thread_counts"] = deterministic;
  env.manifest.metrics["rows"] = util::Json(rows);

  util::JsonObject report;
  report["bench"] = "parallel_scaling";
  report["workload"] = "cascade sampler, 128x128, 16 visited steps, style Layer-10001";
  report["samples"] = n;
  report["seed"] = static_cast<long long>(env.seed);
  report["hardware_threads"] = util::ThreadPool::hardware_threads();
  report["deterministic_across_thread_counts"] = deterministic;
  report["rows"] = util::Json(std::move(rows));
  std::ofstream out = bench::open_output(json_path);
  out << util::Json(std::move(report)).dump(2) << "\n";
  std::printf("\ndeterministic across thread counts: %s\nreport: %s\n",
              deterministic ? "yes" : "NO", json_path.c_str());
  bench::write_manifest(env);
  return deterministic ? 0 : 1;
}
