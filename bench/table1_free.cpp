// Table 1 (lower block): free-size pattern generation at 256^2, 512^2 and
// 1024^2 — "[9] w/ Concatenation" (DiffPattern patches stitched on a grid)
// versus ChatPattern's extension, with Real Patterns references.

#include "baselines/concat.h"
#include "bench/common.h"
#include "extension/planner.h"
#include "metrics/metrics.h"

using namespace cp;

int main(int argc, char** argv) {
  bench::Env env = bench::make_env(argc, argv, /*default_samples=*/0);
  util::CliFlags flags(argc, argv);
  std::printf("\n== Table 1 (free-size), per-cell samples scale down with size ==\n\n");
  bench::print_header();

  util::Rng rng(env.seed + 2000);
  const int sizes[] = {256, 512, 1024};
  // Per-size sample counts (CPU-bounded); --samples overrides the base.
  const long long base = env.samples > 0 ? env.samples : 24;

  for (int size : sizes) {
    const int k = size / 128;
    const long long n = std::max<long long>(4, base / k);
    const geometry::Coord phys = bench::physical_for(env, size);
    const char* task = size == 256 ? "256^2" : (size == 512 ? "512^2" : "1024^2");

    // ---- Real Patterns reference at this size ----
    {
      std::vector<squish::Topology> both;
      for (int style = 0; style < 2; ++style) {
        dataset::DatasetConfig dc;
        dc.style = style;
        dc.window_nm = phys;
        dc.topo_size = size;
        dc.count = static_cast<int>(std::max<long long>(n, 12));
        dc.seed = env.seed + 31 + static_cast<std::uint64_t>(style);
        dc.map_nm = std::max<geometry::Coord>(3 * phys, 8192);
        const dataset::Dataset ds = dataset::build_reference_library(dc);
        bench::print_row(task, "Real Patterns", "/",
                         style == 0 ? "Layer-10001" : "Layer-10003", 0,
                         metrics::diversity(ds.topologies), false);
        both.insert(both.end(), ds.topologies.begin(), ds.topologies.end());
      }
      bench::print_row(task, "Real Patterns", "/", "Total", 0, metrics::diversity(both),
                       false);
    }

    // ---- [9] w/ Concatenation ----
    {
      std::vector<std::vector<squish::Topology>> legal(2);
      double legality_sum = 0.0;
      long long attempts_total = 0;
      for (int style = 0; style < 2; ++style) {
        long long legal_count = 0;
        for (long long i = 0; i < n; ++i) {
          // Generate and legalize k*k independent 128^2 patches (resampling
          // patches that fail, as the baseline pipeline would), then stitch.
          std::vector<squish::SquishPattern> tiles;
          int guard = 0;
          while (static_cast<int>(tiles.size()) < k * k && guard < 8 * k * k) {
            ++guard;
            diffusion::SampleConfig sc;
            sc.condition = style;
            const squish::Topology t = env.chat->sampler().sample(sc, rng);
            const auto res =
                env.legalizer(style).legalize(t, bench::physical_for(env, 128),
                                              bench::physical_for(env, 128));
            if (res.ok()) tiles.push_back(*res.pattern);
          }
          if (static_cast<int>(tiles.size()) < k * k) continue;
          const squish::SquishPattern stitched = baselines::concat_grid(tiles, k, k);
          ++attempts_total;
          if (drc::check(stitched, env.legalizer(style).rules()).clean()) {
            ++legal_count;
            legal[style].push_back(stitched.topology);
          }
        }
        const double pct = 100.0 * static_cast<double>(legal_count) / static_cast<double>(n);
        legality_sum += pct;
        bench::print_row(task, "[9] w/ Concatenation", "Layer-10001/3",
                         style == 0 ? "Layer-10001" : "Layer-10003", pct,
                         metrics::diversity(legal[style]));
        bench::csv_row(env, util::format("free,concat,%d,%d,%.4f,%.4f", size, style, pct,
                                         metrics::diversity(legal[style])));
      }
      std::vector<squish::Topology> both = legal[0];
      both.insert(both.end(), legal[1].begin(), legal[1].end());
      bench::print_row(task, "[9] w/ Concatenation", "Layer-10001/3", "Total",
                       legality_sum / 2.0, metrics::diversity(both));
    }

    // ---- ChatPattern (extension; out-painting default) ----
    {
      std::vector<std::vector<squish::Topology>> legal(2);
      double legality_sum = 0.0;
      for (int style = 0; style < 2; ++style) {
        long long legal_count = 0;
        for (long long i = 0; i < n; ++i) {
          extension::ExtensionConfig ec;
          ec.condition = style;
          const extension::ExtensionResult res = extension::extend(
              env.chat->sampler(), extension::Method::kOutPainting, squish::Topology(), size,
              size, ec, rng);
          const auto lr = env.legalizer(style).legalize(res.topology, phys, phys);
          if (lr.ok() && drc::check(*lr.pattern, env.legalizer(style).rules()).clean()) {
            ++legal_count;
            legal[style].push_back(res.topology);
          }
        }
        const double pct = 100.0 * static_cast<double>(legal_count) / static_cast<double>(n);
        legality_sum += pct;
        bench::print_row(task, "ChatPattern", "Layer-10001/3",
                         style == 0 ? "Layer-10001" : "Layer-10003", pct,
                         metrics::diversity(legal[style]));
        bench::csv_row(env, util::format("free,chatpattern,%d,%d,%.4f,%.4f", size, style, pct,
                                         metrics::diversity(legal[style])));
      }
      std::vector<squish::Topology> both = legal[0];
      both.insert(both.end(), legal[1].begin(), legal[1].end());
      bench::print_row(task, "ChatPattern", "Layer-10001/3", "Total", legality_sum / 2.0,
                       metrics::diversity(both));
      env.manifest.metrics[util::format("chatpattern_%d_legality_pct", size)] =
          legality_sum / 2.0;
      env.manifest.metrics[util::format("chatpattern_%d_diversity", size)] =
          metrics::diversity(both);
    }
    std::printf("%s\n", std::string(95, '-').c_str());
  }

  std::printf(
      "\nExpected shape (paper): concatenation legality collapses as size grows (seam\n"
      "violations compound multiplicatively with the seam count) while ChatPattern's\n"
      "extension stays far ahead at 256^2 and above.\n");
  bench::write_manifest(env);
  return 0;
}
