// Ablation: extension design choices at 256^2 — out-painting stride (the
// overlap/sample-count trade-off of the N_out formula) and in-painting
// resample rounds (RePaint harmonisation).

#include <chrono>

#include "bench/common.h"
#include "extension/planner.h"
#include "metrics/metrics.h"

using namespace cp;

int main(int argc, char** argv) {
  bench::Env env = bench::make_env(argc, argv, /*default_samples=*/8);
  const long long n = env.samples;
  const int size = 256;
  const geometry::Coord phys = bench::physical_for(env, size);
  util::Rng rng(env.seed + 7000);

  std::printf("\n== Extension ablation (256^2, %lld samples per row, Layer-10001) ==\n\n", n);
  std::printf("%-30s | %8s | %7s | %10s | %8s\n", "Configuration", "Legality", "Divers.",
              "ModelCalls", "s/sample");
  std::printf("%s\n", std::string(75, '-').c_str());

  util::JsonArray manifest_rows;
  auto run = [&](const char* name, extension::Method method, int stride, int resample) {
    long long legal = 0, calls = 0;
    std::vector<squish::Topology> legal_topos;
    const auto t0 = std::chrono::steady_clock::now();
    for (long long i = 0; i < n; ++i) {
      extension::ExtensionConfig ec;
      ec.condition = 0;
      ec.stride = stride;
      ec.resample_rounds = resample;
      const auto res =
          extension::extend(env.chat->sampler(), method, squish::Topology(), size, size, ec, rng);
      calls += res.model_calls;
      const auto lr = env.legalizer(0).legalize(res.topology, phys, phys);
      if (lr.ok()) {
        ++legal;
        legal_topos.push_back(res.topology);
      }
    }
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() /
        static_cast<double>(n);
    std::printf("%-30s | %7.2f%% | %7.3f | %10lld | %8.3f\n", name,
                100.0 * static_cast<double>(legal) / static_cast<double>(n),
                metrics::diversity(legal_topos), calls / n, sec);
    bench::csv_row(env,
                   util::format("ablation_extension,%s,%.4f,%.4f,%lld", name,
                                100.0 * static_cast<double>(legal) / static_cast<double>(n),
                                metrics::diversity(legal_topos), calls / n));
    util::JsonObject mr;
    mr["configuration"] = name;
    mr["legality_pct"] = 100.0 * static_cast<double>(legal) / static_cast<double>(n);
    mr["diversity"] = metrics::diversity(legal_topos);
    mr["model_calls_per_sample"] = calls / n;
    mr["sec_per_sample"] = sec;
    manifest_rows.push_back(util::Json(std::move(mr)));
  };

  run("out, stride 32 (75% overlap)", extension::Method::kOutPainting, 32, 1);
  run("out, stride 64 (default)", extension::Method::kOutPainting, 64, 1);
  run("out, stride 96 (25% overlap)", extension::Method::kOutPainting, 96, 1);
  run("out, stride 128 (no overlap)", extension::Method::kOutPainting, 128, 1);
  run("in, 1 pass (default)", extension::Method::kInPainting, 64, 1);
  run("in, 2 resample rounds", extension::Method::kInPainting, 64, 2);
  run("in, 3 resample rounds", extension::Method::kInPainting, 64, 3);

  std::printf(
      "\nExpected: larger strides cost fewer model calls but weaken seam context\n"
      "(stride 128 degenerates to concatenation-with-fresh-borders); extra RePaint\n"
      "rounds harmonise seams at proportional cost.\n");
  env.manifest.metrics["rows"] = util::Json(std::move(manifest_rows));
  bench::write_manifest(env);
  return 0;
}
