// Figure 10: evaluation of In-Painting vs Out-Painting across target sizes.
// This is also the data the agent's experience store is seeded with — the
// documented insight "out-painting typically yields better legality, while
// in-painting excels in diversity under certain conditions".

#include "bench/common.h"
#include "extension/planner.h"
#include "metrics/metrics.h"

using namespace cp;

int main(int argc, char** argv) {
  bench::Env env = bench::make_env(argc, argv, /*default_samples=*/10);
  std::printf("\n== Figure 10: In-Painting vs Out-Painting ==\n\n");
  std::printf("%-7s | %-11s | %-12s | %8s | %7s | %10s\n", "Size", "Style", "Method",
              "Legality", "Divers.", "ModelCalls");
  std::printf("%s\n", std::string(70, '-').c_str());

  util::Rng rng(env.seed + 3000);
  agent::ExperienceStore experience;

  for (int size : {256, 512, 768}) {
    const long long n = std::max<long long>(3, env.samples * 256 / size);
    const geometry::Coord phys = bench::physical_for(env, size);
    for (int style = 0; style < 2; ++style) {
      for (auto method : {extension::Method::kOutPainting, extension::Method::kInPainting}) {
        long long legal = 0;
        long long calls = 0;
        std::vector<squish::Topology> legal_topos;
        for (long long i = 0; i < n; ++i) {
          extension::ExtensionConfig ec;
          ec.condition = style;
          const auto res = extension::extend(env.chat->sampler(), method, squish::Topology(),
                                             size, size, ec, rng);
          calls += res.model_calls;
          const auto lr = env.legalizer(style).legalize(res.topology, phys, phys);
          const bool ok =
              lr.ok() && drc::check(*lr.pattern, env.legalizer(style).rules()).clean();
          if (ok) {
            ++legal;
            legal_topos.push_back(res.topology);
          }
          experience.record(method == extension::Method::kOutPainting ? "Out" : "In",
                            dataset::style_name(style), size, ok);
        }
        const double pct = 100.0 * static_cast<double>(legal) / static_cast<double>(n);
        const double H = metrics::diversity(legal_topos);
        experience.record_diversity(method == extension::Method::kOutPainting ? "Out" : "In",
                                    dataset::style_name(style), size, H);
        std::printf("%-7d | %-11s | %-12s | %7.2f%% | %7.3f | %7lld\n", size,
                    dataset::style_name(style).c_str(), extension::to_string(method), pct, H,
                    calls / n);
        bench::csv_row(env, util::format("fig10,%d,%d,%s,%.4f,%.4f", size, style,
                                         extension::to_string(method), pct, H));
      }
    }
  }

  // The statistics double as the agent's experience documentation.
  std::printf("\nExperience store after the sweep (the agent's Fig. 10 documentation):\n%s\n",
              experience.to_json().dump(2).c_str());
  for (int style = 0; style < 2; ++style) {
    for (int size : {256, 512, 768}) {
      std::printf("best method for %s @ %d: %s\n", dataset::style_name(style).c_str(), size,
                  experience.best_method(dataset::style_name(style), size).c_str());
      env.manifest.metrics[util::format("best_method_style%d_%d", style, size)] =
          experience.best_method(dataset::style_name(style), size);
    }
  }
  env.manifest.metrics["experience"] = experience.to_json();
  bench::write_manifest(env);
  return 0;
}
