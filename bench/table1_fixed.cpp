// Table 1 (upper block): fixed-size 128x128 pattern generation.
//
// Reproduces the Legality / Diversity comparison on Layer-10001, Layer-10003
// and the combined set for: CAE+LegalGAN, VCAE+LegalGAN, LayouTransformer
// (all trained on Layer-10001 only, as in the paper), DiffPattern (one
// single-layer model per layer) and ChatPattern (one conditional model on
// the union dataset), plus the Real Patterns reference row.

#include "baselines/cae.h"
#include "baselines/layoutransformer.h"
#include "baselines/legalgan.h"
#include "bench/common.h"
#include "metrics/metrics.h"

using namespace cp;

namespace {

struct CellResult {
  double legality_pct = 0.0;
  double diversity = 0.0;
  int legal = 0;
};

CellResult evaluate(const bench::Env& env, const std::vector<squish::Topology>& topologies,
                    int style) {
  CellResult out;
  std::vector<squish::Topology> legal;
  const geometry::Coord phys = bench::physical_for(env, 128);
  for (const auto& t : topologies) {
    const auto res = env.legalizer(style).legalize(t, phys, phys);
    if (res.ok() && drc::check(*res.pattern, env.legalizer(style).rules()).clean()) {
      legal.push_back(t);
    }
  }
  out.legal = static_cast<int>(legal.size());
  out.legality_pct =
      topologies.empty() ? 0.0 : 100.0 * static_cast<double>(legal.size()) / topologies.size();
  out.diversity = metrics::diversity(legal);
  return out;
}

/// Combined-set evaluation: legality over the union, diversity over all
/// legal topologies together (the paper's "Total" column).
CellResult evaluate_total(const bench::Env& env,
                          const std::vector<squish::Topology>& layer0,
                          const std::vector<squish::Topology>& layer1) {
  CellResult out;
  std::vector<squish::Topology> legal;
  const geometry::Coord phys = bench::physical_for(env, 128);
  long long total = 0;
  for (int style = 0; style < 2; ++style) {
    const auto& set = style == 0 ? layer0 : layer1;
    total += static_cast<long long>(set.size());
    for (const auto& t : set) {
      const auto res = env.legalizer(style).legalize(t, phys, phys);
      if (res.ok() && drc::check(*res.pattern, env.legalizer(style).rules()).clean()) {
        legal.push_back(t);
      }
    }
  }
  out.legal = static_cast<int>(legal.size());
  out.legality_pct = total == 0 ? 0.0 : 100.0 * static_cast<double>(legal.size()) / total;
  out.diversity = metrics::diversity(legal);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Env env = bench::make_env(argc, argv, /*default_samples=*/80);
  const int n = static_cast<int>(env.samples);
  std::printf("\n== Table 1 (fixed-size 128^2), %d samples per cell ==\n\n", n);
  bench::print_header();

  // ---- Real Patterns reference ----
  {
    const auto& l0 = env.chat->training_set(0).topologies;
    const auto& l1 = env.chat->training_set(1).topologies;
    std::vector<squish::Topology> both = l0;
    both.insert(both.end(), l1.begin(), l1.end());
    bench::print_row("128^2", "Real Patterns", "/", "Layer-10001", 0,
                     metrics::diversity(l0), false);
    bench::print_row("128^2", "Real Patterns", "/", "Layer-10003", 0,
                     metrics::diversity(l1), false);
    bench::print_row("128^2", "Real Patterns", "/", "Total", 0, metrics::diversity(both),
                     false);
  }

  util::Rng rng(env.seed + 1000);
  const auto& train0 = env.chat->training_set(0).topologies;
  const auto& train1 = env.chat->training_set(1).topologies;

  // ---- CAE + LegalGAN (trained on Layer-10001) ----
  {
    baselines::CaeBaseline cae(128, 12, rng);
    cae.train(train0, 2500, 1e-3f);
    std::vector<squish::Topology> gen;
    baselines::LegalGanConfig lg;
    for (int i = 0; i < n; ++i) {
      gen.push_back(baselines::legalgan_cleanup(cae.generate(rng, 0.05f), lg));
    }
    const CellResult r = evaluate(env, gen, 0);
    bench::print_row("128^2", "CAE+LegalGAN", "Layer-10001", "Layer-10001", r.legality_pct,
                     r.diversity);
    bench::csv_row(env, util::format("fixed,cae,10001,%.4f,%.4f", r.legality_pct, r.diversity));
  }

  // ---- VCAE + LegalGAN (trained on Layer-10001) ----
  {
    baselines::VcaeBaseline vcae(128, 12, rng);
    vcae.train(train0, 2500, 1e-3f);
    vcae.fit_latent_distribution();
    std::vector<squish::Topology> gen;
    baselines::LegalGanConfig lg;
    lg.min_run_cells = 3;  // the "LegalGAN" cleanup is stronger for VCAE,
    lg.iterations = 3;     // whose free latent draws decode noisier patterns
    for (int i = 0; i < n; ++i) {
      gen.push_back(baselines::legalgan_cleanup(vcae.generate_variational(rng), lg));
    }
    const CellResult r = evaluate(env, gen, 0);
    bench::print_row("128^2", "VCAE+LegalGAN", "Layer-10001", "Layer-10001", r.legality_pct,
                     r.diversity);
    bench::csv_row(env, util::format("fixed,vcae,10001,%.4f,%.4f", r.legality_pct, r.diversity));
  }

  // ---- LayouTransformer (trained on Layer-10001) ----
  {
    baselines::LayoutTransformerBaseline lt;
    lt.fit(train0);
    std::vector<squish::Topology> gen;
    for (int i = 0; i < n; ++i) gen.push_back(lt.generate(128, 128, rng));
    const CellResult r = evaluate(env, gen, 0);
    bench::print_row("128^2", "LayouTransformer", "Layer-10001", "Layer-10001", r.legality_pct,
                     r.diversity);
    bench::csv_row(env, util::format("fixed,layoutransformer,10001,%.4f,%.4f", r.legality_pct,
                                     r.diversity));
  }

  // ---- DiffPattern: one single-layer diffusion model per layer ----
  {
    std::vector<std::vector<squish::Topology>> per_layer_gen(2);
    for (int style = 0; style < 2; ++style) {
      const auto& data = style == 0 ? train0 : train1;
      diffusion::TabularConfig tc;
      tc.conditions = 1;
      tc.draws_per_bucket = env.config.draws_per_bucket;
      std::vector<squish::Topology> coarse;
      for (const auto& t : data) coarse.push_back(squish::downsample_majority(t, 4));
      const auto fine = diffusion::fit_tabular(env.chat->schedule(), tc, {data}, env.seed + 21);
      const auto coarse_den =
          diffusion::fit_tabular(env.chat->schedule(), tc, {coarse}, env.seed + 22);
      diffusion::CascadeSampler sampler(env.chat->schedule(), coarse_den, fine,
                                        diffusion::CascadeConfig{});
      diffusion::SampleConfig sc;
      for (int i = 0; i < n; ++i) per_layer_gen[style].push_back(sampler.sample(sc, rng));
    }
    const CellResult r0 = evaluate(env, per_layer_gen[0], 0);
    const CellResult r1 = evaluate(env, per_layer_gen[1], 1);
    const CellResult rt = evaluate_total(env, per_layer_gen[0], per_layer_gen[1]);
    bench::print_row("128^2", "DiffPattern", "Layer-10001", "Layer-10001", r0.legality_pct,
                     r0.diversity);
    bench::print_row("128^2", "DiffPattern", "Layer-10003", "Layer-10003", r1.legality_pct,
                     r1.diversity);
    bench::print_row("128^2", "DiffPattern", "per-layer", "Total", rt.legality_pct,
                     rt.diversity);
    bench::csv_row(env, util::format("fixed,diffpattern,total,%.4f,%.4f", rt.legality_pct,
                                     rt.diversity));
    env.manifest.metrics["diffpattern_total_legality_pct"] = rt.legality_pct;
    env.manifest.metrics["diffpattern_total_diversity"] = rt.diversity;
  }

  // ---- ChatPattern: conditional model on the union dataset ----
  {
    std::vector<std::vector<squish::Topology>> gen(2);
    for (int style = 0; style < 2; ++style) {
      diffusion::SampleConfig sc;
      sc.condition = style;
      for (int i = 0; i < n; ++i) gen[style].push_back(env.chat->sampler().sample(sc, rng));
    }
    const CellResult r0 = evaluate(env, gen[0], 0);
    const CellResult r1 = evaluate(env, gen[1], 1);
    const CellResult rt = evaluate_total(env, gen[0], gen[1]);
    bench::print_row("128^2", "ChatPattern", "union (cond.)", "Layer-10001", r0.legality_pct,
                     r0.diversity);
    bench::print_row("128^2", "ChatPattern", "union (cond.)", "Layer-10003", r1.legality_pct,
                     r1.diversity);
    bench::print_row("128^2", "ChatPattern", "union (cond.)", "Total", rt.legality_pct,
                     rt.diversity);
    bench::csv_row(env, util::format("fixed,chatpattern,total,%.4f,%.4f", rt.legality_pct,
                                     rt.diversity));
    env.manifest.metrics["chatpattern_total_legality_pct"] = rt.legality_pct;
    env.manifest.metrics["chatpattern_total_diversity"] = rt.diversity;
  }

  std::printf(
      "\nExpected shape (paper): CAE << VCAE < LayouTransformer < DiffPattern <= ChatPattern\n"
      "in legality, with ChatPattern ~matching DiffPattern per layer and winning on Total.\n");
  bench::write_manifest(env);
  return 0;
}
