#pragma once
// Shared setup and reporting helpers for the evaluation harness. Every bench
// binary runs standalone with sensible defaults and accepts:
//   --samples N       samples per table cell (default per bench)
//   --seed S          global seed
//   --train N         training clips per class
//   --csv FILE        also append machine-readable rows to FILE
//   --outdir DIR      directory for output artifacts (PBM/JSON; default ".")
//   --manifest FILE   enable observability and write a JSON run manifest
//                     (config, git describe, seeds, per-stage span timings,
//                     counters, result metrics) to FILE on exit — see
//                     docs/OBSERVABILITY.md
//
// Output-path policy (all benches): parent directories of any output file
// are created on demand; if a path cannot be created or opened the bench
// fails immediately with a clear message instead of silently writing
// nothing (bench::open_output / bench::require_dir).
//
// Absolute numbers are sample-count limited on one CPU core (see DESIGN.md
// S5); the orderings and gaps are what reproduces the paper.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/chatpattern.h"
#include "dataset/style.h"
#include "obs/manifest.h"
#include "obs/registry.h"
#include "util/cli.h"
#include "util/strings.h"

namespace cp::bench {

struct Env {
  core::ChatPatternConfig config;
  std::unique_ptr<core::ChatPattern> chat;
  std::uint64_t seed = 1;
  long long samples = 0;
  std::string csv_path;
  std::string outdir = ".";
  std::string manifest_path;      // empty = no manifest
  obs::RunManifest manifest;      // tool/args/config filled by make_env

  const legalize::Legalizer& legalizer(int style) const { return chat->legalizer(style); }
};

/// Create `dir` (and parents) or die with a clear message.
inline void require_dir(const std::string& dir) {
  if (dir.empty() || dir == ".") return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec || !std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "error: output directory '%s' cannot be created: %s\n", dir.c_str(),
                 ec ? ec.message().c_str() : "path exists and is not a directory");
    std::exit(2);
  }
}

/// Resolve an artifact name against --outdir (absolute paths pass through).
inline std::string out_path(const Env& env, const std::string& name) {
  if (name.empty() || name.front() == '/' || env.outdir.empty() || env.outdir == ".") {
    return name;
  }
  return env.outdir + "/" + name;
}

/// Open `path` for writing, creating parent directories. Exits with a clear
/// message on failure — a bench that cannot write its artifacts must not
/// pretend the run succeeded.
inline std::ofstream open_output(const std::string& path,
                                 std::ios::openmode mode = std::ios::out) {
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec) {
      std::fprintf(stderr, "error: cannot create directory '%s' for output '%s': %s\n",
                   target.parent_path().c_str(), path.c_str(), ec.message().c_str());
      std::exit(2);
    }
  }
  std::ofstream out(path, mode);
  if (!out) {
    std::fprintf(stderr, "error: cannot open output file '%s' for writing\n", path.c_str());
    std::exit(2);
  }
  return out;
}

inline Env make_env(int argc, char** argv, long long default_samples) {
  util::CliFlags flags(argc, argv);
  Env env;
  env.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  env.samples = flags.get_int("samples", default_samples);
  env.outdir = flags.get("outdir", ".");
  require_dir(env.outdir);
  // Relative artifact paths land in --outdir like every other output.
  env.csv_path = flags.get("csv", "");
  if (!env.csv_path.empty()) env.csv_path = out_path(env, env.csv_path);
  env.manifest_path = flags.get("manifest", "");
  if (!env.manifest_path.empty()) env.manifest_path = out_path(env, env.manifest_path);
  env.config.seed = env.seed;
  env.config.train_clips_per_class = static_cast<int>(flags.get_int("train", 160));
  env.config.draws_per_bucket = static_cast<int>(flags.get_int("draws", 3));

  // Manifest bookkeeping: record the run inputs up front; metrics are added
  // by the bench as it goes and flushed by write_manifest.
  env.manifest.tool = std::filesystem::path(flags.program()).filename().string();
  for (int i = 1; i < argc; ++i) env.manifest.args.push_back(argv[i]);
  env.manifest.config["seed"] = static_cast<long long>(env.seed);
  env.manifest.config["samples"] = env.samples;
  env.manifest.config["train_clips_per_class"] = env.config.train_clips_per_class;
  env.manifest.config["draws_per_bucket"] = env.config.draws_per_bucket;
  env.manifest.config["outdir"] = env.outdir;
  if (!env.manifest_path.empty()) obs::Registry::global().set_enabled(true);

  std::printf("[setup] training backend (%d clips/class, seed %llu)...\n",
              env.config.train_clips_per_class,
              static_cast<unsigned long long>(env.seed));
  std::fflush(stdout);
  {
    const obs::Span span = obs::trace_scope("bench/setup");
    env.chat = std::make_unique<core::ChatPattern>(env.config);
  }
  return env;
}

/// Write the run manifest when --manifest was given; no-op otherwise. Call
/// once at the end of main (extra metrics can be merged in beforehand via
/// env.manifest.metrics). Exits non-zero if the manifest cannot be written.
inline void write_manifest(Env& env) {
  if (env.manifest_path.empty()) return;
  std::string error;
  if (!env.manifest.write(env.manifest_path, obs::Registry::global(), &error)) {
    std::fprintf(stderr, "error: manifest: %s\n", error.c_str());
    std::exit(2);
  }
  std::printf("[manifest] wrote %s\n", env.manifest_path.c_str());
}

inline void csv_row(const Env& env, const std::string& line) {
  if (env.csv_path.empty()) return;
  std::ofstream out = open_output(env.csv_path, std::ios::app);
  out << line << "\n";
}

/// Print a Table-1-style row.
inline void print_row(const char* task, const char* method, const char* training,
                      const char* dataset, double legality_pct, double diversity,
                      bool has_legality = true) {
  if (has_legality) {
    std::printf("%-10s | %-24s | %-17s | %-11s | %7.2f%% | %7.3f\n", task, method, training,
                dataset, legality_pct, diversity);
  } else {
    std::printf("%-10s | %-24s | %-17s | %-11s |     /    | %7.3f\n", task, method, training,
                dataset, diversity);
  }
}

inline void print_header() {
  std::printf("%-10s | %-24s | %-17s | %-11s | %8s | %7s\n", "Task", "Set/Method",
              "Training Set", "Dataset", "Legality", "Divers.");
  std::printf("%s\n", std::string(95, '-').c_str());
}

/// Per-style physical budget for a topology of the given size at the native
/// 16 nm/cell scale.
inline geometry::Coord physical_for(const Env& env, int topo_size) {
  return static_cast<geometry::Coord>(topo_size) * env.chat->nm_per_cell();
}

}  // namespace cp::bench
