#pragma once
// Shared setup and reporting helpers for the evaluation harness. Every bench
// binary runs standalone with sensible defaults and accepts:
//   --samples N   samples per table cell (default per bench)
//   --seed S      global seed
//   --train N     training clips per class
//   --csv FILE    also append machine-readable rows to FILE
//
// Absolute numbers are sample-count limited on one CPU core (see DESIGN.md
// S5); the orderings and gaps are what reproduces the paper.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/chatpattern.h"
#include "dataset/style.h"
#include "util/cli.h"
#include "util/strings.h"

namespace cp::bench {

struct Env {
  core::ChatPatternConfig config;
  std::unique_ptr<core::ChatPattern> chat;
  std::uint64_t seed = 1;
  long long samples = 0;
  std::string csv_path;

  const legalize::Legalizer& legalizer(int style) const { return chat->legalizer(style); }
};

inline Env make_env(int argc, char** argv, long long default_samples) {
  util::CliFlags flags(argc, argv);
  Env env;
  env.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  env.samples = flags.get_int("samples", default_samples);
  env.csv_path = flags.get("csv", "");
  env.config.seed = env.seed;
  env.config.train_clips_per_class = static_cast<int>(flags.get_int("train", 160));
  env.config.draws_per_bucket = static_cast<int>(flags.get_int("draws", 3));
  std::printf("[setup] training backend (%d clips/class, seed %llu)...\n",
              env.config.train_clips_per_class,
              static_cast<unsigned long long>(env.seed));
  std::fflush(stdout);
  env.chat = std::make_unique<core::ChatPattern>(env.config);
  return env;
}

inline void csv_row(const Env& env, const std::string& line) {
  if (env.csv_path.empty()) return;
  std::ofstream out(env.csv_path, std::ios::app);
  out << line << "\n";
}

/// Print a Table-1-style row.
inline void print_row(const char* task, const char* method, const char* training,
                      const char* dataset, double legality_pct, double diversity,
                      bool has_legality = true) {
  if (has_legality) {
    std::printf("%-10s | %-24s | %-17s | %-11s | %7.2f%% | %7.3f\n", task, method, training,
                dataset, legality_pct, diversity);
  } else {
    std::printf("%-10s | %-24s | %-17s | %-11s |     /    | %7.3f\n", task, method, training,
                dataset, diversity);
  }
}

inline void print_header() {
  std::printf("%-10s | %-24s | %-17s | %-11s | %8s | %7s\n", "Task", "Set/Method",
              "Training Set", "Dataset", "Legality", "Divers.");
  std::printf("%s\n", std::string(95, '-').c_str());
}

/// Per-style physical budget for a topology of the given size at the native
/// 16 nm/cell scale.
inline geometry::Coord physical_for(const Env& env, int topo_size) {
  return static_cast<geometry::Coord>(topo_size) * env.chat->nm_per_cell();
}

}  // namespace cp::bench
