// Neural-denoiser inference throughput: before/after the blocked-GEMM +
// stateless-infer rewrite (nn/gemm.h, nn::Workspace), serial and parallel.
//
// The "legacy" path reconstructs the pre-rewrite cost model faithfully: the
// naive triple-loop kernel, a freshly allocated tensor per layer, a fresh
// feature tensor per call, and per-pixel time/condition feature recompute —
// exactly what Sequential::forward + the old linear_forward did. Because the
// blocked kernels preserve accumulation order, legacy and new outputs must
// be bit-identical; the bench verifies that and fails otherwise.
//
// Writes BENCH_denoiser.json (override --json FILE) with single-thread
// grid/pixel speedups and BatchSampler scaling rows (hardware_threads
// recorded, like parallel_scaling — on a 1-core container every scaling row
// measures ~1x).
//
// Flags: --seed S --grid N --reps N --pixelreps N --maxthreads N
//        --json FILE --outdir DIR --manifest FILE

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "diffusion/batch_sampler.h"
#include "diffusion/mlp_denoiser.h"
#include "diffusion/precision.h"
#include "diffusion/reference.h"
#include "diffusion/tabular_denoiser.h"
#include "diffusion/transition.h"
#include "drc/checker.h"
#include "nn/gemm.h"
#include "squish/reference.h"
#include "util/json.h"
#include "util/thread_pool.h"

using namespace cp;

namespace {

squish::Topology stripes(int n, int period) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, (c / period) % 2);
  }
  return t;
}

inline float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }

/// The pre-rewrite Sequential::forward: naive GEMM, a fresh allocation per
/// layer, and — like the old trainable Layer::forward — a copy of every
/// layer's input into its activation cache (`input_ = x`), the state that
/// made inference non-thread-safe. `cache` stands in for those persistent
/// per-layer members (copy-assigned each call, exactly like the originals).
nn::Tensor legacy_forward(nn::Sequential& net, const nn::Tensor& x,
                          std::vector<nn::Tensor>& cache) {
  cache.resize(net.size());
  nn::Tensor h = x;
  for (std::size_t i = 0; i < net.size(); ++i) {
    nn::Layer& layer = net.layer(i);
    if (auto* lin = dynamic_cast<nn::Linear*>(&layer)) {
      cache[i] = h;  // Linear::forward: input_ = x
      const int n = h.dim(0), in = h.dim(1), out = lin->out_features();
      nn::Tensor y({n, out});
      nn::gemm::forward_naive(n, in, out, h.data(), lin->weight().value.data(),
                              lin->bias().value.data(), y.data());
      h = std::move(y);
    } else if (std::strcmp(layer.name(), "SiLU") == 0) {
      cache[i] = h;  // SiLU::forward: input_ = x
      nn::Tensor y = h;
      for (std::size_t j = 0; j < y.numel(); ++j) y[j] = h[j] * sigmoidf(h[j]);
      h = std::move(y);
    } else {
      h = layer.forward(h);
    }
  }
  return h;
}

/// Pre-rewrite predict_x0: fresh feature tensor (per-pixel tail recompute
/// inside build_features) + legacy forward.
void legacy_predict_x0(diffusion::MlpDenoiser& d, const squish::Topology& xk, int k, int cond,
                       std::vector<nn::Tensor>& cache, diffusion::ProbGrid& p0) {
  const nn::Tensor features = d.build_features(xk, k, cond);
  const nn::Tensor logits = legacy_forward(d.net(), features, cache);
  p0.resize(xk.size());
  for (std::size_t i = 0; i < p0.size(); ++i) p0[i] = sigmoidf(logits[i]);
}

/// Pre-rewrite predict_x0_pixel: one tensor allocation + full forward per
/// pixel.
float legacy_predict_pixel(diffusion::MlpDenoiser& d, const squish::Topology& xk, int r, int c,
                           int k, int cond, std::vector<nn::Tensor>& cache) {
  nn::Tensor features({1, d.feature_dim()});
  d.pixel_features(xk, r, c, k, cond, features.data());
  const nn::Tensor logits = legacy_forward(d.net(), features, cache);
  return sigmoidf(logits[0]);
}

/// Best mean-per-call over three passes: the minimum discards scheduler noise
/// (this runs on shared 1-core containers) symmetrically for both paths.
template <typename F>
double seconds_per_call(int reps, F&& f) {
  f(0);  // warm up caches / workspaces outside the timed region
  const int per_pass = reps < 3 ? reps : reps / 3;
  double best = 0.0;
  int i = 0;
  for (int pass = 0; pass * per_pass < reps; ++pass) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int j = 0; j < per_pass; ++j) f(i++);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() / per_pass;
    if (pass == 0 || sec < best) best = sec;
  }
  return best;
}

std::uint64_t batch_hash(const std::vector<squish::Topology>& batch) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const auto& t : batch) {
    mix(static_cast<std::uint64_t>(t.rows()));
    mix(static_cast<std::uint64_t>(t.cols()));
    for (int r = 0; r < t.rows(); ++r) {
      for (int c = 0; c < t.cols(); ++c) mix(t.at(r, c));
    }
  }
  return h;
}

/// One packed-vs-byte microkernel row: print, record, and fold the
/// bit-identity verdict into the process exit code.
util::Json substrate_row(const char* name, double byte_sec, double packed_sec, bool identical,
                         bool& all_identical) {
  all_identical = all_identical && identical;
  std::printf("%-14s: byte %9.3f ms  packed %9.3f ms  speedup %5.2fx  %s\n", name,
              byte_sec * 1e3, packed_sec * 1e3, byte_sec / packed_sec,
              identical ? "bit-identical" : "<< MISMATCH");
  util::JsonObject row;
  row["byte_ms"] = byte_sec * 1e3;
  row["packed_ms"] = packed_sec * 1e3;
  row["speedup"] = byte_sec / packed_sec;
  row["bit_identical"] = identical;
  return util::Json(std::move(row));
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int grid_n = static_cast<int>(flags.get_int("grid", 64));
  const int reps = static_cast<int>(flags.get_int("reps", 20));
  const int pixel_reps = static_cast<int>(flags.get_int("pixelreps", 20000));
  const int max_threads = static_cast<int>(flags.get_int("maxthreads", 8));
  const std::string outdir = flags.get("outdir", ".");
  bench::require_dir(outdir);
  auto resolve = [&](std::string name) {
    if (name.empty() || name.front() == '/' || outdir.empty() || outdir == ".") return name;
    return outdir + "/" + name;
  };
  const std::string json_path = resolve(flags.get("json", "BENCH_denoiser.json"));
  const std::string manifest_path = resolve(flags.get("manifest", ""));
  if (!manifest_path.empty()) obs::Registry::global().set_enabled(true);

  // The MLP the kernels were tuned for: feature_dim 23 -> 64 -> 64 -> 1.
  const diffusion::NoiseSchedule schedule{diffusion::ScheduleConfig{}};
  util::Rng rng(seed);
  diffusion::MlpDenoiser d(schedule, diffusion::MlpConfig{2, 64, 2}, rng);
  const squish::Topology x0 = stripes(grid_n, 3);
  util::Rng noise_rng(seed + 1);
  const squish::Topology xk = diffusion::forward_noise(x0, schedule, 40, noise_rng);

  std::printf("== Denoiser inference (MLP %d-dim features, grid %dx%d) ==\n", d.feature_dim(),
              grid_n, grid_n);
  std::printf("hardware threads: %d\n\n", util::ThreadPool::hardware_threads());

  // --- Single-thread grid forward: legacy vs new, plus bit-identity audit.
  // SIMD dispatch off: "new" here is the portable 8-wide kernel, so
  // grid_new_ms stays comparable across report generations; the 16-wide AVX2
  // and int8 tiers are measured against it in the vector-tier section below.
  nn::gemm::set_simd_enabled(false);
  std::vector<nn::Tensor> legacy_cache;  // the old layers' persistent input_ members
  diffusion::ProbGrid p_legacy, p_new;
  legacy_predict_x0(d, xk, 40, 0, legacy_cache, p_legacy);
  d.predict_x0(xk, 40, 0, p_new);
  bool bit_identical = p_legacy.size() == p_new.size();
  for (std::size_t i = 0; bit_identical && i < p_legacy.size(); ++i) {
    bit_identical = p_legacy[i] == p_new[i];
  }

  const double grid_legacy = seconds_per_call(
      reps, [&](int i) { legacy_predict_x0(d, xk, 40, i % 2, legacy_cache, p_legacy); });
  const double grid_new =
      seconds_per_call(reps, [&](int i) { d.predict_x0(xk, 40, i % 2, p_new); });
  const double grid_speedup = grid_legacy / grid_new;

  // --- Single-thread pixel path (the sequential reverse sampler's hot loop:
  // serpentine scan re-querying one pixel at a time at a fixed step).
  double sink = 0.0;
  const double pixel_legacy = seconds_per_call(pixel_reps, [&](int i) {
    sink += legacy_predict_pixel(d, xk, i % grid_n, (i / grid_n) % grid_n, 40, 0, legacy_cache);
  });
  const double pixel_new = seconds_per_call(pixel_reps, [&](int i) {
    sink += d.predict_x0_pixel(xk, i % grid_n, (i / grid_n) % grid_n, 40, 0);
  });
  const double pixel_speedup = pixel_legacy / pixel_new;

  std::printf("grid forward : legacy %8.3f ms  new %8.3f ms  speedup %5.2fx\n",
              grid_legacy * 1e3, grid_new * 1e3, grid_speedup);
  std::printf("pixel query  : legacy %8.2f us  new %8.2f us  speedup %5.2fx\n",
              pixel_legacy * 1e6, pixel_new * 1e6, pixel_speedup);
  std::printf("legacy vs new bit-identical: %s   (checksum %.6f)\n\n",
              bit_identical ? "yes" : "NO", sink);

  // --- Vector tiers (DESIGN.md "Quantized inference"): the 16-wide AVX2
  // fp32 tile must be bit-identical to the portable baseline above; the
  // opt-in int8 tier trades a bounded probability error for throughput.
  const bool have_avx2 = nn::gemm::cpu_has_avx2();
  diffusion::ProbGrid p_base, p_vec, p_q;
  d.predict_x0(xk, 40, 0, p_base);  // still SIMD-off: the reference bits
  nn::gemm::set_simd_enabled(true);
  d.predict_x0(xk, 40, 0, p_vec);
  bool vec_identical = p_base.size() == p_vec.size();
  for (std::size_t i = 0; vec_identical && i < p_base.size(); ++i) {
    vec_identical = p_base[i] == p_vec[i];
  }
  const double grid_vec =
      seconds_per_call(reps, [&](int i) { d.predict_x0(xk, 40, i % 2, p_vec); });
  const double pixel_vec = seconds_per_call(pixel_reps, [&](int i) {
    sink += d.predict_x0_pixel(xk, i % grid_n, (i / grid_n) % grid_n, 40, 0);
  });

  double int8_maxdiff = 0.0;
  double grid_int8 = 0.0, pixel_int8 = 0.0;
  {
    const diffusion::PrecisionScope int8_scope(diffusion::Precision::kInt8);
    d.predict_x0(xk, 40, 0, p_q);
    for (std::size_t i = 0; i < p_base.size() && i < p_q.size(); ++i) {
      const double diff = std::abs(static_cast<double>(p_base[i]) - p_q[i]);
      if (diff > int8_maxdiff) int8_maxdiff = diff;
    }
    grid_int8 = seconds_per_call(reps, [&](int i) { d.predict_x0(xk, 40, i % 2, p_q); });
    pixel_int8 = seconds_per_call(pixel_reps, [&](int i) {
      sink += d.predict_x0_pixel(xk, i % grid_n, (i / grid_n) % grid_n, 40, 0);
    });
  }
  const bool int8_close = int8_maxdiff < 0.1;  // coarse sanity; the real gate
                                               // is quant_quality_test

  // Batched row query: predict_x0_row amortizes the neighbourhood gather and
  // the kernel launch over a whole row; per-pixel it must reproduce
  // predict_x0_pixel bit-for-bit on the fp32 path.
  std::vector<float> row_out(static_cast<std::size_t>(grid_n));
  bool row_identical = true;
  for (int r : {0, grid_n / 2, grid_n - 1}) {
    d.predict_x0_row(xk, r, 40, 0, row_out.data());
    for (int c = 0; row_identical && c < grid_n; ++c) {
      row_identical = row_out[static_cast<std::size_t>(c)] == d.predict_x0_pixel(xk, r, c, 40, 0);
    }
  }
  const int row_reps = std::max(3, pixel_reps / grid_n);
  const double row_fp32 = seconds_per_call(row_reps, [&](int i) {
                            d.predict_x0_row(xk, i % grid_n, 40, 0, row_out.data());
                            sink += row_out[0];
                          }) /
                          grid_n;
  double row_int8 = 0.0;
  {
    const diffusion::PrecisionScope int8_scope(diffusion::Precision::kInt8);
    row_int8 = seconds_per_call(row_reps, [&](int i) {
                 d.predict_x0_row(xk, i % grid_n, 40, 0, row_out.data());
                 sink += row_out[0];
               }) /
               grid_n;
  }

  std::printf("== Vector tiers (avx2 %s) ==\n", have_avx2 ? "available" : "unavailable");
  std::printf("grid forward : fp32-vec %8.3f ms (%.2fx, %s)  int8 %8.3f ms (%.2fx, maxdiff %.4f)\n",
              grid_vec * 1e3, grid_new / grid_vec, vec_identical ? "bit-identical" : "<< MISMATCH",
              grid_int8 * 1e3, grid_new / grid_int8, int8_maxdiff);
  std::printf("pixel query  : fp32-vec %8.2f us (%.2fx)  int8 %8.2f us (%.2fx)\n",
              pixel_vec * 1e6, pixel_new / pixel_vec, pixel_int8 * 1e6, pixel_new / pixel_int8);
  std::printf("row query    : fp32-vec %8.2f us/px (%.2fx vs pixel, %s)  int8 %8.2f us/px\n\n",
              row_fp32 * 1e6, pixel_new / row_fp32,
              row_identical ? "bit-identical" : "<< MISMATCH", row_int8 * 1e6);
  bit_identical = bit_identical && vec_identical && row_identical && int8_close;

  // --- Packed substrate microkernels: the bit-packed Topology (64 cells per
  // uint64_t word, docs/GRID.md) against the retained byte-per-cell reference
  // (squish::ByteTopology + diffusion::reference_*). Same workload, same RNG
  // streams; every row verifies bit-identical output before timing. Swept
  // over grid sizes so docs/GRID.md's cost model has measured numbers where
  // the per-row fixed costs matter (small grids), not just the asymptote.
  const int sub_n_max = static_cast<int>(flags.get_int("subgrid", 256));
  const int sub_reps = static_cast<int>(flags.get_int("subreps", 30));
  const int sub_k = 40;
  bool sub_identical = true;

  auto run_substrate = [&](int sub_n) {
    squish::Topology sub0 = stripes(sub_n, 3);
    {
      util::Rng jitter(seed + 9);
      sub0 = diffusion::forward_noise(sub0, schedule, 10, jitter);
    }
    const squish::ByteTopology bsub0(sub0);
    std::printf("== Packed substrate vs byte reference (grid %dx%d) ==\n", sub_n, sub_n);
    util::JsonObject substrate;
    substrate["grid"] = sub_n;

    // forward noising: word-parallel XOR-mask build vs per-cell flip. Both
    // consume one rng.bernoulli per cell in row-major order, so seeding both
    // sides identically must give bit-identical grids.
    {
      util::Rng ra(seed + 21), rb(seed + 21);
      const squish::Topology py = diffusion::forward_noise(sub0, schedule, sub_k, ra);
      const squish::ByteTopology by =
          diffusion::reference_forward_noise(bsub0, schedule, sub_k, rb);
      const bool same = py == by.packed();
      std::size_t guard = 0;
      const double byte_sec = seconds_per_call(sub_reps, [&](int i) {
        util::Rng r(seed + 100 + i);
        guard += diffusion::reference_forward_noise(bsub0, schedule, sub_k, r).popcount();
      });
      const double packed_sec = seconds_per_call(sub_reps, [&](int i) {
        util::Rng r(seed + 100 + i);
        guard += diffusion::forward_noise(sub0, schedule, sub_k, r).popcount();
      });
      substrate["forward_noise"] = substrate_row("forward_noise", byte_sec, packed_sec, same,
                                                 sub_identical);
      sink += static_cast<double>(guard & 1);
    }

    // neighbour gather: the denoisers' 17-offset feature index for every cell.
    // Packed path funnel-shifts one 64-bit plane per offset and transposes the
    // 17 planes into per-lane indices; byte path does 17 mirrored loads/cell.
    {
      util::Rng gather_rng(seed + 2);
      const squish::Topology pxk = diffusion::forward_noise(sub0, schedule, sub_k, gather_rng);
      const squish::ByteTopology bxk(pxk);
      std::vector<int> idx(static_cast<std::size_t>(sub_n));
      bool same = true;
      for (int r = 0; same && r < sub_n; ++r) {
        diffusion::TabularDenoiser::neighborhood_indices_row(pxk, r, idx.data());
        for (int c = 0; same && c < sub_n; ++c) {
          same = idx[static_cast<std::size_t>(c)] ==
                 diffusion::reference_neighborhood_index(bxk, r, c);
        }
      }
      long long guard = 0;
      const double byte_sec = seconds_per_call(sub_reps, [&](int) {
        for (int r = 0; r < sub_n; ++r) {
          for (int c = 0; c < sub_n; ++c) {
            guard += diffusion::reference_neighborhood_index(bxk, r, c);
          }
        }
      });
      const double packed_sec = seconds_per_call(sub_reps, [&](int) {
        for (int r = 0; r < sub_n; ++r) {
          diffusion::TabularDenoiser::neighborhood_indices_row(pxk, r, idx.data());
          guard += idx[0];
        }
      });
      substrate["neighbor_gather"] = substrate_row("neighbor_gather", byte_sec, packed_sec, same,
                                                   sub_identical);
      sink += static_cast<double>(guard & 1);
    }

    // DRC run scan: countr_zero hopping over masked words vs per-cell walk.
    {
      bool same = true;
      for (int r = 0; same && r < sub_n; ++r) {
        same = drc::row_runs(sub0, r, 1) == diffusion::reference_row_runs(bsub0, r, 1);
      }
      std::size_t guard = 0;
      const double byte_sec = seconds_per_call(sub_reps, [&](int) {
        for (int r = 0; r < sub_n; ++r) guard += diffusion::reference_row_runs(bsub0, r, 1).size();
      });
      const double packed_sec = seconds_per_call(sub_reps, [&](int) {
        for (int r = 0; r < sub_n; ++r) guard += drc::row_runs(sub0, r, 1).size();
      });
      substrate["row_runs"] = substrate_row("row_runs", byte_sec, packed_sec, same, sub_identical);
      sink += static_cast<double>(guard & 1);
    }
    std::printf("\n");
    return util::Json(std::move(substrate));
  };

  util::JsonArray substrate_grids;
  for (int g : {64, 128, sub_n_max}) {
    if (g == sub_n_max && (sub_n_max == 64 || sub_n_max == 128)) continue;
    substrate_grids.push_back(run_substrate(g));
  }
  bit_identical = bit_identical && sub_identical;

  // --- BatchSampler scaling: the MLP now fans out; verify bit-identity per
  // thread count and record the speedup curve.
  const diffusion::DiffusionSampler sampler(schedule, d);
  diffusion::SampleConfig sc;
  sc.rows = grid_n;
  sc.cols = grid_n;
  sc.sample_steps = 8;
  sc.polish_rounds = 1;
  const int count = static_cast<int>(flags.get_int("samples", 8));
  const util::Rng root(seed + 7000);

  std::printf("%8s | %9s | %8s | %s\n", "threads", "seconds", "speedup", "batch hash");
  std::printf("%s\n", std::string(48, '-').c_str());
  util::JsonArray rows;
  double base_sec = 0.0;
  std::uint64_t base_hash = 0;
  bool deterministic = true;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);
    const diffusion::BatchSampler batch(sampler, pool.get());
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<squish::Topology> out = batch.sample_batch(sc, count, root);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const std::uint64_t h = batch_hash(out);
    if (threads == 1) {
      base_sec = sec;
      base_hash = h;
    }
    deterministic = deterministic && h == base_hash;
    // A row asking for more workers than the machine has cores measures
    // oversubscription, not scaling — record that honestly instead of
    // letting a flat speedup_vs_1 read as a parallelization failure.
    const int hw = util::ThreadPool::hardware_threads();
    const bool starved = hw > 0 && hw < threads;
    std::printf("%8d | %9.3f | %7.2fx | %016llx%s%s\n", threads, sec, base_sec / sec,
                static_cast<unsigned long long>(h), h == base_hash ? "" : "  << MISMATCH",
                starved ? "  (thread-starved)" : "");
    util::JsonObject row;
    row["threads"] = threads;
    row["hardware_threads"] = hw;
    row["thread_starved"] = starved;
    row["seconds"] = sec;
    row["speedup_vs_1"] = base_sec / sec;
    row["bit_identical_to_1_thread"] = h == base_hash;
    rows.push_back(util::Json(std::move(row)));
  }

  util::JsonObject single;
  single["grid_legacy_ms"] = grid_legacy * 1e3;
  single["grid_new_ms"] = grid_new * 1e3;
  single["grid_speedup"] = grid_speedup;
  single["pixel_legacy_us"] = pixel_legacy * 1e6;
  single["pixel_new_us"] = pixel_new * 1e6;
  single["pixel_speedup"] = pixel_speedup;
  single["legacy_vs_new_bit_identical"] = bit_identical;
  // Vector tiers, all relative to the portable 8-wide baseline (grid_new_ms).
  single["avx2_available"] = have_avx2;
  single["grid_fp32_vec_ms"] = grid_vec * 1e3;
  single["grid_fp32_vec_speedup"] = grid_new / grid_vec;
  single["fp32_vec_bit_identical"] = vec_identical;
  single["grid_int8_ms"] = grid_int8 * 1e3;
  single["grid_int8_speedup"] = grid_new / grid_int8;
  single["int8_grid_max_abs_diff"] = int8_maxdiff;
  single["pixel_fp32_vec_us"] = pixel_vec * 1e6;
  single["pixel_int8_us"] = pixel_int8 * 1e6;
  single["row_fp32_us_per_px"] = row_fp32 * 1e6;
  single["row_int8_us_per_px"] = row_int8 * 1e6;
  single["row_query_bit_identical"] = row_identical;

  util::JsonObject report;
  report["bench"] = "denoiser_inference";
  report["workload"] = "MLP denoiser, 23->64->64->1, SiLU, grid forward + pixel query";
  report["grid"] = grid_n;
  report["seed"] = static_cast<long long>(seed);
  report["hardware_threads"] = util::ThreadPool::hardware_threads();
  report["single_thread"] = util::Json(std::move(single));
  report["packed_substrate"] = util::Json(std::move(substrate_grids));
  report["packed_substrate_all_bit_identical"] = sub_identical;
  report["batch_samples"] = count;
  report["batch_deterministic_across_thread_counts"] = deterministic;
  report["batch_rows"] = util::Json(std::move(rows));
  std::ofstream out = bench::open_output(json_path);
  out << util::Json(std::move(report)).dump(2) << "\n";
  std::printf("\nreport: %s\n", json_path.c_str());

  if (!manifest_path.empty()) {
    obs::RunManifest manifest;
    manifest.tool = "denoiser_inference";
    for (int i = 1; i < argc; ++i) manifest.args.push_back(argv[i]);
    manifest.metrics["grid_speedup"] = grid_speedup;
    manifest.metrics["pixel_speedup"] = pixel_speedup;
    std::string error;
    if (!manifest.write(manifest_path, obs::Registry::global(), &error)) {
      std::fprintf(stderr, "error: manifest: %s\n", error.c_str());
      return 2;
    }
    std::printf("[manifest] wrote %s\n", manifest_path.c_str());
  }
  return (bit_identical && deterministic) ? 0 : 1;
}
