// Ablation: design choices of the CPU sampling stack (DESIGN.md section 4 /
// substitution S2). Compares, at 128^2:
//   - cascade (coarse-to-fine) vs single-resolution sampling
//   - sequential (Gibbs-style) vs factorized within-step sampling
//   - mean-matching guidance on vs off
//   - number of visited timesteps
// Reported: legality, diversity, density gap to data, seconds per sample.
//
// A second section benches the few-step engine: the full K-step reverse
// chain against every closed-form timestep placement plus a greedily
// searched schedule, at a <= K/20 visited-step budget, and writes the
// speedup/equivalence report to BENCH_fast_sampling.json (override with
// --fast_json FILE).

#include <algorithm>
#include <chrono>
#include <cmath>

#include "bench/common.h"
#include "core/selection.h"
#include "diffusion/batch_sampler.h"
#include "diffusion/timestep_schedule.h"
#include "metrics/metrics.h"
#include "util/json.h"
#include "util/thread_pool.h"

using namespace cp;

namespace {

struct Row {
  const char* name;
  double legality_pct;
  double diversity;
  double density;
  double sec_per_sample;
};

Row run_config(const bench::Env& env, const char* name,
               const diffusion::TopologyGenerator& gen, int style, long long n,
               util::Rng& rng, util::ThreadPool* pool) {
  diffusion::SampleConfig sc;
  sc.condition = style;
  sc.sample_steps = 16;  // the CPU default; 0 would run the full K-step chain
  const diffusion::BatchSampler batch(gen, pool);
  const auto t0 = std::chrono::steady_clock::now();
  // One fork(i) stream per sample: the row is reproducible from the bench
  // seed alone and identical for any --threads value.
  const std::vector<squish::Topology> topos =
      batch.sample_batch(sc, static_cast<int>(n), rng.fork());
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() /
      static_cast<double>(n);
  std::vector<squish::Topology> legal;
  double density = 0.0;
  const geometry::Coord phys = bench::physical_for(env, 128);
  for (const auto& t : topos) {
    density += t.density();
    const auto res = env.legalizer(style).legalize(t, phys, phys);
    if (res.ok()) legal.push_back(t);
  }
  return Row{name, 100.0 * static_cast<double>(legal.size()) / static_cast<double>(n),
             metrics::diversity(legal), density / static_cast<double>(n), sec};
}

// Few-step engine study. Grid size, polish rounds and equivalence
// thresholds deliberately match tests/diffusion/fast_quality_test.cpp, so
// the bench reports against the same statistical-equivalence contract the
// test suite enforces — just with a real-data denoiser and a larger
// library.
constexpr int kFastGrid = 32;
constexpr double kFastDensityTol = 0.12;
constexpr double kFastComplexityTol = 10.0;  // mean (c_x + c_y)
constexpr double kFastDiversityTol = 1.6;    // nats

struct FastRow {
  std::string name;
  int visited = 0;  // reverse transitions = denoiser sweeps per sample
  double sec_per_sample = 0.0;
  double samples_per_sec = 0.0;
  double speedup = 1.0;  // vs the full-chain row
  double legality_pct = 0.0;
  double density = 0.0;
  double complexity = 0.0;  // mean c_x + c_y
  double diversity = 0.0;
};

FastRow run_fast(const bench::Env& env, const std::string& name,
                 const diffusion::DiffusionSampler& sampler, diffusion::ScheduleKind kind,
                 int steps, long long n) {
  diffusion::SampleConfig sc;
  sc.rows = sc.cols = kFastGrid;
  sc.condition = 0;
  sc.sample_steps = steps;
  sc.schedule_kind = kind;
  sc.polish_rounds = 1;
  std::vector<squish::Topology> lib;
  lib.reserve(static_cast<std::size_t>(n));
  const auto t0 = std::chrono::steady_clock::now();
  for (long long i = 0; i < n; ++i) {
    // The same fixed seed set for every mode: the comparison is paired.
    util::Rng rng(env.seed + 9000 + static_cast<std::uint64_t>(i));
    lib.push_back(sampler.sample(sc, rng));
  }
  FastRow r;
  r.sec_per_sample =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() /
      static_cast<double>(n);
  r.samples_per_sec = r.sec_per_sample > 0 ? 1.0 / r.sec_per_sample : 0.0;
  r.name = name;
  r.visited = static_cast<int>(sampler.make_timesteps(steps, kind).size()) - 1;
  const geometry::Coord phys = bench::physical_for(env, kFastGrid);
  int legal = 0;
  for (const auto& t : lib) {
    r.density += t.density();
    const auto [cx, cy] = t.complexity();
    r.complexity += cx + cy;
    if (env.legalizer(0).legalize(t, phys, phys).ok()) ++legal;
  }
  r.density /= static_cast<double>(n);
  r.complexity /= static_cast<double>(n);
  r.legality_pct = 100.0 * static_cast<double>(legal) / static_cast<double>(n);
  r.diversity = metrics::diversity(lib);
  return r;
}

util::Json fast_row_json(const FastRow& r) {
  util::Json j;
  j["mode"] = r.name;
  j["visited_steps"] = static_cast<long long>(r.visited);
  j["sec_per_sample"] = r.sec_per_sample;
  j["samples_per_sec"] = r.samples_per_sec;
  j["speedup_vs_full"] = r.speedup;
  j["legality_pct"] = r.legality_pct;
  j["density"] = r.density;
  j["complexity"] = r.complexity;
  j["diversity"] = r.diversity;
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Env env = bench::make_env(argc, argv, /*default_samples=*/24);
  const long long n = env.samples;
  util::Rng rng(env.seed + 6000);
  util::CliFlags flags(argc, argv);
  // --threads N fans each row's batch across a pool (output unchanged).
  const int threads = static_cast<int>(flags.get_int("threads", 1));
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);

  // Rebuild the denoisers so single-resolution variants can be constructed.
  std::vector<std::vector<squish::Topology>> fine_data, coarse_data;
  for (int s = 0; s < 2; ++s) {
    fine_data.push_back(env.chat->training_set(s).topologies);
    std::vector<squish::Topology> coarse;
    for (const auto& t : fine_data.back()) coarse.push_back(squish::downsample_majority(t, 4));
    coarse_data.push_back(std::move(coarse));
  }
  diffusion::TabularConfig tc;
  tc.conditions = 2;
  tc.draws_per_bucket = env.config.draws_per_bucket;
  const auto fine = diffusion::fit_tabular(env.chat->schedule(), tc, fine_data, env.seed + 41);
  const auto coarse =
      diffusion::fit_tabular(env.chat->schedule(), tc, coarse_data, env.seed + 42);

  std::printf("\n== Sampler ablation (128^2, %lld samples per row, style Layer-10001) ==\n\n",
              n);
  std::printf("%-34s | %8s | %7s | %7s | %8s\n", "Configuration", "Legality", "Divers.",
              "Density", "s/sample");
  std::printf("%s\n", std::string(78, '-').c_str());

  const double data_density = [&] {
    double d = 0;
    for (const auto& t : fine_data[0]) d += t.density();
    return d / static_cast<double>(fine_data[0].size());
  }();

  std::vector<Row> rows;
  {
    diffusion::CascadeSampler cascade(env.chat->schedule(), coarse, fine,
                                      diffusion::CascadeConfig{});
    rows.push_back(run_config(env, "cascade (default)", cascade, 0, n, rng, pool.get()));
  }
  {
    diffusion::CascadeConfig cc;
    cc.refine_flip = 0.05;  // stochastic fine refinement enabled
    diffusion::CascadeSampler cascade(env.chat->schedule(), coarse, fine, cc);
    rows.push_back(run_config(env, "cascade + stochastic refine", cascade, 0, n, rng, pool.get()));
  }
  {
    diffusion::CascadeConfig cc;
    cc.polish_rounds = 0;
    diffusion::CascadeSampler cascade(env.chat->schedule(), coarse, fine, cc);
    rows.push_back(run_config(env, "cascade, no MAP polish", cascade, 0, n, rng, pool.get()));
  }
  {
    diffusion::DiffusionSampler flat(env.chat->schedule(), fine, /*sequential=*/true);
    rows.push_back(run_config(env, "single-res sequential", flat, 0, n, rng, pool.get()));
  }
  {
    diffusion::DiffusionSampler flat(env.chat->schedule(), fine, /*sequential=*/false);
    rows.push_back(run_config(env, "single-res factorized", flat, 0, n, rng, pool.get()));
  }
  {
    diffusion::DiffusionSampler flat(env.chat->schedule(), fine, /*sequential=*/true);
    flat.set_guidance(false);
    rows.push_back(run_config(env, "single-res, no guidance", flat, 0, n, rng, pool.get()));
  }

  // Packed neighbour-gather before/after: the default cascade with the
  // TabularDenoiser's word-parallel plane gather (docs/GRID.md) against the
  // same denoisers forced onto the scalar per-cell fallback. The two paths
  // are bit-identical by construction, so the paired rows (same fork
  // streams) must agree on every column except s/sample; the audit below
  // checks that directly on a small batch.
  {
    diffusion::TabularDenoiser fine_scalar = fine;
    diffusion::TabularDenoiser coarse_scalar = coarse;
    fine_scalar.set_packed_gather(false);
    coarse_scalar.set_packed_gather(false);
    diffusion::CascadeSampler packed_cascade(env.chat->schedule(), coarse, fine,
                                             diffusion::CascadeConfig{});
    diffusion::CascadeSampler scalar_cascade(env.chat->schedule(), coarse_scalar, fine_scalar,
                                             diffusion::CascadeConfig{});
    util::Rng ra(env.seed + 6100), rb(env.seed + 6100);
    rows.push_back(run_config(env, "cascade, packed gather", packed_cascade, 0, n, ra,
                              pool.get()));
    rows.push_back(run_config(env, "cascade, scalar gather", scalar_cascade, 0, n, rb,
                              pool.get()));

    diffusion::SampleConfig sc;
    sc.condition = 0;
    sc.sample_steps = 16;
    const util::Rng audit_root(env.seed + 6200);
    const auto pa =
        diffusion::BatchSampler(packed_cascade, nullptr).sample_batch(sc, 4, audit_root);
    const auto pb =
        diffusion::BatchSampler(scalar_cascade, nullptr).sample_batch(sc, 4, audit_root);
    const bool gather_identical = pa == pb;
    std::printf("(packed vs scalar gather bit-identical: %s)\n", gather_identical ? "yes" : "NO");
    env.manifest.metrics["packed_gather_bit_identical"] = gather_identical;
  }

  // Topology selection (the step the paper removes for fair comparison):
  // cost of pushing legality to 100% with the default cascade.
  {
    diffusion::CascadeSampler cascade(env.chat->schedule(), coarse, fine,
                                      diffusion::CascadeConfig{});
    diffusion::SampleConfig sc;
    sc.sample_steps = 16;
    const auto t0 = std::chrono::steady_clock::now();
    const core::SelectionResult sel = core::select_legal(
        cascade, env.legalizer(0), sc, bench::physical_for(env, 128),
        bench::physical_for(env, 128), static_cast<int>(n), rng);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() /
        static_cast<double>(n);
    std::vector<squish::Topology> topos;
    for (const auto& p : sel.patterns) topos.push_back(p.topology);
    double dens = 0;
    for (const auto& t : topos) dens += t.density();
    rows.push_back(Row{"cascade + topology selection", 100.0, metrics::diversity(topos),
                       topos.empty() ? 0.0 : dens / static_cast<double>(topos.size()), sec});
    std::printf("(selection used %lld attempts for %lld kept patterns)\n", sel.attempts, n);
  }

  util::JsonArray manifest_rows;
  for (const Row& r : rows) {
    std::printf("%-34s | %7.2f%% | %7.3f | %7.3f | %8.3f\n", r.name, r.legality_pct,
                r.diversity, r.density, r.sec_per_sample);
    bench::csv_row(env, util::format("ablation_sampler,%s,%.4f,%.4f,%.4f,%.5f", r.name,
                                     r.legality_pct, r.diversity, r.density, r.sec_per_sample));
    util::JsonObject mr;
    mr["configuration"] = r.name;
    mr["legality_pct"] = r.legality_pct;
    mr["diversity"] = r.diversity;
    mr["density"] = r.density;
    mr["sec_per_sample"] = r.sec_per_sample;
    manifest_rows.push_back(util::Json(std::move(mr)));
  }
  env.manifest.metrics["rows"] = util::Json(std::move(manifest_rows));
  std::printf("\n(data density for reference: %.3f)\n", data_density);
  std::printf(
      "Expected: the cascade variants dominate single-resolution sampling on legality;\n"
      "removing guidance collapses density toward the empty pattern; skipping the MAP\n"
      "polish locks complexity to the coarse grid (diversity collapses); stochastic\n"
      "refinement buys complexity diversity at a density-accuracy and runtime cost.\n");

  // == Few-step engine: full chain vs visited-subset placements ==
  // Single-resolution sequential sampler, where the per-request budget and
  // placement are honored exactly (the cascade pins its own tuned budgets).
  {
    // Interior-level budget, well under the K/20 sweep criterion. High-noise
    // sweeps cost ~2x a low-noise sweep (the sequential pass does more work
    // where the posterior is uncertain), so placements that linger at high k
    // (uniform, quadratic) need the smaller budget to clear 10x wall-clock;
    // 24 matches the cascade's default coarse budget.
    const int budget = 24;
    diffusion::DiffusionSampler flat(env.chat->schedule(), fine, /*sequential=*/true);
    // Register a searched list so the kSearched row benches its real path
    // instead of the noise-uniform fallback. Held-out probes are small
    // windows of the training clips — the search is a setup cost, not part
    // of the per-sample timing.
    {
      std::vector<std::vector<squish::Topology>> held_out(2);
      for (int s = 0; s < 2; ++s) {
        for (std::size_t i = 0; i < fine_data[static_cast<std::size_t>(s)].size() && i < 2; ++i) {
          held_out[static_cast<std::size_t>(s)].push_back(
              fine_data[static_cast<std::size_t>(s)][i].window(0, 0, kFastGrid, kFastGrid));
        }
      }
      diffusion::SearchConfig scfg;
      scfg.budget = budget;
      scfg.candidate_pool = 96;
      scfg.max_per_class = 1;
      scfg.probes = 1;
      flat.set_searched_timesteps(
          diffusion::search_timesteps(env.chat->schedule(), fine, held_out, scfg).timesteps);
    }

    const FastRow full = run_fast(env, "full-chain", flat,
                                  diffusion::ScheduleKind::kNoiseUniform, /*steps=*/0, n);
    std::vector<FastRow> fast_rows;
    for (diffusion::ScheduleKind kind :
         {diffusion::ScheduleKind::kNoiseUniform, diffusion::ScheduleKind::kUniformStride,
          diffusion::ScheduleKind::kQuadratic, diffusion::ScheduleKind::kSearched}) {
      FastRow r = run_fast(env, std::string("fast-") + diffusion::to_string(kind), flat, kind,
                           budget, n);
      r.speedup = r.sec_per_sample > 0 ? full.sec_per_sample / r.sec_per_sample : 0.0;
      fast_rows.push_back(std::move(r));
    }

    std::printf("\n== Few-step sampling (%d^2, %lld samples per mode, budget %d) ==\n\n",
                kFastGrid, n, budget);
    std::printf("%-22s | %7s | %8s | %7s | %7s | %7s | %7s | %8s\n", "Mode", "Visited",
                "s/sample", "Speedup", "Density", "Cmplx", "Divers.", "Legality");
    std::printf("%s\n", std::string(94, '-').c_str());
    const auto print_fast = [&](const FastRow& r) {
      std::printf("%-22s | %7d | %8.4f | %6.1fx | %7.3f | %7.2f | %7.3f | %7.2f%%\n",
                  r.name.c_str(), r.visited, r.sec_per_sample, r.speedup, r.density,
                  r.complexity, r.diversity, r.legality_pct);
      bench::csv_row(env, util::format("ablation_sampler_fast,%s,%d,%.5f,%.2f,%.4f,%.3f,%.4f",
                                       r.name.c_str(), r.visited, r.sec_per_sample, r.speedup,
                                       r.density, r.complexity, r.diversity));
    };
    print_fast(full);
    double min_speedup = 0.0;
    bool all_within = true;
    util::JsonArray mode_json;
    for (const FastRow& r : fast_rows) {
      print_fast(r);
      const double dd = std::abs(r.density - full.density);
      const double dc = std::abs(r.complexity - full.complexity);
      const double dv = std::abs(r.diversity - full.diversity);
      const bool within =
          dd <= kFastDensityTol && dc <= kFastComplexityTol && dv <= kFastDiversityTol;
      all_within = all_within && within;
      min_speedup = min_speedup == 0.0 ? r.speedup : std::min(min_speedup, r.speedup);
      util::Json j = fast_row_json(r);
      j["delta_density"] = dd;
      j["delta_complexity"] = dc;
      j["delta_diversity"] = dv;
      j["within_thresholds"] = within;
      mode_json.push_back(std::move(j));
    }
    std::printf("\nmin fast-mode speedup: %.1fx (target >= 10x); all modes within the\n"
                "fast_quality_test equivalence thresholds: %s\n",
                min_speedup, all_within ? "yes" : "NO");

    util::Json report;
    report["bench"] = std::string("ablation_sampler/fast_sampling");
    report["grid"] = static_cast<long long>(kFastGrid);
    report["samples_per_mode"] = n;
    report["seed"] = static_cast<long long>(env.seed);
    report["chain_steps"] = static_cast<long long>(env.chat->schedule().steps());
    report["budget"] = static_cast<long long>(budget);
    util::Json thresholds;
    thresholds["density"] = kFastDensityTol;
    thresholds["complexity"] = kFastComplexityTol;
    thresholds["diversity"] = kFastDiversityTol;
    report["thresholds"] = std::move(thresholds);
    report["full_chain"] = fast_row_json(full);
    report["modes"] = util::Json(std::move(mode_json));
    report["min_speedup"] = min_speedup;
    report["target_speedup"] = 10.0;
    report["meets_target"] = min_speedup >= 10.0 && all_within;
    const std::string fast_json_path =
        bench::out_path(env, flags.get("fast_json", "BENCH_fast_sampling.json"));
    std::ofstream out = bench::open_output(fast_json_path);
    out << report.dump(2) << "\n";
    std::printf("[bench] wrote %s\n", fast_json_path.c_str());
    env.manifest.metrics["fast_min_speedup"] = min_speedup;
    env.manifest.metrics["fast_within_thresholds"] = all_within;
  }

  bench::write_manifest(env);
  return 0;
}
