// Ablation: design choices of the CPU sampling stack (DESIGN.md section 4 /
// substitution S2). Compares, at 128^2:
//   - cascade (coarse-to-fine) vs single-resolution sampling
//   - sequential (Gibbs-style) vs factorized within-step sampling
//   - mean-matching guidance on vs off
//   - number of visited timesteps
// Reported: legality, diversity, density gap to data, seconds per sample.

#include <chrono>

#include "bench/common.h"
#include "core/selection.h"
#include "diffusion/batch_sampler.h"
#include "metrics/metrics.h"
#include "util/thread_pool.h"

using namespace cp;

namespace {

struct Row {
  const char* name;
  double legality_pct;
  double diversity;
  double density;
  double sec_per_sample;
};

Row run_config(const bench::Env& env, const char* name,
               const diffusion::TopologyGenerator& gen, int style, long long n,
               util::Rng& rng, util::ThreadPool* pool) {
  diffusion::SampleConfig sc;
  sc.condition = style;
  sc.sample_steps = 16;  // the CPU default; 0 would run the full K-step chain
  const diffusion::BatchSampler batch(gen, pool);
  const auto t0 = std::chrono::steady_clock::now();
  // One fork(i) stream per sample: the row is reproducible from the bench
  // seed alone and identical for any --threads value.
  const std::vector<squish::Topology> topos =
      batch.sample_batch(sc, static_cast<int>(n), rng.fork());
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() /
      static_cast<double>(n);
  std::vector<squish::Topology> legal;
  double density = 0.0;
  const geometry::Coord phys = bench::physical_for(env, 128);
  for (const auto& t : topos) {
    density += t.density();
    const auto res = env.legalizer(style).legalize(t, phys, phys);
    if (res.ok()) legal.push_back(t);
  }
  return Row{name, 100.0 * static_cast<double>(legal.size()) / static_cast<double>(n),
             metrics::diversity(legal), density / static_cast<double>(n), sec};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Env env = bench::make_env(argc, argv, /*default_samples=*/24);
  const long long n = env.samples;
  util::Rng rng(env.seed + 6000);
  // --threads N fans each row's batch across a pool (output unchanged).
  const int threads = static_cast<int>(util::CliFlags(argc, argv).get_int("threads", 1));
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);

  // Rebuild the denoisers so single-resolution variants can be constructed.
  std::vector<std::vector<squish::Topology>> fine_data, coarse_data;
  for (int s = 0; s < 2; ++s) {
    fine_data.push_back(env.chat->training_set(s).topologies);
    std::vector<squish::Topology> coarse;
    for (const auto& t : fine_data.back()) coarse.push_back(squish::downsample_majority(t, 4));
    coarse_data.push_back(std::move(coarse));
  }
  diffusion::TabularConfig tc;
  tc.conditions = 2;
  tc.draws_per_bucket = env.config.draws_per_bucket;
  const auto fine = diffusion::fit_tabular(env.chat->schedule(), tc, fine_data, env.seed + 41);
  const auto coarse =
      diffusion::fit_tabular(env.chat->schedule(), tc, coarse_data, env.seed + 42);

  std::printf("\n== Sampler ablation (128^2, %lld samples per row, style Layer-10001) ==\n\n",
              n);
  std::printf("%-34s | %8s | %7s | %7s | %8s\n", "Configuration", "Legality", "Divers.",
              "Density", "s/sample");
  std::printf("%s\n", std::string(78, '-').c_str());

  const double data_density = [&] {
    double d = 0;
    for (const auto& t : fine_data[0]) d += t.density();
    return d / static_cast<double>(fine_data[0].size());
  }();

  std::vector<Row> rows;
  {
    diffusion::CascadeSampler cascade(env.chat->schedule(), coarse, fine,
                                      diffusion::CascadeConfig{});
    rows.push_back(run_config(env, "cascade (default)", cascade, 0, n, rng, pool.get()));
  }
  {
    diffusion::CascadeConfig cc;
    cc.refine_flip = 0.05;  // stochastic fine refinement enabled
    diffusion::CascadeSampler cascade(env.chat->schedule(), coarse, fine, cc);
    rows.push_back(run_config(env, "cascade + stochastic refine", cascade, 0, n, rng, pool.get()));
  }
  {
    diffusion::CascadeConfig cc;
    cc.polish_rounds = 0;
    diffusion::CascadeSampler cascade(env.chat->schedule(), coarse, fine, cc);
    rows.push_back(run_config(env, "cascade, no MAP polish", cascade, 0, n, rng, pool.get()));
  }
  {
    diffusion::DiffusionSampler flat(env.chat->schedule(), fine, /*sequential=*/true);
    rows.push_back(run_config(env, "single-res sequential", flat, 0, n, rng, pool.get()));
  }
  {
    diffusion::DiffusionSampler flat(env.chat->schedule(), fine, /*sequential=*/false);
    rows.push_back(run_config(env, "single-res factorized", flat, 0, n, rng, pool.get()));
  }
  {
    diffusion::DiffusionSampler flat(env.chat->schedule(), fine, /*sequential=*/true);
    flat.set_guidance(false);
    rows.push_back(run_config(env, "single-res, no guidance", flat, 0, n, rng, pool.get()));
  }

  // Topology selection (the step the paper removes for fair comparison):
  // cost of pushing legality to 100% with the default cascade.
  {
    diffusion::CascadeSampler cascade(env.chat->schedule(), coarse, fine,
                                      diffusion::CascadeConfig{});
    diffusion::SampleConfig sc;
    sc.sample_steps = 16;
    const auto t0 = std::chrono::steady_clock::now();
    const core::SelectionResult sel = core::select_legal(
        cascade, env.legalizer(0), sc, bench::physical_for(env, 128),
        bench::physical_for(env, 128), static_cast<int>(n), rng);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() /
        static_cast<double>(n);
    std::vector<squish::Topology> topos;
    for (const auto& p : sel.patterns) topos.push_back(p.topology);
    double dens = 0;
    for (const auto& t : topos) dens += t.density();
    rows.push_back(Row{"cascade + topology selection", 100.0, metrics::diversity(topos),
                       topos.empty() ? 0.0 : dens / static_cast<double>(topos.size()), sec});
    std::printf("(selection used %lld attempts for %lld kept patterns)\n", sel.attempts, n);
  }

  util::JsonArray manifest_rows;
  for (const Row& r : rows) {
    std::printf("%-34s | %7.2f%% | %7.3f | %7.3f | %8.3f\n", r.name, r.legality_pct,
                r.diversity, r.density, r.sec_per_sample);
    bench::csv_row(env, util::format("ablation_sampler,%s,%.4f,%.4f,%.4f,%.5f", r.name,
                                     r.legality_pct, r.diversity, r.density, r.sec_per_sample));
    util::JsonObject mr;
    mr["configuration"] = r.name;
    mr["legality_pct"] = r.legality_pct;
    mr["diversity"] = r.diversity;
    mr["density"] = r.density;
    mr["sec_per_sample"] = r.sec_per_sample;
    manifest_rows.push_back(util::Json(std::move(mr)));
  }
  env.manifest.metrics["rows"] = util::Json(std::move(manifest_rows));
  std::printf("\n(data density for reference: %.3f)\n", data_density);
  std::printf(
      "Expected: the cascade variants dominate single-resolution sampling on legality;\n"
      "removing guidance collapses density toward the empty pattern; skipping the MAP\n"
      "polish locks complexity to the coarse grid (diversity collapses); stochastic\n"
      "refinement buys complexity diversity at a density-accuracy and runtime cost.\n");
  bench::write_manifest(env);
  return 0;
}
