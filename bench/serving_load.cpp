// Serving-layer load benchmark: replays synthetic request traces through
// serve::Server and reports client-observed latency percentiles
// (p50/p95/p99) and throughput for two scenarios:
//
//   * cold        — every request has distinct content; the result cache
//                   cannot help and every request pays a diffusion call.
//   * duplicate_heavy — the same request volume over a handful of distinct
//                   contents, the shape of an agent session re-issuing its
//                   defaults; almost everything is a cache hit or an
//                   in-batch dedup, so throughput must be a multiple of the
//                   cold scenario's (the cache-path speedup the JSON
//                   records).
//
//   * fast_mode    — the few-step engine end-to-end through the serving
//                   layer: the same distinct-content trace once with the
//                   full K-step reverse chain and once with a few-step
//                   request (`schedule` + small `steps`), served over the
//                   single-resolution sampler (the cascade pins its own
//                   tuned step budgets, so it would mask the knob). The
//                   JSON records the fast-mode throughput multiple.
//
//   * multiproc    — the fault-isolated multi-process tier end-to-end: a
//                   spawned `chatpattern_serve --listen` front-end with N
//                   forked workers, driven over TCP by the pipelined replay
//                   client at 10k+ concurrent requests (duplicate-heavy, so
//                   the per-shard caches carry the volume the way a real
//                   agent session would). Requires --serve_bin pointing at
//                   the chatpattern_serve binary; skipped otherwise.
//
// Results are written to BENCH_serving.json (override with --json FILE).
// Extra flags on top of bench/common.h: --json FILE, --requests N,
// --distinct K, --workers N, --rows N, --legalize 0|1, --fast_requests N,
// --fast_steps N, --fast_schedule KIND, --serve_bin PATH, --mp_requests N,
// --mp_distinct K, --mp_procs N, --mp_connections N.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/net.h"
#include "util/subprocess.h"

using namespace cp;

namespace {

struct ScenarioResult {
  double wall_s = 0;
  double throughput_rps = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  long long cache_hits = 0, deduped = 0, ok = 0;
  std::uint64_t combined_hash = 0;
};

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

ScenarioResult run_scenario(const bench::Env& env, const serve::ServerConfig& config,
                            const std::vector<serve::GenerationRequest>& trace,
                            const diffusion::TopologyGenerator* generator = nullptr) {
  const std::vector<const legalize::Legalizer*> legalizers = {&env.chat->legalizer(0),
                                                              &env.chat->legalizer(1)};
  serve::Server server(generator ? *generator : env.chat->sampler(), legalizers, config);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<serve::GenerationResult>> futures;
  futures.reserve(trace.size());
  for (const serve::GenerationRequest& r : trace) {
    serve::Server::Submitted s = server.submit(r);
    futures.push_back(std::move(s.result));
  }
  ScenarioResult out;
  std::vector<double> latencies;
  latencies.reserve(futures.size());
  std::uint64_t combined = 1469598103934665603ULL;
  for (auto& f : futures) {
    const serve::GenerationResult r = f.get();
    if (r.ok()) ++out.ok;
    if (r.cache_hit) ++out.cache_hits;
    if (r.deduped) ++out.deduped;
    latencies.push_back(r.total_ms);
    combined ^= r.library_hash();
    combined *= 1099511628211ULL;
  }
  const auto end = std::chrono::steady_clock::now();
  server.shutdown();

  out.wall_s = std::chrono::duration<double>(end - start).count();
  out.throughput_rps =
      out.wall_s > 0 ? static_cast<double>(trace.size()) / out.wall_s : 0;
  std::sort(latencies.begin(), latencies.end());
  out.p50_ms = percentile(latencies, 0.50);
  out.p95_ms = percentile(latencies, 0.95);
  out.p99_ms = percentile(latencies, 0.99);
  out.combined_hash = combined;
  return out;
}

util::Json to_json(const ScenarioResult& r, std::size_t requests) {
  util::Json j;
  j["requests"] = static_cast<long long>(requests);
  j["ok"] = r.ok;
  j["cache_hits"] = r.cache_hits;
  j["deduped"] = r.deduped;
  j["wall_s"] = r.wall_s;
  j["throughput_rps"] = r.throughput_rps;
  j["p50_ms"] = r.p50_ms;
  j["p95_ms"] = r.p95_ms;
  j["p99_ms"] = r.p99_ms;
  j["combined_hash"] = util::format("%016llx", static_cast<unsigned long long>(r.combined_hash));
  return j;
}

struct MultiprocResult {
  bool ran = false;
  std::string skip_reason;
  long long answered = 0, ok = 0, degraded = 0, cache_hits = 0;
  double wall_s = 0, throughput_rps = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  std::uint64_t combined_hash = 0;
};

/// Spawn `serve_bin --listen`, wait for every worker to report ready, drive
/// the trace through the pipelined TCP replay client, then shut the tier
/// down cleanly. All-or-nothing: any setup failure records a skip reason
/// instead of failing the bench.
MultiprocResult run_multiproc(const std::string& serve_bin, int procs, int train,
                              const std::vector<serve::GenerationRequest>& trace,
                              int connections) {
  namespace fs = std::filesystem;
  MultiprocResult out;
  const fs::path dir =
      fs::temp_directory_path() / ("cp_bench_mp_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string port_file = (dir / "port.txt").string();
  const std::string state_file = (dir / "state.json").string();

  std::string spawn_error;
  const pid_t server = util::spawn_process(
      {serve_bin, "--listen", "--procs", std::to_string(procs), "--train",
       std::to_string(train), "--port-file", port_file, "--state-file", state_file,
       "--queue", "16384"},
      &spawn_error);
  if (server <= 0) {
    out.skip_reason = "spawn failed: " + spawn_error;
    return out;
  }

  // Wait for the state file to report every worker alive (worker startup
  // includes training the backend, so the budget is generous).
  int port = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(300);
  while (std::chrono::steady_clock::now() < deadline) {
    util::ExitStatus st;
    if (util::try_wait(server, &st)) {
      out.skip_reason = "server exited during startup: " + st.describe();
      return out;
    }
    std::ifstream in(state_file);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      try {
        const util::Json state = util::Json::parse(ss.str());
        if (state.get_int("alive", 0) == procs) {
          port = static_cast<int>(state.get_int("port", 0));
          break;
        }
      } catch (const std::exception&) {  // partial write; retry
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (port == 0) {
    out.skip_reason = "workers never became ready";
    util::kill_process(server, SIGKILL);
    util::wait_process(server);
    return out;
  }

  std::vector<std::string> lines;
  lines.reserve(trace.size());
  for (const serve::GenerationRequest& r : trace) lines.push_back(r.to_json().dump());

  serve::ReplayClientOptions options;
  options.port = port;
  options.connections = connections;
  const auto start = std::chrono::steady_clock::now();
  const serve::ReplayReport report = serve::replay_over_tcp(lines, options);
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  // Graceful shutdown: one control line, then reap.
  try {
    util::net::Socket ctl = util::net::connect_tcp("127.0.0.1", port, 2000);
    util::net::send_all(ctl.fd(), "{\"cmd\":\"shutdown\"}\n", 2000);
    std::string reply;
    util::net::LineReader(ctl.fd()).read_line(&reply, 5000);
  } catch (const std::exception&) {
    util::kill_process(server, SIGKILL);
  }
  util::wait_process(server);
  fs::remove_all(dir);

  if (!report.ok) {
    out.skip_reason = "replay failed: " + report.error;
    return out;
  }
  out.ran = true;
  out.answered = report.answered;
  out.combined_hash = report.combined_hash;
  std::vector<double> latencies;
  latencies.reserve(report.outcomes.size());
  for (const serve::ReplayOutcome& o : report.outcomes) {
    if (!o.answered) continue;
    if (o.status == "ok") ++out.ok;
    if (o.degraded) ++out.degraded;
    if (o.cache_hit) ++out.cache_hits;
    latencies.push_back(o.latency_ms);
  }
  std::sort(latencies.begin(), latencies.end());
  out.p50_ms = percentile(latencies, 0.50);
  out.p95_ms = percentile(latencies, 0.95);
  out.p99_ms = percentile(latencies, 0.99);
  out.throughput_rps =
      out.wall_s > 0 ? static_cast<double>(report.answered) / out.wall_s : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Env env = bench::make_env(argc, argv, /*default_samples=*/0);
  util::CliFlags flags(argc, argv);
  const std::string json_path = bench::out_path(env, flags.get("json", "BENCH_serving.json"));
  const long long requests = flags.get_int("requests", 64);
  const long long distinct = std::max<long long>(1, flags.get_int("distinct", 8));
  const int rows = static_cast<int>(flags.get_int("rows", 32));
  const bool legalize = flags.get_int("legalize", 1) != 0;

  serve::ServerConfig config;
  config.workers = static_cast<int>(flags.get_int("workers", 4));
  config.queue_capacity = static_cast<std::size_t>(requests) + 1;  // admission never blocks
  config.batch.max_batch_requests = 8;

  auto make_request = [&](long long i, std::uint64_t seed) {
    serve::GenerationRequest r;
    r.id = "load-" + std::to_string(i);
    r.style = (seed % 2 == 0) ? "Layer-10001" : "Layer-10003";
    r.rows = r.cols = rows;
    r.sample_steps = 6;
    r.polish_rounds = 1;
    r.width_nm = r.height_nm = 2048;
    r.seed = seed;
    r.legalize = legalize;
    return r;
  };

  // Cold: every request distinct -> every request pays a diffusion call.
  std::vector<serve::GenerationRequest> cold_trace;
  for (long long i = 0; i < requests; ++i) {
    cold_trace.push_back(make_request(i, static_cast<std::uint64_t>(1000 + i)));
  }
  // Duplicate-heavy: the same volume over `distinct` contents.
  std::vector<serve::GenerationRequest> dup_trace;
  for (long long i = 0; i < requests; ++i) {
    dup_trace.push_back(make_request(i, static_cast<std::uint64_t>(1000 + i % distinct)));
  }

  std::printf("[bench] serving_load: %lld requests, %d workers, %dx%d, legalize=%d\n",
              requests, config.workers, rows, rows, legalize ? 1 : 0);
  const ScenarioResult cold = run_scenario(env, config, cold_trace);
  std::printf("  cold:            %7.1f req/s  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms\n",
              cold.throughput_rps, cold.p50_ms, cold.p95_ms, cold.p99_ms);
  const ScenarioResult dup = run_scenario(env, config, dup_trace);
  std::printf("  duplicate_heavy: %7.1f req/s  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms"
              "  (cache hits %lld, deduped %lld)\n",
              dup.throughput_rps, dup.p50_ms, dup.p95_ms, dup.p99_ms, dup.cache_hits,
              dup.deduped);
  const double speedup = cold.throughput_rps > 0 ? dup.throughput_rps / cold.throughput_rps : 0;
  std::printf("  cache-path speedup: %.2fx\n", speedup);

  // Fast-mode: few-step requests end-to-end. Small distinct-content traces
  // (the full chain is ~20x the work per request), identical seeds in both,
  // served over the single-resolution sampler where the per-request
  // `steps`/`schedule` fields are honored exactly.
  const long long fast_requests = std::max<long long>(1, flags.get_int("fast_requests", 12));
  const int fast_steps = static_cast<int>(flags.get_int("fast_steps", 24));
  const std::string fast_schedule = flags.get("fast_schedule", "quadratic");
  const int chain_steps = env.chat->schedule().steps();
  std::vector<serve::GenerationRequest> full_trace, fast_trace;
  for (long long i = 0; i < fast_requests; ++i) {
    serve::GenerationRequest r = make_request(i, static_cast<std::uint64_t>(5000 + i));
    r.id = "full-" + std::to_string(i);
    r.sample_steps = chain_steps;  // count >= K visits every level: full chain
    full_trace.push_back(r);
    r.id = "fast-" + std::to_string(i);
    r.sample_steps = fast_steps;
    r.schedule = fast_schedule;
    fast_trace.push_back(std::move(r));
  }
  const diffusion::TopologyGenerator& flat = env.chat->fine_sampler();
  const ScenarioResult full = run_scenario(env, config, full_trace, &flat);
  std::printf("  full_chain:      %7.1f req/s  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms"
              "  (%lld requests, %d steps)\n",
              full.throughput_rps, full.p50_ms, full.p95_ms, full.p99_ms, fast_requests,
              chain_steps);
  const ScenarioResult fast = run_scenario(env, config, fast_trace, &flat);
  std::printf("  fast_mode:       %7.1f req/s  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms"
              "  (schedule %s, %d steps)\n",
              fast.throughput_rps, fast.p50_ms, fast.p95_ms, fast.p99_ms,
              fast_schedule.c_str(), fast_steps);
  const double fast_speedup =
      full.throughput_rps > 0 ? fast.throughput_rps / full.throughput_rps : 0;
  std::printf("  fast-mode speedup: %.2fx\n", fast_speedup);

  // Multi-process tier at 10k+ concurrent requests (opt-in via --serve_bin).
  const std::string serve_bin = flags.get("serve_bin", "");
  const long long mp_requests = flags.get_int("mp_requests", 10000);
  const long long mp_distinct = std::max<long long>(1, flags.get_int("mp_distinct", 64));
  const int mp_procs = static_cast<int>(flags.get_int("mp_procs", 2));
  const int mp_connections = static_cast<int>(flags.get_int("mp_connections", 8));
  MultiprocResult mp;
  if (serve_bin.empty()) {
    mp.skip_reason = "no --serve_bin given";
  } else {
    std::vector<serve::GenerationRequest> mp_trace;
    mp_trace.reserve(static_cast<std::size_t>(mp_requests));
    for (long long i = 0; i < mp_requests; ++i) {
      serve::GenerationRequest r =
          make_request(i, static_cast<std::uint64_t>(9000 + i % mp_distinct));
      r.id = "mp-" + std::to_string(i);
      mp_trace.push_back(std::move(r));
    }
    std::printf("[bench] multiproc: %lld requests over %d worker process(es), "
                "%d connection(s)...\n",
                mp_requests, mp_procs, mp_connections);
    mp = run_multiproc(serve_bin, mp_procs, env.config.train_clips_per_class, mp_trace,
                       mp_connections);
    if (mp.ran) {
      std::printf("  multiproc:       %7.1f req/s  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms"
                  "  (%lld answered, %lld cache hits, %lld degraded)\n",
                  mp.throughput_rps, mp.p50_ms, mp.p95_ms, mp.p99_ms, mp.answered,
                  mp.cache_hits, mp.degraded);
    } else {
      std::printf("  multiproc: skipped (%s)\n", mp.skip_reason.c_str());
    }
  }

  util::Json report;
  report["bench"] = std::string("serving_load");
  report["workers"] = static_cast<long long>(config.workers);
  report["rows"] = static_cast<long long>(rows);
  report["legalize"] = legalize;
  report["distinct"] = distinct;
  report["hardware_threads"] = static_cast<long long>(util::ThreadPool::hardware_threads());
  report["train_clips_per_class"] = static_cast<long long>(env.config.train_clips_per_class);
  report["cold"] = to_json(cold, cold_trace.size());
  report["duplicate_heavy"] = to_json(dup, dup_trace.size());
  report["cache_speedup"] = speedup;
  util::Json fast_mode;
  fast_mode["steps"] = static_cast<long long>(fast_steps);
  fast_mode["schedule"] = fast_schedule;
  fast_mode["chain_steps"] = static_cast<long long>(chain_steps);
  fast_mode["full_chain"] = to_json(full, full_trace.size());
  fast_mode["fast"] = to_json(fast, fast_trace.size());
  fast_mode["speedup"] = fast_speedup;
  report["fast_mode"] = std::move(fast_mode);
  util::Json multiproc;
  multiproc["ran"] = mp.ran;
  if (mp.ran) {
    multiproc["procs"] = static_cast<long long>(mp_procs);
    multiproc["connections"] = static_cast<long long>(mp_connections);
    multiproc["requests"] = mp_requests;
    multiproc["distinct"] = mp_distinct;
    multiproc["answered"] = mp.answered;
    multiproc["ok"] = mp.ok;
    multiproc["cache_hits"] = mp.cache_hits;
    multiproc["degraded"] = mp.degraded;
    multiproc["wall_s"] = mp.wall_s;
    multiproc["throughput_rps"] = mp.throughput_rps;
    multiproc["p50_ms"] = mp.p50_ms;
    multiproc["p95_ms"] = mp.p95_ms;
    multiproc["p99_ms"] = mp.p99_ms;
    multiproc["combined_hash"] =
        util::format("%016llx", static_cast<unsigned long long>(mp.combined_hash));
  } else {
    multiproc["skip_reason"] = mp.skip_reason;
  }
  report["multiproc"] = std::move(multiproc);
  std::ofstream out = bench::open_output(json_path);
  out << report.dump(2) << "\n";
  std::printf("[bench] wrote %s\n", json_path.c_str());

  env.manifest.metrics["cold_rps"] = cold.throughput_rps;
  env.manifest.metrics["dup_rps"] = dup.throughput_rps;
  env.manifest.metrics["cache_speedup"] = speedup;
  env.manifest.metrics["fast_mode_speedup"] = fast_speedup;
  if (mp.ran) {
    env.manifest.metrics["multiproc_rps"] = mp.throughput_rps;
    env.manifest.metrics["multiproc_p99_ms"] = mp.p99_ms;
  }
  bench::write_manifest(env);
  return 0;
}
