// Quickstart: the three-line ChatPattern experience — construct the
// framework, describe what you need in plain language, collect a legal
// pattern library.
//
//   build/examples/quickstart [--seed N]

#include <cstdio>

#include "core/chatpattern.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  cp::util::CliFlags flags(argc, argv);

  // 1. Build and train the framework (synthetic maps, conditional diffusion
  //    backend, per-style legalizers, agent tools). ~15 s on one core.
  cp::core::ChatPatternConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.train_clips_per_class = static_cast<int>(flags.get_int("train", 96));
  std::printf("training the ChatPattern backend...\n");
  cp::core::ChatPattern chat(config);

  // 2. Ask for what you need, in natural language.
  const std::string request =
      "Please generate 6 patterns of 128x128 in Layer-10001 style with seed 5. "
      "Then create 4 patterns of 256x256 in Layer-10003 style using out-painting with seed 6.";
  std::printf("\nrequest: %s\n\n", request.c_str());
  cp::agent::SessionReport report = chat.customize(request);
  std::printf("%s\n", report.transcript.c_str());

  // 3. Collect the libraries and inspect them.
  for (const auto& subtask : report.subtasks) {
    const cp::core::PatternLibrary lib = chat.library_of(subtask);
    if (lib.empty()) continue;
    const int style = cp::dataset::style_index(lib.style());
    const auto legality = lib.legality(chat.legalizer(style).rules());
    std::printf("library '%s': %zu patterns, legality %d/%d, diversity %.3f\n",
                lib.style().c_str(), lib.size(), legality.legal, legality.total,
                lib.diversity());
    const std::string dir = "quickstart_" + lib.style();
    lib.export_pbm(dir);
    std::printf("  exported to %s/ (PBM images + manifest)\n", dir.c_str());
  }
  return 0;
}
