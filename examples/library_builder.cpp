// Scenario: building a DFM training library (the paper's motivating use
// case — e.g. hotspot-detector training data). A downstream ML team needs a
// large mixed-style library with per-style counts, a forbidden-drop policy
// for the sparse layer, and everything verified DRC-clean before export.
//
//   build/examples/library_builder [--count N] [--seed S]

#include <cstdio>

#include "core/chatpattern.h"
#include "metrics/metrics.h"
#include "util/cli.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  cp::util::CliFlags flags(argc, argv);
  const long long count = flags.get_int("count", 8);

  cp::core::ChatPatternConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2));
  cp::core::ChatPattern chat(config);

  // The whole specification is one natural-language request; note the
  // per-sub-task policies (drop policy, method) the parser picks up.
  const std::string request = cp::util::format(
      "Generate %lld patterns of 128x128 in Layer-10001 style with seed 11. "
      "Then generate %lld patterns of 128x128 in Layer-10003 style with seed 12, do not drop "
      "any. "
      "Also create %lld patterns of 256x256 in Layer-10003 style using in-painting with seed "
      "13.",
      count, count, count / 2 + 1);
  cp::agent::SessionReport report = chat.customize(request);

  std::printf("%s\n", report.transcript.c_str());
  std::printf("=== library summary ===\n");
  long long total = 0;
  for (const auto& subtask : report.subtasks) {
    const cp::core::PatternLibrary lib = chat.library_of(subtask);
    const int style = cp::dataset::style_index(lib.style());
    if (style < 0) continue;
    const auto legality = lib.legality(chat.legalizer(style).rules());
    std::printf("%-12s %4dx%-4d: %3zu patterns, re-checked legality %d/%d, H=%.3f\n",
                lib.style().c_str(), subtask.requirement.topo_rows,
                subtask.requirement.topo_cols, lib.size(), legality.legal, legality.total,
                lib.diversity());
    total += static_cast<long long>(lib.size());
    // A training library must be 100% DRC-clean: assert it here.
    if (legality.legal != legality.total) {
      std::printf("!! library contains illegal patterns — refusing to export\n");
      return 1;
    }
    lib.export_pbm("dfm_library/" + lib.style() +
                   cp::util::format("_%d", subtask.requirement.topo_rows));
  }
  std::printf("exported %lld DRC-clean patterns under dfm_library/\n", total);

  // The run also left experience behind: future requests at these sizes will
  // pick the statistically better extension method automatically.
  std::printf("\naccumulated experience: %s\n", chat.experience().to_json().dump().c_str());
  return 0;
}
