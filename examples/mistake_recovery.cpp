// Scenario: Section 4.2's "Unseen Mistake-processing" as a runnable demo.
// A topology with a pathological region is planted in the pattern store;
// legalization fails twice; the agent reads the failure log, in-paints the
// reported region with the same style and retries — the exact transcript
// shape the paper shows.
//
//   build/examples/mistake_recovery [--seed S]

#include <cstdio>

#include "core/chatpattern.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  cp::util::CliFlags flags(argc, argv);
  cp::core::ChatPatternConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 4));
  cp::core::ChatPattern chat(config);

  // Sample a healthy Layer-10001 topology, then vandalise a region with a
  // checkerboard — locally far denser than any legal layout.
  cp::util::Rng rng(config.seed + 7);
  cp::diffusion::SampleConfig sc;
  sc.condition = 0;
  cp::squish::Topology topo = chat.sampler().sample(sc, rng);
  for (int r = 40; r < 80; ++r) {
    for (int c = 40; c < 80; ++c) topo.set(r, c, (r + c) % 2);
  }
  const std::string id = chat.store().put_topology(topo);
  std::printf("planted defective topology %s (checkerboard in rows/cols 40..80)\n\n",
              id.c_str());

  const long long phys = 2048;
  cp::util::Json legalize;
  legalize["topology_id"] = id;
  legalize["width_nm"] = phys;
  legalize["height_nm"] = phys;
  legalize["style"] = "Layer-10001";

  std::string current = id;
  for (int attempt = 1; attempt <= 4; ++attempt) {
    cp::util::Json args = legalize;
    args["topology_id"] = current;
    const cp::agent::ToolResult res = chat.tools().call("topology_legalization", args);
    if (res.ok) {
      std::printf("Attempt %d: legalization succeeded -> %s\n", attempt,
                  res.payload.get_string("pattern_id", "").c_str());
      return 0;
    }
    std::printf("Attempt %d: %s\n", attempt, res.payload.get_string("log", "").c_str());
    const cp::util::Json& region = res.payload.at("region");

    // The paper's transcript, verbatim in shape:
    std::printf(
        "\nThought: Since legalization has failed %s in the same region, I will try to "
        "in-paint that specific area with the same style and then attempt legalization "
        "again.\n",
        attempt >= 2 ? "twice" : "once");
    cp::util::Json mod;
    mod["topology_id"] = current;
    mod["upper"] = region.get_int("upper", 0);
    mod["left"] = region.get_int("left", 0);
    mod["bottom"] = region.get_int("bottom", 128);
    mod["right"] = region.get_int("right", 128);
    mod["style"] = "Layer-10001";
    mod["seed"] = 42 + attempt;
    std::printf("Action: Topology_Modification\nAction Input: %s\n\n", mod.dump().c_str());
    const cp::agent::ToolResult repaired = chat.tools().call("topology_modification", mod);
    if (!repaired.ok) {
      std::printf("modification failed: %s\n", repaired.payload.get_string("error", "").c_str());
      return 1;
    }
    current = repaired.payload.get_string("topology_id", "");
    std::printf("%% Continue Processing (new topology %s)\n\n", current.c_str());
  }
  std::printf("recovery did not converge within 4 attempts\n");
  return 1;
}
