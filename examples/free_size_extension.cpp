// Scenario: research-grade use of the direct (non-agent) API — grow one
// seed topology to several sizes with both extension algorithms, compare
// the sample-count formulas with the actual model calls, and legalize the
// results. This is the programmatic surface a tool integrator would embed.
//
//   build/examples/free_size_extension [--seed S] [--size N]

#include <cstdio>

#include "core/chatpattern.h"
#include "extension/planner.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  cp::util::CliFlags flags(argc, argv);
  const int target = static_cast<int>(flags.get_int("size", 384));

  cp::core::ChatPatternConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
  cp::core::ChatPattern chat(config);
  cp::util::Rng rng(config.seed + 99);

  // A seed window sampled directly from the conditional diffusion model.
  cp::diffusion::SampleConfig sample_cfg;
  sample_cfg.condition = 1;  // Layer-10003
  const cp::squish::Topology seed_tile = chat.sampler().sample(sample_cfg, rng);
  const auto [scx, scy] = seed_tile.complexity();
  std::printf("seed tile: 128x128, density %.3f, complexity (%d, %d)\n", seed_tile.density(),
              scx, scy);

  for (auto method :
       {cp::extension::Method::kOutPainting, cp::extension::Method::kInPainting}) {
    cp::extension::ExtensionConfig ec;
    ec.condition = 1;
    const long long expected =
        cp::extension::expected_samples(method, target, target, ec.window, ec.stride);
    const auto res =
        cp::extension::extend(chat.sampler(), method, seed_tile, target, target, ec, rng);
    const auto [cx, cy] = res.topology.complexity();
    std::printf("\n%s to %dx%d: %d model calls (formula: %lld)\n",
                cp::extension::to_string(method), target, target, res.model_calls, expected);
    std::printf("  density %.3f, complexity (%d, %d)\n", res.topology.density(), cx, cy);

    const cp::geometry::Coord phys =
        static_cast<cp::geometry::Coord>(target) * chat.nm_per_cell();
    const auto legalized = chat.legalizer(1).legalize(res.topology, phys, phys);
    if (legalized.ok()) {
      const auto rects = cp::squish::unsquish(*legalized.pattern);
      std::printf("  legalized to %lld x %lld nm: %zu rectangles, DRC-clean\n",
                  static_cast<long long>(phys), static_cast<long long>(phys), rects.size());
    } else {
      std::printf("  legalization failed: %s\n", legalized.failure->message.c_str());
    }
  }

  std::printf("\nRecursive growth: a pattern can keep growing window by window —\n"
              "only the active window is ever in model memory (the paper's\n"
              "memory-friendly property).\n");
  return 0;
}
