#include "baselines/legalgan.h"

#include "drc/checker.h"

namespace cp::baselines {

namespace {

squish::Topology majority_filter(const squish::Topology& t) {
  squish::Topology out(t.rows(), t.cols());
  for (int r = 0; r < t.rows(); ++r) {
    for (int c = 0; c < t.cols(); ++c) {
      int ones = 0, total = 0;
      for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
          const int rr = r + dr, cc = c + dc;
          if (rr < 0 || rr >= t.rows() || cc < 0 || cc >= t.cols()) continue;
          ones += t.at(rr, cc);
          ++total;
        }
      }
      out.set(r, c, 2 * ones > total ? 1 : 0);
    }
  }
  return out;
}

/// Remove value-runs shorter than min_run along rows (set them to 1-value).
void fix_short_row_runs(squish::Topology& t, std::uint8_t value, int min_run) {
  for (int r = 0; r < t.rows(); ++r) {
    for (const auto& [b, e] : drc::row_runs(t, r, value)) {
      if (b == 0 || e == t.cols()) continue;  // border runs are exempt
      if (e - b < min_run) {
        for (int c = b; c < e; ++c) t.set(r, c, value ? 0 : 1);
      }
    }
  }
}

void fix_short_col_runs(squish::Topology& t, std::uint8_t value, int min_run) {
  for (int c = 0; c < t.cols(); ++c) {
    for (const auto& [b, e] : drc::col_runs(t, c, value)) {
      if (b == 0 || e == t.rows()) continue;
      if (e - b < min_run) {
        for (int r = b; r < e; ++r) t.set(r, c, value ? 0 : 1);
      }
    }
  }
}

}  // namespace

squish::Topology legalgan_cleanup(const squish::Topology& t, const LegalGanConfig& config) {
  squish::Topology out = config.majority_first ? majority_filter(t) : t;
  for (int i = 0; i < config.iterations; ++i) {
    // Fill pinhole gaps first, then drop slivers; both axes.
    fix_short_row_runs(out, 0, config.min_run_cells);
    fix_short_col_runs(out, 0, config.min_run_cells);
    fix_short_row_runs(out, 1, config.min_run_cells);
    fix_short_col_runs(out, 1, config.min_run_cells);
  }
  return out;
}

}  // namespace cp::baselines
