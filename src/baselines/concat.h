#pragma once
// "DiffPattern w/ Concatenation": the paper's free-size baseline. Fixed-size
// patterns are generated and legalized *independently* and the resulting
// physical patches are stitched into a larger pattern. The delta vectors of
// each tile are frozen before stitching, so any design-rule conflict created
// at a seam (thin merged shapes, sub-minimum spacing between features of
// adjacent tiles) cannot be repaired — which is exactly why this baseline's
// legality collapses at 512^2 and above in Table 1.

#include <vector>

#include "squish/squish.h"

namespace cp::baselines {

/// Stitch a k_rows x k_cols grid of equally-sized legalized patterns
/// (row-major order) into one squish pattern by concatenating topologies and
/// delta vectors. Throws if the grid is incomplete or tile dims mismatch.
squish::SquishPattern concat_grid(const std::vector<squish::SquishPattern>& tiles, int k_rows,
                                  int k_cols);

}  // namespace cp::baselines
