#include "baselines/concat.h"

#include <stdexcept>

namespace cp::baselines {

squish::SquishPattern concat_grid(const std::vector<squish::SquishPattern>& tiles, int k_rows,
                                  int k_cols) {
  if (k_rows < 1 || k_cols < 1 ||
      tiles.size() != static_cast<std::size_t>(k_rows) * static_cast<std::size_t>(k_cols)) {
    throw std::invalid_argument("concat_grid: tile count mismatch");
  }
  const geometry::Coord tile_w = tiles.front().width_nm();
  const geometry::Coord tile_h = tiles.front().height_nm();
  for (const auto& t : tiles) {
    if (t.width_nm() != tile_w || t.height_nm() != tile_h) {
      throw std::invalid_argument("concat_grid: tile physical dims mismatch");
    }
  }

  // Stitch in physical space: reconstruct each tile's rectangles, translate
  // onto the grid, and squish the union. This is the exact squish pattern of
  // the naive patchwork layout — each tile keeps its own frozen geometry and
  // seam conflicts surface faithfully in the DRC check.
  std::vector<geometry::Rect> all;
  for (int i = 0; i < k_rows; ++i) {
    for (int j = 0; j < k_cols; ++j) {
      const auto& tile = tiles[static_cast<std::size_t>(i) * k_cols + j];
      const geometry::Coord ox = static_cast<geometry::Coord>(j) * tile_w;
      const geometry::Coord oy = static_cast<geometry::Coord>(i) * tile_h;
      for (const geometry::Rect& r : squish::unsquish(tile)) {
        all.push_back(geometry::Rect{r.x0 + ox, r.y0 + oy, r.x1 + ox, r.y1 + oy});
      }
    }
  }
  const geometry::Rect window{0, 0, static_cast<geometry::Coord>(k_cols) * tile_w,
                              static_cast<geometry::Coord>(k_rows) * tile_h};
  return squish::squish(all, window);
}

}  // namespace cp::baselines
