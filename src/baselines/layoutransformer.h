#pragma once
// LayouTransformer stand-in (substitution S4): the original generates layout
// patterns autoregressively as a token sequence. The stand-in keeps the
// sequential-generation mechanism: a raster-scan autoregressive model whose
// per-cell context is the north/north-west/north-east neighbours, the west
// neighbour, and the capped run length of the current horizontal run —
// i.e. a learned run-length process, which is what sequence models capture
// about squish topologies. Fitted by counting, sampled cell by cell.

#include <cstdint>
#include <vector>

#include "squish/topology.h"
#include "util/rng.h"

namespace cp::baselines {

class LayoutTransformerBaseline {
 public:
  LayoutTransformerBaseline();

  void fit(const std::vector<squish::Topology>& data);

  squish::Topology generate(int rows, int cols, util::Rng& rng) const;

 private:
  static constexpr int kRunCap = 15;  // capped run-length feature
  static constexpr int kContexts = 2 * 2 * 2 * 2 * (kRunCap + 1);

  int context_of(const squish::Topology& t, int r, int c, int run_len) const;

  std::vector<std::uint32_t> ones_;
  std::vector<std::uint32_t> totals_;
  double density_ = 0.5;
};

}  // namespace cp::baselines
