#include "baselines/layoutransformer.h"

#include <algorithm>

namespace cp::baselines {

LayoutTransformerBaseline::LayoutTransformerBaseline()
    : ones_(kContexts, 0), totals_(kContexts, 0) {}

int LayoutTransformerBaseline::context_of(const squish::Topology& t, int r, int c,
                                          int run_len) const {
  auto cell = [&](int rr, int cc) -> int {
    if (rr < 0 || cc < 0 || cc >= t.cols()) return 0;
    return t.at(rr, cc);
  };
  const int west = cell(r, c - 1);
  const int north = cell(r - 1, c);
  const int nw = cell(r - 1, c - 1);
  const int ne = cell(r - 1, c + 1);
  const int run = std::min(run_len, kRunCap);
  return (((west * 2 + north) * 2 + nw) * 2 + ne) * (kRunCap + 1) + run;
}

void LayoutTransformerBaseline::fit(const std::vector<squish::Topology>& data) {
  double num = 0.0, den = 0.0;
  for (const squish::Topology& t : data) {
    num += static_cast<double>(t.popcount());
    den += static_cast<double>(t.size());
    for (int r = 0; r < t.rows(); ++r) {
      int run_len = 0;
      for (int c = 0; c < t.cols(); ++c) {
        const int ctx = context_of(t, r, c, run_len);
        ones_[static_cast<std::size_t>(ctx)] += t.at(r, c);
        ++totals_[static_cast<std::size_t>(ctx)];
        // Track the length of the current same-value run ending at c.
        if (c > 0 && t.at(r, c) == t.at(r, c - 1)) {
          ++run_len;
        } else {
          run_len = 0;
        }
      }
    }
  }
  if (den > 0.0) density_ = num / den;
}

squish::Topology LayoutTransformerBaseline::generate(int rows, int cols, util::Rng& rng) const {
  squish::Topology t(rows, cols);
  for (int r = 0; r < rows; ++r) {
    int run_len = 0;
    for (int c = 0; c < cols; ++c) {
      const int ctx = context_of(t, r, c, run_len);
      const double n1 = ones_[static_cast<std::size_t>(ctx)];
      const double n = totals_[static_cast<std::size_t>(ctx)];
      const double p = (n1 + 2.0 * density_) / (n + 2.0);
      t.set(r, c, rng.bernoulli(p) ? 1 : 0);
      if (c > 0 && t.at(r, c) == t.at(r, c - 1)) {
        ++run_len;
      } else {
        run_len = 0;
      }
    }
  }
  return t;
}

}  // namespace cp::baselines
