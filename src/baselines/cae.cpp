#include "baselines/cae.h"

#include <cmath>
#include <stdexcept>

namespace cp::baselines {

namespace {
util::Rng& shared_init_rng(util::Rng& rng) { return rng; }
}  // namespace

CaeBaseline::CaeBaseline(int side, int latent_dim, util::Rng& rng)
    : side_(side),
      latent_dim_(latent_dim),
      encoder_(side * side, latent_dim, shared_init_rng(rng)),
      decoder_(latent_dim, side * side, rng) {}

namespace {
void fill_features(const squish::Topology& t, nn::Tensor& x) {
  std::size_t i = 0;
  for (int r = 0; r < t.rows(); ++r) {
    for (int c = 0; c < t.cols(); ++c) x[i++] = t.at(r, c) ? 1.0f : 0.0f;
  }
}
}  // namespace

nn::Tensor CaeBaseline::encode(const squish::Topology& t) {
  nn::Tensor x({1, side_ * side_});
  fill_features(t, x);
  return encoder_.forward(x);
}

squish::Topology CaeBaseline::decode_to_topology(const nn::Tensor& latent) {
  const nn::Tensor recon = decoder_.forward(latent);
  squish::Topology out(side_, side_);
  for (int r = 0; r < side_; ++r) {
    for (int c = 0; c < side_; ++c) {
      out.set(r, c, recon[static_cast<std::size_t>(r) * side_ + c] > 0.5f ? 1 : 0);
    }
  }
  return out;
}

void CaeBaseline::train(const std::vector<squish::Topology>& data, int iterations, float lr) {
  if (data.empty()) throw std::invalid_argument("CaeBaseline::train: empty data");
  util::Rng rng(42);
  std::vector<nn::Param*> params{&encoder_.weight(), &encoder_.bias(), &decoder_.weight(),
                                 &decoder_.bias()};
  nn::Adam opt(params, lr);
  for (int iter = 0; iter < iterations; ++iter) {
    const squish::Topology& t =
        data[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(data.size()) - 1))];
    nn::Tensor x({1, side_ * side_});
    fill_features(t, x);
    for (nn::Param* p : params) p->grad.fill(0.0f);
    const nn::Tensor z = encoder_.forward(x);
    const nn::Tensor recon = decoder_.forward(z);
    nn::Tensor grad;
    nn::mse_loss(recon, x, grad);
    encoder_.backward(decoder_.backward(grad));
    opt.step();
  }
  // Cache latents for generation.
  train_latents_.clear();
  train_latents_.reserve(data.size());
  for (const squish::Topology& t : data) train_latents_.push_back(encode(t));
}

squish::Topology CaeBaseline::generate(util::Rng& rng, float latent_noise) {
  if (train_latents_.empty()) throw std::runtime_error("CaeBaseline: train() first");
  nn::Tensor z = train_latents_[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(train_latents_.size()) - 1))];
  for (std::size_t i = 0; i < z.numel(); ++i) {
    z[i] += static_cast<float>(rng.normal(0.0, latent_noise));
  }
  return decode_to_topology(z);
}

void VcaeBaseline::fit_latent_distribution() {
  if (train_latents_.empty()) throw std::runtime_error("VcaeBaseline: train() first");
  const std::size_t d = train_latents_.front().numel();
  latent_mean_.assign(d, 0.0f);
  latent_std_.assign(d, 0.0f);
  for (const nn::Tensor& z : train_latents_) {
    for (std::size_t i = 0; i < d; ++i) latent_mean_[i] += z[i];
  }
  for (std::size_t i = 0; i < d; ++i) {
    latent_mean_[i] /= static_cast<float>(train_latents_.size());
  }
  for (const nn::Tensor& z : train_latents_) {
    for (std::size_t i = 0; i < d; ++i) {
      const float dmean = z[i] - latent_mean_[i];
      latent_std_[i] += dmean * dmean;
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    latent_std_[i] = std::sqrt(latent_std_[i] / static_cast<float>(train_latents_.size()));
  }
}

squish::Topology VcaeBaseline::generate_variational(util::Rng& rng) {
  if (latent_mean_.empty()) throw std::runtime_error("VcaeBaseline: fit_latent_distribution() first");
  nn::Tensor z({1, static_cast<int>(latent_mean_.size())});
  for (std::size_t i = 0; i < latent_mean_.size(); ++i) {
    z[i] = latent_mean_[i] + latent_std_[i] * static_cast<float>(rng.normal());
  }
  return decode_to_topology(z);
}

}  // namespace cp::baselines
