#pragma once
// CAE baseline (DeePattern-style convolutional auto-encoder, substitution
// S4): a linear auto-encoder trained on flattened topologies with MSE
// reconstruction. Generation decodes a mildly perturbed training latent and
// thresholds — deterministic decoding of a blurry reconstruction, which is
// precisely the mechanism behind the original CAE's poor legality and
// diversity in Table 1.

#include <vector>

#include "nn/layers.h"
#include "nn/optim.h"
#include "squish/topology.h"
#include "util/rng.h"

namespace cp::baselines {

class CaeBaseline {
 public:
  CaeBaseline(int side, int latent_dim, util::Rng& rng);

  /// Train with Adam on MSE reconstruction; caches training latents for
  /// generation afterwards.
  void train(const std::vector<squish::Topology>& data, int iterations, float lr);

  /// Decode a perturbed latent of a random training pattern.
  squish::Topology generate(util::Rng& rng, float latent_noise = 0.1f);

  int side() const { return side_; }

 protected:
  squish::Topology decode_to_topology(const nn::Tensor& latent);
  nn::Tensor encode(const squish::Topology& t);

  int side_;
  int latent_dim_;
  nn::Linear encoder_;
  nn::Linear decoder_;
  std::vector<nn::Tensor> train_latents_;
};

/// VCAE baseline: same auto-encoder, but generation samples the latent from
/// a Gaussian fitted to the training-latent cloud (the variational
/// mechanism collapsed to its moment-matched equivalent) — more diverse
/// samples at the cost of decoding latents never seen in training.
class VcaeBaseline : public CaeBaseline {
 public:
  VcaeBaseline(int side, int latent_dim, util::Rng& rng) : CaeBaseline(side, latent_dim, rng) {}

  /// Must be called after train(): fits the latent Gaussian.
  void fit_latent_distribution();

  squish::Topology generate_variational(util::Rng& rng);

 private:
  std::vector<float> latent_mean_;
  std::vector<float> latent_std_;
};

}  // namespace cp::baselines
