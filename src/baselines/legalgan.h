#pragma once
// LegalGAN stand-in (substitution S4): the original is a learned network
// that nudges generated topologies toward the legal manifold. The mechanism
// it learns on squish topologies is morphological — suppress sub-resolution
// features and bridge sub-resolution gaps — so the stand-in applies exactly
// that: a majority smoothing pass, then iterative removal of 1-runs and
// filling of 0-runs shorter than a minimum cell run, along both axes.

#include "squish/topology.h"

namespace cp::baselines {

struct LegalGanConfig {
  int min_run_cells = 2;   // shortest surviving run, in cells
  int iterations = 2;      // row/col passes
  bool majority_first = true;
};

squish::Topology legalgan_cleanup(const squish::Topology& t, const LegalGanConfig& config);

}  // namespace cp::baselines
