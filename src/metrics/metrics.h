#pragma once
// Evaluation metrics from Section 2 of the paper:
//   Legality  (Definition 1, Eq. 7): fraction of generated patterns that are
//             DRC-clean under the style's design rules.
//   Diversity (Definition 2, Eq. 8): Shannon entropy of the joint
//             distribution of pattern complexities (c_x, c_y).
//
// Note on the entropy base: the paper does not state it; we report bits
// (log2), matching the scale of the DeePattern-line of work. Comparisons
// between methods are base-invariant.

#include <map>
#include <vector>

#include "drc/checker.h"
#include "squish/squish.h"

namespace cp::metrics {

/// Shannon entropy (natural log) of the (c_x, c_y) complexity histogram of a
/// topology library (Definition 2).
double diversity(const std::vector<squish::Topology>& library);

/// Complexity histogram itself, exposed for the experience store and plots.
std::map<std::pair<int, int>, int> complexity_histogram(
    const std::vector<squish::Topology>& library);

struct LegalityResult {
  int total = 0;
  int legal = 0;
  double ratio() const { return total == 0 ? 0.0 : static_cast<double>(legal) / total; }
};

/// Legality of already-legalized patterns: re-checks each against the rules.
LegalityResult legality(const std::vector<squish::SquishPattern>& patterns,
                        const drc::DesignRules& rules);

/// Aggregate helper used by the benches: diversity over the topologies of
/// the *legal* patterns only, as Table 1 reports "Diversity on legal
/// patterns".
double diversity_of_legal(const std::vector<squish::SquishPattern>& patterns,
                          const drc::DesignRules& rules);

}  // namespace cp::metrics
