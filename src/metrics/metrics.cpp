#include "metrics/metrics.h"

#include <cmath>

namespace cp::metrics {

std::map<std::pair<int, int>, int> complexity_histogram(
    const std::vector<squish::Topology>& library) {
  std::map<std::pair<int, int>, int> hist;
  for (const squish::Topology& t : library) ++hist[t.complexity()];
  return hist;
}

double diversity(const std::vector<squish::Topology>& library) {
  if (library.empty()) return 0.0;
  const auto hist = complexity_histogram(library);
  const double n = static_cast<double>(library.size());
  double h = 0.0;
  for (const auto& [key, count] : hist) {
    const double p = static_cast<double>(count) / n;
    h -= p * std::log2(p);
  }
  return h;
}

LegalityResult legality(const std::vector<squish::SquishPattern>& patterns,
                        const drc::DesignRules& rules) {
  LegalityResult result;
  result.total = static_cast<int>(patterns.size());
  for (const squish::SquishPattern& p : patterns) {
    if (drc::check(p, rules).clean()) ++result.legal;
  }
  return result;
}

double diversity_of_legal(const std::vector<squish::SquishPattern>& patterns,
                          const drc::DesignRules& rules) {
  std::vector<squish::Topology> legal;
  for (const squish::SquishPattern& p : patterns) {
    if (drc::check(p, rules).clean()) legal.push_back(p.topology);
  }
  return diversity(legal);
}

}  // namespace cp::metrics
