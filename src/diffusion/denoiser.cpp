#include "diffusion/denoiser.h"

#include <stdexcept>

namespace cp::diffusion {

float Denoiser::predict_x0_pixel(const squish::Topology& xk, int r, int c, int k,
                                 int condition) const {
  ProbGrid p0;
  predict_x0(xk, k, condition, p0);
  return p0[static_cast<std::size_t>(r) * xk.cols() + c];
}

void UniformDenoiser::predict_x0(const squish::Topology& xk, int k, int condition,
                                 ProbGrid& p0) const {
  (void)k;
  if (condition < 0 || condition >= conditions()) {
    throw std::out_of_range("UniformDenoiser: bad condition");
  }
  p0.assign(xk.size(), density_[static_cast<std::size_t>(condition)]);
}

}  // namespace cp::diffusion
