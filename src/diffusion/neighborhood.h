#pragma once
// Packed gather of the 17-cell denoiser neighbourhood.
//
// Both denoisers condition each pixel on the same neighbourhood (the diamond
// + ring + distance-4 probes of TabularDenoiser). On the bit-packed grid the
// whole gather becomes word-parallel for interior rows: each neighbour offset
// (dr, dc) turns into one funnel-shifted 64-bit "plane" whose bit j is cell
// (r + dr, w*64 + j + dc), so 17 shifted word reads replace 64x17 scattered
// byte loads. Transposing the 17 planes (bitgrid_transpose64) then yields all
// 64 neighbourhood *indices* of the word at once: after the transpose, lane j
// holds bit i = plane_i bit j, which is exactly the table index of cell j.
//
// Callers are responsible for the boundary: planes are only valid for cells
// with kMargin <= r < rows - kMargin and kMargin <= c < cols - kMargin;
// border cells keep each denoiser's own scalar mirror fallback (the tabular
// and MLP denoisers use *different* reflection rules on tiny grids, so the
// fallbacks deliberately stay per-module). See docs/GRID.md for the idiom.

#include <cstdint>

#include "geometry/bitgrid.h"
#include "squish/topology.h"

namespace cp::diffusion::neighborhood {

/// Neighbourhood size and offsets (dr, dc): center, 4-ring, diagonals, the
/// distance-2 cross, then the distance-4 probes. Order defines the bit layout
/// of the tabular table index and of the MLP feature vector; both denoisers
/// alias this table.
inline constexpr int kCount = 17;
inline constexpr int kOffsets[kCount][2] = {
    {0, 0},  {-1, 0}, {1, 0},  {0, -1}, {0, 1},  {-1, -1}, {-1, 1},  {1, -1}, {1, 1},
    {-2, 0}, {2, 0},  {0, -2}, {0, 2},  {-4, 0}, {4, 0},   {0, -4},  {0, 4},
};

/// Largest |offset| above: cells at least this far from every border need no
/// mirror reflection.
inline constexpr int kMargin = 4;

/// Word `wi` of row `rr` funnel-shifted by `dc` columns: bit j of the result
/// is cell (rr, wi*64 + j + dc). Bits whose source column falls outside the
/// row read as garbage only in lanes the caller must not use (non-interior
/// columns); no out-of-bounds memory access occurs.
inline std::uint64_t shifted_row_word(const squish::Topology& t, int rr, int wi, int dc) {
  const std::uint64_t w = t.word(rr, wi);
  if (dc == 0) return w;
  if (dc > 0) {
    const std::uint64_t hi = (wi + 1 < t.words_per_row()) ? t.word(rr, wi + 1) : 0;
    return (w >> dc) | (hi << (64 - dc));
  }
  const std::uint64_t lo = (wi > 0) ? t.word(rr, wi - 1) : 0;
  return (w << -dc) | (lo >> (64 + dc));
}

/// Gather the 17 neighbour planes of word `wi` in row `r`. Requires
/// kMargin <= r < rows - kMargin (all row reads in range); column validity is
/// per-lane as described above.
inline void gather_planes(const squish::Topology& t, int r, int wi,
                          std::uint64_t planes[kCount]) {
  for (int i = 0; i < kCount; ++i) {
    planes[i] = shifted_row_word(t, r + kOffsets[i][0], wi, kOffsets[i][1]);
  }
}

/// Gather + transpose: idx[j] is the 17-bit neighbourhood index of cell
/// (r, wi*64 + j), valid for interior lanes only.
inline void gather_indices(const squish::Topology& t, int r, int wi, std::uint64_t idx[64]) {
  gather_planes(t, r, wi, idx);
  for (int i = kCount; i < 64; ++i) idx[i] = 0;
  geometry::bitgrid_transpose64(idx);
}

}  // namespace cp::diffusion::neighborhood
