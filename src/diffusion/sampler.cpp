#include "diffusion/sampler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/registry.h"

namespace cp::diffusion {

std::vector<int> DiffusionSampler::make_timesteps(int count) const {
  return make_timesteps_from(schedule_->steps(), count);
}

std::vector<int> DiffusionSampler::make_timesteps_from(int k_start, int count) const {
  return make_timesteps_from(k_start, count, ScheduleKind::kNoiseUniform);
}

std::vector<int> DiffusionSampler::make_timesteps(int count, ScheduleKind kind) const {
  return make_timesteps_from(schedule_->steps(), count, kind);
}

std::vector<int> DiffusionSampler::make_timesteps_from(int k_start, int count,
                                                       ScheduleKind kind) const {
  const int k_max = std::clamp(k_start, 1, schedule_->steps());
  if (kind == ScheduleKind::kSearched && count > 0 && count < k_max) {
    if (!searched_.empty()) return TimestepSchedule::restrict_to(searched_, k_max);
    // No registered list: degrade to the closed-form default rather than
    // failing a serving request.
    obs::count("sampler/searched_fallback");
    kind = ScheduleKind::kNoiseUniform;
  }
  return TimestepSchedule::make(*schedule_, kind, k_max, count);
}

void DiffusionSampler::set_searched_timesteps(std::vector<int> steps) {
  if (!steps.empty()) TimestepSchedule::validate(steps, schedule_->steps());
  searched_ = std::move(steps);
}

squish::Topology DiffusionSampler::reverse_step(const squish::Topology& xk, int k_from, int k_to,
                                                int condition, util::Rng& rng) const {
  if (k_to >= k_from) throw std::invalid_argument("reverse_step: k_to must be < k_from");
  // Per-step granularity: one span per reverse jump, never per pixel (the
  // pixel loop is the hot path; see docs/OBSERVABILITY.md "Overhead").
  const obs::Span span = obs::trace_scope("denoise_step");
  obs::count("sampler/denoise_steps");
  return sequential_ ? reverse_step_sequential(xk, k_from, k_to, condition, rng)
                     : reverse_step_factorized(xk, k_from, k_to, condition, rng);
}

namespace {

constexpr double kProbEps = 1e-6;

inline double shifted_prob(double p, double lambda) {
  if (lambda == 0.0) return p;
  const double pc = std::clamp(p, kProbEps, 1.0 - kProbEps);
  const double logit = std::log(pc / (1.0 - pc)) + lambda;
  return 1.0 / (1.0 + std::exp(-logit));
}

}  // namespace

double DiffusionSampler::guidance_shift(const squish::Topology& xk, int k_from,
                                        int condition) const {
  if (!guidance_) return 0.0;
  const double target = denoiser_->prior_density(condition);
  if (target <= 0.0 || target >= 1.0) return 0.0;
  ProbGrid p0;
  denoiser_->predict_x0(xk, k_from, condition, p0);
  // Bisection on the uniform logit shift.
  double lo = -8.0, hi = 8.0;
  for (int iter = 0; iter < 24; ++iter) {
    const double mid = 0.5 * (lo + hi);
    double mean = 0.0;
    for (float p : p0) mean += shifted_prob(p, mid);
    mean /= static_cast<double>(p0.size());
    if (mean < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

squish::Topology DiffusionSampler::reverse_step_factorized(const squish::Topology& xk,
                                                           int k_from, int k_to, int condition,
                                                           util::Rng& rng) const {
  ProbGrid p0;
  denoiser_->predict_x0(xk, k_from, condition, p0);
  const double lambda = guidance_shift(xk, k_from, condition);
  const double flip_0j = schedule_->cumulative_flip(k_to);
  const double flip_jk = schedule_->flip_between(k_to, k_from);
  squish::Topology out(xk.rows(), xk.cols());
  std::size_t i = 0;
  for (int r = 0; r < xk.rows(); ++r) {
    for (int c = 0; c < xk.cols(); ++c, ++i) {
      const double p1 = reverse_p1(xk.at(r, c), shifted_prob(p0[i], lambda), flip_0j, flip_jk);
      out.set(r, c, rng.bernoulli(p1) ? 1 : 0);
    }
  }
  return out;
}

squish::Topology DiffusionSampler::reverse_step_sequential(const squish::Topology& xk,
                                                           int k_from, int k_to, int condition,
                                                           util::Rng& rng) const {
  const double flip_0j = schedule_->cumulative_flip(k_to);
  const double flip_jk = schedule_->flip_between(k_to, k_from);
  const double lambda = guidance_shift(xk, k_from, condition);
  // Update the grid in place: pixels already visited carry their k_to
  // values, pixels ahead still carry k_from values, and the denoiser is
  // re-queried on the evolving grid. A serpentine scan whose start corner
  // alternates with k_from removes the directional bias a fixed raster
  // order would imprint.
  squish::Topology x = xk;
  const bool flip_rows = (k_from % 2) == 0;
  for (int rr = 0; rr < x.rows(); ++rr) {
    const int r = flip_rows ? x.rows() - 1 - rr : rr;
    const bool reverse_cols = (rr % 2) == 1;
    for (int cc = 0; cc < x.cols(); ++cc) {
      const int c = reverse_cols ? x.cols() - 1 - cc : cc;
      const std::uint8_t old = x.at(r, c);
      const float p0 = denoiser_->predict_x0_pixel(x, r, c, k_from, condition);
      const double p1 = reverse_p1(old, shifted_prob(p0, lambda), flip_0j, flip_jk);
      x.set(r, c, rng.bernoulli(p1) ? 1 : 0);
    }
  }
  return x;
}

squish::Topology DiffusionSampler::map_polish(squish::Topology x, int k, int condition,
                                              const squish::Topology& keep_mask) const {
  const obs::Span span = obs::trace_scope("map_polish");
  obs::count("sampler/map_polish_calls");
  const int kk = std::clamp(k, 1, schedule_->steps());
  // Treat the current pattern as if it sat at noise level kk and take the
  // most probable clean value per pixel, sequentially (serpentine).
  const double flip_jk = schedule_->cumulative_flip(kk);
  // Guidance for an argmax sweep must match the *fraction of pixels that
  // end up above threshold* to the prior density, not the mean probability
  // (mean-matching overshoots under argmax and oscillates). The shift is
  // chosen so the (1 - density)-quantile of the predictions lands at the
  // decision boundary implied by the hysteresis of the reverse kernel.
  double lambda = 0.0;
  if (guidance_) {
    const double target = denoiser_->prior_density(condition);
    if (target > 0.0 && target < 1.0) {
      ProbGrid p0;
      denoiser_->predict_x0(x, kk, condition, p0);
      std::vector<float> sorted(p0.begin(), p0.end());
      std::sort(sorted.begin(), sorted.end());
      const std::size_t idx = static_cast<std::size_t>(
          std::clamp((1.0 - target) * static_cast<double>(sorted.size() - 1), 0.0,
                     static_cast<double>(sorted.size() - 1)));
      const double q = std::clamp(static_cast<double>(sorted[idx]), kProbEps, 1.0 - kProbEps);
      // Move the density-matching quantile to p = 0.5.
      lambda = -std::log(q / (1.0 - q));
      // Keep the correction gentle; the kernel's hysteresis does the rest.
      lambda = std::clamp(lambda, -2.0, 2.0);
    }
  }
  for (int rr = 0; rr < x.rows(); ++rr) {
    const int r = (kk % 2 == 0) ? x.rows() - 1 - rr : rr;
    const bool reverse_cols = (rr % 2) == 1;
    for (int cc = 0; cc < x.cols(); ++cc) {
      const int c = reverse_cols ? x.cols() - 1 - cc : cc;
      if (!keep_mask.empty() && keep_mask.at(r, c)) continue;
      const std::uint8_t old = x.at(r, c);
      const float p0 = denoiser_->predict_x0_pixel(x, r, c, kk, condition);
      // Reverse distribution straight to level 0 (flip_0j = 0).
      const double p1 = reverse_p1(old, shifted_prob(p0, lambda), 0.0, flip_jk);
      x.set(r, c, p1 > 0.5 ? 1 : 0);
    }
  }
  return x;
}

squish::Topology DiffusionSampler::sample(const SampleConfig& config, util::Rng& rng) const {
  const obs::Span span = obs::trace_scope("sampler/sample");
  obs::count("sampler/samples");
  // Every denoiser call below (reverse chain, guidance, polish) inherits the
  // requested precision tier through the thread-local scope.
  const PrecisionScope precision_scope(config.precision);
  // Word-parallel uniform init; one Bernoulli draw per cell in row-major
  // order, same stream as the scalar loop (see forward_noise).
  squish::Topology x(config.rows, config.cols);
  for (int r = 0; r < x.rows(); ++r) {
    for (int w = 0; w < x.words_per_row(); ++w) {
      const int bits = std::min(64, x.cols() - w * 64);
      std::uint64_t mask = 0;
      for (int j = 0; j < bits; ++j) {
        mask |= static_cast<std::uint64_t>(rng.bernoulli(0.5)) << j;
      }
      if (mask != 0) x.xor_word(r, w, mask);
    }
  }
  x = sample_from(std::move(x), make_timesteps(config.sample_steps, config.schedule_kind),
                  config.condition, rng);
  for (int round = 0; round < config.polish_rounds; ++round) {
    x = polish(std::move(x), config.polish_k, config.condition, rng);
  }
  return x;
}

squish::Topology DiffusionSampler::polish(squish::Topology x0, int polish_k, int condition,
                                          util::Rng& rng) const {
  const obs::Span span = obs::trace_scope("polish");
  obs::count("sampler/polish_rounds");
  const int k = std::clamp(polish_k, 1, schedule_->steps());
  squish::Topology xk = forward_noise(x0, *schedule_, k, rng);
  // Descend geometrically from k to 0.
  std::vector<int> steps;
  for (int j = k; j >= 1; j = j / 2) steps.push_back(j);
  steps.push_back(0);
  return sample_from(std::move(xk), steps, condition, rng);
}

squish::Topology DiffusionSampler::sample_from(squish::Topology x,
                                               const std::vector<int>& timesteps, int condition,
                                               util::Rng& rng) const {
  if (timesteps.size() < 2 || timesteps.back() != 0) {
    throw std::invalid_argument("sample_from: timestep list must descend to 0");
  }
  for (std::size_t i = 0; i + 1 < timesteps.size(); ++i) {
    x = reverse_step(x, timesteps[i], timesteps[i + 1], condition, rng);
  }
  return x;
}

}  // namespace cp::diffusion
