#include "diffusion/trainer.h"

#include <cmath>
#include <stdexcept>

#include <memory>

#include "diffusion/checkpoint.h"
#include "diffusion/transition.h"
#include "nn/optim.h"
#include "obs/registry.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace cp::diffusion {

namespace {

constexpr double kProbFloor = 1e-6;

double clamp_prob(double p) {
  return p < kProbFloor ? kProbFloor : (p > 1.0 - kProbFloor ? 1.0 - kProbFloor : p);
}

/// Hybrid loss and d(loss)/d(p0) for one pixel.
/// q1: true posterior P(x_{k-1}=1 | x_k, x_0); A/B: posterior under x0=1/0.
struct PixelLoss {
  double loss = 0.0;
  double dloss_dp0 = 0.0;
};

PixelLoss hybrid_pixel_loss(int x0, int xk, double p0, double flip_0j, double flip_jk,
                            double lambda) {
  const double A = posterior_p1(xk, 1, flip_0j, flip_jk);
  const double B = posterior_p1(xk, 0, flip_0j, flip_jk);
  const double q1 = x0 == 1 ? A : B;
  const double p1 = clamp_prob(p0 * A + (1.0 - p0) * B);
  const double q1c = clamp_prob(q1);
  PixelLoss out;
  // KL(q || p) over the two-state distribution.
  out.loss = q1c * std::log(q1c / p1) + (1.0 - q1c) * std::log((1.0 - q1c) / (1.0 - p1));
  const double dkl_dp1 = -q1c / p1 + (1.0 - q1c) / (1.0 - p1);
  out.dloss_dp0 = dkl_dp1 * (A - B);
  // CE term: -log p_theta(x0 | x_k).
  const double p0c = clamp_prob(p0);
  out.loss += lambda * -(x0 == 1 ? std::log(p0c) : std::log(1.0 - p0c));
  out.dloss_dp0 += lambda * (x0 == 1 ? -1.0 / p0c : 1.0 / (1.0 - p0c));
  return out;
}

}  // namespace

TrainStats train_mlp(MlpDenoiser& model,
                     const std::vector<std::vector<squish::Topology>>& per_class,
                     const TrainConfig& config) {
  if (per_class.empty()) throw std::invalid_argument("train_mlp: no data");
  const obs::Span train_span = obs::trace_scope("trainer/train_mlp");
  const NoiseSchedule& schedule = model.schedule();
  util::Rng rng(config.seed);
  nn::Adam opt(model.net().params(), config.lr);
  TrainStats stats;

  // Checkpoint/resume: restore params + optimizer moments + RNG state so
  // the remaining iterations replay exactly what an uninterrupted run would
  // have executed. A corrupt checkpoint is never fatal — warn and retrain.
  int start_iter = 0;
  if (!config.checkpoint_path.empty()) {
    try {
      if (load_trainer_checkpoint(config.checkpoint_path, model, opt, rng, &start_iter,
                                  config)) {
        obs::count("trainer/checkpoint_resumes");
        CP_LOG_INFO << "train_mlp resuming from " << config.checkpoint_path << " at iteration "
                    << start_iter;
      }
    } catch (const std::exception& e) {
      obs::count("trainer/checkpoint_corrupt");
      CP_LOG_WARN << "train_mlp ignoring corrupt checkpoint " << config.checkpoint_path << ": "
                  << e.what();
      start_iter = 0;
    }
  }

  // Optional worker pool: feature extraction and the per-pixel loss/grad
  // evaluation are embarrassingly parallel (pixel i writes feature row i,
  // grad slot i and loss slot i), while every RNG draw and the network
  // forward/backward stay on this thread. The loss reduction below runs in
  // pixel-index order, so the whole training trajectory is bit-identical
  // for any thread count.
  std::unique_ptr<util::ThreadPool> workers;
  if (config.threads > 1) workers = std::make_unique<util::ThreadPool>(config.threads);
  auto for_each_pixel = [&](int n, auto&& fn) {
    if (workers) {
      workers->parallel_for(n, fn);
    } else {
      for (long long i = 0; i < n; ++i) fn(i);
    }
  };

  const int fdim = model.feature_dim();
  for (int iter = start_iter; iter < config.iterations; ++iter) {
    // One noised image per minibatch; random pixels from it.
    const int cond = rng.uniform_int(0, static_cast<int>(per_class.size()) - 1);
    const auto& pool = per_class[static_cast<std::size_t>(cond)];
    if (pool.empty()) continue;
    const squish::Topology& x0 =
        pool[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(pool.size()) - 1))];
    const int k = rng.uniform_int(1, schedule.steps());
    const squish::Topology xk = forward_noise(x0, schedule, k, rng);
    const double flip_0j = schedule.cumulative_flip(k - 1);
    const double flip_jk = schedule.beta(k);

    const obs::Span iter_span = obs::trace_scope("iteration");
    obs::count("trainer/iterations");
    const int batch = config.batch_pixels;
    nn::Tensor features({batch, fdim});
    std::vector<int> targets(static_cast<std::size_t>(batch));
    std::vector<int> noisy(static_cast<std::size_t>(batch));
    std::vector<int> pick_r(static_cast<std::size_t>(batch));
    std::vector<int> pick_c(static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      pick_r[static_cast<std::size_t>(i)] = rng.uniform_int(0, x0.rows() - 1);
      pick_c[static_cast<std::size_t>(i)] = rng.uniform_int(0, x0.cols() - 1);
    }
    {
      const obs::Span features_span = obs::trace_scope("features");
      for_each_pixel(batch, [&](long long i) {
        const auto idx = static_cast<std::size_t>(i);
        model.pixel_features(xk, pick_r[idx], pick_c[idx], k, cond,
                             features.data() + idx * static_cast<std::size_t>(fdim));
        targets[idx] = x0.at(pick_r[idx], pick_c[idx]);
        noisy[idx] = xk.at(pick_r[idx], pick_c[idx]);
      });
    }

    const obs::Span grad_span = obs::trace_scope("grad");
    model.net().zero_grad();
    const nn::Tensor logits = model.net().forward(features);
    nn::Tensor grad({batch, 1});
    std::vector<double> pixel_losses(static_cast<std::size_t>(batch));
    for_each_pixel(batch, [&](long long i) {
      const auto idx = static_cast<std::size_t>(i);
      const double p0 = 1.0 / (1.0 + std::exp(-static_cast<double>(logits[idx])));
      const PixelLoss pl =
          hybrid_pixel_loss(targets[idx], noisy[idx], p0, flip_0j, flip_jk, config.lambda);
      pixel_losses[idx] = pl.loss;
      // Chain through the sigmoid: dp0/dlogit = p0 (1 - p0).
      grad[idx] = static_cast<float>(pl.dloss_dp0 * p0 * (1.0 - p0) / batch);
    });
    double loss = 0.0;
    for (double pl : pixel_losses) loss += pl;  // index order: deterministic
    loss /= batch;
    model.net().backward(grad);
    opt.clip_grad_norm(config.grad_clip);
    opt.step();

    obs::observe("trainer/loss", loss);
    if (config.log_every > 0 && iter % config.log_every == 0) {
      stats.losses.push_back(static_cast<float>(loss));
      CP_LOG_INFO << "train_mlp iter " << iter << " loss " << loss;
    }
    stats.final_loss = static_cast<float>(loss);

    if (config.checkpoint_every > 0 && !config.checkpoint_path.empty() &&
        (iter + 1) % config.checkpoint_every == 0 && iter + 1 < config.iterations) {
      save_trainer_checkpoint(config.checkpoint_path, model, opt, rng, iter + 1, config);
      obs::count("trainer/checkpoints_written");
    }
  }
  obs::gauge("trainer/final_loss", static_cast<double>(stats.final_loss));
  return stats;
}

TabularDenoiser fit_tabular(const NoiseSchedule& schedule, const TabularConfig& config,
                            const std::vector<std::vector<squish::Topology>>& per_class,
                            std::uint64_t seed) {
  const obs::Span span = obs::trace_scope("trainer/fit_tabular");
  TabularDenoiser model(schedule, config);
  util::Rng rng(seed);
  for (std::size_t cond = 0; cond < per_class.size(); ++cond) {
    model.fit(per_class[cond], static_cast<int>(cond), rng);
  }
  return model;
}

double evaluate_hybrid_loss(const Denoiser& model, const NoiseSchedule& schedule,
                            const std::vector<std::vector<squish::Topology>>& per_class,
                            float lambda, int draws, std::uint64_t seed, int threads) {
  // Pre-generate every noise draw serially so the RNG consumption order is
  // fixed, then evaluate draws in parallel into per-draw slots and reduce
  // in draw-index order — identical result for any thread count.
  struct Draw {
    const squish::Topology* x0;
    squish::Topology xk;
    int k;
    int cond;
  };
  const obs::Span span = obs::trace_scope("trainer/eval_hybrid_loss");
  util::Rng rng(seed);
  std::vector<Draw> items;
  for (std::size_t cond = 0; cond < per_class.size(); ++cond) {
    for (const squish::Topology& x0 : per_class[cond]) {
      for (int d = 0; d < draws; ++d) {
        const int k = rng.uniform_int(1, schedule.steps());
        items.push_back(Draw{&x0, forward_noise(x0, schedule, k, rng), k,
                             static_cast<int>(cond)});
      }
    }
  }

  std::vector<double> totals(items.size(), 0.0);
  std::vector<long long> counts(items.size(), 0);
  auto eval_one = [&](long long i) {
    const Draw& draw = items[static_cast<std::size_t>(i)];
    const double flip_0j = schedule.cumulative_flip(draw.k - 1);
    const double flip_jk = schedule.beta(draw.k);
    ProbGrid p0;
    model.predict_x0(draw.xk, draw.k, draw.cond, p0);
    double total = 0.0;
    long long count = 0;
    std::size_t px = 0;
    for (int r = 0; r < draw.x0->rows(); ++r) {
      for (int c = 0; c < draw.x0->cols(); ++c, ++px) {
        total += hybrid_pixel_loss(draw.x0->at(r, c), draw.xk.at(r, c), p0[px], flip_0j,
                                   flip_jk, lambda)
                     .loss;
        ++count;
      }
    }
    totals[static_cast<std::size_t>(i)] = total;
    counts[static_cast<std::size_t>(i)] = count;
  };
  const long long n = static_cast<long long>(items.size());
  if (threads > 1 && model.thread_safe_inference()) {
    util::ThreadPool pool(threads);
    pool.parallel_for(n, eval_one);
  } else {
    for (long long i = 0; i < n; ++i) eval_one(i);
  }

  double total = 0.0;
  long long count = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    total += totals[i];
    count += counts[i];
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace cp::diffusion
