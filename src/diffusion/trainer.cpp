#include "diffusion/trainer.h"

#include <cmath>
#include <stdexcept>

#include "diffusion/transition.h"
#include "nn/optim.h"
#include "util/logging.h"

namespace cp::diffusion {

namespace {

constexpr double kProbFloor = 1e-6;

double clamp_prob(double p) {
  return p < kProbFloor ? kProbFloor : (p > 1.0 - kProbFloor ? 1.0 - kProbFloor : p);
}

/// Hybrid loss and d(loss)/d(p0) for one pixel.
/// q1: true posterior P(x_{k-1}=1 | x_k, x_0); A/B: posterior under x0=1/0.
struct PixelLoss {
  double loss = 0.0;
  double dloss_dp0 = 0.0;
};

PixelLoss hybrid_pixel_loss(int x0, int xk, double p0, double flip_0j, double flip_jk,
                            double lambda) {
  const double A = posterior_p1(xk, 1, flip_0j, flip_jk);
  const double B = posterior_p1(xk, 0, flip_0j, flip_jk);
  const double q1 = x0 == 1 ? A : B;
  const double p1 = clamp_prob(p0 * A + (1.0 - p0) * B);
  const double q1c = clamp_prob(q1);
  PixelLoss out;
  // KL(q || p) over the two-state distribution.
  out.loss = q1c * std::log(q1c / p1) + (1.0 - q1c) * std::log((1.0 - q1c) / (1.0 - p1));
  const double dkl_dp1 = -q1c / p1 + (1.0 - q1c) / (1.0 - p1);
  out.dloss_dp0 = dkl_dp1 * (A - B);
  // CE term: -log p_theta(x0 | x_k).
  const double p0c = clamp_prob(p0);
  out.loss += lambda * -(x0 == 1 ? std::log(p0c) : std::log(1.0 - p0c));
  out.dloss_dp0 += lambda * (x0 == 1 ? -1.0 / p0c : 1.0 / (1.0 - p0c));
  return out;
}

}  // namespace

TrainStats train_mlp(MlpDenoiser& model,
                     const std::vector<std::vector<squish::Topology>>& per_class,
                     const TrainConfig& config) {
  if (per_class.empty()) throw std::invalid_argument("train_mlp: no data");
  const NoiseSchedule& schedule = model.schedule();
  util::Rng rng(config.seed);
  nn::Adam opt(model.net().params(), config.lr);
  TrainStats stats;

  const int fdim = model.feature_dim();
  for (int iter = 0; iter < config.iterations; ++iter) {
    // One noised image per minibatch; random pixels from it.
    const int cond = rng.uniform_int(0, static_cast<int>(per_class.size()) - 1);
    const auto& pool = per_class[static_cast<std::size_t>(cond)];
    if (pool.empty()) continue;
    const squish::Topology& x0 =
        pool[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(pool.size()) - 1))];
    const int k = rng.uniform_int(1, schedule.steps());
    const squish::Topology xk = forward_noise(x0, schedule, k, rng);
    const double flip_0j = schedule.cumulative_flip(k - 1);
    const double flip_jk = schedule.beta(k);

    const int batch = config.batch_pixels;
    nn::Tensor features({batch, fdim});
    std::vector<int> targets(static_cast<std::size_t>(batch));
    std::vector<int> noisy(static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      const int r = rng.uniform_int(0, x0.rows() - 1);
      const int c = rng.uniform_int(0, x0.cols() - 1);
      model.pixel_features(xk, r, c, k, cond,
                           features.data() + static_cast<std::size_t>(i) * fdim);
      targets[static_cast<std::size_t>(i)] = x0.at(r, c);
      noisy[static_cast<std::size_t>(i)] = xk.at(r, c);
    }

    model.net().zero_grad();
    const nn::Tensor logits = model.net().forward(features);
    nn::Tensor grad({batch, 1});
    double loss = 0.0;
    for (int i = 0; i < batch; ++i) {
      const double p0 = 1.0 / (1.0 + std::exp(-static_cast<double>(logits[i])));
      const PixelLoss pl =
          hybrid_pixel_loss(targets[static_cast<std::size_t>(i)],
                            noisy[static_cast<std::size_t>(i)], p0, flip_0j, flip_jk,
                            config.lambda);
      loss += pl.loss;
      // Chain through the sigmoid: dp0/dlogit = p0 (1 - p0).
      grad[static_cast<std::size_t>(i)] =
          static_cast<float>(pl.dloss_dp0 * p0 * (1.0 - p0) / batch);
    }
    loss /= batch;
    model.net().backward(grad);
    opt.clip_grad_norm(config.grad_clip);
    opt.step();

    if (config.log_every > 0 && iter % config.log_every == 0) {
      stats.losses.push_back(static_cast<float>(loss));
      CP_LOG_INFO << "train_mlp iter " << iter << " loss " << loss;
    }
    stats.final_loss = static_cast<float>(loss);
  }
  return stats;
}

TabularDenoiser fit_tabular(const NoiseSchedule& schedule, const TabularConfig& config,
                            const std::vector<std::vector<squish::Topology>>& per_class,
                            std::uint64_t seed) {
  TabularDenoiser model(schedule, config);
  util::Rng rng(seed);
  for (std::size_t cond = 0; cond < per_class.size(); ++cond) {
    model.fit(per_class[cond], static_cast<int>(cond), rng);
  }
  return model;
}

double evaluate_hybrid_loss(const Denoiser& model, const NoiseSchedule& schedule,
                            const std::vector<std::vector<squish::Topology>>& per_class,
                            float lambda, int draws, std::uint64_t seed) {
  util::Rng rng(seed);
  double total = 0.0;
  long long count = 0;
  ProbGrid p0;
  for (std::size_t cond = 0; cond < per_class.size(); ++cond) {
    for (const squish::Topology& x0 : per_class[cond]) {
      for (int d = 0; d < draws; ++d) {
        const int k = rng.uniform_int(1, schedule.steps());
        const squish::Topology xk = forward_noise(x0, schedule, k, rng);
        const double flip_0j = schedule.cumulative_flip(k - 1);
        const double flip_jk = schedule.beta(k);
        model.predict_x0(xk, k, static_cast<int>(cond), p0);
        std::size_t i = 0;
        for (int r = 0; r < x0.rows(); ++r) {
          for (int c = 0; c < x0.cols(); ++c, ++i) {
            total += hybrid_pixel_loss(x0.at(r, c), xk.at(r, c), p0[i], flip_0j, flip_jk, lambda)
                         .loss;
            ++count;
          }
        }
      }
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace cp::diffusion
