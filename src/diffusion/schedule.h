#pragma once
// Noise schedule of the binary discrete diffusion model (D3PM, Austin et al.
// 2021), Equations (1)-(4) of the paper.
//
// With two states, every transition matrix Q_k is the symmetric bit-flip
// channel with flip probability beta_k, so products of Q matrices stay
// bit-flip channels. The schedule therefore precomputes, in closed form,
// the cumulative flip probability
//     bbar_k = P(x_k != x_0)
// via the composition rule  bbar_k = bbar_{k-1} (1 - beta_k) + (1 - bbar_{k-1}) beta_k.
// The paper's defaults: K = 1000, beta linearly increased from 0.01 to 0.5.
// beta_K = 0.5 makes the terminal distribution exactly uniform, which is why
// sampling starts from iid fair coin flips.

#include <vector>

namespace cp::diffusion {

struct ScheduleConfig {
  int steps = 1000;      // K
  double beta_start = 0.01;  // beta_1
  double beta_end = 0.5;     // beta_K
};

class NoiseSchedule {
 public:
  explicit NoiseSchedule(const ScheduleConfig& config);

  int steps() const { return steps_; }

  /// beta_k, the single-step flip probability; k in [1, K].
  double beta(int k) const { return beta_[static_cast<std::size_t>(k)]; }

  /// Cumulative flip probability P(x_k != x_0); k in [0, K] (bbar_0 = 0).
  double cumulative_flip(int k) const { return bbar_[static_cast<std::size_t>(k)]; }

  /// Flip probability of the composed channel from step j to step k (j < k):
  /// P(x_k != x_j). Used for strided (jumpy) reverse sampling. Once level j
  /// is fully mixed (1 - 2 bbar_j below float noise) the recurrence is not
  /// identifiable and 0.5 is returned by convention — harmless there, since
  /// x_j is uniform and carries no information about x_0 anyway.
  double flip_between(int j, int k) const;

  /// Same channel via the product identity 1 - 2 f = prod_{i=j+1..k}
  /// (1 - 2 beta_i) — the literal "product of per-step transitions" form.
  /// Mathematically equal to flip_between up to float noise; the fast-
  /// sampling tests compare the two across whole schedules.
  double flip_between_product(int j, int k) const;

  /// Closed-form composition of two symmetric bit-flip channels applied in
  /// sequence: P(flipped overall) = f1 (1 - f2) + (1 - f1) f2.
  static double compose_flip(double f1, double f2) {
    return f1 * (1.0 - f2) + (1.0 - f1) * f2;
  }

  /// Smallest k whose cumulative flip reaches `flip` (clamped to [0, K]).
  /// Inverse of cumulative_flip; used to build noise-uniform timestep lists.
  int step_for_flip(double flip) const;

 private:
  int steps_;
  std::vector<double> beta_;  // index 1..K (index 0 unused)
  std::vector<double> bbar_;  // index 0..K
};

}  // namespace cp::diffusion
