#pragma once
// Conditional reverse-process sampling (Equations (9) and (11)).
//
// Sampling starts from iid fair coin flips (the terminal distribution of the
// beta_K = 0.5 schedule) and walks a descending list of timesteps. With the
// full list {K, K-1, ..., 0} this is exactly Equation (11); with a strided
// sublist it is the D3PM analogue of DDIM sub-sampling: the composed
// two-state channel between visited steps is still exact (flip_between), so
// striding trades sample quality for speed without approximating the
// algebra. CPU benches default to ~16 visited steps (ablated in
// bench/ablation_sampler).

#include <vector>

#include "diffusion/denoiser.h"
#include "diffusion/generator.h"
#include "diffusion/precision.h"
#include "diffusion/schedule.h"
#include "diffusion/timestep_schedule.h"
#include "diffusion/transition.h"
#include "util/rng.h"

namespace cp::diffusion {

struct SampleConfig {
  int rows = 128;
  int cols = 128;
  int condition = 0;
  /// Number of visited timesteps (2..K); 0 means the full K-step chain.
  int sample_steps = 0;
  /// How the visited subset is placed (timestep_schedule.h). The default
  /// reproduces the historical noise-uniform spacing bit-for-bit; kSearched
  /// resolves against the sampler's registered searched list.
  ScheduleKind schedule_kind = ScheduleKind::kNoiseUniform;
  /// Extra low-noise refinement passes after the main chain: the sample is
  /// re-noised to a small timestep and reverse-diffused again. Cheap (a few
  /// denoiser calls each) and very effective at removing speckle and
  /// straightening polygon edges; 0 disables.
  int polish_rounds = 2;
  /// Noise level the polish passes restart from.
  int polish_k = 8;
  /// Inference-precision tier for every denoiser call of this sample
  /// (precision.h): sample() installs a PrecisionScope, so guidance, polish
  /// and the per-pixel sequential scan all inherit it. kInt8 results are NOT
  /// bit-equal to kFp32 ones; callers that cache by config must key on this.
  Precision precision = Precision::kFp32;
};

class DiffusionSampler : public TopologyGenerator {
 public:
  /// `sequential` selects the within-step sampling order. Sequential
  /// (Gibbs-style) sampling re-queries the denoiser pixel by pixel in a
  /// serpentine scan as the grid is updated, so already-committed
  /// neighbours inform later pixels — this is what lets a local-receptive-
  /// field denoiser nucleate coherent structure (the factorized per-pixel
  /// draw keeps the exact per-pixel marginals but loses the correlations a
  /// global denoiser would carry; see DESIGN.md S2). The factorized mode is
  /// retained for the sampler ablation bench.
  DiffusionSampler(const NoiseSchedule& schedule, const Denoiser& denoiser,
                   bool sequential = true)
      : schedule_(&schedule), denoiser_(&denoiser), sequential_(sequential) {}

  bool sequential() const { return sequential_; }
  void set_sequential(bool sequential) { sequential_ = sequential; }

  /// Mean-matching guidance: when the denoiser reports its training
  /// density, each reverse step applies a uniform logit shift to the p0
  /// predictions so their mean equals that density. A weak local estimator
  /// is systematically under-confident off the data manifold, which makes
  /// the unguided chain drift toward the empty pattern; the shift corrects
  /// the first moment while leaving the spatial ranking of predictions
  /// untouched. Disable for ablation.
  bool guidance() const { return guidance_; }
  void set_guidance(bool guidance) { guidance_ = guidance; }

  /// Descending timestep list {K, ..., 1, 0} with ~`count` visited noisy
  /// steps, spaced uniformly in cumulative flip probability (count 0 or
  /// >= K yields the full list).
  std::vector<int> make_timesteps(int count) const;

  /// Same, but starting from an intermediate noise level `k_start` — used by
  /// the cascade's refinement stage and by polish passes.
  std::vector<int> make_timesteps_from(int k_start, int count) const;

  /// Kind-aware variants (timestep_schedule.h). kSearched uses the list
  /// registered via set_searched_timesteps, restricted to levels <= k_start;
  /// with no registered list it falls back to noise-uniform (counted under
  /// `sampler/searched_fallback`). The degenerate budget (count <= 0 or
  /// >= k_start) yields the full chain for every kind.
  std::vector<int> make_timesteps(int count, ScheduleKind kind) const;
  std::vector<int> make_timesteps_from(int k_start, int count, ScheduleKind kind) const;

  /// Register the offline-searched schedule consulted by kSearched (see
  /// search_timesteps). Validates the list; setup-time mutation like
  /// set_guidance, not safe concurrently with sampling.
  void set_searched_timesteps(std::vector<int> steps);
  const std::vector<int>& searched_timesteps() const { return searched_; }

  /// One reverse jump x_{k_from} -> x_{k_to} (k_to < k_from).
  squish::Topology reverse_step(const squish::Topology& xk, int k_from, int k_to, int condition,
                                util::Rng& rng) const;

  /// Draw one topology.
  squish::Topology sample(const SampleConfig& config, util::Rng& rng) const override;

  /// Masked modification (Equation 12); implemented in modification.cpp.
  squish::Topology modify(const squish::Topology& known, const squish::Topology& keep_mask,
                          const ModifyConfig& config, util::Rng& rng) const override;

  const char* name() const override { return "DiffusionSampler"; }

  /// Sampling mutates no sampler state; safe to fan out iff the denoiser's
  /// inference is.
  bool thread_safe() const override { return denoiser_->thread_safe_inference(); }

  /// Run the reverse chain from a given noisy state at timestep
  /// `timesteps.front()` down the provided descending list (must end at 0).
  squish::Topology sample_from(squish::Topology x, const std::vector<int>& timesteps,
                               int condition, util::Rng& rng) const;

  /// One polish pass: forward-noise `x0` to `polish_k`, reverse back to 0.
  squish::Topology polish(squish::Topology x0, int polish_k, int condition,
                          util::Rng& rng) const;

  /// Deterministic MAP sweep: one sequential pass that sets every pixel to
  /// the argmax of its reverse distribution p(x_0 | x viewed at level k),
  /// with an optional keep mask (empty = none). Injects no sampling noise,
  /// so it removes speckle and upsampling artifacts without jittering
  /// polygon edges — the cascade's fine stage uses it.
  squish::Topology map_polish(squish::Topology x, int k, int condition,
                              const squish::Topology& keep_mask = squish::Topology()) const;

  const NoiseSchedule& schedule() const { return *schedule_; }
  const Denoiser& denoiser() const { return *denoiser_; }

 private:
  squish::Topology reverse_step_factorized(const squish::Topology& xk, int k_from, int k_to,
                                           int condition, util::Rng& rng) const;
  squish::Topology reverse_step_sequential(const squish::Topology& xk, int k_from, int k_to,
                                           int condition, util::Rng& rng) const;

  /// Logit shift lambda such that mean(sigmoid(logit(p0) + lambda)) matches
  /// the denoiser's prior density; 0 when guidance is off or density
  /// unknown.
  double guidance_shift(const squish::Topology& xk, int k_from, int condition) const;

  const NoiseSchedule* schedule_;
  const Denoiser* denoiser_;
  bool sequential_ = true;
  bool guidance_ = true;
  std::vector<int> searched_;  // kSearched visited list; empty = unset
};

}  // namespace cp::diffusion
