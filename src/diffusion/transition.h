#pragma once
// Exact two-state transition algebra for the binary discrete diffusion
// model: forward noising, the posterior q(x_{k-1} | x_k, x_0) and the
// model-marginalised reverse kernel of Equations (5)/(9). With binary
// pixels all sums over the latent x0 have two terms and are evaluated in
// closed form — no approximation.

#include <vector>

#include "diffusion/schedule.h"
#include "squish/topology.h"
#include "util/rng.h"

namespace cp::diffusion {

/// P(flip) channel applied to a single bit: returns P(out = 1 | in).
inline double flip_channel_p1(int in, double flip_prob) {
  return in == 1 ? 1.0 - flip_prob : flip_prob;
}

/// Sample x_k from x_0 under the cumulative channel (Equation 2).
squish::Topology forward_noise(const squish::Topology& x0, const NoiseSchedule& schedule, int k,
                               util::Rng& rng);

/// Exact posterior P(x_j = 1 | x_k, x_0) for a single pixel, where the
/// channel x_0 -> x_j has flip probability `flip_0j` and x_j -> x_k has
/// `flip_jk` (Bayes over the two-state chain).
double posterior_p1(int xk, int x0, double flip_0j, double flip_jk);

/// Reverse kernel with the latent x0 marginalised against the model belief
/// p0 = P(x_0 = 1 | x_k, c): Equation (5)/(9) for one pixel.
double reverse_p1(int xk, double p0, double flip_0j, double flip_jk);

/// One composed reverse jump of a visited-timestep subset: the two exact
/// channels the skipped-step posterior q(x_{k_to} | x_{k_from}, x_0) needs.
/// Because the two-state chain is Markov and channels compose in closed
/// form, the jump posterior built from these is *equal* to marginalising
/// every skipped intermediate step (fast_sampler_test proves it) — few-step
/// sampling approximates only the denoiser evaluations, never the algebra.
struct ComposedJump {
  int k_from = 0, k_to = 0;
  double flip_0to = 0.0;    // cumulative channel x_0   -> x_{k_to}
  double flip_tofrom = 0.0; // composed channel x_{k_to} -> x_{k_from}
};

/// Precompute the composed channels of a descending visited list (front =
/// start level, back = 0). Validates the list shape (strictly decreasing,
/// within [0, K]) and throws std::invalid_argument otherwise.
std::vector<ComposedJump> composed_jumps(const NoiseSchedule& schedule,
                                         const std::vector<int>& timesteps);

}  // namespace cp::diffusion
