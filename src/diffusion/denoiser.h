#pragma once
// Denoiser interface: the learned component of the diffusion model.
//
// A Denoiser estimates p_theta(x_0 | x_k, c) — for every pixel, the
// probability that the clean topology has a 1 there, given the noisy
// topology x_k, the timestep k and the condition (style class) c. The
// sampler, trainer, modification and extension code are all written against
// this interface (substitution S2 in DESIGN.md): the paper's U-Net is one
// possible implementation; this repo ships a counting-based tabular
// estimator (fast, used by the benches) and an MLP trained with Adam (the
// neural path), plus a prior-only control.

#include <vector>

#include "squish/topology.h"

namespace cp::diffusion {

/// Per-pixel probabilities, row-major, same dims as the topology.
using ProbGrid = std::vector<float>;

class Denoiser {
 public:
  virtual ~Denoiser() = default;

  /// Fill `p0` (resized by the callee) with P(x0=1 | xk, k, condition).
  virtual void predict_x0(const squish::Topology& xk, int k, int condition,
                          ProbGrid& p0) const = 0;

  /// P(x0=1) for a single pixel. Local-receptive-field denoisers override
  /// this with an O(1) evaluation; it powers the sequential (Gibbs-style)
  /// reverse sampler, which re-queries the model as the grid is being
  /// updated. The default falls back to a full-grid prediction and is only
  /// acceptable for tests.
  virtual float predict_x0_pixel(const squish::Topology& xk, int r, int c, int k,
                                 int condition) const;

  /// Number of conditions (style classes) the denoiser was trained with.
  virtual int conditions() const = 0;

  /// Marginal fill density of the training data for a condition, or a
  /// negative value when unknown. Drives the sampler's mean-matching
  /// guidance (see DiffusionSampler).
  virtual double prior_density(int condition) const {
    (void)condition;
    return -1.0;
  }

  /// True if concurrent predict_x0/predict_x0_pixel calls on one instance
  /// are race-free. The tabular and uniform denoisers are pure lookups; the
  /// MLP denoiser routes inference through the stateless nn::Layer::infer
  /// path with per-thread workspaces, so all shipped denoisers return true.
  /// diffusion::BatchSampler consults this to decide whether it may fan
  /// sampling out across a thread pool.
  virtual bool thread_safe_inference() const { return false; }

  virtual const char* name() const = 0;
};

/// Prior-only control: predicts the class marginal density everywhere,
/// ignoring x_k. Used in ablations as the "no learning" floor.
class UniformDenoiser : public Denoiser {
 public:
  explicit UniformDenoiser(std::vector<float> class_density)
      : density_(std::move(class_density)) {}
  void predict_x0(const squish::Topology& xk, int k, int condition,
                  ProbGrid& p0) const override;
  float predict_x0_pixel(const squish::Topology& xk, int r, int c, int k,
                         int condition) const override {
    (void)xk;
    (void)r;
    (void)c;
    (void)k;
    return density_[static_cast<std::size_t>(condition)];
  }
  int conditions() const override { return static_cast<int>(density_.size()); }
  bool thread_safe_inference() const override { return true; }
  const char* name() const override { return "UniformDenoiser"; }

 private:
  std::vector<float> density_;
};

}  // namespace cp::diffusion
