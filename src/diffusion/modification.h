#pragma once
// Masked pattern modification (Equation (12); RePaint-style conditioning).
//
// Given an existing topology T0_known, a keep-mask M (1 = keep the pixel)
// and a condition c matching the pattern's style, each reverse step replaces
// the kept region with a forward-noised version of the known topology while
// the model re-generates the masked-out region:
//     T_{k-1} = M ⊙ T^known_{k-1} + (1 - M) ⊙ T^unknown_{k-1}.
// This one primitive powers failed-region repair (agent recovery) and both
// pattern-extension algorithms (extension/ builds the masks).

#include "diffusion/sampler.h"

namespace cp::diffusion {

struct ModifyConfig {
  int condition = 0;
  int sample_steps = 0;  // 0 = full chain
  /// Visited-subset placement for the masked reverse chain; in-painting and
  /// out-painting inherit it via extension::ExtensionConfig, so the fast-
  /// sampling mode covers modification as well as free generation.
  ScheduleKind schedule_kind = ScheduleKind::kNoiseUniform;
  /// RePaint-style resampling: how many times each reverse jump is re-done
  /// (re-noising in between) to harmonise kept and generated regions.
  /// 1 = plain single pass.
  int resample_rounds = 1;
  /// Inference-precision tier for the masked reverse chain; modify_from
  /// installs the PrecisionScope (see SampleConfig::precision).
  Precision precision = Precision::kFp32;
};

/// Regenerate the zero-mask region of `known`. `keep_mask` has the same
/// dims; cells with value 1 are preserved (up to the stochastic forward /
/// reverse consistency — the k=0 output restores them exactly).
squish::Topology modify(const DiffusionSampler& sampler, const squish::Topology& known,
                        const squish::Topology& keep_mask, const ModifyConfig& config,
                        util::Rng& rng);

/// Generalised form: run the masked reverse chain starting from the given
/// state `init` at timestep `k_start` instead of pure noise at K. The
/// cascade's refinement stage uses this to keep coarse structure while
/// re-synthesising fine detail.
squish::Topology modify_from(const DiffusionSampler& sampler, const squish::Topology& known,
                             const squish::Topology& keep_mask, squish::Topology init,
                             int k_start, const ModifyConfig& config, util::Rng& rng);

}  // namespace cp::diffusion
