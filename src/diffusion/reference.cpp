#include "diffusion/reference.h"

#include "diffusion/neighborhood.h"

namespace cp::diffusion {

squish::ByteTopology reference_forward_noise(const squish::ByteTopology& x0,
                                             const NoiseSchedule& schedule, int k,
                                             util::Rng& rng) {
  const double flip = schedule.cumulative_flip(k);
  squish::ByteTopology xk = x0;
  for (int r = 0; r < xk.rows(); ++r) {
    for (int c = 0; c < xk.cols(); ++c) {
      if (rng.bernoulli(flip)) xk.set(r, c, static_cast<std::uint8_t>(1 - xk.at(r, c)));
    }
  }
  return xk;
}

namespace {
// The tabular denoiser's period-folding reflect-101 mirror.
inline int fold_mirror(int i, int n) {
  if (i >= 0 && i < n) return i;
  if (n == 1) return 0;
  const int period = 2 * n - 2;
  i = ((i % period) + period) % period;
  return i < n ? i : period - i;
}
}  // namespace

int reference_neighborhood_index(const squish::ByteTopology& t, int r, int c) {
  int index = 0;
  for (int i = 0; i < neighborhood::kCount; ++i) {
    const int rr = fold_mirror(r + neighborhood::kOffsets[i][0], t.rows());
    const int cc = fold_mirror(c + neighborhood::kOffsets[i][1], t.cols());
    index |= (t.at(rr, cc) != 0) << i;
  }
  return index;
}

std::vector<std::pair<int, int>> reference_row_runs(const squish::ByteTopology& t, int r,
                                                    std::uint8_t value) {
  std::vector<std::pair<int, int>> runs;
  int c = 0;
  while (c < t.cols()) {
    if (t.at(r, c) != value) {
      ++c;
      continue;
    }
    const int start = c;
    while (c < t.cols() && t.at(r, c) == value) ++c;
    runs.emplace_back(start, c);
  }
  return runs;
}

}  // namespace cp::diffusion
