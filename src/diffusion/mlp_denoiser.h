#pragma once
// Neural denoiser: a receptive-field MLP trained with Adam on the BCE
// objective (the cross-entropy term of Equation (10); see trainer.h for the
// full loss discussion). Slower than the tabular estimator but exercises the
// from-scratch NN stack end to end; used by tests, examples and the
// denoiser ablation bench.
//
// Features per pixel: the same 13-cell neighbourhood as the tabular
// denoiser (values ±1), a 4-dim sinusoidal timestep embedding, and the
// class condition one-hot — the "condition embedding added to the time
// embedding" design of the paper collapsed to input features, appropriate
// for an MLP.
//
// Inference is stateless and thread-safe: predict_x0 / predict_x0_pixel run
// through nn::Sequential::infer with a thread-local workspace (packed
// weights cached per Param version, feature/logit buffers reused, and the
// timestep+condition feature tail computed once per diffusion step instead
// of once per pixel). Concurrent calls on one instance never race, so
// thread_safe_inference() returns true and BatchSampler / extension tile
// waves fan out for the MLP. Training still uses the stateful forward().

#include <memory>

#include "diffusion/denoiser.h"
#include "diffusion/schedule.h"
#include "diffusion/tabular_denoiser.h"
#include "nn/layers.h"

namespace cp::diffusion {

struct MlpConfig {
  int conditions = 2;
  int hidden = 64;
  int layers = 2;  // hidden layers
  /// Route predict_x0 / predict_x0_pixel / predict_x0_row through the int8
  /// inference tier unconditionally (DESIGN.md "Quantized inference").
  /// Request-scoped selection via diffusion::PrecisionScope works regardless
  /// of this flag; appended last so positional brace-inits stay valid.
  bool quantized = false;
};

class MlpDenoiser : public Denoiser {
 public:
  MlpDenoiser(const NoiseSchedule& schedule, const MlpConfig& config, util::Rng& rng);

  void predict_x0(const squish::Topology& xk, int k, int condition,
                  ProbGrid& p0) const override;
  float predict_x0_pixel(const squish::Topology& xk, int r, int c, int k,
                         int condition) const override;
  /// Batched pixel query: p(x0=1) for every cell of row `r` in one GEMM
  /// call, writing xk.cols() probabilities to `out`. Equivalent to calling
  /// predict_x0_pixel per column but amortizes the neighbourhood gather and
  /// the kernel launch across the row (bit-identical per pixel on the fp32
  /// path; the interior plane gather produces the same feature values as the
  /// mirrored per-pixel loads and GEMM rows are independent).
  void predict_x0_row(const squish::Topology& xk, int r, int k, int condition,
                      float* out) const;
  int conditions() const override { return config_.conditions; }
  /// Inference runs the stateless nn::Layer::infer path with thread-local
  /// scratch — concurrent calls are race-free.
  bool thread_safe_inference() const override { return true; }
  const char* name() const override { return "MlpDenoiser"; }

  int feature_dim() const;

  /// Features for every pixel of `xk`: tensor [rows*cols, feature_dim].
  nn::Tensor build_features(const squish::Topology& xk, int k, int condition) const;

  /// Features for a single pixel (used by the minibatch trainer).
  void pixel_features(const squish::Topology& xk, int r, int c, int k, int condition,
                      float* out) const;

  nn::Sequential& net() { return net_; }
  const NoiseSchedule& schedule() const { return *schedule_; }

 private:
  /// True when this call should take the int8 tier: the config opts in, or
  /// the calling thread's PrecisionScope (diffusion/precision.h) requests
  /// kInt8 — and the net matches the quantizable stack pattern.
  bool use_int8() const;

  const NoiseSchedule* schedule_;
  MlpConfig config_;
  // Inference uses the const, stateless infer() path; only the trainer
  // (via net()) runs the stateful forward()/backward().
  nn::Sequential net_;
};

}  // namespace cp::diffusion
