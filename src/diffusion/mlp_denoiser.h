#pragma once
// Neural denoiser: a receptive-field MLP trained with Adam on the BCE
// objective (the cross-entropy term of Equation (10); see trainer.h for the
// full loss discussion). Slower than the tabular estimator but exercises the
// from-scratch NN stack end to end; used by tests, examples and the
// denoiser ablation bench.
//
// Features per pixel: the same 13-cell neighbourhood as the tabular
// denoiser (values ±1), a 4-dim sinusoidal timestep embedding, and the
// class condition one-hot — the "condition embedding added to the time
// embedding" design of the paper collapsed to input features, appropriate
// for an MLP.

#include <memory>

#include "diffusion/denoiser.h"
#include "diffusion/schedule.h"
#include "diffusion/tabular_denoiser.h"
#include "nn/layers.h"

namespace cp::diffusion {

struct MlpConfig {
  int conditions = 2;
  int hidden = 64;
  int layers = 2;  // hidden layers
};

class MlpDenoiser : public Denoiser {
 public:
  MlpDenoiser(const NoiseSchedule& schedule, const MlpConfig& config, util::Rng& rng);

  void predict_x0(const squish::Topology& xk, int k, int condition,
                  ProbGrid& p0) const override;
  float predict_x0_pixel(const squish::Topology& xk, int r, int c, int k,
                         int condition) const override;
  int conditions() const override { return config_.conditions; }
  const char* name() const override { return "MlpDenoiser"; }

  int feature_dim() const;

  /// Features for every pixel of `xk`: tensor [rows*cols, feature_dim].
  nn::Tensor build_features(const squish::Topology& xk, int k, int condition) const;

  /// Features for a single pixel (used by the minibatch trainer).
  void pixel_features(const squish::Topology& xk, int r, int c, int k, int condition,
                      float* out) const;

  nn::Sequential& net() { return net_; }
  const NoiseSchedule& schedule() const { return *schedule_; }

 private:
  const NoiseSchedule* schedule_;
  MlpConfig config_;
  mutable nn::Sequential net_;  // forward() caches per batch; logically const
};

}  // namespace cp::diffusion
