#pragma once
// Crash-safe checkpoint/resume for the MLP trainer.
//
// A checkpoint captures every piece of mutable training state — network
// parameters, Adam moments + step count, and the trainer's RNG state — so
// a run resumed from iteration k produces weights bit-identical to an
// uninterrupted run (see tests/diffusion/checkpoint_test.cpp). The file is
// written with util::atomic_write_file_checksummed: a crash mid-save leaves
// the previous checkpoint intact, and a torn/corrupted file is detected by
// the CRC32 trailer on load.
//
// File layout (little-endian, after the CPCK trailer is stripped):
//   magic "CPTC" | version u32 | fingerprint (iterations, batch_pixels,
//   seed, param count) | next_iter i32 | Rng::State | nn::save_params |
//   Adam::save_state
//
// The fingerprint ties a checkpoint to its TrainConfig: resuming with a
// different iteration budget, batch size, seed or model architecture is a
// different trajectory, so load returns false (start fresh) rather than
// splicing incompatible state.

#include <string>

#include "diffusion/mlp_denoiser.h"
#include "diffusion/trainer.h"
#include "nn/optim.h"
#include "util/rng.h"

namespace cp::diffusion {

/// Atomically write the full trainer state. `next_iter` is the first
/// iteration the resumed run should execute. Throws std::runtime_error on
/// I/O failure (the previous checkpoint, if any, is left intact).
void save_trainer_checkpoint(const std::string& path, MlpDenoiser& model, const nn::Adam& opt,
                             const util::Rng& rng, int next_iter, const TrainConfig& config);

/// Restore trainer state from `path`.
///   * missing file, or fingerprint mismatch with `config` -> returns false
///     (caller trains from scratch);
///   * matching checkpoint -> restores model/opt/rng, sets *next_iter,
///     returns true;
///   * corrupt file (bad magic, truncation, checksum mismatch) -> throws
///     std::runtime_error.
bool load_trainer_checkpoint(const std::string& path, MlpDenoiser& model, nn::Adam& opt,
                             util::Rng& rng, int* next_iter, const TrainConfig& config);

}  // namespace cp::diffusion
