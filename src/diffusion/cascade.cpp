#include "diffusion/cascade.h"

#include <stdexcept>

#include "obs/registry.h"

namespace cp::diffusion {

CascadeSampler::CascadeSampler(const NoiseSchedule& schedule, const Denoiser& coarse,
                               const Denoiser& fine, const CascadeConfig& config)
    : coarse_(schedule, coarse), fine_(schedule, fine), config_(config) {
  if (config.factor < 1) throw std::invalid_argument("CascadeSampler: bad factor");
}

squish::Topology CascadeSampler::refine(const squish::Topology& coarse_up,
                                        const squish::Topology& known,
                                        const squish::Topology& keep_mask, int condition,
                                        int steps, util::Rng& rng) const {
  const obs::Span span = obs::trace_scope("refine");
  squish::Topology x = coarse_up;

  if (config_.refine_flip > 0.0) {
    // Optional stochastic refinement (ablation mode): restart the masked
    // reverse chain from an intermediate noise level.
    const NoiseSchedule& schedule = fine_.schedule();
    const int k_mid = std::max(1, schedule.step_for_flip(config_.refine_flip));
    squish::Topology init = forward_noise(x, schedule, k_mid, rng);
    ModifyConfig mc;
    mc.condition = condition;
    mc.sample_steps = steps;
    mc.schedule_kind = config_.schedule_kind;
    // refine() always runs inside the caller's PrecisionScope (sample() and
    // modify() install one from their config); carry it into the sub-chain
    // so modify_from's own scope does not reset the tier.
    mc.precision = active_precision();
    if (keep_mask.empty()) {
      squish::Topology no_keep(x.rows(), x.cols(), 0);
      x = modify_from(fine_, x, no_keep, std::move(init), k_mid, mc, rng);
    } else {
      x = modify_from(fine_, known, keep_mask, std::move(init), k_mid, mc, rng);
    }
  }

  // Deterministic MAP polish: correct upsampling artifacts and speckle
  // without re-jittering edges. Kept cells are pinned by the mask; as the
  // final safeguard the kept region is restored exactly.
  for (int round = 0; round < config_.polish_rounds; ++round) {
    x = fine_.map_polish(std::move(x), config_.polish_k, condition, keep_mask);
  }
  if (!keep_mask.empty()) {
    for (int r = 0; r < x.rows(); ++r) {
      for (int c = 0; c < x.cols(); ++c) {
        if (keep_mask.at(r, c)) x.set(r, c, known.at(r, c));
      }
    }
  }
  return x;
}

squish::Topology CascadeSampler::sample(const SampleConfig& config, util::Rng& rng) const {
  if (config.rows < 1 || config.cols < 1) {
    throw std::invalid_argument("CascadeSampler::sample: bad dims");
  }
  if (config.rows % config_.factor != 0 || config.cols % config_.factor != 0) {
    // Round up to the cascade grid and crop — callers may ask for any size.
    SampleConfig padded = config;
    padded.rows = (config.rows + config_.factor - 1) / config_.factor * config_.factor;
    padded.cols = (config.cols + config_.factor - 1) / config_.factor * config_.factor;
    return sample(padded, rng).window(0, 0, config.rows, config.cols);
  }
  const obs::Span span = obs::trace_scope("sampler/cascade_sample");
  obs::count("sampler/cascade_samples");
  // Covers the direct map_polish calls; the staged sub-configs carry the
  // field explicitly so their own scopes re-install the same tier.
  const PrecisionScope precision_scope(config.precision);
  SampleConfig coarse_cfg;
  coarse_cfg.rows = config.rows / config_.factor;
  coarse_cfg.cols = config.cols / config_.factor;
  coarse_cfg.condition = config.condition;
  coarse_cfg.sample_steps = config_.coarse_steps;
  coarse_cfg.schedule_kind = config_.schedule_kind;
  coarse_cfg.polish_rounds = 0;  // MAP consolidation below replaces it
  coarse_cfg.precision = config.precision;
  squish::Topology coarse = coarse_.sample(coarse_cfg, rng);
  for (int round = 0; round < config_.polish_rounds; ++round) {
    coarse = coarse_.map_polish(std::move(coarse), config_.polish_k, config.condition);
  }
  const squish::Topology up = squish::upsample_nearest(coarse, config_.factor);
  return refine(up, squish::Topology(), squish::Topology(), config.condition,
                config_.refine_steps, rng);
}

void CascadeSampler::set_searched_timesteps(std::vector<int> coarse, std::vector<int> fine) {
  coarse_.set_searched_timesteps(std::move(coarse));
  fine_.set_searched_timesteps(std::move(fine));
}

std::vector<int> CascadeSampler::coarse_timesteps() const {
  return coarse_.make_timesteps(config_.coarse_steps, config_.schedule_kind);
}

int CascadeSampler::refine_start_level() const {
  if (config_.refine_flip <= 0.0) return 0;
  return std::max(1, fine_.schedule().step_for_flip(config_.refine_flip));
}

std::vector<int> CascadeSampler::refine_timesteps() const {
  const int k_mid = refine_start_level();
  if (k_mid == 0) return {};
  return fine_.make_timesteps_from(k_mid, config_.refine_steps, config_.schedule_kind);
}

squish::Topology CascadeSampler::modify(const squish::Topology& known,
                                        const squish::Topology& keep_mask,
                                        const ModifyConfig& config, util::Rng& rng) const {
  if (known.rows() % config_.factor != 0 || known.cols() % config_.factor != 0) {
    // Fall back to single-resolution modification for odd sizes.
    return fine_.modify(known, keep_mask, config, rng);
  }
  // Covers the direct map_polish calls between the staged sub-chains (the
  // coarse_cfg copy below inherits `precision` with the other fields).
  const PrecisionScope precision_scope(config.precision);
  // Coarse stage: masked generation at low resolution. The coarse keep mask
  // marks a cell as kept only if its whole block is kept, so the coarse
  // stage is free wherever any fine cell needs regeneration.
  const squish::Topology coarse_known = squish::downsample_majority(known, config_.factor);
  squish::Topology coarse_keep(coarse_known.rows(), coarse_known.cols(), 0);
  for (int r = 0; r < coarse_keep.rows(); ++r) {
    for (int c = 0; c < coarse_keep.cols(); ++c) {
      bool all_kept = true;
      for (int dr = 0; dr < config_.factor && all_kept; ++dr) {
        for (int dc = 0; dc < config_.factor && all_kept; ++dc) {
          all_kept = keep_mask.at(r * config_.factor + dr, c * config_.factor + dc) != 0;
        }
      }
      coarse_keep.set(r, c, all_kept ? 1 : 0);
    }
  }
  ModifyConfig coarse_cfg = config;
  coarse_cfg.sample_steps = config_.coarse_steps;
  coarse_cfg.schedule_kind = config_.schedule_kind;
  squish::Topology coarse = coarse_.modify(coarse_known, coarse_keep, coarse_cfg, rng);
  for (int round = 0; round < config_.polish_rounds / 2; ++round) {
    coarse = coarse_.map_polish(std::move(coarse), config_.polish_k, config.condition,
                                coarse_keep);
  }
  for (int r = 0; r < coarse.rows(); ++r) {
    for (int c = 0; c < coarse.cols(); ++c) {
      if (coarse_keep.at(r, c)) coarse.set(r, c, coarse_known.at(r, c));
    }
  }
  const squish::Topology up = squish::upsample_nearest(coarse, config_.factor);

  // Fine stage: refine the upsampled result under the exact mask. Blend the
  // upsampled coarse guess into the regenerated region of the init state.
  squish::Topology blended = known;
  for (int r = 0; r < blended.rows(); ++r) {
    for (int c = 0; c < blended.cols(); ++c) {
      if (!keep_mask.at(r, c)) blended.set(r, c, up.at(r, c));
    }
  }
  return refine(blended, known, keep_mask, config.condition,
                std::max(config.sample_steps, config_.refine_steps), rng);
}

}  // namespace cp::diffusion
