#pragma once
// Parallel batch generation with deterministic per-sample RNG streams.
//
// The evaluation harness (Table 1, Figures 8-10) draws thousands of
// diffusion samples per run; each draw is independent, so the batch is an
// embarrassingly parallel fan-out. BatchSampler spreads
// TopologyGenerator::sample / modify calls across a util::ThreadPool under
// one invariant:
//
//     sample i always consumes Rng stream root.fork(i) and writes only
//     slot i of the output vector,
//
// which makes the batch output *bit-identical for every thread count*
// (including the no-pool serial path). Thread scheduling decides only who
// computes a slot, never what the slot contains. tests/diffusion/
// batch_sampler_test.cpp locks this property in.
//
// If the generator reports !thread_safe(), the batch degrades to the serial
// path — same output, no races — and the degradation is recorded via the
// `batch_sampler/serial_fallback` counter plus a warn-level log line. All
// shipped denoisers (tabular, uniform, MLP) are thread-safe for inference,
// so in practice this only fires for custom generators.

#include <vector>

#include "diffusion/generator.h"
#include "diffusion/modification.h"
#include "diffusion/sampler.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cp::diffusion {

class BatchSampler {
 public:
  /// `pool` may be null (serial). The pool is borrowed, not owned, so one
  /// pool can serve trainer, sampler and extension fan-outs.
  explicit BatchSampler(const TopologyGenerator& generator, util::ThreadPool* pool = nullptr)
      : generator_(&generator), pool_(pool) {}

  const TopologyGenerator& generator() const { return *generator_; }
  util::ThreadPool* pool() const { return pool_; }

  /// True if sampling will actually fan out (pool present, > 1 worker, and
  /// the generator is race-free).
  bool parallel() const;

  /// Draw `count` samples; sample i uses stream root.fork(first_stream + i).
  /// `first_stream` lets callers that generate in rounds (e.g. legal-pattern
  /// selection) keep one global stream numbering across calls.
  std::vector<squish::Topology> sample_batch(const SampleConfig& config, int count,
                                             const util::Rng& root,
                                             std::uint64_t first_stream = 0) const;

  /// Convenience overload seeding the root stream directly.
  std::vector<squish::Topology> sample_batch(const SampleConfig& config, int count,
                                             std::uint64_t root_seed) const {
    return sample_batch(config, count, util::Rng(root_seed));
  }

  /// Masked modification fan-out: result i = modify(known[i], keep_mask[i])
  /// under stream root.fork(i). The two spans must have equal length.
  std::vector<squish::Topology> modify_batch(const std::vector<squish::Topology>& known,
                                             const std::vector<squish::Topology>& keep_masks,
                                             const ModifyConfig& config,
                                             const util::Rng& root) const;

  /// One heterogeneous fan-out job: sample `config` under stream
  /// root.fork(stream). Jobs from *different* logical requests (different
  /// root seeds) can share one sample_jobs invocation — this is what lets a
  /// serving-layer batcher coalesce queued requests into a single fan-out
  /// while each request keeps its own deterministic stream numbering.
  struct SampleJob {
    SampleConfig config;
    util::Rng root;
    std::uint64_t stream = 0;
  };

  /// Run every job (slot i holds the result of jobs[i]) across the pool.
  /// Output depends only on each job's (config, root seed, stream), never on
  /// thread count or batch composition.
  std::vector<squish::Topology> sample_jobs(const std::vector<SampleJob>& jobs) const;

 private:
  const TopologyGenerator* generator_;
  util::ThreadPool* pool_;
};

}  // namespace cp::diffusion
