#include "diffusion/precision.h"

namespace cp::diffusion {

namespace {
thread_local Precision g_active = Precision::kFp32;
}  // namespace

Precision active_precision() { return g_active; }

PrecisionScope::PrecisionScope(Precision p) : prev_(g_active) { g_active = p; }

PrecisionScope::~PrecisionScope() { g_active = prev_; }

const char* to_string(Precision p) {
  return p == Precision::kInt8 ? "int8" : "fp32";
}

bool precision_from_string(const std::string& s, Precision* out) {
  if (s == "fp32") {
    *out = Precision::kFp32;
    return true;
  }
  if (s == "int8") {
    *out = Precision::kInt8;
    return true;
  }
  return false;
}

}  // namespace cp::diffusion
