#include "diffusion/mlp_denoiser.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "diffusion/neighborhood.h"
#include "diffusion/precision.h"
#include "nn/gemm.h"

namespace cp::diffusion {

namespace {
constexpr int kTimeFeatures = 4;

// Canonical offset table shared with the tabular denoiser; order defines the
// feature layout.
constexpr auto& kOffsets = neighborhood::kOffsets;

// Single-reflection boundary padding. Deliberately NOT the tabular denoiser's
// period-folding mirror: the two rules differ on grids smaller than the
// distance-4 probes, and each module keeps its historical behaviour.
inline int mirror(int i, int n) {
  if (i < 0) return -i;
  if (i >= n) return 2 * n - 2 - i;
  return i;
}

inline void neighbor_features(const squish::Topology& xk, int r, int c, float* out) {
  for (int i = 0; i < TabularDenoiser::kNeighbors; ++i) {
    const int rr = mirror(r + kOffsets[i][0], xk.rows());
    const int cc = mirror(c + kOffsets[i][1], xk.cols());
    out[i] = xk.at(rr, cc) ? 1.0f : -1.0f;
  }
}

/// Largest |offset| in kOffsets: pixels at least this far from every border
/// need no mirror reflection and can read straight from the packed planes.
constexpr int kNeighborMargin = neighborhood::kMargin;

/// Feature write from the 17 gathered bit-planes: lane j of plane i is the
/// neighbour-i value of cell (r, word*64 + j). Values are identical to
/// neighbor_features (same cells), with register shifts instead of 17
/// scattered loads plus mirror branches.
inline void neighbor_features_from_planes(const std::uint64_t* planes, int lane, float* out) {
  for (int i = 0; i < TabularDenoiser::kNeighbors; ++i) {
    out[i] = ((planes[i] >> lane) & 1u) ? 1.0f : -1.0f;
  }
}

/// Per-thread inference scratch. One instance per thread regardless of how
/// many denoisers exist: the workspace keys its packed-weight cache by
/// (Param address, version) and the feature tail is keyed by the scalar
/// values it is computed from, so sharing across instances is safe.
struct InferCtx {
  nn::Workspace ws;
  nn::Tensor features;
  // int8 path: int16 feature rows built directly (no float staging) plus the
  // constant per-row scales. Every MLP feature has |v| <= 1 and the
  // neighbours are exactly +/-1, so the per-row absmax is exactly 1.0 and
  // the direct construction below reproduces gemm::quantize_rows on the
  // float features bit-for-bit: rs = 1/127, q = lrintf(v * 127).
  std::vector<std::int16_t> qfeatures;
  std::vector<float> qrs;
  // Timestep + condition feature tail, identical for every pixel of a
  // diffusion step. Cached on the values that fully determine it (the
  // quantized tail is derived in the same refresh).
  std::vector<float> tail;
  std::vector<std::int16_t> qtail;
  bool tail_valid = false;
  double tail_t = 0.0;
  float tail_flip = 0.0f;
  int tail_conditions = -1;
  int tail_cond = -1;
};

InferCtx& infer_ctx() {
  static thread_local InferCtx ctx;
  return ctx;
}

/// The tail is a pure function of (t, flip, conditions, cond); recompute
/// only when one of those changes (i.e. once per diffusion step, not once
/// per pixel). Bit-identical to the inline computation in pixel_features.
const float* cached_tail(InferCtx& ctx, double t, float flip, int conditions, int cond) {
  if (!ctx.tail_valid || ctx.tail_t != t || ctx.tail_flip != flip ||
      ctx.tail_conditions != conditions || ctx.tail_cond != cond) {
    ctx.tail.resize(static_cast<std::size_t>(kTimeFeatures + conditions));
    ctx.tail[0] = static_cast<float>(t);
    ctx.tail[1] = static_cast<float>(std::sin(2.0 * std::numbers::pi * t));
    ctx.tail[2] = static_cast<float>(std::cos(2.0 * std::numbers::pi * t));
    ctx.tail[3] = flip;
    for (int s = 0; s < conditions; ++s) {
      ctx.tail[static_cast<std::size_t>(kTimeFeatures + s)] = (s == cond) ? 1.0f : 0.0f;
    }
    ctx.qtail.resize(ctx.tail.size());
    for (std::size_t j = 0; j < ctx.tail.size(); ++j) {
      ctx.qtail[j] = static_cast<std::int16_t>(std::lrintf(ctx.tail[j] * 127.0f));
    }
    ctx.tail_valid = true;
    ctx.tail_t = t;
    ctx.tail_flip = flip;
    ctx.tail_conditions = conditions;
    ctx.tail_cond = cond;
  }
  return ctx.tail.data();
}

/// int16 twin of neighbor_features: +/-1 quantizes to exactly +/-127.
inline void qneighbor_features(const squish::Topology& xk, int r, int c, std::int16_t* out) {
  for (int i = 0; i < TabularDenoiser::kNeighbors; ++i) {
    const int rr = mirror(r + kOffsets[i][0], xk.rows());
    const int cc = mirror(c + kOffsets[i][1], xk.cols());
    out[i] = xk.at(rr, cc) ? std::int16_t{127} : std::int16_t{-127};
  }
}

/// int16 twin of neighbor_features_from_planes.
inline void qneighbor_features_from_planes(const std::uint64_t* planes, int lane,
                                           std::int16_t* out) {
  for (int i = 0; i < TabularDenoiser::kNeighbors; ++i) {
    out[i] = ((planes[i] >> lane) & 1u) ? std::int16_t{127} : std::int16_t{-127};
  }
}

}  // namespace

MlpDenoiser::MlpDenoiser(const NoiseSchedule& schedule, const MlpConfig& config, util::Rng& rng)
    : schedule_(&schedule), config_(config) {
  if (config.conditions < 1 || config.hidden < 1 || config.layers < 1) {
    throw std::invalid_argument("MlpDenoiser: bad config");
  }
  int in = feature_dim();
  for (int i = 0; i < config.layers; ++i) {
    net_.add(std::make_unique<nn::Linear>(in, config.hidden, rng));
    net_.add(std::make_unique<nn::SiLU>());
    in = config.hidden;
  }
  net_.add(std::make_unique<nn::Linear>(in, 1, rng));
}

int MlpDenoiser::feature_dim() const {
  return TabularDenoiser::kNeighbors + kTimeFeatures + config_.conditions;
}

void MlpDenoiser::pixel_features(const squish::Topology& xk, int r, int c, int k, int condition,
                                 float* out) const {
  neighbor_features(xk, r, c, out);
  int idx = TabularDenoiser::kNeighbors;
  const double t = static_cast<double>(k) / static_cast<double>(schedule_->steps());
  out[idx++] = static_cast<float>(t);
  out[idx++] = static_cast<float>(std::sin(2.0 * std::numbers::pi * t));
  out[idx++] = static_cast<float>(std::cos(2.0 * std::numbers::pi * t));
  out[idx++] = static_cast<float>(schedule_->cumulative_flip(k));
  for (int s = 0; s < config_.conditions; ++s) out[idx++] = (s == condition) ? 1.0f : 0.0f;
}

nn::Tensor MlpDenoiser::build_features(const squish::Topology& xk, int k, int condition) const {
  const int n = xk.rows() * xk.cols();
  nn::Tensor features({n, feature_dim()});
  int row = 0;
  for (int r = 0; r < xk.rows(); ++r) {
    for (int c = 0; c < xk.cols(); ++c) {
      pixel_features(xk, r, c, k, condition,
                     features.data() + static_cast<std::size_t>(row) * feature_dim());
      ++row;
    }
  }
  return features;
}

bool MlpDenoiser::use_int8() const {
  return (config_.quantized || active_precision() == Precision::kInt8) && net_.quantizable();
}

float MlpDenoiser::predict_x0_pixel(const squish::Topology& xk, int r, int c, int k,
                                    int condition) const {
  InferCtx& ctx = infer_ctx();
  const int dim = feature_dim();
  const double t = static_cast<double>(k) / static_cast<double>(schedule_->steps());
  const float flip = static_cast<float>(schedule_->cumulative_flip(k));
  const float* tail = cached_tail(ctx, t, flip, config_.conditions, condition);
  const int tail_len = kTimeFeatures + config_.conditions;
  float logit;
  if (use_int8()) {
    const int pin = nn::gemm::quant_pad(dim);
    ctx.qfeatures.resize(static_cast<std::size_t>(pin));
    ctx.qrs.assign(1, 1.0f / 127.0f);
    std::int16_t* qrow = ctx.qfeatures.data();
    qneighbor_features(xk, r, c, qrow);
    std::copy(ctx.qtail.data(), ctx.qtail.data() + tail_len,
              qrow + TabularDenoiser::kNeighbors);
    for (int j = dim; j < pin; ++j) qrow[j] = 0;
    logit = net_.infer_quantized_pre(1, qrow, ctx.qrs.data(), ctx.ws)[0];
  } else {
    ctx.features.resize(1, dim);
    float* row = ctx.features.data();
    neighbor_features(xk, r, c, row);
    std::copy(tail, tail + tail_len, row + TabularDenoiser::kNeighbors);
    logit = net_.infer(ctx.features, ctx.ws)[0];
  }
  return 1.0f / (1.0f + std::exp(-logit));
}

void MlpDenoiser::predict_x0_row(const squish::Topology& xk, int r, int k, int condition,
                                 float* out) const {
  if (condition < 0 || condition >= config_.conditions) {
    throw std::out_of_range("MlpDenoiser::predict_x0_row: bad condition");
  }
  if (r < 0 || r >= xk.rows()) {
    throw std::out_of_range("MlpDenoiser::predict_x0_row: bad row");
  }
  InferCtx& ctx = infer_ctx();
  const int n = xk.cols();
  const int dim = feature_dim();
  const double t = static_cast<double>(k) / static_cast<double>(schedule_->steps());
  const float flip = static_cast<float>(schedule_->cumulative_flip(k));
  const float* tail = cached_tail(ctx, t, flip, config_.conditions, condition);
  const int tail_len = kTimeFeatures + config_.conditions;
  std::uint64_t planes[TabularDenoiser::kNeighbors];
  const bool r_interior = r >= kNeighborMargin && r < xk.rows() - kNeighborMargin;
  const nn::Tensor* logits;
  if (use_int8()) {
    const int pin = nn::gemm::quant_pad(dim);
    ctx.qfeatures.resize(static_cast<std::size_t>(n) * pin);
    ctx.qrs.assign(static_cast<std::size_t>(n), 1.0f / 127.0f);
    std::int16_t* qrow = ctx.qfeatures.data();
    int word = -1;
    for (int c = 0; c < n; ++c, qrow += pin) {
      if (r_interior && c >= kNeighborMargin && c < n - kNeighborMargin) {
        if (c >> 6 != word) {
          word = c >> 6;
          neighborhood::gather_planes(xk, r, word, planes);
        }
        qneighbor_features_from_planes(planes, c & 63, qrow);
      } else {
        qneighbor_features(xk, r, c, qrow);
      }
      std::copy(ctx.qtail.data(), ctx.qtail.data() + tail_len,
                qrow + TabularDenoiser::kNeighbors);
      for (int j = dim; j < pin; ++j) qrow[j] = 0;
    }
    logits = &net_.infer_quantized_pre(n, ctx.qfeatures.data(), ctx.qrs.data(), ctx.ws);
  } else {
    ctx.features.resize(n, dim);
    float* row = ctx.features.data();
    int word = -1;
    for (int c = 0; c < n; ++c, row += dim) {
      if (r_interior && c >= kNeighborMargin && c < n - kNeighborMargin) {
        if (c >> 6 != word) {
          word = c >> 6;
          neighborhood::gather_planes(xk, r, word, planes);
        }
        neighbor_features_from_planes(planes, c & 63, row);
      } else {
        neighbor_features(xk, r, c, row);
      }
      std::copy(tail, tail + tail_len, row + TabularDenoiser::kNeighbors);
    }
    logits = &net_.infer(ctx.features, ctx.ws);
  }
  for (int c = 0; c < n; ++c) {
    out[c] = 1.0f / (1.0f + std::exp(-(*logits)[c]));
  }
}

void MlpDenoiser::predict_x0(const squish::Topology& xk, int k, int condition,
                             ProbGrid& p0) const {
  if (condition < 0 || condition >= config_.conditions) {
    throw std::out_of_range("MlpDenoiser::predict_x0: bad condition");
  }
  InferCtx& ctx = infer_ctx();
  const int n = xk.rows() * xk.cols();
  const int dim = feature_dim();
  const double t = static_cast<double>(k) / static_cast<double>(schedule_->steps());
  const float flip = static_cast<float>(schedule_->cumulative_flip(k));
  const float* tail = cached_tail(ctx, t, flip, config_.conditions, condition);
  const int tail_len = kTimeFeatures + config_.conditions;
  std::uint64_t planes[TabularDenoiser::kNeighbors];
  const nn::Tensor* logits;
  if (use_int8()) {
    const int pin = nn::gemm::quant_pad(dim);
    ctx.qfeatures.resize(static_cast<std::size_t>(n) * pin);
    ctx.qrs.assign(static_cast<std::size_t>(n), 1.0f / 127.0f);
    std::int16_t* qrow = ctx.qfeatures.data();
    for (int r = 0; r < xk.rows(); ++r) {
      const bool r_interior = r >= kNeighborMargin && r < xk.rows() - kNeighborMargin;
      int word = -1;  // word index currently held in `planes`
      for (int c = 0; c < xk.cols(); ++c, qrow += pin) {
        if (r_interior && c >= kNeighborMargin && c < xk.cols() - kNeighborMargin) {
          if (c >> 6 != word) {
            word = c >> 6;
            neighborhood::gather_planes(xk, r, word, planes);
          }
          qneighbor_features_from_planes(planes, c & 63, qrow);
        } else {
          qneighbor_features(xk, r, c, qrow);
        }
        std::copy(ctx.qtail.data(), ctx.qtail.data() + tail_len,
                  qrow + TabularDenoiser::kNeighbors);
        for (int j = dim; j < pin; ++j) qrow[j] = 0;
      }
    }
    logits = &net_.infer_quantized_pre(n, ctx.qfeatures.data(), ctx.qrs.data(), ctx.ws);
  } else {
    ctx.features.resize(n, dim);
    float* row = ctx.features.data();
    for (int r = 0; r < xk.rows(); ++r) {
      const bool r_interior = r >= kNeighborMargin && r < xk.rows() - kNeighborMargin;
      int word = -1;  // word index currently held in `planes`
      for (int c = 0; c < xk.cols(); ++c, row += dim) {
        if (r_interior && c >= kNeighborMargin && c < xk.cols() - kNeighborMargin) {
          if (c >> 6 != word) {
            word = c >> 6;
            neighborhood::gather_planes(xk, r, word, planes);
          }
          neighbor_features_from_planes(planes, c & 63, row);
        } else {
          neighbor_features(xk, r, c, row);
        }
        std::copy(tail, tail + tail_len, row + TabularDenoiser::kNeighbors);
      }
    }
    logits = &net_.infer(ctx.features, ctx.ws);
  }
  p0.resize(xk.size());
  for (std::size_t i = 0; i < p0.size(); ++i) {
    p0[i] = 1.0f / (1.0f + std::exp(-(*logits)[i]));
  }
}

}  // namespace cp::diffusion
