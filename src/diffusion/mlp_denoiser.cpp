#include "diffusion/mlp_denoiser.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cp::diffusion {

namespace {
constexpr int kTimeFeatures = 4;

constexpr int kOffsets[TabularDenoiser::kNeighbors][2] = {
    {0, 0},  {-1, 0}, {1, 0},  {0, -1}, {0, 1},  {-1, -1}, {-1, 1},  {1, -1}, {1, 1},
    {-2, 0}, {2, 0},  {0, -2}, {0, 2},  {-4, 0}, {4, 0},   {0, -4},  {0, 4},
};

inline int mirror(int i, int n) {
  if (i < 0) return -i;
  if (i >= n) return 2 * n - 2 - i;
  return i;
}
}  // namespace

MlpDenoiser::MlpDenoiser(const NoiseSchedule& schedule, const MlpConfig& config, util::Rng& rng)
    : schedule_(&schedule), config_(config) {
  if (config.conditions < 1 || config.hidden < 1 || config.layers < 1) {
    throw std::invalid_argument("MlpDenoiser: bad config");
  }
  int in = feature_dim();
  for (int i = 0; i < config.layers; ++i) {
    net_.add(std::make_unique<nn::Linear>(in, config.hidden, rng));
    net_.add(std::make_unique<nn::SiLU>());
    in = config.hidden;
  }
  net_.add(std::make_unique<nn::Linear>(in, 1, rng));
}

int MlpDenoiser::feature_dim() const {
  return TabularDenoiser::kNeighbors + kTimeFeatures + config_.conditions;
}

void MlpDenoiser::pixel_features(const squish::Topology& xk, int r, int c, int k, int condition,
                                 float* out) const {
  int idx = 0;
  for (int i = 0; i < TabularDenoiser::kNeighbors; ++i) {
    const int rr = mirror(r + kOffsets[i][0], xk.rows());
    const int cc = mirror(c + kOffsets[i][1], xk.cols());
    out[idx++] = xk.at(rr, cc) ? 1.0f : -1.0f;
  }
  const double t = static_cast<double>(k) / static_cast<double>(schedule_->steps());
  out[idx++] = static_cast<float>(t);
  out[idx++] = static_cast<float>(std::sin(2.0 * std::numbers::pi * t));
  out[idx++] = static_cast<float>(std::cos(2.0 * std::numbers::pi * t));
  out[idx++] = static_cast<float>(schedule_->cumulative_flip(k));
  for (int s = 0; s < config_.conditions; ++s) out[idx++] = (s == condition) ? 1.0f : 0.0f;
}

nn::Tensor MlpDenoiser::build_features(const squish::Topology& xk, int k, int condition) const {
  const int n = xk.rows() * xk.cols();
  nn::Tensor features({n, feature_dim()});
  int row = 0;
  for (int r = 0; r < xk.rows(); ++r) {
    for (int c = 0; c < xk.cols(); ++c) {
      pixel_features(xk, r, c, k, condition,
                     features.data() + static_cast<std::size_t>(row) * feature_dim());
      ++row;
    }
  }
  return features;
}

float MlpDenoiser::predict_x0_pixel(const squish::Topology& xk, int r, int c, int k,
                                    int condition) const {
  nn::Tensor features({1, feature_dim()});
  pixel_features(xk, r, c, k, condition, features.data());
  const nn::Tensor logits = net_.forward(features);
  return 1.0f / (1.0f + std::exp(-logits[0]));
}

void MlpDenoiser::predict_x0(const squish::Topology& xk, int k, int condition,
                             ProbGrid& p0) const {
  if (condition < 0 || condition >= config_.conditions) {
    throw std::out_of_range("MlpDenoiser::predict_x0: bad condition");
  }
  const nn::Tensor features = build_features(xk, k, condition);
  const nn::Tensor logits = net_.forward(features);
  p0.resize(xk.size());
  for (std::size_t i = 0; i < p0.size(); ++i) {
    p0[i] = 1.0f / (1.0f + std::exp(-logits[i]));
  }
}

}  // namespace cp::diffusion
