#include "diffusion/batch_sampler.h"

#include <stdexcept>

#include "obs/registry.h"
#include "util/logging.h"

namespace cp::diffusion {

namespace {

/// Count (and log) the case where a pool was provided but the generator is
/// not race-free, so the batch runs serially. Silent before; now visible in
/// run manifests as `batch_sampler/serial_fallback`.
void note_serial_fallback(const BatchSampler& sampler, const char* what) {
  if (sampler.pool() != nullptr && sampler.pool()->size() > 1 &&
      !sampler.generator().thread_safe()) {
    obs::count("batch_sampler/serial_fallback", 1);
    CP_LOG_WARN << "BatchSampler::" << what << ": generator '"
                << sampler.generator().name() << "' is not thread-safe; "
                << "running serially despite a " << sampler.pool()->size()
                << "-worker pool";
  }
}

}  // namespace

bool BatchSampler::parallel() const {
  return pool_ != nullptr && pool_->size() > 1 && generator_->thread_safe();
}

std::vector<squish::Topology> BatchSampler::sample_batch(const SampleConfig& config, int count,
                                                         const util::Rng& root,
                                                         std::uint64_t first_stream) const {
  if (count < 0) throw std::invalid_argument("sample_batch: negative count");
  const obs::Span span = obs::trace_scope("sampler/batch_sample");
  obs::count("sampler/batch_samples", count);
  std::vector<squish::Topology> out(static_cast<std::size_t>(count));
  auto one = [&](long long i) {
    util::Rng rng = root.fork(first_stream + static_cast<std::uint64_t>(i));
    out[static_cast<std::size_t>(i)] = generator_->sample(config, rng);
  };
  if (parallel()) {
    pool_->parallel_for(count, one);
  } else {
    note_serial_fallback(*this, "sample_batch");
    for (long long i = 0; i < count; ++i) one(i);
  }
  return out;
}

std::vector<squish::Topology> BatchSampler::sample_jobs(
    const std::vector<SampleJob>& jobs) const {
  const obs::Span span = obs::trace_scope("sampler/batch_jobs");
  obs::count("sampler/batch_job_samples", static_cast<long long>(jobs.size()));
  std::vector<squish::Topology> out(jobs.size());
  auto one = [&](long long i) {
    const auto idx = static_cast<std::size_t>(i);
    util::Rng rng = jobs[idx].root.fork(jobs[idx].stream);
    out[idx] = generator_->sample(jobs[idx].config, rng);
  };
  const long long n = static_cast<long long>(jobs.size());
  if (parallel()) {
    pool_->parallel_for(n, one);
  } else {
    note_serial_fallback(*this, "sample_jobs");
    for (long long i = 0; i < n; ++i) one(i);
  }
  return out;
}

std::vector<squish::Topology> BatchSampler::modify_batch(
    const std::vector<squish::Topology>& known, const std::vector<squish::Topology>& keep_masks,
    const ModifyConfig& config, const util::Rng& root) const {
  if (known.size() != keep_masks.size()) {
    throw std::invalid_argument("modify_batch: known/keep_masks size mismatch");
  }
  const obs::Span span = obs::trace_scope("sampler/batch_modify");
  obs::count("sampler/batch_modifies", static_cast<long long>(known.size()));
  std::vector<squish::Topology> out(known.size());
  auto one = [&](long long i) {
    const auto idx = static_cast<std::size_t>(i);
    util::Rng rng = root.fork(static_cast<std::uint64_t>(i));
    out[idx] = generator_->modify(known[idx], keep_masks[idx], config, rng);
  };
  const long long n = static_cast<long long>(known.size());
  if (parallel()) {
    pool_->parallel_for(n, one);
  } else {
    note_serial_fallback(*this, "modify_batch");
    for (long long i = 0; i < n; ++i) one(i);
  }
  return out;
}

}  // namespace cp::diffusion
