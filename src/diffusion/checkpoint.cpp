#include "diffusion/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "nn/serialize.h"
#include "util/fs.h"

namespace cp::diffusion {

namespace {

constexpr char kMagic[4] = {'C', 'P', 'T', 'C'};
constexpr std::uint32_t kVersion = 1;

struct Header {
  std::uint32_t version = kVersion;
  std::int32_t iterations = 0;
  std::int32_t batch_pixels = 0;
  std::uint64_t seed = 0;
  std::uint32_t param_count = 0;
  std::int32_t next_iter = 0;
};

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
void read_pod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
}

void write_rng_state(std::ostream& os, const util::Rng::State& st) {
  write_pod(os, st.seed);
  for (std::uint64_t s : st.s) write_pod(os, s);
  const std::uint8_t spare = st.has_spare_normal ? 1 : 0;
  write_pod(os, spare);
  write_pod(os, st.spare_normal);
}

util::Rng::State read_rng_state(std::istream& is) {
  util::Rng::State st;
  read_pod(is, st.seed);
  for (auto& s : st.s) read_pod(is, s);
  std::uint8_t spare = 0;
  read_pod(is, spare);
  if (spare > 1) throw std::runtime_error("checkpoint: corrupt rng state");
  st.has_spare_normal = spare != 0;
  read_pod(is, st.spare_normal);
  return st;
}

}  // namespace

void save_trainer_checkpoint(const std::string& path, MlpDenoiser& model, const nn::Adam& opt,
                             const util::Rng& rng, int next_iter, const TrainConfig& config) {
  const std::vector<nn::Param*> params = model.net().params();
  Header header;
  header.iterations = config.iterations;
  header.batch_pixels = config.batch_pixels;
  header.seed = config.seed;
  header.param_count = static_cast<std::uint32_t>(params.size());
  header.next_iter = next_iter;

  std::ostringstream os(std::ios::binary);
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, header.version);
  write_pod(os, header.iterations);
  write_pod(os, header.batch_pixels);
  write_pod(os, header.seed);
  write_pod(os, header.param_count);
  write_pod(os, header.next_iter);
  write_rng_state(os, rng.state());
  if (!os) throw std::runtime_error("checkpoint: header serialisation failed");
  nn::save_params(os, params);
  opt.save_state(os);
  util::atomic_write_file_checksummed(path, os.str());
}

bool load_trainer_checkpoint(const std::string& path, MlpDenoiser& model, nn::Adam& opt,
                             util::Rng& rng, int* next_iter, const TrainConfig& config) {
  if (!std::filesystem::exists(path)) return false;
  // Checkpoints always carry the CRC trailer — a file without one is torn
  // or foreign, not a legacy format.
  const std::string data =
      util::read_file_checksummed(path, "checkpoint", /*require_trailer=*/true);
  std::istringstream is(data, std::ios::binary);

  char magic[4] = {};
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }
  Header header;
  read_pod(is, header.version);
  read_pod(is, header.iterations);
  read_pod(is, header.batch_pixels);
  read_pod(is, header.seed);
  read_pod(is, header.param_count);
  read_pod(is, header.next_iter);
  if (!is) throw std::runtime_error("checkpoint: truncated header in " + path);
  if (header.version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version in " + path);
  }

  const std::vector<nn::Param*> params = model.net().params();
  if (header.iterations != config.iterations || header.batch_pixels != config.batch_pixels ||
      header.seed != config.seed || header.param_count != params.size()) {
    return false;  // different training run: start fresh, don't splice state
  }
  if (header.next_iter < 0 || header.next_iter > header.iterations) {
    throw std::runtime_error("checkpoint: implausible next_iter in " + path);
  }

  const util::Rng::State rng_state = read_rng_state(is);
  if (!is) throw std::runtime_error("checkpoint: truncated rng state in " + path);
  // Restore into temporaries-last order: nn::load_params / Adam::load_state
  // throw before mutating on shape mismatch, and rng/next_iter are only
  // touched after both succeed, so a corrupt tail leaves the caller's state
  // untouched apart from params (which the caller retrains from scratch
  // anyway after catching).
  nn::load_params(is, params);
  opt.load_state(is);
  rng.restore(rng_state);
  *next_iter = header.next_iter;
  return true;
}

}  // namespace cp::diffusion
