#include "diffusion/schedule.h"

#include <stdexcept>

namespace cp::diffusion {

NoiseSchedule::NoiseSchedule(const ScheduleConfig& config) : steps_(config.steps) {
  if (config.steps < 1) throw std::invalid_argument("NoiseSchedule: steps must be >= 1");
  if (config.beta_start < 0.0 || config.beta_end > 0.5 || config.beta_start > config.beta_end) {
    throw std::invalid_argument("NoiseSchedule: betas must satisfy 0 <= b1 <= bK <= 0.5");
  }
  beta_.assign(static_cast<std::size_t>(steps_) + 1, 0.0);
  bbar_.assign(static_cast<std::size_t>(steps_) + 1, 0.0);
  for (int k = 1; k <= steps_; ++k) {
    // Equation (4): linear interpolation from beta_1 to beta_K.
    const double t = steps_ == 1 ? 0.0
                                 : static_cast<double>(k - 1) / static_cast<double>(steps_ - 1);
    beta_[static_cast<std::size_t>(k)] =
        config.beta_start + t * (config.beta_end - config.beta_start);
    const double prev = bbar_[static_cast<std::size_t>(k - 1)];
    const double b = beta_[static_cast<std::size_t>(k)];
    bbar_[static_cast<std::size_t>(k)] = prev * (1.0 - b) + (1.0 - prev) * b;
  }
}

int NoiseSchedule::step_for_flip(double flip) const {
  // bbar_ is non-decreasing; binary search for the first index >= flip.
  int lo = 0, hi = steps_;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (bbar_[static_cast<std::size_t>(mid)] >= flip) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double NoiseSchedule::flip_between_product(int j, int k) const {
  if (j < 0 || k > steps_ || j > k) throw std::out_of_range("flip_between_product: bad step pair");
  // Each single-step channel has eigenvalue (1 - 2 beta_i) on the signed
  // basis; a product of channels multiplies the eigenvalues.
  double eigen = 1.0;
  for (int i = j + 1; i <= k; ++i) eigen *= 1.0 - 2.0 * beta(i);
  return 0.5 * (1.0 - eigen);
}

double NoiseSchedule::flip_between(int j, int k) const {
  if (j < 0 || k > steps_ || j > k) throw std::out_of_range("flip_between: bad step pair");
  // Compose: bbar_k = bbar_j (1 - f) + (1 - bbar_j) f  =>  solve for f.
  const double bj = cumulative_flip(j);
  const double bk = cumulative_flip(k);
  const double denom = 1.0 - 2.0 * bj;
  if (denom <= 1e-12) return 0.5;  // already fully mixed
  return (bk - bj) / denom;
}

}  // namespace cp::diffusion
