#pragma once
// Byte-grid reference kernels for the packed diffusion fast paths.
//
// These are the pre-packing scalar implementations, retained on top of
// squish::ByteTopology as the executable specification and as the "before"
// side of the packed-vs-byte rows in BENCH_denoiser.json. They must stay
// semantically identical to the packed kernels in transition.cpp and
// tabular_denoiser.cpp; tests/diffusion/packed_parity_test.cpp enforces it.

#include "diffusion/schedule.h"
#include "squish/reference.h"
#include "util/rng.h"

namespace cp::diffusion {

/// Scalar per-cell forward noising on the byte grid: one Bernoulli draw per
/// cell in row-major order (the same stream forward_noise consumes).
squish::ByteTopology reference_forward_noise(const squish::ByteTopology& x0,
                                             const NoiseSchedule& schedule, int k,
                                             util::Rng& rng);

/// Scalar 17-cell neighbourhood index on the byte grid with the tabular
/// denoiser's period-folding mirror.
int reference_neighborhood_index(const squish::ByteTopology& t, int r, int c);

/// Scalar run scan on one byte-grid row (the pre-packing drc::row_runs).
std::vector<std::pair<int, int>> reference_row_runs(const squish::ByteTopology& t, int r,
                                                    std::uint8_t value);

}  // namespace cp::diffusion
