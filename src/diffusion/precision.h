#pragma once
// Thread-local inference-precision selection (DESIGN.md "Quantized
// inference").
//
// Precision is a *request-scoped* property, not a model property: the same
// trained MlpDenoiser serves fp32 and int8 callers concurrently. Rather than
// threading a precision argument through every Denoiser::predict_x0 call
// site (guidance, polish, cascade refinement, extension windows all funnel
// into the same virtual), the sampler entry points install a thread-local
// PrecisionScope and the denoiser reads active_precision() when choosing its
// kernel tier.
//
// Thread-locality is safe because BatchSampler executes each sample wholly
// on one worker thread; nothing hands a half-finished sample across threads.

#include <string>

namespace cp::diffusion {

enum class Precision : unsigned char {
  kFp32,  // default: bit-identical to the golden files
  kInt8,  // opt-in quantized tier: faster, NOT bit-equal to fp32
};

/// The precision requested for the current thread's in-flight sample.
/// Defaults to kFp32 when no scope is active.
Precision active_precision();

/// RAII scope: installs `p` as the current thread's active precision for its
/// lifetime, restoring the previous value on destruction (scopes nest).
class PrecisionScope {
 public:
  explicit PrecisionScope(Precision p);
  ~PrecisionScope();
  PrecisionScope(const PrecisionScope&) = delete;
  PrecisionScope& operator=(const PrecisionScope&) = delete;

 private:
  Precision prev_;
};

/// "fp32" / "int8".
const char* to_string(Precision p);

/// Parses "fp32" / "int8"; returns false (leaving `out` untouched) on any
/// other input.
bool precision_from_string(const std::string& s, Precision* out);

}  // namespace cp::diffusion
