#pragma once
// Counting-based denoiser (the workhorse estimator; substitution S2).
//
// Layout topologies are locally structured Manhattan geometry, so
// P(x0 | x_k, k, c) is well approximated by conditioning on a small
// neighbourhood of x_k around the pixel. This denoiser learns, by counting
// over noised training samples, the empirical posterior
//     P(x0_center = 1 | 13-cell neighbourhood of x_k, timestep bucket, class)
// with Laplace smoothing toward the class density. Training is a single
// streaming pass (seconds on one core), and inference is a table lookup —
// which is what makes the paper-scale sampling experiments tractable on CPU
// while exercising exactly the same D3PM sampler as a neural denoiser.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "diffusion/denoiser.h"
#include "diffusion/schedule.h"
#include "util/rng.h"

namespace cp::diffusion {

struct TabularConfig {
  int conditions = 2;
  int time_buckets = 8;
  /// Laplace smoothing mass toward the class density prior.
  double smoothing = 4.0;
  /// Noise draws per training topology per time bucket.
  int draws_per_bucket = 2;
};

class TabularDenoiser : public Denoiser {
 public:
  /// The 17-cell neighbourhood: Manhattan-radius-2 diamond plus ring, plus
  /// four long-range probes at distance 4 along both axes. The long-range
  /// probes give the estimator enough context to keep polygon edges aligned
  /// across scan lines — the property the legalizer's constraint chains are
  /// most sensitive to.
  static constexpr int kNeighbors = 17;
  static constexpr int kTableSize = 1 << kNeighbors;

  TabularDenoiser(const NoiseSchedule& schedule, const TabularConfig& config);

  /// Accumulate counts from one class's training topologies.
  void fit(const std::vector<squish::Topology>& topologies, int condition, util::Rng& rng);

  void predict_x0(const squish::Topology& xk, int k, int condition,
                  ProbGrid& p0) const override;
  float predict_x0_pixel(const squish::Topology& xk, int r, int c, int k,
                         int condition) const override;
  int conditions() const override { return config_.conditions; }
  double prior_density(int condition) const override { return class_density(condition); }
  /// Inference is a pure table lookup over immutable counts; fit() must not
  /// run concurrently with prediction.
  bool thread_safe_inference() const override { return true; }
  const char* name() const override { return "TabularDenoiser"; }

  /// Empirical class density (fraction of 1s seen in training data).
  double class_density(int condition) const;

  /// Neighbourhood index of pixel (r, c) in `t` with mirror padding — the
  /// scalar reference path, also used as the border fallback of the packed
  /// row kernel below.
  static int neighborhood_index(const squish::Topology& t, int r, int c);

  /// Fill `indices[0..cols)` with the neighbourhood indices of row `r`,
  /// using the packed plane-gather fast path for interior cells
  /// (diffusion/neighborhood.h). Bit-identical to calling
  /// neighborhood_index per cell.
  static void neighborhood_indices_row(const squish::Topology& t, int r, int* indices);

  /// Route fit/predict through the scalar per-cell gather instead of the
  /// packed row kernel. Benchmark/test hook only (before/after rows in
  /// BENCH_denoiser.json); outputs are bit-identical either way.
  void set_packed_gather(bool enabled) { packed_gather_ = enabled; }

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  int bucket_of(int k) const;
  std::size_t cell(int condition, int bucket, int index) const;
  void row_indices(const squish::Topology& t, int r, int* indices) const;

  const NoiseSchedule* schedule_;
  TabularConfig config_;
  bool packed_gather_ = true;
  std::vector<std::uint32_t> ones_;
  std::vector<std::uint32_t> totals_;
  std::vector<double> density_num_;  // per-condition filled-cell counts
  std::vector<double> density_den_;
};

}  // namespace cp::diffusion
