#pragma once
// Generator interface: what the rest of the system (extension algorithms,
// agent tools, benches) needs from a generative model — conditional
// sampling and masked modification. DiffusionSampler implements it
// directly; CascadeSampler implements it with a coarse-to-fine pipeline.

#include "diffusion/denoiser.h"
#include "util/rng.h"

namespace cp::diffusion {

struct SampleConfig;
struct ModifyConfig;

class TopologyGenerator {
 public:
  virtual ~TopologyGenerator() = default;

  virtual squish::Topology sample(const SampleConfig& config, util::Rng& rng) const = 0;

  /// Regenerate the zero-mask region of `known`, keeping mask==1 cells.
  virtual squish::Topology modify(const squish::Topology& known,
                                  const squish::Topology& keep_mask, const ModifyConfig& config,
                                  util::Rng& rng) const = 0;

  virtual const char* name() const = 0;

  /// True if concurrent sample()/modify() calls on one instance are
  /// race-free (every instance still needs its own Rng per call). Samplers
  /// delegate to Denoiser::thread_safe_inference.
  virtual bool thread_safe() const { return false; }
};

}  // namespace cp::diffusion
