#pragma once
// Visited-timestep schedules for few-step (fast) reverse sampling, after
// DiffPattern-Flex: the reverse chain may jump between an arbitrary
// strictly-decreasing subset of {K, ..., 1, 0} because the two-state channel
// composes in closed form (NoiseSchedule::flip_between / composed_jumps in
// transition.h) — striding is *exact* in the transition algebra and only
// trades model-evaluation density for speed.
//
// Four ways to pick the subset:
//   * kNoiseUniform — equal decrements of cumulative flip probability (the
//     historical default; spends the budget where structure forms).
//   * kUniformStride — equal decrements of k. Mostly wasted on the paper's
//     schedule (the chain is fully mixed beyond small k); kept for ablation.
//   * kQuadratic — k_i proportional to the square of the remaining fraction,
//     concentrating visits near k = 0 harder than the uniform stride (but
//     less hard than noise-uniform on the paper's schedule, which mixes
//     early and so pushes nearly the whole budget below the mixing point).
//   * kSearched — a data-driven list built offline by search_timesteps(),
//     which greedily inserts the step that most reduces the held-out D3PM
//     hybrid loss accumulated over the schedule's jumps.
//
// Invariant (the regression anchor of every golden): the degenerate budget
// — count <= 0 or count >= k_start — yields the full list {k_start, ..., 0}
// for EVERY kind, so "fast sampling at stride 1" is bit-identical to the
// original full chain. tests/diffusion/fast_sampler_test.cpp locks this in.

#include <string>
#include <vector>

#include "diffusion/denoiser.h"
#include "diffusion/schedule.h"

namespace cp::diffusion {

enum class ScheduleKind {
  kNoiseUniform = 0,
  kUniformStride,
  kQuadratic,
  kSearched,
};

const char* to_string(ScheduleKind kind);

/// Parse "noise_uniform" | "uniform" | "quadratic" | "searched" (case
/// sensitive). Throws std::invalid_argument on anything else.
ScheduleKind schedule_kind_from_string(const std::string& name);

/// True when `name` parses (used by serving-layer request validation).
bool is_schedule_kind(const std::string& name);

struct TimestepSchedule {
  /// Build the descending visited list {k_start, ..., 1, 0} with ~`count`
  /// visited noisy steps. count <= 0 or count >= k_start gives the full
  /// chain for every kind (the stride-1 invariant). kSearched has no
  /// closed form and degrades to kNoiseUniform here; DiffusionSampler
  /// resolves it against its registered searched list first.
  static std::vector<int> make(const NoiseSchedule& schedule, ScheduleKind kind, int k_start,
                               int count);

  /// Throws std::invalid_argument unless `steps` is strictly decreasing,
  /// starts at <= k_max, and ends at 0 with at least one noisy step.
  static void validate(const std::vector<int>& steps, int k_max);

  /// Restrict a (validated) schedule to levels <= k_start, prepending
  /// k_start itself when absent — how a searched full-chain schedule is
  /// reused from an intermediate noise level (cascade refinement, polish,
  /// masked modification).
  static std::vector<int> restrict_to(const std::vector<int>& steps, int k_start);
};

/// Greedy schedule search (DiffPattern-Flex style, scored on data instead of
/// distilled): grows {K, 1, 0} by repeatedly inserting the candidate step
/// whose split of its enclosing jump most reduces the summed held-out
/// hybrid loss (KL of the composed posterior vs the model-marginalised
/// reverse kernel, plus lambda * BCE of the x0 prediction — Equation (10)
/// restricted to the visited jumps).
struct SearchConfig {
  int budget = 50;           // visited noisy steps in the result (>= 2)
  int candidate_pool = 128;  // size of the noise-uniform insertion grid
  int max_per_class = 4;     // held-out topologies consulted per class
  int probes = 2;            // forward-noisings per (level, topology)
  float lambda = 1e-3f;      // CE weight, the paper's hybrid-loss default
  std::uint64_t seed = 17;   // drives the probe noisings only
};

struct SearchResult {
  std::vector<int> timesteps;  // descending, ends {..., 1, 0}
  double initial_loss = 0.0;   // summed jump loss of the {K, 1, 0} seed
  double final_loss = 0.0;     // summed jump loss of the returned schedule
};

SearchResult search_timesteps(const NoiseSchedule& schedule, const Denoiser& denoiser,
                              const std::vector<std::vector<squish::Topology>>& held_out,
                              const SearchConfig& config);

}  // namespace cp::diffusion
