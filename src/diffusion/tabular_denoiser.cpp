#include "diffusion/tabular_denoiser.h"
#include <algorithm>
#include <cmath>

#include <istream>
#include <ostream>
#include <stdexcept>

#include "diffusion/neighborhood.h"
#include "diffusion/transition.h"

namespace cp::diffusion {

namespace {
// Neighbourhood offsets (dr, dc); the canonical table lives in
// diffusion/neighborhood.h and defines the bit layout of the table index.
constexpr auto& kOffsets = neighborhood::kOffsets;
static_assert(neighborhood::kCount == TabularDenoiser::kNeighbors);

// Reflect-101 boundary padding. A single reflection (-i / 2n-2-i) is only
// valid while |i - clamp| < n; the cascade's coarse stage runs on grids as
// small as rows/factor, where the distance-4 neighbourhood offsets overshoot
// a whole period and a single reflection lands out of bounds. Fold into the
// 2n-2 period first so any offset maps inside [0, n).
inline int mirror(int i, int n) {
  if (i >= 0 && i < n) return i;
  if (n == 1) return 0;
  const int period = 2 * n - 2;
  i = ((i % period) + period) % period;
  return i < n ? i : period - i;
}
}  // namespace

TabularDenoiser::TabularDenoiser(const NoiseSchedule& schedule, const TabularConfig& config)
    : schedule_(&schedule), config_(config) {
  if (config.conditions < 1 || config.time_buckets < 1) {
    throw std::invalid_argument("TabularDenoiser: bad config");
  }
  const std::size_t n = static_cast<std::size_t>(config.conditions) * config.time_buckets *
                        static_cast<std::size_t>(kTableSize);
  ones_.assign(n, 0);
  totals_.assign(n, 0);
  density_num_.assign(static_cast<std::size_t>(config.conditions), 0.0);
  density_den_.assign(static_cast<std::size_t>(config.conditions), 0.0);
}

int TabularDenoiser::neighborhood_index(const squish::Topology& t, int r, int c) {
  int index = 0;
  for (int i = 0; i < kNeighbors; ++i) {
    const int rr = mirror(r + kOffsets[i][0], t.rows());
    const int cc = mirror(c + kOffsets[i][1], t.cols());
    index |= (t.at(rr, cc) != 0) << i;
  }
  return index;
}

void TabularDenoiser::neighborhood_indices_row(const squish::Topology& t, int r,
                                               int* indices) {
  const int rows = t.rows();
  const int cols = t.cols();
  const bool r_interior = r >= neighborhood::kMargin && r < rows - neighborhood::kMargin;
  if (!r_interior || cols <= 2 * neighborhood::kMargin) {
    for (int c = 0; c < cols; ++c) indices[c] = neighborhood_index(t, r, c);
    return;
  }
  // Interior columns word-at-a-time: 17 funnel-shifted planes + one 64x64 bit
  // transpose yield the table index of every lane at once.
  for (int wi = 0; wi < t.words_per_row(); ++wi) {
    const int base = wi * 64;
    const int c_lo = std::max(base, neighborhood::kMargin);
    const int c_hi = std::min(base + 64, cols - neighborhood::kMargin);
    if (c_lo >= c_hi) continue;
    std::uint64_t idx[64];
    neighborhood::gather_indices(t, r, wi, idx);
    for (int c = c_lo; c < c_hi; ++c) indices[c] = static_cast<int>(idx[c - base]);
  }
  for (int c = 0; c < neighborhood::kMargin; ++c) indices[c] = neighborhood_index(t, r, c);
  for (int c = cols - neighborhood::kMargin; c < cols; ++c) {
    indices[c] = neighborhood_index(t, r, c);
  }
}

void TabularDenoiser::row_indices(const squish::Topology& t, int r, int* indices) const {
  if (packed_gather_) {
    neighborhood_indices_row(t, r, indices);
  } else {
    for (int c = 0; c < t.cols(); ++c) indices[c] = neighborhood_index(t, r, c);
  }
}

int TabularDenoiser::bucket_of(int k) const {
  // Buckets are uniform in *cumulative flip probability*, matching the
  // sampler's noise-uniform stride: the informative timesteps cluster where
  // the flip probability is still below saturation.
  const double top = schedule_->cumulative_flip(schedule_->steps());
  if (top <= 0.0) return 0;
  const double frac = schedule_->cumulative_flip(std::clamp(k, 0, schedule_->steps())) / top;
  const int b = static_cast<int>(frac * config_.time_buckets);
  return b < 0 ? 0 : (b >= config_.time_buckets ? config_.time_buckets - 1 : b);
}

std::size_t TabularDenoiser::cell(int condition, int bucket, int index) const {
  return (static_cast<std::size_t>(condition) * config_.time_buckets + bucket) *
             static_cast<std::size_t>(kTableSize) +
         static_cast<std::size_t>(index);
}

void TabularDenoiser::fit(const std::vector<squish::Topology>& topologies, int condition,
                          util::Rng& rng) {
  if (condition < 0 || condition >= config_.conditions) {
    throw std::out_of_range("TabularDenoiser::fit: bad condition");
  }
  for (const squish::Topology& x0 : topologies) {
    density_num_[static_cast<std::size_t>(condition)] += static_cast<double>(x0.popcount());
    density_den_[static_cast<std::size_t>(condition)] += static_cast<double>(x0.size());
    const double top = schedule_->cumulative_flip(schedule_->steps());
    for (int bucket = 0; bucket < config_.time_buckets; ++bucket) {
      // Flip-uniform bucket boundaries, matching bucket_of().
      const int k_lo = std::max(
          1, schedule_->step_for_flip(top * bucket / config_.time_buckets));
      int k_hi = bucket + 1 == config_.time_buckets
                     ? schedule_->steps()
                     : schedule_->step_for_flip(top * (bucket + 1) / config_.time_buckets) - 1;
      k_hi = std::max(k_lo, k_hi);
      for (int draw = 0; draw < config_.draws_per_bucket; ++draw) {
        const int k = rng.uniform_int(k_lo, std::max(k_lo, k_hi));
        const squish::Topology xk = forward_noise(x0, *schedule_, k, rng);
        std::vector<int> indices(static_cast<std::size_t>(x0.cols()));
        for (int r = 0; r < x0.rows(); ++r) {
          row_indices(xk, r, indices.data());
          for (int c = 0; c < x0.cols(); ++c) {
            const std::size_t cc = cell(condition, bucket, indices[static_cast<std::size_t>(c)]);
            ones_[cc] += x0.at(r, c);
            ++totals_[cc];
          }
        }
      }
    }
  }
}

double TabularDenoiser::class_density(int condition) const {
  const double den = density_den_[static_cast<std::size_t>(condition)];
  return den <= 0.0 ? 0.5 : density_num_[static_cast<std::size_t>(condition)] / den;
}

void TabularDenoiser::predict_x0(const squish::Topology& xk, int k, int condition,
                                 ProbGrid& p0) const {
  if (condition < 0 || condition >= config_.conditions) {
    throw std::out_of_range("TabularDenoiser::predict_x0: bad condition");
  }
  const int bucket = bucket_of(k);
  const double prior = class_density(condition);
  const double alpha = config_.smoothing;
  p0.resize(xk.size());
  std::size_t out = 0;
  std::vector<int> indices(static_cast<std::size_t>(xk.cols()));
  for (int r = 0; r < xk.rows(); ++r) {
    row_indices(xk, r, indices.data());
    for (int c = 0; c < xk.cols(); ++c) {
      const std::size_t cc = cell(condition, bucket, indices[static_cast<std::size_t>(c)]);
      const double n1 = static_cast<double>(ones_[cc]);
      const double n = static_cast<double>(totals_[cc]);
      p0[out++] = static_cast<float>((n1 + alpha * prior) / (n + alpha));
    }
  }
}

float TabularDenoiser::predict_x0_pixel(const squish::Topology& xk, int r, int c, int k,
                                        int condition) const {
  const std::size_t cc = cell(condition, bucket_of(k), neighborhood_index(xk, r, c));
  const double prior = class_density(condition);
  const double n1 = static_cast<double>(ones_[cc]);
  const double n = static_cast<double>(totals_[cc]);
  return static_cast<float>((n1 + config_.smoothing * prior) / (n + config_.smoothing));
}

void TabularDenoiser::save(std::ostream& os) const {
  const std::uint32_t magic = 0x43505444;  // "CPTD"
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  const std::int32_t conds = config_.conditions, buckets = config_.time_buckets;
  os.write(reinterpret_cast<const char*>(&conds), sizeof(conds));
  os.write(reinterpret_cast<const char*>(&buckets), sizeof(buckets));
  os.write(reinterpret_cast<const char*>(ones_.data()),
           static_cast<std::streamsize>(ones_.size() * sizeof(std::uint32_t)));
  os.write(reinterpret_cast<const char*>(totals_.data()),
           static_cast<std::streamsize>(totals_.size() * sizeof(std::uint32_t)));
  os.write(reinterpret_cast<const char*>(density_num_.data()),
           static_cast<std::streamsize>(density_num_.size() * sizeof(double)));
  os.write(reinterpret_cast<const char*>(density_den_.data()),
           static_cast<std::streamsize>(density_den_.size() * sizeof(double)));
}

void TabularDenoiser::load(std::istream& is) {
  std::uint32_t magic = 0;
  std::int32_t conds = 0, buckets = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&conds), sizeof(conds));
  is.read(reinterpret_cast<char*>(&buckets), sizeof(buckets));
  if (!is || magic != 0x43505444 || conds != config_.conditions ||
      buckets != config_.time_buckets) {
    throw std::runtime_error("TabularDenoiser::load: incompatible file");
  }
  is.read(reinterpret_cast<char*>(ones_.data()),
          static_cast<std::streamsize>(ones_.size() * sizeof(std::uint32_t)));
  is.read(reinterpret_cast<char*>(totals_.data()),
          static_cast<std::streamsize>(totals_.size() * sizeof(std::uint32_t)));
  is.read(reinterpret_cast<char*>(density_num_.data()),
          static_cast<std::streamsize>(density_num_.size() * sizeof(double)));
  is.read(reinterpret_cast<char*>(density_den_.data()),
          static_cast<std::streamsize>(density_den_.size() * sizeof(double)));
  if (!is) throw std::runtime_error("TabularDenoiser::load: truncated file");
}

}  // namespace cp::diffusion
