#include "diffusion/timestep_schedule.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "diffusion/transition.h"
#include "obs/registry.h"
#include "util/rng.h"

namespace cp::diffusion {

const char* to_string(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kNoiseUniform: return "noise_uniform";
    case ScheduleKind::kUniformStride: return "uniform";
    case ScheduleKind::kQuadratic: return "quadratic";
    case ScheduleKind::kSearched: return "searched";
  }
  return "unknown";
}

ScheduleKind schedule_kind_from_string(const std::string& name) {
  if (name == "noise_uniform") return ScheduleKind::kNoiseUniform;
  if (name == "uniform") return ScheduleKind::kUniformStride;
  if (name == "quadratic") return ScheduleKind::kQuadratic;
  if (name == "searched") return ScheduleKind::kSearched;
  throw std::invalid_argument("unknown schedule kind '" + name +
                              "' (want noise_uniform|uniform|quadratic|searched)");
}

bool is_schedule_kind(const std::string& name) {
  return name == "noise_uniform" || name == "uniform" || name == "quadratic" ||
         name == "searched";
}

namespace {

std::vector<int> full_list(int k_max) {
  std::vector<int> steps(static_cast<std::size_t>(k_max) + 1);
  for (int i = 0; i <= k_max; ++i) steps[static_cast<std::size_t>(i)] = k_max - i;
  return steps;
}

/// Close a partially built descending list: append the mandatory final
/// noisy step 1 (unless already there) and the clean step 0.
void finish(std::vector<int>& steps) {
  if (steps.back() != 1) steps.push_back(1);
  steps.push_back(0);
}

std::vector<int> make_noise_uniform(const NoiseSchedule& schedule, int k_max, int count) {
  // Historical default (previously inlined in DiffusionSampler): visited
  // steps chosen so the cumulative flip probability decreases in equal
  // increments. Byte-compatible with the pre-TimestepSchedule code — the
  // existing goldens anchor on this exact list.
  std::vector<int> steps{k_max};
  const double top = schedule.cumulative_flip(k_max);
  for (int i = 1; i < count; ++i) {
    const double target = top * (1.0 - static_cast<double>(i) / count);
    const int k = schedule.step_for_flip(target);
    if (k >= 1 && k < steps.back()) steps.push_back(k);
  }
  finish(steps);
  return steps;
}

std::vector<int> make_fraction_spaced(int k_max, int count, double exponent) {
  // k_i = round(k_max * ((count - i)/count)^exponent): exponent 1 is the
  // uniform stride, exponent 2 concentrates visits near k = 0.
  std::vector<int> steps{k_max};
  for (int i = 1; i < count; ++i) {
    const double frac = static_cast<double>(count - i) / count;
    const int k = static_cast<int>(std::llround(k_max * std::pow(frac, exponent)));
    if (k >= 1 && k < steps.back()) steps.push_back(k);
  }
  finish(steps);
  return steps;
}

}  // namespace

std::vector<int> TimestepSchedule::make(const NoiseSchedule& schedule, ScheduleKind kind,
                                        int k_start, int count) {
  const int k_max = std::clamp(k_start, 1, schedule.steps());
  // Degenerate budget: every kind collapses to the exact full chain. This
  // is the stride-1 == full-chain invariant the goldens anchor on.
  if (count <= 0 || count >= k_max) return full_list(k_max);
  switch (kind) {
    case ScheduleKind::kUniformStride: return make_fraction_spaced(k_max, count, 1.0);
    case ScheduleKind::kQuadratic: return make_fraction_spaced(k_max, count, 2.0);
    case ScheduleKind::kNoiseUniform:
    case ScheduleKind::kSearched:  // no closed form; sampler resolves it
      return make_noise_uniform(schedule, k_max, count);
  }
  return make_noise_uniform(schedule, k_max, count);
}

void TimestepSchedule::validate(const std::vector<int>& steps, int k_max) {
  if (steps.size() < 2 || steps.back() != 0) {
    throw std::invalid_argument("timestep schedule must descend to 0");
  }
  if (steps.front() > k_max || steps.front() < 1) {
    throw std::invalid_argument("timestep schedule starts outside [1, K]");
  }
  for (std::size_t i = 1; i < steps.size(); ++i) {
    if (steps[i] >= steps[i - 1]) {
      throw std::invalid_argument("timestep schedule must be strictly decreasing");
    }
  }
}

std::vector<int> TimestepSchedule::restrict_to(const std::vector<int>& steps, int k_start) {
  std::vector<int> out;
  for (int k : steps) {
    if (k <= k_start) {
      if (out.empty() && k != k_start) out.push_back(k_start);
      out.push_back(k);
    }
  }
  if (out.empty()) out.push_back(k_start);
  if (out.back() != 0) {
    if (out.back() != 1) out.push_back(1);
    out.push_back(0);
  }
  return out;
}

// ---- greedy schedule search ------------------------------------------------

namespace {

constexpr double kEps = 1e-7;

inline double safe_log(double p) { return std::log(std::clamp(p, kEps, 1.0)); }

/// Forward-noised draws at one level, with the model's x0 belief attached.
/// Built once per level; every jump cost starting at that level reuses it.
struct Draw {
  const squish::Topology* x0 = nullptr;
  squish::Topology xa;
  ProbGrid p0;
};

struct ProbeCache {
  const NoiseSchedule* schedule;
  const Denoiser* denoiser;
  const std::vector<std::vector<squish::Topology>>* held_out;
  SearchConfig config;
  std::map<int, std::vector<Draw>> by_level;

  const std::vector<Draw>& draws(int level) {
    auto it = by_level.find(level);
    if (it != by_level.end()) return it->second;
    std::vector<Draw> out;
    const int classes = static_cast<int>(held_out->size());
    for (int c = 0; c < classes; ++c) {
      const auto& topos = (*held_out)[static_cast<std::size_t>(c)];
      const int take = std::min<int>(config.max_per_class, static_cast<int>(topos.size()));
      for (int t = 0; t < take; ++t) {
        for (int p = 0; p < config.probes; ++p) {
          // Seed from (level, class, topo, probe) only: the draw is the
          // same no matter in which greedy iteration it is first needed.
          std::uint64_t s = config.seed;
          for (std::uint64_t v : {static_cast<std::uint64_t>(level), static_cast<std::uint64_t>(c),
                                  static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(p)}) {
            s ^= v + 0x9e3779b97f4a7c15ULL + (s << 6) + (s >> 2);
          }
          util::Rng rng(s);
          Draw d;
          d.x0 = &topos[static_cast<std::size_t>(t)];
          d.xa = forward_noise(*d.x0, *schedule, level, rng);
          // The class index doubles as the condition label throughout the
          // repo (dataset::style_index ordering).
          denoiser->predict_x0(d.xa, level, c, d.p0);
          out.push_back(std::move(d));
        }
      }
    }
    return by_level.emplace(level, std::move(out)).first->second;
  }
};

/// Mean per-pixel hybrid loss of the composed reverse jump a -> b: exact KL
/// between q(x_b | x_a, x_0) and the model-marginalised reverse kernel,
/// plus lambda * BCE of the x0 belief (Equation 10 on the visited subset).
double jump_cost(ProbeCache& cache, int a, int b) {
  const double flip_0b = cache.schedule->cumulative_flip(b);
  const double flip_ba = cache.schedule->flip_between(b, a);
  double total = 0.0;
  long long pixels = 0;
  for (const Draw& d : cache.draws(a)) {
    std::size_t i = 0;
    for (int r = 0; r < d.xa.rows(); ++r) {
      for (int c = 0; c < d.xa.cols(); ++c, ++i) {
        const int xa = d.xa.at(r, c);
        const int x0 = d.x0->at(r, c);
        const double q1 = posterior_p1(xa, x0, flip_0b, flip_ba);
        const double p1 = reverse_p1(xa, static_cast<double>(d.p0[i]), flip_0b, flip_ba);
        const double kl = q1 * (safe_log(q1) - safe_log(p1)) +
                          (1.0 - q1) * (safe_log(1.0 - q1) - safe_log(1.0 - p1));
        const double ce = x0 ? -safe_log(d.p0[i]) : -safe_log(1.0 - d.p0[i]);
        total += kl + static_cast<double>(cache.config.lambda) * ce;
      }
    }
    pixels += d.xa.size();
  }
  return pixels > 0 ? total / static_cast<double>(pixels) : 0.0;
}

}  // namespace

SearchResult search_timesteps(const NoiseSchedule& schedule, const Denoiser& denoiser,
                              const std::vector<std::vector<squish::Topology>>& held_out,
                              const SearchConfig& config) {
  const int K = schedule.steps();
  const int budget = std::clamp(config.budget, 2, K);
  SearchResult result;
  if (budget >= K) {
    result.timesteps = TimestepSchedule::make(schedule, ScheduleKind::kNoiseUniform, K, 0);
    return result;
  }
  bool have_data = false;
  for (const auto& topos : held_out) have_data = have_data || !topos.empty();
  if (!have_data) throw std::invalid_argument("search_timesteps: empty held-out set");

  ProbeCache cache{&schedule, &denoiser, &held_out, config, {}};
  std::map<std::pair<int, int>, double> costs;  // (from, to) -> jump cost
  auto cost = [&](int from, int to) {
    const auto key = std::make_pair(from, to);
    auto it = costs.find(key);
    if (it != costs.end()) return it->second;
    const double c = jump_cost(cache, from, to);
    costs.emplace(key, c);
    return c;
  };

  // Candidate insertion grid: a dense noise-uniform list (interior values
  // only) — candidates where the flip probability actually moves.
  const std::vector<int> grid = TimestepSchedule::make(
      schedule, ScheduleKind::kNoiseUniform, K, std::min(config.candidate_pool, K - 1));
  std::vector<int> chosen = {K, 1, 0};
  auto in_chosen = [&](int k) {
    return std::find(chosen.begin(), chosen.end(), k) != chosen.end();
  };

  for (std::size_t i = 0; i + 1 < chosen.size(); ++i) {
    result.initial_loss += cost(chosen[i], chosen[i + 1]);
  }

  // chosen holds budgeted noisy steps {K, ..., 1} plus the final 0.
  while (static_cast<int>(chosen.size()) - 1 < budget) {
    int best = -1;
    double best_delta = std::numeric_limits<double>::infinity();
    for (int k : grid) {
      if (k <= 0 || k >= K || in_chosen(k)) continue;
      // Enclosing jump: chosen is kept descending, so the insertion point
      // is the unique (above, below) pair with above > k > below.
      const auto lo = std::lower_bound(chosen.begin(), chosen.end(), k, std::greater<int>());
      const int above = *(lo - 1);
      const int below = *lo;
      const double delta = cost(above, k) + cost(k, below) - cost(above, below);
      if (delta < best_delta) {
        best_delta = delta;
        best = k;
      }
    }
    if (best < 0) break;  // candidate grid exhausted
    chosen.insert(std::lower_bound(chosen.begin(), chosen.end(), best, std::greater<int>()),
                  best);
    obs::count("sampler/search_insertions");
  }

  for (std::size_t i = 0; i + 1 < chosen.size(); ++i) {
    result.final_loss += cost(chosen[i], chosen[i + 1]);
  }
  TimestepSchedule::validate(chosen, K);
  result.timesteps = std::move(chosen);
  return result;
}

}  // namespace cp::diffusion
