#include "diffusion/transition.h"

#include <stdexcept>

namespace cp::diffusion {

squish::Topology forward_noise(const squish::Topology& x0, const NoiseSchedule& schedule, int k,
                               util::Rng& rng) {
  const double flip = schedule.cumulative_flip(k);
  squish::Topology xk = x0;
  const int cols = xk.cols();
  // Word-parallel flip: accumulate the per-cell Bernoulli draws of one word
  // into a 64-bit mask and apply it with a single XOR. The RNG is consumed
  // once per cell in row-major order, exactly as the scalar loop did, so the
  // output is bit-identical to the byte-backed implementation.
  for (int r = 0; r < xk.rows(); ++r) {
    for (int w = 0; w < xk.words_per_row(); ++w) {
      const int bits = std::min(64, cols - w * 64);
      std::uint64_t mask = 0;
      for (int j = 0; j < bits; ++j) {
        mask |= static_cast<std::uint64_t>(rng.bernoulli(flip)) << j;
      }
      if (mask != 0) xk.xor_word(r, w, mask);
    }
  }
  return xk;
}

double posterior_p1(int xk, int x0, double flip_0j, double flip_jk) {
  // P(x_j = v | x_k, x_0) ∝ P(x_k | x_j = v) P(x_j = v | x_0).
  const double like1 = xk == 1 ? 1.0 - flip_jk : flip_jk;   // P(x_k | x_j = 1)
  const double like0 = xk == 1 ? flip_jk : 1.0 - flip_jk;   // P(x_k | x_j = 0)
  const double prior1 = flip_channel_p1(x0, flip_0j);
  const double prior0 = 1.0 - prior1;
  const double w1 = like1 * prior1;
  const double w0 = like0 * prior0;
  const double z = w0 + w1;
  return z <= 0.0 ? 0.5 : w1 / z;
}

double reverse_p1(int xk, double p0, double flip_0j, double flip_jk) {
  // Equation (5)/(9): marginalise the two possible x0 values against the
  // model belief p0 = P(x0 = 1).
  return p0 * posterior_p1(xk, 1, flip_0j, flip_jk) +
         (1.0 - p0) * posterior_p1(xk, 0, flip_0j, flip_jk);
}

std::vector<ComposedJump> composed_jumps(const NoiseSchedule& schedule,
                                         const std::vector<int>& timesteps) {
  if (timesteps.size() < 2) {
    throw std::invalid_argument("composed_jumps: need at least one jump");
  }
  std::vector<ComposedJump> jumps;
  jumps.reserve(timesteps.size() - 1);
  for (std::size_t i = 0; i + 1 < timesteps.size(); ++i) {
    const int from = timesteps[i];
    const int to = timesteps[i + 1];
    if (to >= from || to < 0 || from > schedule.steps()) {
      throw std::invalid_argument("composed_jumps: list must strictly decrease within [0, K]");
    }
    ComposedJump j;
    j.k_from = from;
    j.k_to = to;
    j.flip_0to = schedule.cumulative_flip(to);
    j.flip_tofrom = schedule.flip_between(to, from);
    jumps.push_back(j);
  }
  return jumps;
}

}  // namespace cp::diffusion
