#include "diffusion/modification.h"

#include <stdexcept>

namespace cp::diffusion {

squish::Topology modify_from(const DiffusionSampler& sampler, const squish::Topology& known,
                             const squish::Topology& keep_mask, squish::Topology init,
                             int k_start, const ModifyConfig& config, util::Rng& rng) {
  if (known.rows() != keep_mask.rows() || known.cols() != keep_mask.cols() ||
      known.rows() != init.rows() || known.cols() != init.cols()) {
    throw std::invalid_argument("modify_from: dimension mismatch");
  }
  // Masked-chain twin of DiffusionSampler::sample's scope: every denoiser
  // call below runs at the requested precision tier.
  const PrecisionScope precision_scope(config.precision);
  const NoiseSchedule& schedule = sampler.schedule();
  const std::vector<int> steps =
      sampler.make_timesteps_from(k_start, config.sample_steps, config.schedule_kind);

  squish::Topology x = std::move(init);
  const int rounds = std::max(1, config.resample_rounds);
  for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
    const int k_from = steps[i];
    const int k_to = steps[i + 1];
    for (int round = 0; round < rounds; ++round) {
      squish::Topology x_unknown = sampler.reverse_step(x, k_from, k_to, config.condition, rng);
      // Equation (12): forward-noise the known pattern to level k_to and
      // overwrite the kept region.
      const squish::Topology x_known = forward_noise(known, schedule, k_to, rng);
      for (int r = 0; r < x.rows(); ++r) {
        for (int c = 0; c < x.cols(); ++c) {
          x_unknown.set(r, c, keep_mask.at(r, c) ? x_known.at(r, c) : x_unknown.at(r, c));
        }
      }
      x = std::move(x_unknown);
      if (round + 1 < rounds) {
        // Jump back up to k_from by forward-noising through the composed
        // channel, then redo the reverse step (RePaint harmonisation).
        const double flip = schedule.flip_between(k_to, k_from);
        for (int r = 0; r < x.rows(); ++r) {
          for (int c = 0; c < x.cols(); ++c) {
            if (rng.bernoulli(flip)) x.set(r, c, static_cast<std::uint8_t>(1 - x.at(r, c)));
          }
        }
      }
    }
  }
  // k = 0: restore the kept region exactly.
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) {
      if (keep_mask.at(r, c)) x.set(r, c, known.at(r, c));
    }
  }
  return x;
}

squish::Topology modify(const DiffusionSampler& sampler, const squish::Topology& known,
                        const squish::Topology& keep_mask, const ModifyConfig& config,
                        util::Rng& rng) {
  // Start from pure noise (at k = K the state is iid fair coin flips).
  squish::Topology init(known.rows(), known.cols());
  for (int r = 0; r < init.rows(); ++r) {
    for (int c = 0; c < init.cols(); ++c) init.set(r, c, rng.bernoulli(0.5) ? 1 : 0);
  }
  return modify_from(sampler, known, keep_mask, std::move(init), sampler.schedule().steps(),
                     config, rng);
}

squish::Topology DiffusionSampler::modify(const squish::Topology& known,
                                          const squish::Topology& keep_mask,
                                          const ModifyConfig& config, util::Rng& rng) const {
  return diffusion::modify(*this, known, keep_mask, config, rng);
}

}  // namespace cp::diffusion
