#pragma once
// Training of the conditional denoisers.
//
// The paper's objective (Equation 10) is the D3PM hybrid loss
//     L = KL( q(x_{k-1}|x_k, x_0) || p_theta(x_{k-1}|x_k, c) ) - lambda log p_theta(x_0|x_k, c).
// With binary pixels and the x0-parameterisation both terms are closed-form
// functions of the model belief p0 = p_theta(x0=1|x_k, c):
//   * the reverse kernel is linear in p0:  p1 = p0*A + (1-p0)*B with
//     A = q(x_{k-1}=1|x_k, x0=1), B = q(x_{k-1}=1|x_k, x0=0), so the KL term
//     and its gradient are exact;
//   * the second term is plain binary cross-entropy.
// The MLP trainer optimises exactly this hybrid loss with Adam, lr 2e-4,
// grad-clip 1.0 and lambda 1e-3 — the paper's hyper-parameters. Iteration
// counts are scaled down for CPU (see DESIGN.md S2).

#include <string>
#include <vector>

#include "diffusion/mlp_denoiser.h"
#include "diffusion/tabular_denoiser.h"

namespace cp::diffusion {

struct TrainConfig {
  int iterations = 3000;
  int batch_pixels = 256;  // pixels per minibatch (one noised image each)
  float lr = 2e-4f;
  float grad_clip = 1.0f;
  float lambda = 1e-3f;  // weight of the CE term, as in the paper
  std::uint64_t seed = 7;
  int log_every = 0;  // 0 = silent
  /// Worker threads for per-minibatch feature extraction and per-pixel
  /// loss/gradient evaluation (<= 1 = serial). All RNG draws stay on the
  /// calling thread and the loss reduction runs in pixel-index order, so
  /// the trained weights are bit-identical for every thread count.
  int threads = 1;
  /// Checkpoint/resume (see diffusion/checkpoint.h). When `checkpoint_path`
  /// is non-empty, train_mlp first tries to resume from it (a corrupt file
  /// is logged and ignored; a fingerprint mismatch starts fresh), and with
  /// `checkpoint_every` > 0 snapshots params + optimizer + RNG state every
  /// that many iterations. A resumed run is bit-identical to an
  /// uninterrupted one.
  std::string checkpoint_path;
  int checkpoint_every = 0;  // 0 = resume-only, never write
};

struct TrainStats {
  std::vector<float> losses;  // per-logged-step hybrid loss
  float final_loss = 0.0f;
};

/// Train an MLP denoiser on per-class topology datasets (index = condition).
TrainStats train_mlp(MlpDenoiser& model,
                     const std::vector<std::vector<squish::Topology>>& per_class,
                     const TrainConfig& config);

/// Fit a tabular denoiser on per-class topology datasets.
TabularDenoiser fit_tabular(const NoiseSchedule& schedule, const TabularConfig& config,
                            const std::vector<std::vector<squish::Topology>>& per_class,
                            std::uint64_t seed);

/// Evaluate the mean hybrid loss of any denoiser on held-out data (used by
/// tests to show the trained model beats the prior-only control). With
/// `threads` > 1 (and a denoiser whose inference is thread-safe) the
/// per-draw evaluations fan out across a pool; noise draws are
/// pre-generated serially and the reduction runs in draw-index order, so
/// the result is identical for every thread count.
double evaluate_hybrid_loss(const Denoiser& model, const NoiseSchedule& schedule,
                            const std::vector<std::vector<squish::Topology>>& per_class,
                            float lambda, int draws, std::uint64_t seed, int threads = 1);

}  // namespace cp::diffusion
