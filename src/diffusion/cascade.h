#pragma once
// Cascaded (coarse-to-fine) conditional sampling.
//
// A local-receptive-field denoiser cannot nucleate global structure from
// pure noise: at high noise its posterior is uninformative, so a single-
// resolution reverse chain drifts off the data manifold (part of
// substitution S2; the paper's U-Net sees the whole window and does not have
// this problem). The standard remedy is a cascade, as in cascaded diffusion
// models: (1) run the full reverse chain at 1/factor resolution, where
// features span only a few cells and the local posterior *is* informative;
// (2) upsample the coarse topology; (3) forward-noise it to an intermediate
// level and run the fine-resolution chain down from there, which keeps the
// global structure and re-synthesises scan-line-accurate detail.
//
// CascadeSampler implements the TopologyGenerator interface, so extension,
// the agent tools and the benches are agnostic to which sampler they drive
// (bench/ablation_sampler compares them).

#include "diffusion/modification.h"
#include "diffusion/sampler.h"

namespace cp::diffusion {

struct CascadeConfig {
  int factor = 4;           // resolution ratio between stages
  /// Stochastic fine-stage refinement: noise level the fine chain restarts
  /// from after upsampling. 0 disables it (default): stochastic refinement
  /// re-jitters polygon edges, inflating scan-line complexity well past the
  /// data's (see bench/ablation_sampler); diversity comes from the coarse
  /// stage, and the fine stage only needs to clean upsampling artifacts.
  double refine_flip = 0.0;
  int refine_steps = 10;    // visited fine-stage timesteps (stochastic mode)
  int coarse_steps = 24;    // visited coarse-stage timesteps
  int polish_rounds = 6;    // deterministic MAP polish sweeps (fine stage)
  int polish_k = 16;        // noise level the MAP polish assumes
  /// Visited-subset placement for both stages (timestep_schedule.h). The
  /// per-request SampleConfig/ModifyConfig kind is deliberately ignored
  /// here: the cascade's step budgets are its own tuned knobs, and one kind
  /// keeps the two stages consistent.
  ScheduleKind schedule_kind = ScheduleKind::kNoiseUniform;
};

class CascadeSampler : public TopologyGenerator {
 public:
  /// `coarse` was trained on factor-downsampled topologies, `fine` on
  /// full-resolution ones; both share the schedule.
  CascadeSampler(const NoiseSchedule& schedule, const Denoiser& coarse, const Denoiser& fine,
                 const CascadeConfig& config);

  squish::Topology sample(const SampleConfig& config, util::Rng& rng) const override;

  /// Cascade-aware masked modification: the coarse stage runs Eq. (12) with
  /// the downsampled mask, the fine stage refines with the exact mask.
  squish::Topology modify(const squish::Topology& known, const squish::Topology& keep_mask,
                          const ModifyConfig& config, util::Rng& rng) const override;

  const char* name() const override { return "CascadeSampler"; }

  bool thread_safe() const override {
    return coarse_.thread_safe() && fine_.thread_safe();
  }

  const DiffusionSampler& coarse_sampler() const { return coarse_; }
  const DiffusionSampler& fine_sampler() const { return fine_; }
  const CascadeConfig& cascade_config() const { return config_; }

  /// Register searched visited lists for the two stages (consulted when
  /// `schedule_kind` is kSearched; see DiffusionSampler). Pass an empty
  /// vector to leave a stage on its closed-form fallback.
  void set_searched_timesteps(std::vector<int> coarse, std::vector<int> fine);

  /// The exact visited-step lists the stages will walk — the coarse chain
  /// from K and, when stochastic refinement is enabled (refine_flip > 0),
  /// the fine chain from its restart level. Exposed so tests/golden can pin
  /// the visited-step logic without sampling.
  std::vector<int> coarse_timesteps() const;
  std::vector<int> refine_timesteps() const;  // empty when refine_flip == 0
  /// Restart level of the stochastic refinement stage (0 when disabled).
  int refine_start_level() const;

 private:
  /// Fine-stage refinement of an upsampled coarse topology, with an optional
  /// keep mask (empty topology = no mask).
  squish::Topology refine(const squish::Topology& coarse_up, const squish::Topology& known,
                          const squish::Topology& keep_mask, int condition, int steps,
                          util::Rng& rng) const;

  DiffusionSampler coarse_;
  DiffusionSampler fine_;
  CascadeConfig config_;
};

}  // namespace cp::diffusion
