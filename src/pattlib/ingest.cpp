#include "pattlib/ingest.h"

#include <utility>

#include "io/gds_stream.h"
#include "obs/registry.h"

namespace cp::pattlib {

IngestStats ingest_gds(const std::string& path, PatternStore& store, const IngestConfig& cfg) {
  IngestStats stats;
  const io::StreamStats stream = io::stream_gds_structures(path, [&](io::GdsStructure&& s) {
    ++stats.structures;
    if (cfg.layer >= 0 && s.layer != cfg.layer) return;
    if (cfg.max_windows > 0 && stats.windows_kept >= cfg.max_windows) return;
    stats.rects += static_cast<long long>(s.rects.size());
    const WindowStats w = windows_over(
        s.rects, cfg.window,
        [&](squish::SquishPattern&& pattern, geometry::Coord wx, geometry::Coord wy) {
          if (cfg.max_windows > 0 && stats.added + stats.deduped >= cfg.max_windows) return;
          PatternMeta meta;
          meta.source = path;
          meta.structure = s.name;
          meta.style_tag = cfg.style_tag;
          meta.layer = s.layer;
          meta.window_x = wx;
          meta.window_y = wy;
          const AddResult r = store.add(pattern, std::move(meta));
          r.inserted ? ++stats.added : ++stats.deduped;
        });
    stats.windows_seen += w.seen;
    // windows_kept counts store submissions, which the max_windows cap may
    // stop short of the windowing pass's own kept count.
    stats.windows_kept = stats.added + stats.deduped;
  });
  stats.bytes_streamed = stream.bytes;
  store.flush();
  obs::count("pattlib/ingested_files");
  return stats;
}

}  // namespace cp::pattlib
