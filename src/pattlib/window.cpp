#include "pattlib/window.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

namespace cp::pattlib {

namespace {

using geometry::Coord;
using geometry::Rect;

// Enumeration cap for skip_empty = false: every grid window is visited, so
// refuse grids that would turn one call into billions of squishes.
constexpr long long kMaxEnumeratedWindows = 1LL << 24;

/// Index of the last window whose span [origin + i*stride, ... + window)
/// starts at or before `x` (floor division for non-negative offsets).
long long window_floor(Coord x, Coord origin, Coord stride) {
  return static_cast<long long>((x - origin) / stride);
}

}  // namespace

WindowStats windows_over(
    const std::vector<Rect>& rects, const WindowConfig& cfg,
    const std::function<void(squish::SquishPattern&&, Coord, Coord)>& fn) {
  if (cfg.window_nm <= 0) throw std::invalid_argument("pattlib: window_nm must be positive");
  if (cfg.stride_nm < 0) throw std::invalid_argument("pattlib: stride_nm must be non-negative");
  const Coord window = cfg.window_nm;
  const Coord stride = cfg.stride_nm > 0 ? cfg.stride_nm : window;

  WindowStats stats;
  if (rects.empty()) return stats;

  const Rect bbox = geometry::bounding_box(rects);
  const Coord ox = bbox.x0, oy = bbox.y0;
  // Enough windows that the last one reaches (or passes) the far edge.
  auto grid_count = [&](Coord extent) {
    if (extent <= window) return 1LL;
    return static_cast<long long>((extent - window + stride - 1) / stride) + 1;
  };
  const long long nx = grid_count(bbox.width());
  const long long ny = grid_count(bbox.height());
  stats.seen = nx * ny;

  // Bucket rects by the window indices they overlap. With stride < window a
  // rect lands in every window whose span intersects it. std::map keys give
  // the deterministic row-major visit order for free.
  std::map<std::pair<long long, long long>, std::vector<std::size_t>> buckets;
  for (std::size_t i = 0; i < rects.size(); ++i) {
    const Rect& r = rects[i];
    if (r.empty()) continue;
    const long long ix0 = std::max(0LL, window_floor(r.x0 - window + 1 + stride - 1, ox, stride));
    const long long ix1 = std::min(nx - 1, window_floor(r.x1 - 1, ox, stride));
    const long long iy0 = std::max(0LL, window_floor(r.y0 - window + 1 + stride - 1, oy, stride));
    const long long iy1 = std::min(ny - 1, window_floor(r.y1 - 1, oy, stride));
    for (long long iy = iy0; iy <= iy1; ++iy) {
      for (long long ix = ix0; ix <= ix1; ++ix) {
        buckets[{iy, ix}].push_back(i);
      }
    }
  }

  const double window_area = static_cast<double>(window) * static_cast<double>(window);
  auto visit = [&](long long iy, long long ix, const std::vector<std::size_t>& bucket) {
    const Coord wx = ox + static_cast<Coord>(ix) * stride;
    const Coord wy = oy + static_cast<Coord>(iy) * stride;
    const Rect win{wx, wy, wx + window, wy + window};
    double area = 0;
    std::vector<Rect> clipped;
    clipped.reserve(bucket.size());
    for (const std::size_t i : bucket) {
      const Rect c = rects[i].clipped_to(win);
      if (c.empty()) continue;
      area += static_cast<double>(c.area());
      clipped.push_back(c);
    }
    const double density = area / window_area;
    if (cfg.skip_empty && clipped.empty()) return;
    if (density < cfg.min_density || density > cfg.max_density) return;
    ++stats.kept;
    fn(squish::squish(clipped, win), wx, wy);
  };

  if (cfg.skip_empty) {
    for (const auto& [key, bucket] : buckets) visit(key.first, key.second, bucket);
  } else {
    if (stats.seen > kMaxEnumeratedWindows) {
      throw std::invalid_argument(
          "pattlib: window grid too large to enumerate without skip_empty");
    }
    static const std::vector<std::size_t> kEmpty;
    for (long long iy = 0; iy < ny; ++iy) {
      for (long long ix = 0; ix < nx; ++ix) {
        const auto it = buckets.find({iy, ix});
        visit(iy, ix, it == buckets.end() ? kEmpty : it->second);
      }
    }
  }
  return stats;
}

}  // namespace cp::pattlib
