#pragma once
// Windowing pass of the ingestion pipeline (docs/LIBRARY.md): slide fixed-
// size nm windows over a structure's rectangle soup and squish each window
// that passes the density prefilter into a SquishPattern. Rects are bucketed
// by window index first, so the cost is O(rects + populated windows), not
// O(rects x windows) — a sparse die with a huge bounding box only pays for
// the windows that actually contain geometry.

#include <functional>

#include "squish/squish.h"

namespace cp::pattlib {

struct WindowConfig {
  geometry::Coord window_nm = 2048;  // square window edge
  geometry::Coord stride_nm = 0;     // 0 = window_nm (non-overlapping tiling)
  /// Physical fill-fraction prefilter (clipped rect area / window area),
  /// applied before squishing; windows outside [min, max] are skipped.
  double min_density = 0.0;
  double max_density = 1.0;
  /// Skip windows with no geometry at all (the overwhelming majority on a
  /// sparse layout). When false every grid window is delivered, which also
  /// makes the pass O(windows) — guarded by a grid-size cap.
  bool skip_empty = true;
};

struct WindowStats {
  long long seen = 0;  // grid windows covering the bounding box
  long long kept = 0;  // windows delivered to the callback
};

/// Slide cfg windows over `rects` (grid anchored at the bounding-box origin)
/// and invoke `fn(pattern, window_x, window_y)` for each window that passes
/// the density prefilter, in deterministic row-major (y, then x) order.
/// window_x/window_y are the window's origin in the source's nm coordinates.
/// Throws std::invalid_argument on a non-positive window, a negative stride,
/// or (with skip_empty = false) a grid too large to enumerate.
WindowStats windows_over(
    const std::vector<geometry::Rect>& rects, const WindowConfig& cfg,
    const std::function<void(squish::SquishPattern&&, geometry::Coord, geometry::Coord)>& fn);

}  // namespace cp::pattlib
