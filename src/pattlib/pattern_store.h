#pragma once
// Persistent, queryable pattern library (docs/LIBRARY.md).
//
// A PatternStore is an append-only record file ("CPPL" format) plus an
// in-memory index. Every stored pattern carries provenance metadata (source
// file, structure, window origin), a style tag, layer, DRC status and a
// cached metric triple (density, complexity), and is deduplicated by the
// canonical topology hash — the hash of the minimal (deduplicated) squish
// matrix, so two windows that differ only in scan-line splits of the same
// physical topology collapse to one entry.
//
// Durability model: each record is framed independently (magic + length +
// payload + CRC32 of the frame), appended with full-write + fsync-on-flush.
// On open the file is scanned record by record; a torn tail (a crash mid-
// append) is detected by the frame CRC, dropped, and truncated away, so a
// killed writer restarts with exactly the patterns that were fully appended
// — the crash-restart contract gated by scripts/check_pattlib.sh. Bit rot
// inside the valid prefix surfaces as std::runtime_error("...checksum...").
//
// Thread model: single writer, arbitrary const readers between mutations
// (the serve layer queries a store that is not being mutated concurrently).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "squish/squish.h"

namespace cp::pattlib {

/// Cached legality verdict; kUnknown until a caller runs DRC and records it.
enum class DrcStatus : std::uint8_t { kUnknown = 0, kClean = 1, kViolating = 2 };

const char* to_string(DrcStatus status);

/// Per-pattern provenance + classification metadata. The metric cache
/// (density, complexity) is filled by the store on add.
struct PatternMeta {
  std::string source;     // originating file, or "generated"
  std::string structure;  // GDS structure name ("" for non-GDS sources)
  std::string style_tag;  // free-form category label, query key
  int layer = 1;
  geometry::Coord window_x = 0;  // window origin within the source, nm
  geometry::Coord window_y = 0;
  DrcStatus drc = DrcStatus::kUnknown;
  // -- metric cache (recomputed on add; persisted for query without load) --
  double density = 0.0;
  int complexity_x = 0;
  int complexity_y = 0;
};

struct StoredPattern {
  std::uint64_t id = 0;  // dense, insertion-ordered
  squish::SquishPattern pattern;
  PatternMeta meta;
  std::uint64_t topology_hash = 0;  // canonical (minimal-form) hash
};

/// Conjunctive metadata predicate; default-constructed matches everything.
struct Query {
  std::string style_tag;        // "" = any
  std::string source_contains;  // "" = any
  int layer = -1;               // -1 = any
  int drc = -1;                 // -1 = any, else static_cast<int>(DrcStatus)
  double min_density = 0.0;
  double max_density = 1.0;
  int min_rows = 0, max_rows = 0;  // 0 max = unbounded (topology dims)
  int min_cols = 0, max_cols = 0;
  long long limit = 0;  // 0 = unlimited
};

struct AddResult {
  std::uint64_t id = 0;   // new id, or the id of the canonical twin
  bool inserted = false;  // false = deduplicated against an existing entry
};

struct StoreStats {
  std::size_t patterns = 0;
  long long dedup_rejects = 0;  // add() calls dropped by the hash index (this session)
  std::uint64_t file_bytes = 0;
  std::uint64_t recovered_bytes = 0;  // torn tail truncated at open
  std::map<std::string, std::size_t> by_style;
  std::map<int, std::size_t> by_layer;
};

/// Canonical topology hash: FNV-1a over the dimensions and packed words of
/// `t.deduplicated()`. Invariant under scan-line splits; the dedup key.
std::uint64_t topology_hash(const squish::Topology& t);

class PatternStore {
 public:
  /// In-memory store (no backing file). add() keeps everything resident.
  PatternStore() = default;

  /// Open or create the store file at `path`, replaying every valid record
  /// into the index and truncating a torn tail if the previous writer died
  /// mid-append. Throws std::runtime_error on unreadable files or checksum
  /// failures inside the valid prefix.
  explicit PatternStore(std::string path);

  ~PatternStore();
  PatternStore(PatternStore&&) = delete;
  PatternStore& operator=(PatternStore&&) = delete;

  /// Append a pattern. Recomputes the metric cache, hashes the canonical
  /// topology and consults the dedup index: a duplicate is NOT appended and
  /// comes back {existing id, inserted=false}. Throws std::invalid_argument
  /// on malformed patterns and std::runtime_error on I/O failure.
  AddResult add(const squish::SquishPattern& pattern, PatternMeta meta);

  /// fsync the append stream (no-op for in-memory stores). Call after a
  /// batch of adds; the destructor also flushes.
  void flush();

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::string& path() const { return path_; }
  const StoredPattern& at(std::uint64_t id) const;
  /// Lookup by canonical topology hash (the dedup index).
  std::optional<std::uint64_t> find_by_hash(std::uint64_t hash) const;

  /// Record DRC status on an existing entry. In-memory only mutation is not
  /// supported for persisted stores (append-only file): the status is
  /// persisted as a small amendment record.
  void set_drc(std::uint64_t id, DrcStatus status);

  /// Ids matching `query`, in insertion (= id) order — deterministic across
  /// runs and re-opens of the same file.
  std::vector<std::uint64_t> query(const Query& q) const;

  /// Patterns for a set of ids (the core::PatternLibrary import bridge).
  std::vector<squish::SquishPattern> patterns(const std::vector<std::uint64_t>& ids) const;

  StoreStats stats() const;

  /// Export bridges. `ids` from query(); export_gds writes one structure per
  /// pattern on its stored layer; export_pbm mirrors PatternLibrary's
  /// layout (PBM files + manifest, both written atomically).
  int export_gds(const std::string& gds_path, const std::vector<std::uint64_t>& ids) const;
  int export_pbm(const std::string& dir, const std::vector<std::uint64_t>& ids) const;

 private:
  void open_and_replay();
  void append_record(std::uint8_t type, const std::string& payload);

  std::string path_;  // empty = in-memory
  int fd_ = -1;       // append stream of persisted stores
  std::uint64_t file_bytes_ = 0;
  std::uint64_t recovered_bytes_ = 0;
  long long dedup_rejects_ = 0;
  std::vector<StoredPattern> entries_;
  std::map<std::uint64_t, std::uint64_t> by_hash_;  // canonical hash -> id
};

}  // namespace cp::pattlib
