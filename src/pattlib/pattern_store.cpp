#include "pattlib/pattern_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "io/gds.h"
#include "obs/registry.h"
#include "util/fault.h"
#include "util/fs.h"
#include "util/strings.h"

namespace cp::pattlib {

namespace {

// CPPL container layout (docs/LIBRARY.md): an 8-byte file magic, then an
// append-only sequence of independently framed records:
//   [u8 type][u32le payload_len][payload][u32le crc32(type|len|payload)]
// Frame independence is what makes torn-tail recovery exact: a record either
// verifies completely or is not part of the store.
constexpr std::string_view kFileMagic = "CPPLIB01";
constexpr std::uint8_t kPatternRecord = 1;
constexpr std::uint8_t kDrcRecord = 2;
constexpr std::size_t kFrameOverhead = 1 + 4 + 4;
constexpr std::uint64_t kMaxStoreBytes = 4ULL << 30;   // open-time slurp cap
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;   // per-record sanity cap

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_string(std::string& out, const std::string& s) {
  if (s.size() > 0xffff) throw std::invalid_argument("pattlib: metadata string too long");
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out += s;
}

/// Bounds-checked little-endian cursor over a record payload; any over-read
/// is a corrupt record, reported as such.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  std::uint16_t u16() { return static_cast<std::uint16_t>(raw(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(raw(4)); }
  std::uint64_t u64() { return raw(8); }
  double f64() {
    const std::uint64_t bits = raw(8);
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::size_t n = u16();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  std::string_view bytes(std::size_t n) {
    need(n);
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) throw std::runtime_error("pattlib: corrupt record payload");
  }
  std::uint64_t raw(int width) {
    need(static_cast<std::size_t>(width));
    std::uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += static_cast<std::size_t>(width);
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

std::string serialize_pattern(const StoredPattern& e) {
  const squish::Topology& t = e.pattern.topology;
  if (t.rows() > 0xffff || t.cols() > 0xffff) {
    throw std::invalid_argument("pattlib: topology too large for the store format");
  }
  std::string p;
  put_u16(p, static_cast<std::uint16_t>(t.rows()));
  put_u16(p, static_cast<std::uint16_t>(t.cols()));
  // Topology bits: row-major, 8 cells per byte, LSB first.
  const int bytes_per_row = (t.cols() + 7) / 8;
  for (int r = 0; r < t.rows(); ++r) {
    for (int b = 0; b < bytes_per_row; ++b) {
      unsigned char byte = 0;
      for (int k = 0; k < 8; ++k) {
        const int c = b * 8 + k;
        if (c < t.cols() && t.at(r, c)) byte |= static_cast<unsigned char>(1u << k);
      }
      p.push_back(static_cast<char>(byte));
    }
  }
  auto put_deltas = [&p](const squish::DeltaVec& d) {
    for (const geometry::Coord v : d) {
      if (v <= 0 || v > 0xffffffffLL) {
        throw std::invalid_argument("pattlib: delta out of the store's u32 range");
      }
      put_u32(p, static_cast<std::uint32_t>(v));
    }
  };
  put_deltas(e.pattern.dx);
  put_deltas(e.pattern.dy);
  put_string(p, e.meta.source);
  put_string(p, e.meta.structure);
  put_string(p, e.meta.style_tag);
  put_u32(p, static_cast<std::uint32_t>(e.meta.layer));
  put_u64(p, static_cast<std::uint64_t>(e.meta.window_x));
  put_u64(p, static_cast<std::uint64_t>(e.meta.window_y));
  p.push_back(static_cast<char>(e.meta.drc));
  put_f64(p, e.meta.density);
  put_u16(p, static_cast<std::uint16_t>(e.meta.complexity_x));
  put_u16(p, static_cast<std::uint16_t>(e.meta.complexity_y));
  return p;
}

StoredPattern deserialize_pattern(std::string_view payload) {
  Cursor cur(payload);
  StoredPattern e;
  const int rows = cur.u16();
  const int cols = cur.u16();
  if (rows == 0 || cols == 0) throw std::runtime_error("pattlib: corrupt record payload");
  const int bytes_per_row = (cols + 7) / 8;
  squish::Topology t(rows, cols);
  for (int r = 0; r < rows; ++r) {
    const std::string_view row = cur.bytes(static_cast<std::size_t>(bytes_per_row));
    for (int c = 0; c < cols; ++c) {
      if ((static_cast<unsigned char>(row[static_cast<std::size_t>(c / 8)]) >> (c % 8)) & 1u) {
        t.set(r, c, 1);
      }
    }
  }
  e.pattern.topology = std::move(t);
  e.pattern.dx.resize(static_cast<std::size_t>(cols));
  for (auto& d : e.pattern.dx) d = static_cast<geometry::Coord>(cur.u32());
  e.pattern.dy.resize(static_cast<std::size_t>(rows));
  for (auto& d : e.pattern.dy) d = static_cast<geometry::Coord>(cur.u32());
  e.meta.source = cur.str();
  e.meta.structure = cur.str();
  e.meta.style_tag = cur.str();
  e.meta.layer = static_cast<int>(cur.u32());
  e.meta.window_x = static_cast<geometry::Coord>(cur.u64());
  e.meta.window_y = static_cast<geometry::Coord>(cur.u64());
  const std::uint64_t drc = static_cast<unsigned char>(cur.bytes(1)[0]);
  if (drc > 2) throw std::runtime_error("pattlib: corrupt record payload");
  e.meta.drc = static_cast<DrcStatus>(drc);
  e.meta.density = cur.f64();
  e.meta.complexity_x = cur.u16();
  e.meta.complexity_y = cur.u16();
  if (!cur.exhausted()) throw std::runtime_error("pattlib: corrupt record payload");
  if (!e.pattern.well_formed()) throw std::runtime_error("pattlib: corrupt record payload");
  return e;
}

std::string frame_record(std::uint8_t type, const std::string& payload) {
  std::string frame;
  frame.reserve(payload.size() + kFrameOverhead);
  frame.push_back(static_cast<char>(type));
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame += payload;
  const std::uint32_t crc = util::crc32(std::string_view(frame));
  put_u32(frame, crc);
  return frame;
}

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

const char* to_string(DrcStatus status) {
  switch (status) {
    case DrcStatus::kUnknown: return "unknown";
    case DrcStatus::kClean: return "clean";
    case DrcStatus::kViolating: return "violating";
  }
  return "unknown";
}

std::uint64_t topology_hash(const squish::Topology& t) {
  const squish::Topology d = t.deduplicated();
  std::uint64_t h = 1469598103934665603ULL;
  auto fnv = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  fnv(static_cast<std::uint64_t>(d.rows()));
  fnv(static_cast<std::uint64_t>(d.cols()));
  // The zero-tail invariant makes packed words canonical for equal grids.
  for (int r = 0; r < d.rows(); ++r) {
    for (int w = 0; w < d.words_per_row(); ++w) fnv(d.word(r, w));
  }
  return h;
}

PatternStore::PatternStore(std::string path) : path_(std::move(path)) { open_and_replay(); }

PatternStore::~PatternStore() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

void PatternStore::open_and_replay() {
  namespace fs = std::filesystem;
  const fs::path target(path_);
  if (target.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
      throw std::runtime_error("pattlib: cannot create directory '" +
                               target.parent_path().string() + "': " + ec.message());
    }
  }

  std::string data;
  if (fs::exists(target)) data = util::read_file(path_, kMaxStoreBytes);

  std::uint64_t valid_end = 0;
  if (data.size() < kFileMagic.size()) {
    // New store, or a writer died inside the 8-byte header: start fresh.
    recovered_bytes_ = data.size();
    data.clear();
  } else if (std::string_view(data).substr(0, kFileMagic.size()) != kFileMagic) {
    throw std::runtime_error("pattlib: '" + path_ + "' is not a CPPL pattern store");
  } else {
    valid_end = kFileMagic.size();
    std::size_t pos = kFileMagic.size();
    while (pos < data.size()) {
      // A frame that cannot complete before EOF is a torn append: recover.
      // A complete frame with a bad CRC mid-file (valid records follow) is
      // bit rot: fail loudly instead of silently dropping history.
      bool torn = false;
      std::uint8_t type = 0;
      std::string_view payload;
      if (pos + 5 > data.size()) {
        torn = true;
      } else {
        type = static_cast<std::uint8_t>(data[pos]);
        std::uint32_t len = 0;
        for (int i = 0; i < 4; ++i) {
          len |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[pos + 1 + i]))
                 << (8 * i);
        }
        if (len > kMaxRecordBytes || pos + kFrameOverhead + len > data.size()) {
          torn = true;
        } else {
          const std::string_view frame(data.data() + pos, 5 + len);
          std::uint32_t stored = 0;
          for (int i = 0; i < 4; ++i) {
            stored |= static_cast<std::uint32_t>(
                          static_cast<unsigned char>(data[pos + 5 + len + i]))
                      << (8 * i);
          }
          if (util::crc32(frame) != stored) {
            // Damaged final record, or a zero-filled tail (blocks allocated
            // by a crashed writer but never flushed): torn, recover. A bad
            // frame followed by non-zero data is bit rot: fail loudly
            // instead of silently dropping history.
            const bool zero_tail =
                data.find_first_not_of('\0', pos) == std::string::npos;
            if (pos + kFrameOverhead + len == data.size() || zero_tail) {
              torn = true;
            } else {
              throw std::runtime_error(util::format(
                  "pattlib: checksum mismatch in '%s' at byte %llu", path_.c_str(),
                  static_cast<unsigned long long>(pos)));
            }
          } else {
            payload = frame.substr(5);
          }
        }
      }
      if (torn) break;

      if (type == kPatternRecord) {
        StoredPattern e = deserialize_pattern(payload);
        e.id = static_cast<std::uint64_t>(entries_.size());
        e.topology_hash = topology_hash(e.pattern.topology);
        by_hash_.emplace(e.topology_hash, e.id);  // first writer wins, like add()
        entries_.push_back(std::move(e));
      } else if (type == kDrcRecord) {
        Cursor cur(payload);
        const std::uint64_t id = cur.u64();
        const std::uint64_t status = static_cast<unsigned char>(cur.bytes(1)[0]);
        if (!cur.exhausted() || status > 2 || id >= entries_.size()) {
          throw std::runtime_error("pattlib: corrupt record payload");
        }
        entries_[static_cast<std::size_t>(id)].meta.drc = static_cast<DrcStatus>(status);
      } else {
        throw std::runtime_error(util::format("pattlib: unknown record type %u in '%s'",
                                              static_cast<unsigned>(type), path_.c_str()));
      }
      pos += kFrameOverhead + payload.size();
      valid_end = pos;
    }
    if (valid_end < data.size()) {
      recovered_bytes_ = data.size() - valid_end;
      obs::count("pattlib/recovered_records");
    }
  }

  // Materialise the recovery before appending anything new: the file is
  // truncated to its valid prefix, so a re-open sees a bit-identical store.
  if (recovered_bytes_ > 0 && fs::exists(target)) {
    std::error_code ec;
    fs::resize_file(target, valid_end, ec);
    if (ec) {
      throw std::runtime_error("pattlib: cannot truncate torn tail of '" + path_ +
                               "': " + ec.message());
    }
  }

  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) throw_errno("pattlib: cannot open store", path_);
  file_bytes_ = valid_end;
  if (valid_end == 0) {
    // Fresh (or reset) store: write the file magic through the same
    // full-write path as records.
    const std::string magic(kFileMagic);
    std::size_t off = 0;
    while (off < magic.size()) {
      const ssize_t n = ::write(fd_, magic.data() + off, magic.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("pattlib: write failed for", path_);
      }
      off += static_cast<std::size_t>(n);
    }
    file_bytes_ = magic.size();
  }
}

void PatternStore::append_record(std::uint8_t type, const std::string& payload) {
  if (fd_ < 0) return;  // in-memory store
  util::fault::point("pattlib/append");
  const std::string frame = frame_record(type, payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pattlib: write failed for", path_);
    }
    off += static_cast<std::size_t>(n);
  }
  file_bytes_ += frame.size();
}

void PatternStore::flush() {
  if (fd_ >= 0 && ::fsync(fd_) != 0) throw_errno("pattlib: fsync failed for", path_);
}

AddResult PatternStore::add(const squish::SquishPattern& pattern, PatternMeta meta) {
  if (!pattern.well_formed() || pattern.topology.empty()) {
    throw std::invalid_argument("pattlib: malformed or empty pattern");
  }
  const std::uint64_t hash = topology_hash(pattern.topology);
  if (const auto it = by_hash_.find(hash); it != by_hash_.end()) {
    ++dedup_rejects_;
    obs::count("pattlib/dedup_rejects");
    return {it->second, false};
  }
  StoredPattern e;
  e.id = static_cast<std::uint64_t>(entries_.size());
  e.pattern = pattern;
  e.meta = std::move(meta);
  e.meta.density = pattern.topology.density();
  const auto [cx, cy] = pattern.topology.complexity();
  e.meta.complexity_x = cx;
  e.meta.complexity_y = cy;
  e.topology_hash = hash;
  append_record(kPatternRecord, serialize_pattern(e));
  by_hash_.emplace(hash, e.id);
  entries_.push_back(std::move(e));
  obs::count("pattlib/added");
  return {entries_.back().id, true};
}

const StoredPattern& PatternStore::at(std::uint64_t id) const {
  if (id >= entries_.size()) {
    throw std::out_of_range(util::format("pattlib: no pattern %llu (store holds %zu)",
                                         static_cast<unsigned long long>(id), entries_.size()));
  }
  return entries_[static_cast<std::size_t>(id)];
}

std::optional<std::uint64_t> PatternStore::find_by_hash(std::uint64_t hash) const {
  const auto it = by_hash_.find(hash);
  if (it == by_hash_.end()) return std::nullopt;
  return it->second;
}

void PatternStore::set_drc(std::uint64_t id, DrcStatus status) {
  StoredPattern& e = entries_[static_cast<std::size_t>(at(id).id)];
  std::string payload;
  put_u64(payload, id);
  payload.push_back(static_cast<char>(status));
  append_record(kDrcRecord, payload);
  e.meta.drc = status;
}

std::vector<std::uint64_t> PatternStore::query(const Query& q) const {
  std::vector<std::uint64_t> out;
  for (const StoredPattern& e : entries_) {
    if (q.limit > 0 && static_cast<long long>(out.size()) >= q.limit) break;
    const PatternMeta& m = e.meta;
    if (!q.style_tag.empty() && m.style_tag != q.style_tag) continue;
    if (!q.source_contains.empty() && m.source.find(q.source_contains) == std::string::npos) {
      continue;
    }
    if (q.layer >= 0 && m.layer != q.layer) continue;
    if (q.drc >= 0 && static_cast<int>(m.drc) != q.drc) continue;
    if (m.density < q.min_density || m.density > q.max_density) continue;
    const int rows = e.pattern.topology.rows();
    const int cols = e.pattern.topology.cols();
    if (rows < q.min_rows || (q.max_rows > 0 && rows > q.max_rows)) continue;
    if (cols < q.min_cols || (q.max_cols > 0 && cols > q.max_cols)) continue;
    out.push_back(e.id);
  }
  return out;
}

std::vector<squish::SquishPattern> PatternStore::patterns(
    const std::vector<std::uint64_t>& ids) const {
  std::vector<squish::SquishPattern> out;
  out.reserve(ids.size());
  for (const std::uint64_t id : ids) out.push_back(at(id).pattern);
  return out;
}

StoreStats PatternStore::stats() const {
  StoreStats s;
  s.patterns = entries_.size();
  s.dedup_rejects = dedup_rejects_;
  s.file_bytes = file_bytes_;
  s.recovered_bytes = recovered_bytes_;
  for (const StoredPattern& e : entries_) {
    ++s.by_style[e.meta.style_tag];
    ++s.by_layer[e.meta.layer];
  }
  return s;
}

int PatternStore::export_gds(const std::string& gds_path,
                             const std::vector<std::uint64_t>& ids) const {
  io::GdsLibrary lib;
  lib.name = "CHATPATTERN_STORE";
  for (const std::uint64_t id : ids) {
    const StoredPattern& e = at(id);
    io::GdsStructure str;
    str.name = util::format("PATTERN_%08llu", static_cast<unsigned long long>(id));
    str.layer = e.meta.layer;
    str.rects = squish::unsquish(e.pattern);
    lib.structures.push_back(std::move(str));
  }
  io::write_gds(gds_path, lib);
  return static_cast<int>(lib.structures.size());
}

int PatternStore::export_pbm(const std::string& dir,
                             const std::vector<std::uint64_t>& ids) const {
  std::string manifest;
  int written = 0;
  for (const std::uint64_t id : ids) {
    const StoredPattern& e = at(id);
    const std::string name = util::format("pattern_%08llu.pbm", static_cast<unsigned long long>(id));
    util::atomic_write_file(dir + "/" + name, e.pattern.topology.to_pbm());
    manifest += util::format("%s %lldx%lld nm style=%s layer=%d drc=%s\n", name.c_str(),
                             static_cast<long long>(e.pattern.width_nm()),
                             static_cast<long long>(e.pattern.height_nm()),
                             e.meta.style_tag.c_str(), e.meta.layer, to_string(e.meta.drc));
    ++written;
  }
  util::atomic_write_file(dir + "/manifest.txt",
                          util::format("count %d\n", written) + manifest);
  return written + 1;
}

}  // namespace cp::pattlib
