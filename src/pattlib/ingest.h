#pragma once
// End-to-end ingestion: stream a GDSII file structure by structure
// (io::stream_gds_structures), window each structure's rect soup
// (pattlib::windows_over) and add every kept window to a PatternStore,
// deduplicating by canonical topology hash. Memory is bounded by one
// structure plus the store index — the whole layout is never resident
// (docs/LIBRARY.md, EXPERIMENTS.md ingestion bench).

#include <string>

#include "pattlib/pattern_store.h"
#include "pattlib/window.h"

namespace cp::pattlib {

struct IngestConfig {
  WindowConfig window;
  std::string style_tag = "ingested";  // recorded on every stored pattern
  int layer = -1;                      // -1 = every layer; else skip others
  long long max_windows = 0;           // 0 = unlimited; cap on windows stored
};

struct IngestStats {
  long long structures = 0;    // structures streamed (before the layer filter)
  long long rects = 0;         // rects seen in accepted structures
  long long windows_seen = 0;  // grid windows over accepted structures
  long long windows_kept = 0;  // windows that passed the density prefilter
  long long added = 0;         // new store entries
  long long deduped = 0;       // windows dropped by the canonical-hash index
  std::uint64_t bytes_streamed = 0;  // GDS record-region bytes consumed
};

/// Stream `path` into `store`. Flushes the store once at the end. Throws
/// std::runtime_error on any GDS corruption (byte offset + record name, see
/// io/gds_stream.h) or store I/O failure; the store keeps every pattern
/// added before the throw.
IngestStats ingest_gds(const std::string& path, PatternStore& store, const IngestConfig& cfg);

}  // namespace cp::pattlib
