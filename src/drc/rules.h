#pragma once
// Design rules for layout patterns (Figure 3 of the paper): minimum space
// between adjacent polygons, minimum width of a shape in either direction,
// and minimum polygon area. A grid pitch gives the smallest physically
// meaningful scan-line interval.

#include <string>

#include "geometry/polygon.h"

namespace cp::drc {

using geometry::Coord;

struct DesignRules {
  Coord min_space_nm = 48;   // space between adjacent polygons
  Coord min_width_nm = 48;   // smallest dimension of any shape
  Coord min_area_nm2 = 4608; // smallest polygon area (e.g. width * 2*width)
  Coord pitch_nm = 1;        // smallest legal scan-line interval

  bool operator==(const DesignRules&) const = default;
};

/// Rules for the two dataset styles used throughout the paper's evaluation.
/// Layer-10001 mimics a dense thin-wire metal layer; Layer-10003 a sparser
/// wide-feature layer. The absolute values are representative 45-nm-class
/// numbers; only their ratios matter for the reproduction.
DesignRules rules_for_style(const std::string& style);

/// Human-readable one-line summary (used in agent documentation).
std::string describe(const DesignRules& rules);

}  // namespace cp::drc
