#include "drc/checker.h"

#include "obs/registry.h"

#include <algorithm>

#include "geometry/extract.h"
#include "util/strings.h"

namespace cp::drc {

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kWidth: return "width";
    case ViolationKind::kSpace: return "space";
    case ViolationKind::kArea: return "area";
    case ViolationKind::kPitch: return "pitch";
  }
  return "?";
}

geometry::Rect DrcReport::violating_region_cells() const {
  if (violations.empty()) return geometry::Rect{};
  geometry::Rect region{1 << 30, 1 << 30, -(1 << 30), -(1 << 30)};
  for (const Violation& v : violations) {
    region.x0 = std::min<geometry::Coord>(region.x0, v.col0);
    region.y0 = std::min<geometry::Coord>(region.y0, v.row0);
    region.x1 = std::max<geometry::Coord>(region.x1, v.col1);
    region.y1 = std::max<geometry::Coord>(region.y1, v.row1);
  }
  return region;
}

std::vector<std::pair<int, int>> row_runs(const squish::Topology& t, int r, std::uint8_t value) {
  // Word-at-a-time run scan: complement for 0-runs, mask the row tail, then
  // hop between run boundaries with countr_zero instead of testing cells.
  std::vector<std::pair<int, int>> runs;
  const int cols = t.cols();
  if (cols == 0) return runs;
  const std::uint64_t* row = t.row_words(r);
  int start = -1;  // column where the currently open run began, -1 if none
  for (int wi = 0; wi < t.words_per_row(); ++wi) {
    std::uint64_t m = value ? row[wi] : ~row[wi];
    const int base = wi * 64;
    const int bits = std::min(64, cols - base);
    if (bits < 64) m &= geometry::bitgrid_tail_mask(bits);
    int j = 0;
    while (j < bits) {
      if (start < 0) {
        const std::uint64_t rest = m >> j;
        if (rest == 0) break;
        j += std::countr_zero(rest);
        start = base + j;
      }
      const std::uint64_t inv = ~(m >> j);
      j = (inv == 0) ? 64 : j + std::countr_zero(inv);
      if (j < bits) {
        runs.emplace_back(start, base + j);
        start = -1;
      }
    }
  }
  if (start >= 0) runs.emplace_back(start, cols);
  return runs;
}

std::vector<std::pair<int, int>> col_runs(const squish::Topology& t, int c, std::uint8_t value) {
  std::vector<std::pair<int, int>> runs;
  int r = 0;
  while (r < t.rows()) {
    if (t.at(r, c) != value) {
      ++r;
      continue;
    }
    const int start = r;
    while (r < t.rows() && t.at(r, c) == value) ++r;
    runs.emplace_back(start, r);
  }
  return runs;
}

namespace {

Coord span_sum(const squish::DeltaVec& deltas, int begin, int end) {
  Coord s = 0;
  for (int i = begin; i < end; ++i) s += deltas[static_cast<std::size_t>(i)];
  return s;
}

void add_violation(DrcReport& report, ViolationKind kind, int row0, int col0, int row1, int col1,
                   Coord required, Coord actual) {
  Violation v;
  v.kind = kind;
  v.row0 = row0;
  v.col0 = col0;
  v.row1 = row1;
  v.col1 = col1;
  v.required_nm = required;
  v.actual_nm = actual;
  v.message = util::format("%s violation at rows[%d,%d) cols[%d,%d): need %lld, have %lld",
                           to_string(kind), row0, row1, col0, col1,
                           static_cast<long long>(required), static_cast<long long>(actual));
  report.violations.push_back(std::move(v));
}

}  // namespace

DrcReport check(const squish::SquishPattern& pattern, const DesignRules& rules) {
  const obs::Span span = obs::trace_scope("drc/check");
  obs::count("drc/checks");
  DrcReport report;
  const squish::Topology& t = pattern.topology;
  const int rows = t.rows();
  const int cols = t.cols();

  // Pitch: every scan-line interval must be at least the grid pitch.
  for (int c = 0; c < cols; ++c) {
    if (pattern.dx[static_cast<std::size_t>(c)] < rules.pitch_nm) {
      add_violation(report, ViolationKind::kPitch, 0, c, rows, c + 1, rules.pitch_nm,
                    pattern.dx[static_cast<std::size_t>(c)]);
    }
  }
  for (int r = 0; r < rows; ++r) {
    if (pattern.dy[static_cast<std::size_t>(r)] < rules.pitch_nm) {
      add_violation(report, ViolationKind::kPitch, r, 0, r + 1, cols, rules.pitch_nm,
                    pattern.dy[static_cast<std::size_t>(r)]);
    }
  }

  // Width and space along rows (x direction).
  for (int r = 0; r < rows; ++r) {
    const auto ones = row_runs(t, r, 1);
    for (const auto& [b, e] : ones) {
      if (b == 0 || e == cols) continue;  // run continues outside the clip
      const Coord w = span_sum(pattern.dx, b, e);
      if (w < rules.min_width_nm) {
        add_violation(report, ViolationKind::kWidth, r, b, r + 1, e, rules.min_width_nm, w);
      }
    }
    // Spaces are 0-runs strictly between two 1-runs.
    for (std::size_t i = 0; i + 1 < ones.size(); ++i) {
      const int b = ones[i].second;
      const int e = ones[i + 1].first;
      const Coord s = span_sum(pattern.dx, b, e);
      if (s < rules.min_space_nm) {
        add_violation(report, ViolationKind::kSpace, r, b, r + 1, e, rules.min_space_nm, s);
      }
    }
  }

  // Width and space along columns (y direction): one packed transpose, then
  // the same word-level run scan as the row pass (column c of t is row c of
  // the transpose, so violation order and content are unchanged).
  const squish::Topology tt = t.transposed();
  for (int c = 0; c < cols; ++c) {
    const auto ones = row_runs(tt, c, 1);
    for (const auto& [b, e] : ones) {
      if (b == 0 || e == rows) continue;  // run continues outside the clip
      const Coord h = span_sum(pattern.dy, b, e);
      if (h < rules.min_width_nm) {
        add_violation(report, ViolationKind::kWidth, b, c, e, c + 1, rules.min_width_nm, h);
      }
    }
    for (std::size_t i = 0; i + 1 < ones.size(); ++i) {
      const int b = ones[i].second;
      const int e = ones[i + 1].first;
      const Coord s = span_sum(pattern.dy, b, e);
      if (s < rules.min_space_nm) {
        add_violation(report, ViolationKind::kSpace, b, c, e, c + 1, rules.min_space_nm, s);
      }
    }
  }

  // Area per polygon (connected component).
  std::vector<Coord> px(static_cast<std::size_t>(cols) + 1, 0);
  std::vector<Coord> py(static_cast<std::size_t>(rows) + 1, 0);
  for (int c = 0; c < cols; ++c) px[c + 1] = px[c] + pattern.dx[static_cast<std::size_t>(c)];
  for (int r = 0; r < rows; ++r) py[r + 1] = py[r] + pattern.dy[static_cast<std::size_t>(r)];
  for (const auto& comp : geometry::connected_components(t.view())) {
    Coord area = 0;
    for (const geometry::Point& cell : comp.cells) {
      area += pattern.dx[static_cast<std::size_t>(cell.x)] *
              pattern.dy[static_cast<std::size_t>(cell.y)];
    }
    // Components touching the window border are exempt: their true extent is
    // unknown (the shape continues outside the clip).
    const bool on_border = comp.min_row == 0 || comp.min_col == 0 || comp.max_row + 1 == rows ||
                           comp.max_col + 1 == cols;
    if (!on_border && area < rules.min_area_nm2) {
      add_violation(report, ViolationKind::kArea, comp.min_row, comp.min_col, comp.max_row + 1,
                    comp.max_col + 1, rules.min_area_nm2, area);
    }
  }
  // Violation histogram (count per check) plus per-kind counters: the
  // manifest's "where does quality go" view of a run.
  obs::observe("drc/violations_per_check", static_cast<double>(report.violations.size()));
  if (!report.clean()) obs::count("drc/dirty_checks");
  for (const Violation& v : report.violations) {
    switch (v.kind) {
      case ViolationKind::kWidth: obs::count("drc/violation_width"); break;
      case ViolationKind::kSpace: obs::count("drc/violation_space"); break;
      case ViolationKind::kArea: obs::count("drc/violation_area"); break;
      case ViolationKind::kPitch: obs::count("drc/violation_pitch"); break;
    }
  }
  return report;
}

}  // namespace cp::drc
