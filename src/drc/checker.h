#pragma once
// Design-rule checker over squish patterns.
//
// Because a squish pattern already encodes all polygon edges as scan lines,
// the width/space rules reduce to constraints on contiguous runs of the
// topology matrix:
//   - every maximal run of 1s in a row (horizontal arm of a shape) must span
//     at least min_width in physical x; similarly for columns in y;
//   - every maximal run of 0s strictly between two 1-runs in a row is a
//     space and must span at least min_space; similarly for columns;
//   - every 4-connected component (polygon) must have physical area at least
//     min_area.
// Runs touching the pattern border are exempt from the space rule (the clip
// continues beyond the window), matching standard DRC windowing practice.
//
// Violations carry the offending cell region — the "explainable" failure
// localisation that the legalizer and the LLM agent rely on (Section 3.2).

#include <string>
#include <vector>

#include "drc/rules.h"
#include "squish/squish.h"

namespace cp::drc {

enum class ViolationKind { kWidth, kSpace, kArea, kPitch };

const char* to_string(ViolationKind kind);

struct Violation {
  ViolationKind kind = ViolationKind::kWidth;
  /// Offending cell region, half-open: rows [row0,row1), cols [col0,col1).
  int row0 = 0, col0 = 0, row1 = 0, col1 = 0;
  Coord required_nm = 0;  // rule value (nm, or nm^2 for area)
  Coord actual_nm = 0;    // measured value
  std::string message;    // human-readable log line for the agent
};

struct DrcReport {
  std::vector<Violation> violations;
  bool clean() const { return violations.empty(); }
  /// Merge all violation regions into one bounding cell region (the "failed
  /// region" the agent repairs); zero-size if clean.
  geometry::Rect violating_region_cells() const;
};

/// Check a full squish pattern (topology + geometry) against the rules.
DrcReport check(const squish::SquishPattern& pattern, const DesignRules& rules);

/// Maximal runs of `value` cells in row `r` of the topology as
/// (begin_col, end_col) half-open pairs. Exposed for the legalizer.
std::vector<std::pair<int, int>> row_runs(const squish::Topology& t, int r, std::uint8_t value);
std::vector<std::pair<int, int>> col_runs(const squish::Topology& t, int c, std::uint8_t value);

}  // namespace cp::drc
