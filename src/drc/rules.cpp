#include "drc/rules.h"

#include <stdexcept>

#include "util/strings.h"

namespace cp::drc {

DesignRules rules_for_style(const std::string& style) {
  const std::string s = util::to_lower(style);
  if (s == "layer-10001" || s == "10001" || s == "layer10001") {
    // Dense thin-wire routing layer.
    DesignRules r;
    r.min_space_nm = 48;
    r.min_width_nm = 48;
    r.min_area_nm2 = 48 * 96;
    r.pitch_nm = 1;
    return r;
  }
  if (s == "layer-10003" || s == "10003" || s == "layer10003") {
    // Sparser wide-feature layer.
    DesignRules r;
    r.min_space_nm = 64;
    r.min_width_nm = 80;
    r.min_area_nm2 = 80 * 160;
    r.pitch_nm = 1;
    return r;
  }
  throw std::invalid_argument("rules_for_style: unknown style '" + style + "'");
}

std::string describe(const DesignRules& rules) {
  return util::format("space>=%lldnm width>=%lldnm area>=%lldnm^2 pitch=%lldnm",
                      static_cast<long long>(rules.min_space_nm),
                      static_cast<long long>(rules.min_width_nm),
                      static_cast<long long>(rules.min_area_nm2),
                      static_cast<long long>(rules.pitch_nm));
}

}  // namespace cp::drc
