#include "agent/executor.h"

#include <cctype>
#include <chrono>

#include "obs/registry.h"
#include "util/fault.h"
#include "util/retry.h"
#include "util/strings.h"

namespace cp::agent {

namespace {

std::string pretty_action(const std::string& tool) {
  // Render registry names in the paper's transcript style
  // ("topology_modification" -> "Topology_Modification").
  std::string out = tool;
  bool upper_next = true;
  for (char& c : out) {
    if (c == '_') {
      upper_next = true;
    } else if (upper_next) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      upper_next = false;
    }
  }
  return out;
}

}  // namespace

ExecutionResult Executor::run(const RequirementList& requirement) {
  const obs::Span run_span = obs::trace_scope("agent/execute");
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  ExecutionResult result;
  result.stats.requested = requirement.count;
  const std::uint64_t base_seed = requirement.seed != 0 ? requirement.seed : 0x9e3779b9ULL;
  // The extension method actually used, for experience accounting.
  const bool fits = requirement.topo_rows <= window_ && requirement.topo_cols <= window_;
  const int target = std::max(requirement.topo_rows, requirement.topo_cols);

  for (long long item = 0; item < requirement.count; ++item) {
    if (requirement.time_limit_s > 0.0 && elapsed() > requirement.time_limit_s) {
      result.stats.time_limit_hit = true;
      result.transcript.push_back(util::format(
          "%% Time limit reached after %lld/%lld patterns; stopping early.", item,
          requirement.count));
      break;
    }
    AgentContext ctx;
    ctx.requirement = requirement;
    ctx.window = window_;
    // Keep per-item seeds in 31 bits: they travel through JSON tool
    // arguments, whose numbers are doubles.
    ctx.item_seed =
        (base_seed + static_cast<std::uint64_t>(item) * 1000003ULL) & 0x7fffffffULL;
    ctx.experience = experience_;
    std::string used_method;  // "Out"/"In" when extension was used

    bool item_done = false;
    for (int step = 0; step < max_steps_per_item_ && !item_done; ++step) {
      const AgentAction action = brain_->decide(ctx);
      result.transcript.push_back("Thought: " + action.thought);

      if (action.action == "drop") {
        result.transcript.push_back("Action: Drop_Topology");
        ++result.stats.dropped;
        if (!ctx.current_topology_id.empty()) store_->erase_topology(ctx.current_topology_id);
        if (experience_ != nullptr && !used_method.empty()) {
          experience_->record(used_method, requirement.style, target, false);
        }
        item_done = true;
        continue;
      }
      if (action.action == "give_up") {
        result.transcript.push_back("Action: Give_Up");
        ++result.stats.gave_up;
        item_done = true;
        continue;
      }
      if (action.action == "regenerate") {
        result.transcript.push_back("Action: Regenerate (new initial state)");
        ++result.stats.regenerations;
        ++ctx.regenerations;
        if (!ctx.current_topology_id.empty()) store_->erase_topology(ctx.current_topology_id);
        ctx.current_topology_id.clear();
        ctx.last_error_log.clear();
        ctx.last_error_region = util::Json();
        continue;
      }

      // A real tool call. One span per invocation, keyed by tool name, so
      // the manifest breaks agent time down per tool ("agent/execute/tool/
      // topology_legalization", ...).
      result.transcript.push_back("Action: " + pretty_action(action.action));
      result.transcript.push_back("Action Input: " + action.input.dump());
      // Tool calls recover through the same retry path as the serving layer
      // (fault point `agent/tool`). The tools are deterministic given their
      // input, so a retried call returns the identical result; when the
      // budget is exhausted the failure becomes an error observation the
      // brain reacts to — one bad tool never aborts the whole requirement.
      ToolResult tr;
      {
        const obs::Span tool_span = obs::trace_scope("tool/" + action.action);
        util::Rng jitter = util::Rng(ctx.item_seed).fork(static_cast<std::uint64_t>(step));
        util::RetryStats retry_stats;
        try {
          tr = util::retry_call(
              util::RetryPolicy{},  // defaults: 3 attempts, no sleep
              jitter,
              [&] {
                util::fault::point("agent/tool");
                return tools_->call(action.action, action.input);
              },
              &retry_stats);
        } catch (const std::exception& e) {
          tr.ok = false;
          tr.payload = util::Json();
          tr.payload["error"] = std::string("tool failed: ") + e.what();
        }
        if (retry_stats.attempts > 1) {
          obs::count("agent/tool_retries", retry_stats.attempts - 1);
        }
      }
      obs::count("agent/tool_calls");
      obs::count((tr.ok ? "agent/tool_ok/" : "agent/tool_error/") + action.action);
      ++result.stats.tool_calls;
      result.transcript.push_back("Observation: " + tr.payload.dump());

      if (action.action == "topology_generation" || action.action == "topology_extension") {
        if (tr.ok) {
          ctx.current_topology_id = tr.payload.get_string("topology_id", "");
          ctx.last_error_log.clear();
          ctx.last_error_region = util::Json();
          if (action.action == "topology_extension") {
            used_method =
                util::to_lower(tr.payload.get_string("method", "Out")) == "in-painting" ? "In"
                                                                                        : "Out";
          }
        } else {
          ctx.last_error_log = tr.payload.get_string("error", "generation failed");
        }
        continue;
      }
      if (action.action == "topology_modification") {
        ++result.stats.modifications;
        ++ctx.modifications;
        if (tr.ok) {
          if (!ctx.current_topology_id.empty()) store_->erase_topology(ctx.current_topology_id);
          ctx.current_topology_id = tr.payload.get_string("topology_id", "");
          ctx.last_error_log.clear();
          ctx.last_error_region = util::Json();
        } else {
          ctx.last_error_log = tr.payload.get_string("error", "modification failed");
        }
        continue;
      }
      if (action.action == "topology_legalization") {
        if (tr.ok) {
          result.pattern_ids.push_back(tr.payload.get_string("pattern_id", ""));
          ++result.stats.produced;
          if (experience_ != nullptr && !used_method.empty()) {
            experience_->record(used_method, requirement.style, target, true);
          }
          item_done = true;
        } else {
          ++result.stats.legalization_failures;
          ++ctx.legalization_failures;
          ctx.last_error_log = tr.payload.get_string("log", "legalization failed");
          ctx.last_error_region =
              tr.payload.contains("region") ? tr.payload.at("region") : util::Json();
        }
        continue;
      }
      // Unknown action from the brain: surface it and stop this item.
      result.transcript.push_back(util::format(
          "%% Executor: unknown action '%s'; abandoning this item.", action.action.c_str()));
      ++result.stats.gave_up;
      item_done = true;
    }
    if (!item_done) {
      result.transcript.push_back("% Executor: step budget exhausted for this item.");
      ++result.stats.gave_up;
      (void)fits;
    }
  }
  result.stats.elapsed_s = elapsed();
  obs::count("agent/items_requested", result.stats.requested);
  obs::count("agent/produced", result.stats.produced);
  obs::count("agent/dropped", result.stats.dropped);
  obs::count("agent/gave_up", result.stats.gave_up);
  obs::count("agent/regenerations", result.stats.regenerations);
  obs::count("agent/modifications", result.stats.modifications);
  obs::count("agent/legalization_failures", result.stats.legalization_failures);
  if (result.stats.time_limit_hit) obs::count("agent/time_limit_hits");
  return result;
}

}  // namespace cp::agent
