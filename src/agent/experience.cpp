#include "agent/experience.h"

#include <stdexcept>

#include "util/strings.h"

namespace cp::agent {

const std::string& DocumentStore::get(const std::string& name) const {
  auto it = docs_.find(name);
  if (it == docs_.end()) throw std::out_of_range("DocumentStore: no document " + name);
  return it->second;
}

std::vector<std::string> DocumentStore::names() const {
  std::vector<std::string> out;
  for (const auto& [name, text] : docs_) out.push_back(name);
  return out;
}

DocumentStore make_default_documents() {
  DocumentStore docs;
  docs.add("pipeline",
           "Standard operating pipeline for a pattern-library request:\n"
           "1. Auto-format the request into one requirement list per sub-task.\n"
           "2. For each sub-task: if the target topology fits the model window,\n"
           "   call topology_generation; otherwise call topology_extension\n"
           "   (choose the method from experience; the default is Out).\n"
           "3. Call topology_legalization with the target physical size.\n"
           "4. If legalization fails, prefer topology_modification on the\n"
           "   reported region over regeneration for large topologies; retry\n"
           "   with a new seed for small ones; drop only when allowed.\n");
  docs.add("extension_notes",
           "Statistical insight from past extension runs (cf. Figure 10):\n"
           "out-painting typically yields better legality, while in-painting\n"
           "excels in diversity under certain conditions. Prefer Out when the\n"
           "request does not pin a method.\n");
  docs.add("design_rules",
           "Design rules are style-specific (space/width/area/pitch); see\n"
           "drc::rules_for_style. Legalization failures report the offending\n"
           "cell region so it can be repaired in place.\n");
  return docs;
}

int ExperienceStore::bucket_of(int target_size) {
  int bucket = 128;
  while (bucket < target_size && bucket < (1 << 20)) bucket *= 2;
  return bucket;
}

namespace {
std::string key_of(const std::string& method, const std::string& style, int bucket) {
  return method + "|" + style + "|" + std::to_string(bucket);
}
}  // namespace

void ExperienceStore::record(const std::string& method, const std::string& style,
                             int target_size, bool success) {
  ExperienceEntry& e = entries_[key_of(method, style, bucket_of(target_size))];
  ++e.attempts;
  if (success) ++e.successes;
}

void ExperienceStore::record_diversity(const std::string& method, const std::string& style,
                                       int target_size, double diversity) {
  ExperienceEntry& e = entries_[key_of(method, style, bucket_of(target_size))];
  e.diversity_sum += diversity;
  ++e.diversity_count;
}

const ExperienceEntry& ExperienceStore::entry(const std::string& method,
                                              const std::string& style, int target_size) const {
  static const ExperienceEntry kEmpty;
  auto it = entries_.find(key_of(method, style, bucket_of(target_size)));
  return it == entries_.end() ? kEmpty : it->second;
}

double ExperienceStore::success_rate(const std::string& method, const std::string& style,
                                     int target_size) const {
  const ExperienceEntry& e = entry(method, style, target_size);
  return (static_cast<double>(e.successes) + 1.0) / (static_cast<double>(e.attempts) + 2.0);
}

std::string ExperienceStore::best_method(const std::string& style, int target_size) const {
  const double out_rate = success_rate("Out", style, target_size);
  const double in_rate = success_rate("In", style, target_size);
  // Documented default is Out; require strict evidence to switch.
  return in_rate > out_rate ? "In" : "Out";
}

util::Json ExperienceStore::to_json() const {
  util::JsonObject obj;
  for (const auto& [key, e] : entries_) {
    util::Json j;
    j["attempts"] = e.attempts;
    j["successes"] = e.successes;
    j["diversity_sum"] = e.diversity_sum;
    j["diversity_count"] = e.diversity_count;
    obj[key] = std::move(j);
  }
  return util::Json(std::move(obj));
}

ExperienceStore ExperienceStore::from_json(const util::Json& j) {
  ExperienceStore store;
  for (const auto& [key, value] : j.as_object()) {
    ExperienceEntry e;
    e.attempts = value.get_int("attempts", 0);
    e.successes = value.get_int("successes", 0);
    e.diversity_sum = value.get_number("diversity_sum", 0.0);
    e.diversity_count = value.get_int("diversity_count", 0);
    store.entries_[key] = e;
  }
  return store;
}

}  // namespace cp::agent
