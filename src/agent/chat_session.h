#pragma once
// The conversational front door of ChatPattern (Figure 1 / Figure 4): a
// session takes a natural-language request, has the brain auto-format it
// into requirement lists, displays the task plan, executes every sub-task
// through the tool registry, and returns both the produced pattern ids and
// a full human-readable transcript.

#include <memory>
#include <string>
#include <vector>

#include "agent/executor.h"
#include "agent/planner.h"

namespace cp::agent {

struct SubtaskReport {
  RequirementList requirement;
  TaskPlan plan;
  ExecutionResult execution;
};

struct SessionReport {
  std::vector<SubtaskReport> subtasks;
  std::string transcript;  // the full rendered conversation

  long long total_produced() const;
  long long total_requested() const;
};

class ChatSession {
 public:
  /// Non-owning tool registry/store; owning brain. `experience` may be null.
  ChatSession(const ToolRegistry* tools, std::unique_ptr<AgentBrain> brain, PatternStore* store,
              ExperienceStore* experience, int window = 128);

  /// Process one user request end to end.
  SessionReport handle(const std::string& user_request);

  ExperienceStore* experience() { return experience_; }
  const DocumentStore& documents() const { return documents_; }

  /// Requirements of the most recent successful request (follow-up context).
  const std::vector<RequirementList>& last_requirements() const { return last_requirements_; }

 private:
  const ToolRegistry* tools_;
  std::unique_ptr<AgentBrain> brain_;
  PatternStore* store_;
  ExperienceStore* experience_;
  DocumentStore documents_;
  int window_;
  std::vector<RequirementList> last_requirements_;
  std::uint64_t follow_up_salt_ = 0;
};

}  // namespace cp::agent
