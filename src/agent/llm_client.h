#pragma once
// The agent "brain" interface and its deterministic implementation
// (substitution S3).
//
// AgentBrain is the decision seam of ChatPattern: given the user's text it
// produces structured requirement lists (Requirement Auto-Formatting), and
// during execution it is consulted whenever a decision is needed — what tool
// to call next and with what arguments, in the ReAct Thought/Action/Action-
// Input shape shown in Section 4.2. An LLM-backed brain would implement
// exactly this interface by prompting a model with the tool documentation
// and the current context; the shipped ScriptedBrain implements the same
// contract as a deterministic policy, which keeps the whole framework —
// tool registry, executor, recovery behaviour, experience store — fully
// exercised and testable offline.

#include <memory>
#include <string>
#include <vector>

#include "agent/experience.h"
#include "agent/requirement.h"
#include "util/json.h"

namespace cp::agent {

/// What the executor tells the brain before each decision.
struct AgentContext {
  RequirementList requirement;
  int window = 128;                 // model window L
  std::string current_topology_id;  // empty if no topology yet for this item
  int legalization_failures = 0;    // failures so far on this item
  int modifications = 0;            // modification repairs tried on this item
  int regenerations = 0;            // fresh-seed restarts tried on this item
  std::string last_error_log;       // most recent tool failure log ("" if none)
  util::Json last_error_region;     // region object from the failure, or null
  std::uint64_t item_seed = 1;      // deterministic per-item seed
  const ExperienceStore* experience = nullptr;
  const DocumentStore* documents = nullptr;
};

/// A ReAct-style step: reasoning, tool name, JSON arguments. The special
/// actions "drop" and "give_up" carry no tool call.
struct AgentAction {
  std::string thought;
  std::string action;  // tool name, or "drop" / "give_up"
  util::Json input;
};

class AgentBrain {
 public:
  virtual ~AgentBrain() = default;

  /// Requirement Auto-Formatting: free text -> structured sub-tasks.
  virtual std::vector<RequirementList> format_requirements(const std::string& request,
                                                           std::vector<std::string>* notes) = 0;

  /// Decide the next step for the current work item.
  virtual AgentAction decide(const AgentContext& context) = 0;

  virtual const char* name() const = 0;
};

/// Deterministic rule policy mirroring the paper's agent behaviour:
///   * direct generation when the target fits the window, extension
///     otherwise (method from the requirement, or the experience store when
///     the requirement leaves the default);
///   * legalize once a topology exists;
///   * on legalization failure: first retry with a fresh seed (cheap for
///     window-sized topologies), then in-paint the reported failing region
///     (cheap for large topologies — the paper's "unseen mistake" recovery),
///     then drop if allowed, else keep repairing up to a cap.
class ScriptedBrain : public AgentBrain {
 public:
  struct Policy {
    int max_regenerations = 1;   // fresh seeds before switching to repair
    int max_modifications = 2;   // region repairs before dropping
    bool prefer_modification_for_large = true;
  };

  ScriptedBrain() = default;
  explicit ScriptedBrain(Policy policy) : policy_(policy) {}

  std::vector<RequirementList> format_requirements(const std::string& request,
                                                   std::vector<std::string>* notes) override;
  AgentAction decide(const AgentContext& context) override;
  const char* name() const override { return "ScriptedBrain"; }

 private:
  Policy policy_;
};

}  // namespace cp::agent
