#pragma once
// "Learning from Documents and Experience" (Section 3.1).
//
// The DocumentStore holds the high-level knowledge the agent is initialised
// with (the standard operating pipeline, design-rule summaries, tool
// documentation). The ExperienceStore accumulates per-(method, style,
// size-bucket) outcome statistics of past runs — the statistical data behind
// Figure 10 — and answers the algorithm-selection query ("which extension
// method for this style and size?") that the paper's agent makes before
// planning. Both serialise to JSON so a library builder's experience
// persists across sessions.

#include <map>
#include <string>
#include <vector>

#include "util/json.h"

namespace cp::agent {

class DocumentStore {
 public:
  void add(const std::string& name, const std::string& text) { docs_[name] = text; }
  bool has(const std::string& name) const { return docs_.count(name) > 0; }
  const std::string& get(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::string> docs_;
};

/// Built-in documents every fresh agent starts with.
DocumentStore make_default_documents();

struct ExperienceEntry {
  long long attempts = 0;
  long long successes = 0;
  double diversity_sum = 0.0;
  long long diversity_count = 0;

  double success_rate() const {
    return attempts == 0 ? 0.0 : static_cast<double>(successes) / static_cast<double>(attempts);
  }
  double mean_diversity() const {
    return diversity_count == 0 ? 0.0 : diversity_sum / static_cast<double>(diversity_count);
  }
};

class ExperienceStore {
 public:
  /// Record one attempt of `method` ("Out"/"In"/"Direct") for a style at a
  /// target size (max dimension, bucketed to powers of two internally).
  void record(const std::string& method, const std::string& style, int target_size,
              bool success);
  void record_diversity(const std::string& method, const std::string& style, int target_size,
                        double diversity);

  const ExperienceEntry& entry(const std::string& method, const std::string& style,
                               int target_size) const;

  /// Best extension method by observed success rate; falls back to the
  /// documented default ("Out") when there is no or tied evidence.
  std::string best_method(const std::string& style, int target_size) const;

  /// Laplace-smoothed success-rate estimate (prior 0.5 with weight 2).
  double success_rate(const std::string& method, const std::string& style,
                      int target_size) const;

  util::Json to_json() const;
  static ExperienceStore from_json(const util::Json& j);

  std::size_t size() const { return entries_.size(); }

  static int bucket_of(int target_size);

 private:
  // key: method|style|bucket
  std::map<std::string, ExperienceEntry> entries_;
};

}  // namespace cp::agent
