#pragma once
// The structured requirement list of Section 3.1 / Section 4.2
// ("Requirement Auto-Formatting"). A free-form user request is decomposed by
// the agent into one RequirementList per sub-task; the list's Basic Part
// fixes what must be produced and the Advanced Part carries the optional
// fine-grained controls with their documented defaults.

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/polygon.h"
#include "util/json.h"

namespace cp::agent {

struct RequirementList {
  // ---- Basic part ----
  int topo_rows = 128;
  int topo_cols = 128;
  geometry::Coord phys_w_nm = 2048;
  geometry::Coord phys_h_nm = 2048;
  std::string style = "Layer-10001";
  long long count = 1;

  // ---- Advanced part (defaults match the paper's example) ----
  std::string extension_method = "Out";  // "Out" | "In" (Default: Out)
  bool drop_allowed = true;              // (Default: True)
  double time_limit_s = 0.0;             // 0 = None (Default: None)
  int sample_steps = 16;                 // reverse-chain stride (CPU default)
  std::uint64_t seed = 0;                // 0 = auto

  /// Render in the paper's requirement-list format (Section 4.2).
  std::string to_text(int subtask_index) const;

  util::Json to_json() const;
  static RequirementList from_json(const util::Json& j);

  bool operator==(const RequirementList&) const = default;
};

/// Validation: positive sizes/counts, known style and method. Returns an
/// empty string if valid, else a human-readable problem description.
std::string validate(const RequirementList& req);

}  // namespace cp::agent
