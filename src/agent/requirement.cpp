#include "agent/requirement.h"

#include "dataset/style.h"
#include "util/strings.h"

namespace cp::agent {

std::string RequirementList::to_text(int subtask_index) const {
  std::string out;
  out += util::format("# Requirement - subtask %d\n", subtask_index);
  out += "## Basic Part:\n";
  out += util::format("Topology Size: [%d, %d],\n", topo_rows, topo_cols);
  out += util::format("Physical Size: [%lld, %lld] nm,\n", static_cast<long long>(phys_w_nm),
                      static_cast<long long>(phys_h_nm));
  out += util::format("Style: %s,\n", style.c_str());
  out += util::format("Count: %lld,\n", count);
  out += "## Advanced Part:\n";
  out += util::format("Extension Method: %s (Default: Out),\n", extension_method.c_str());
  out += util::format("Drop Allowed: %s (Default: True),\n", drop_allowed ? "True" : "False");
  if (time_limit_s > 0.0) {
    out += util::format("Time Limitation: %.0f s (Default: None).\n", time_limit_s);
  } else {
    out += "Time Limitation: None (Default: None).\n";
  }
  return out;
}

util::Json RequirementList::to_json() const {
  util::Json j;
  j["topo_rows"] = topo_rows;
  j["topo_cols"] = topo_cols;
  j["phys_w_nm"] = static_cast<long long>(phys_w_nm);
  j["phys_h_nm"] = static_cast<long long>(phys_h_nm);
  j["style"] = style;
  j["count"] = count;
  j["extension_method"] = extension_method;
  j["drop_allowed"] = drop_allowed;
  j["time_limit_s"] = time_limit_s;
  j["sample_steps"] = sample_steps;
  j["seed"] = static_cast<long long>(seed);
  return j;
}

RequirementList RequirementList::from_json(const util::Json& j) {
  RequirementList r;
  r.topo_rows = static_cast<int>(j.get_int("topo_rows", r.topo_rows));
  r.topo_cols = static_cast<int>(j.get_int("topo_cols", r.topo_cols));
  r.phys_w_nm = j.get_int("phys_w_nm", r.phys_w_nm);
  r.phys_h_nm = j.get_int("phys_h_nm", r.phys_h_nm);
  r.style = j.get_string("style", r.style);
  r.count = j.get_int("count", r.count);
  r.extension_method = j.get_string("extension_method", r.extension_method);
  r.drop_allowed = j.get_bool("drop_allowed", r.drop_allowed);
  r.time_limit_s = j.get_number("time_limit_s", r.time_limit_s);
  r.sample_steps = static_cast<int>(j.get_int("sample_steps", r.sample_steps));
  r.seed = static_cast<std::uint64_t>(j.get_int("seed", 0));
  return r;
}

std::string validate(const RequirementList& req) {
  if (req.topo_rows < 8 || req.topo_cols < 8) return "topology size too small";
  if (req.phys_w_nm <= 0 || req.phys_h_nm <= 0) return "physical size must be positive";
  if (req.count < 1) return "count must be at least 1";
  if (dataset::style_index(req.style) < 0) return "unknown style '" + req.style + "'";
  const std::string m = util::to_lower(req.extension_method);
  if (m != "out" && m != "in") return "unknown extension method '" + req.extension_method + "'";
  return "";
}

}  // namespace cp::agent
