#pragma once
// Task execution (Section 3.1, "Task Planning and Execution").
//
// The Executor owns the agent's ReAct loop: for every requested pattern it
// repeatedly asks the brain for the next action, invokes the corresponding
// tool, and feeds the observation (including legalization failure logs and
// regions) back into the context. This is where the paper's
// feedback-driven recovery lives: the executor itself has no repair policy —
// it faithfully executes whatever the brain decides, records outcomes into
// the experience store, and keeps a full Thought/Action/Action-Input/
// Observation transcript.

#include <string>
#include <vector>

#include "agent/llm_client.h"
#include "agent/tools.h"

namespace cp::agent {

struct ExecutionStats {
  long long requested = 0;
  long long produced = 0;   // legal patterns delivered
  long long dropped = 0;
  long long gave_up = 0;
  long long regenerations = 0;
  long long modifications = 0;
  long long tool_calls = 0;
  long long legalization_failures = 0;
  double elapsed_s = 0.0;
  bool time_limit_hit = false;
};

struct ExecutionResult {
  std::vector<std::string> pattern_ids;  // ids of delivered legal patterns
  ExecutionStats stats;
  std::vector<std::string> transcript;   // ReAct log lines
};

class Executor {
 public:
  Executor(const ToolRegistry* tools, AgentBrain* brain, PatternStore* store,
           ExperienceStore* experience, int window = 128)
      : tools_(tools), brain_(brain), store_(store), experience_(experience), window_(window) {}

  /// Run one requirement list to completion (or its time limit).
  ExecutionResult run(const RequirementList& requirement);

  /// Cap on brain decisions per item, guarding against policy loops.
  void set_max_steps_per_item(int n) { max_steps_per_item_ = n; }

 private:
  const ToolRegistry* tools_;
  AgentBrain* brain_;
  PatternStore* store_;
  ExperienceStore* experience_;
  int window_;
  int max_steps_per_item_ = 24;
};

}  // namespace cp::agent
