#include "agent/planner.h"

#include "obs/registry.h"

#include <algorithm>

#include "extension/planner.h"
#include "util/strings.h"

namespace cp::agent {

std::string TaskPlan::to_text() const {
  std::string out;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    out += util::format("%zu. %s\n", i + 1, steps[i].c_str());
  }
  return out;
}

TaskPlan plan_tasks(const RequirementList& req, int window, int stride,
                    const ExperienceStore* experience) {
  const obs::Span span = obs::trace_scope("agent/plan");
  obs::count("agent/plans");
  TaskPlan plan;
  const bool fits = req.topo_rows <= window && req.topo_cols <= window;
  if (fits) {
    plan.samples_per_pattern = 1;
    plan.steps.push_back(util::format(
        "Generate %lld topology matrices of size %dx%d with the conditional diffusion model "
        "(style %s).",
        req.count, req.topo_rows, req.topo_cols, req.style.c_str()));
  } else {
    std::string method = req.extension_method;
    const int target = std::max(req.topo_rows, req.topo_cols);
    if (util::to_lower(method) == "out" && experience != nullptr) {
      method = experience->best_method(req.style, target);
    }
    plan.method = method;
    const extension::Method m = extension::method_from_string(method);
    plan.samples_per_pattern =
        extension::expected_samples(m, req.topo_cols, req.topo_rows, window, stride);
    plan.steps.push_back(util::format(
        "Extend to %dx%d topologies via %s (style %s, ~%lld window samples per pattern, "
        "%lld patterns).",
        req.topo_rows, req.topo_cols, extension::to_string(m), req.style.c_str(),
        plan.samples_per_pattern, req.count));
  }
  plan.steps.push_back(util::format(
      "Legalize each topology to %lld x %lld nm under the %s design rules.",
      static_cast<long long>(req.phys_w_nm), static_cast<long long>(req.phys_h_nm),
      req.style.c_str()));
  plan.steps.push_back(util::format(
      "On legalization failure: %s; drop policy: %s.",
      fits ? "resample with a new seed, then repair the reported region"
           : "repair the reported region in place (regeneration would waste the extension work)",
      req.drop_allowed ? "drops allowed" : "drops forbidden"));
  return plan;
}

}  // namespace cp::agent
