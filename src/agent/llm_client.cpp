#include "agent/llm_client.h"

#include "agent/nl_parser.h"
#include "util/strings.h"

namespace cp::agent {

std::vector<RequirementList> ScriptedBrain::format_requirements(const std::string& request,
                                                                std::vector<std::string>* notes) {
  ParsedRequest parsed = parse_request(request);
  if (notes != nullptr) *notes = parsed.notes;
  return parsed.subtasks;
}

AgentAction ScriptedBrain::decide(const AgentContext& ctx) {
  const RequirementList& req = ctx.requirement;
  const bool fits_window = req.topo_rows <= ctx.window && req.topo_cols <= ctx.window;
  AgentAction act;

  // No topology yet for this item: produce one.
  if (ctx.current_topology_id.empty()) {
    if (fits_window) {
      act.thought = util::format(
          "The target topology %dx%d fits the model window %d, so I can sample it directly "
          "with the conditional diffusion model.",
          req.topo_rows, req.topo_cols, ctx.window);
      act.action = "topology_generation";
      act.input["style"] = req.style;
      act.input["rows"] = req.topo_rows;
      act.input["cols"] = req.topo_cols;
      act.input["steps"] = req.sample_steps;
      act.input["seed"] = static_cast<long long>(
          (ctx.item_seed + ctx.regenerations * 7919ULL) & 0x7fffffffULL);
      return act;
    }
    std::string method = req.extension_method;
    const int target = std::max(req.topo_rows, req.topo_cols);
    if (util::to_lower(method) == "out" && ctx.experience != nullptr) {
      // "Out" is the documented default; consult experience before keeping it.
      method = ctx.experience->best_method(req.style, target);
    }
    act.thought = util::format(
        "The target %dx%d exceeds the window %d; I will grow it with %s-painting "
        "(selected from the extension documentation and past experience).",
        req.topo_rows, req.topo_cols, ctx.window, util::to_lower(method) == "in" ? "in" : "out");
    act.action = "topology_extension";
    act.input["style"] = req.style;
    act.input["target_rows"] = req.topo_rows;
    act.input["target_cols"] = req.topo_cols;
    act.input["method"] = method;
    act.input["steps"] = req.sample_steps;
    act.input["seed"] =
        static_cast<long long>((ctx.item_seed + ctx.regenerations * 7919ULL) & 0x7fffffffULL);
    return act;
  }

  // We have a topology and no outstanding failure: legalize it.
  if (ctx.last_error_log.empty()) {
    act.thought = util::format(
        "Topology %s is ready; legalizing it to %lld x %lld nm under the %s design rules.",
        ctx.current_topology_id.c_str(), static_cast<long long>(req.phys_w_nm),
        static_cast<long long>(req.phys_h_nm), req.style.c_str());
    act.action = "topology_legalization";
    act.input["topology_id"] = ctx.current_topology_id;
    act.input["width_nm"] = static_cast<long long>(req.phys_w_nm);
    act.input["height_nm"] = static_cast<long long>(req.phys_h_nm);
    act.input["style"] = req.style;
    return act;
  }

  // Legalization failed. Recovery ladder.
  const bool have_region = ctx.last_error_region.is_object();
  // For large topologies regeneration wastes all extension work, so repair
  // is preferred (when the policy says so); for window-sized ones a fresh
  // seed is cheaper than repair and is tried first.
  const bool prefer_repair = !fits_window && policy_.prefer_modification_for_large;

  if (!prefer_repair && ctx.regenerations < policy_.max_regenerations) {
    act.thought =
        "Legalization failed; for a window-sized topology the cheapest recovery is to "
        "resample with a different initial state.";
    act.action = "regenerate";
    return act;
  }

  if (have_region && ctx.modifications < policy_.max_modifications) {
    act.thought = util::format(
        "Since legalization has failed %s in the same region, I will try to in-paint that "
        "specific area with the same style and then attempt legalization again.",
        ctx.legalization_failures >= 2 ? "twice" : "once");
    act.action = "topology_modification";
    act.input["topology_id"] = ctx.current_topology_id;
    act.input["upper"] = ctx.last_error_region.get_int("upper", 0);
    act.input["left"] = ctx.last_error_region.get_int("left", 0);
    act.input["bottom"] = ctx.last_error_region.get_int("bottom", 0);
    act.input["right"] = ctx.last_error_region.get_int("right", 0);
    act.input["style"] = req.style;
    act.input["steps"] = req.sample_steps;
    act.input["seed"] =
        static_cast<long long>((ctx.item_seed + 42 + ctx.modifications * 104729ULL) &
                               0x7fffffffULL);
    return act;
  }

  if (req.drop_allowed) {
    act.thought = "Recovery attempts are exhausted and dropping is allowed; discarding this "
                  "topology to guarantee the legality of the final library.";
    act.action = "drop";
    return act;
  }

  if (ctx.regenerations < policy_.max_regenerations + 2) {
    act.thought = "Dropping is forbidden; trying a different initial state instead.";
    act.action = "regenerate";
    return act;
  }

  act.thought = "All recovery options are exhausted and drops are forbidden; giving up on "
                "this item and reporting the failure.";
  act.action = "give_up";
  return act;
}

}  // namespace cp::agent
