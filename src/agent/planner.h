#pragma once
// Task planning (Section 3.1, Figure 4): turn a requirement list into the
// ordered series of structured tasks that the executor will schedule. The
// plan is what the agent displays before doing the work; the executor pairs
// it with the brain's step-by-step decisions (which handle recovery paths
// the static plan only sketches).

#include <string>
#include <vector>

#include "agent/experience.h"
#include "agent/requirement.h"

namespace cp::agent {

struct TaskPlan {
  std::vector<std::string> steps;
  /// Estimated model window samples per produced pattern (1 for direct
  /// generation; the N_in / N_out formula for extension).
  long long samples_per_pattern = 1;
  /// The extension method the plan commits to ("", "Out" or "In").
  std::string method;

  std::string to_text() const;
};

/// Build the plan for one requirement list. `window` is the model size L;
/// `experience` (optional) drives the extension-method choice exactly as the
/// brain's decide() does, so plan and execution agree.
TaskPlan plan_tasks(const RequirementList& req, int window, int stride,
                    const ExperienceStore* experience);

}  // namespace cp::agent
