#include "agent/chat_session.h"

#include "util/strings.h"

namespace cp::agent {

long long SessionReport::total_produced() const {
  long long n = 0;
  for (const SubtaskReport& s : subtasks) n += s.execution.stats.produced;
  return n;
}

long long SessionReport::total_requested() const {
  long long n = 0;
  for (const SubtaskReport& s : subtasks) n += s.execution.stats.requested;
  return n;
}

ChatSession::ChatSession(const ToolRegistry* tools, std::unique_ptr<AgentBrain> brain,
                         PatternStore* store, ExperienceStore* experience, int window)
    : tools_(tools),
      brain_(std::move(brain)),
      store_(store),
      experience_(experience),
      documents_(make_default_documents()),
      window_(window) {}

SessionReport ChatSession::handle(const std::string& user_request) {
  SessionReport report;
  std::string& t = report.transcript;
  t += "User Request:\n  " + user_request + "\n\n";

  // Requirement auto-formatting.
  std::vector<std::string> notes;
  std::vector<RequirementList> subtasks = brain_->format_requirements(user_request, &notes);
  t += util::format("[%s] Requirement Auto-Formatting -> %zu sub-task(s)\n", brain_->name(),
                    subtasks.size());
  for (const std::string& n : notes) t += "  note: " + n + "\n";
  t += "\n";

  // Conversational follow-up: "N more of those", "do that again", ... — the
  // request carries no full specification but refers to the previous one.
  if (subtasks.empty() && !last_requirements_.empty()) {
    const std::string lower = util::to_lower(user_request);
    const bool follow_up = lower.find("more") != std::string::npos ||
                           lower.find("again") != std::string::npos ||
                           lower.find("another") != std::string::npos ||
                           lower.find("same") != std::string::npos;
    if (follow_up) {
      long long count = 0;
      for (const std::string& tok : util::split_ws(lower)) {
        if (auto q = util::parse_quantity(tok); q && *q > 0) count = *q;
      }
      subtasks = last_requirements_;
      ++follow_up_salt_;
      for (RequirementList& req : subtasks) {
        if (count > 0) req.count = count;
        // Fresh seeds so the follow-up batch is new material.
        req.seed = (req.seed != 0 ? req.seed : 0x5eedULL) + follow_up_salt_ * 7919ULL;
      }
      t += util::format("Follow-up detected: repeating the previous %zu sub-task(s)%s.\n\n",
                        subtasks.size(),
                        count > 0 ? util::format(" with count %lld", count).c_str() : "");
    }
  }

  int index = 0;
  for (const RequirementList& req : subtasks) {
    ++index;
    SubtaskReport sub;
    sub.requirement = req;
    t += req.to_text(index) + "\n";

    const std::string problem = validate(req);
    if (!problem.empty()) {
      t += "  !! rejected: " + problem + "\n\n";
      report.subtasks.push_back(std::move(sub));
      continue;
    }

    // Task planning.
    sub.plan = plan_tasks(req, window_, window_ / 2, experience_);
    t += "Task Plan:\n" + sub.plan.to_text() + "\n";

    // Execution.
    Executor executor(tools_, brain_.get(), store_, experience_, window_);
    sub.execution = executor.run(req);
    for (const std::string& line : sub.execution.transcript) t += line + "\n";
    const ExecutionStats& st = sub.execution.stats;
    t += util::format(
        "Sub-task %d summary: %lld/%lld produced, %lld dropped, %lld regenerations, "
        "%lld modifications, %lld tool calls, %.2f s%s\n\n",
        index, st.produced, st.requested, st.dropped, st.regenerations, st.modifications,
        st.tool_calls, st.elapsed_s, st.time_limit_hit ? " (time limit hit)" : "");
    report.subtasks.push_back(std::move(sub));
  }

  if (subtasks.empty()) {
    t += "No actionable sub-task found in the request; nothing to do.\n";
  } else {
    last_requirements_ = subtasks;
  }
  return report;
}

}  // namespace cp::agent
