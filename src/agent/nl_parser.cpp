#include "agent/nl_parser.h"

#include <algorithm>
#include <cctype>

#include "dataset/style.h"
#include "util/strings.h"

namespace cp::agent {

namespace detail {

std::vector<std::string> split_clauses(const std::string& text) {
  // Normalise separators, then split on sentence boundaries and sequencing
  // words. Decimal points and thousands separators are protected because we
  // only split on '.' followed by whitespace/end.
  std::string t = text;
  for (const char* seq : {" then ", " afterwards ", " after that ", " also "}) {
    t = util::replace_all(t, seq, " . ");
  }
  std::vector<std::string> clauses;
  std::string current;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const char c = t[i];
    const bool sentence_end =
        (c == ';' || c == '\n') ||
        (c == '.' && (i + 1 == t.size() || std::isspace(static_cast<unsigned char>(t[i + 1]))));
    if (sentence_end) {
      if (!util::trim(current).empty()) clauses.push_back(util::trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!util::trim(current).empty()) clauses.push_back(util::trim(current));
  return clauses;
}

bool parse_size_pair(const std::string& token, long long* a, long long* b) {
  // Accept "200x200", "200X200", "200*200".
  for (char sep : {'x', 'X', '*'}) {
    const auto pos = token.find(sep);
    if (pos == std::string::npos || pos == 0 || pos + 1 == token.size()) continue;
    const auto lhs = util::parse_quantity(token.substr(0, pos));
    const auto rhs = util::parse_quantity(token.substr(pos + 1));
    if (lhs && rhs) {
      *a = *lhs;
      *b = *rhs;
      return true;
    }
  }
  return false;
}

}  // namespace detail

namespace {

/// Strip trailing punctuation that clings to tokens ("patterns," "nm²." ...)
std::string clean_token(const std::string& raw) {
  std::string s = raw;
  while (!s.empty() && (s.back() == ',' || s.back() == '.' || s.back() == ')' ||
                        s.back() == ':' || s.back() == '?')) {
    s.pop_back();
  }
  while (!s.empty() && (s.front() == '(' || s.front() == '[')) s.erase(s.begin());
  return s;
}

bool is_count_noun(const std::string& t) {
  return t == "pattern" || t == "patterns" || t == "sample" || t == "samples" ||
         t == "layout" || t == "layouts" || t == "clip" || t == "clips" || t == "topology" ||
         t == "topologies" || t == "matrices" || t == "instances";
}

bool is_generate_verb(const std::string& t) {
  return t == "generate" || t == "create" || t == "make" || t == "synthesize" ||
         t == "synthesise" || t == "produce" || t == "build" || t == "need" || t == "want" ||
         t == "give" || t == "prepare" || t == "extend";
}

bool mentions_nm(const std::vector<std::string>& tokens, std::size_t i, std::size_t window) {
  for (std::size_t j = i + 1; j < tokens.size() && j <= i + window; ++j) {
    const std::string& t = tokens[j];
    if (t == "nm" || t == "nm2" || t == "nm^2" || t == "nanometer" || t == "nanometers" ||
        t == "nanometre" || t == "nanometres") {
      return true;
    }
  }
  return false;
}

struct ClauseParse {
  RequirementList req;
  bool has_count = false;
  bool has_topo = false;
  bool has_phys = false;
  bool has_style = false;
  bool has_verb = false;
  bool both_styles = false;
  std::vector<std::string> notes;
};

ClauseParse parse_clause(const std::string& clause) {
  ClauseParse out;
  const std::string lower = util::to_lower(clause);
  std::vector<std::string> tokens;
  for (const std::string& raw : util::split_ws(lower)) tokens.push_back(clean_token(raw));

  int styles_seen = 0;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.empty()) continue;

    if (is_generate_verb(tok)) out.has_verb = true;

    // --- style ---
    if (dataset::style_index(tok) >= 0) {
      const int idx = dataset::style_index(tok);
      if (!out.has_style) {
        out.req.style = dataset::style_name(idx);
        out.has_style = true;
      } else if (dataset::style_name(idx) != out.req.style) {
        out.both_styles = true;
      }
      ++styles_seen;
      continue;
    }
    // "layer 10001" as two tokens.
    if ((tok == "layer" || tok == "style") && i + 1 < tokens.size() &&
        dataset::style_index(tokens[i + 1]) >= 0) {
      const int idx = dataset::style_index(tokens[i + 1]);
      if (!out.has_style) {
        out.req.style = dataset::style_name(idx);
        out.has_style = true;
      } else if (dataset::style_name(idx) != out.req.style) {
        out.both_styles = true;
      }
      ++styles_seen;
      ++i;
      continue;
    }
    // Unknown layer names are preserved verbatim so that validation rejects
    // the sub-task loudly instead of silently substituting a default style.
    if (!out.has_style && util::starts_with(tok, "layer-")) {
      out.req.style = tok;
      out.has_style = true;
      out.notes.push_back("unrecognised style '" + tok + "'");
      continue;
    }
    if ((tok == "both" || tok == "each" || tok == "every") && i + 1 < tokens.size() &&
        (tokens[i + 1] == "styles" || tokens[i + 1] == "style" || tokens[i + 1] == "layers" ||
         tokens[i + 1] == "layer" || tokens[i + 1] == "classes" || tokens[i + 1] == "class")) {
      out.both_styles = true;
      continue;
    }

    // --- size pairs ---
    long long a = 0, b = 0;
    if (detail::parse_size_pair(tok, &a, &b) ||
        (i + 2 < tokens.size() && (tokens[i + 1] == "x" || tokens[i + 1] == "by") &&
         util::parse_quantity(tok) && util::parse_quantity(tokens[i + 2]) &&
         (a = *util::parse_quantity(tok), b = *util::parse_quantity(tokens[i + 2]), true))) {
      const bool nm = mentions_nm(tokens, i, 3);
      if (nm) {
        out.req.phys_w_nm = a;
        out.req.phys_h_nm = b;
        out.has_phys = true;
        out.notes.push_back(util::format("physical size %lldx%lld nm", a, b));
      } else {
        out.req.topo_rows = static_cast<int>(b);
        out.req.topo_cols = static_cast<int>(a);
        out.has_topo = true;
        out.notes.push_back(util::format("topology size %lldx%lld", a, b));
      }
      continue;
    }

    // --- single size: "2048 nm" / "size 256" ---
    if (auto q = util::parse_quantity(tok); q && *q > 0) {
      if (mentions_nm(tokens, i, 1)) {
        out.req.phys_w_nm = *q;
        out.req.phys_h_nm = *q;
        out.has_phys = true;
        out.notes.push_back(util::format("physical size %lld nm square", *q));
        continue;
      }
      // count if a count noun follows within 2 tokens, or "count:" precedes
      bool is_count = false;
      for (std::size_t j = i + 1; j < tokens.size() && j <= i + 2; ++j) {
        if (is_count_noun(tokens[j])) is_count = true;
      }
      if (i > 0 && (tokens[i - 1] == "count" || tokens[i - 1] == "count:")) is_count = true;
      if (is_count) {
        out.req.count = *q;
        out.has_count = true;
        out.notes.push_back(util::format("count %lld", *q));
        continue;
      }
      // bare "size 256" style topology hints
      if (i > 0 && (tokens[i - 1] == "size" || tokens[i - 1] == "sized" ||
                    tokens[i - 1] == "resolution")) {
        out.req.topo_rows = static_cast<int>(*q);
        out.req.topo_cols = static_cast<int>(*q);
        out.has_topo = true;
        out.notes.push_back(util::format("topology size %lld square", *q));
        continue;
      }
      // "seed 42"
      if (i > 0 && tokens[i - 1] == "seed") {
        out.req.seed = static_cast<std::uint64_t>(*q);
        continue;
      }
      // time limits: "within 10 minutes"
      if (i + 1 < tokens.size()) {
        const std::string& unit = tokens[i + 1];
        double mult = 0.0;
        if (unit == "second" || unit == "seconds" || unit == "s") mult = 1.0;
        if (unit == "minute" || unit == "minutes" || unit == "min" || unit == "mins") mult = 60.0;
        if (unit == "hour" || unit == "hours" || unit == "h") mult = 3600.0;
        if (mult > 0.0) {
          out.req.time_limit_s = static_cast<double>(*q) * mult;
          out.notes.push_back(util::format("time limit %.0f s", out.req.time_limit_s));
          ++i;
          continue;
        }
      }
    }

    // --- extension method ---
    if (tok == "out-painting" || tok == "outpainting" || tok == "out-paint" ||
        tok == "outpaint" || (tok == "out" && i + 1 < tokens.size() &&
                              (tokens[i + 1] == "painting" || tokens[i + 1] == "paint"))) {
      out.req.extension_method = "Out";
      out.notes.push_back("extension method Out");
      continue;
    }
    if (tok == "in-painting" || tok == "inpainting" || tok == "in-paint" || tok == "inpaint" ||
        (tok == "in" && i + 1 < tokens.size() &&
         (tokens[i + 1] == "painting" || tokens[i + 1] == "paint"))) {
      out.req.extension_method = "In";
      out.notes.push_back("extension method In");
      continue;
    }

    // --- drop policy ---
    if (tok == "drop" || tok == "dropping" || tok == "drops") {
      bool negated = false;
      for (std::size_t j = (i >= 3 ? i - 3 : 0); j < i; ++j) {
        if (tokens[j] == "no" || tokens[j] == "not" || tokens[j] == "don't" ||
            tokens[j] == "never" || tokens[j] == "without" || tokens[j] == "avoid") {
          negated = true;
        }
      }
      out.req.drop_allowed = !negated;
      out.notes.push_back(negated ? "drops forbidden" : "drops allowed");
      continue;
    }
  }
  (void)styles_seen;
  return out;
}

}  // namespace

ParsedRequest parse_request(const std::string& text) {
  ParsedRequest out;
  int index = 0;
  for (const std::string& clause : detail::split_clauses(text)) {
    ClauseParse cp = parse_clause(clause);
    // A clause is a generation sub-task if it asks for something concrete.
    if (!cp.has_count && !cp.has_topo && !cp.has_phys && !cp.has_verb) {
      out.notes.push_back("ignored clause: \"" + clause + "\"");
      continue;
    }
    // Fill derived defaults: 16 nm of physical extent per topology cell is
    // the dataset's native scale.
    constexpr long long kNmPerCell = 16;
    if (cp.has_topo && !cp.has_phys) {
      cp.req.phys_w_nm = static_cast<geometry::Coord>(cp.req.topo_cols) * kNmPerCell;
      cp.req.phys_h_nm = static_cast<geometry::Coord>(cp.req.topo_rows) * kNmPerCell;
    } else if (cp.has_phys && !cp.has_topo) {
      cp.req.topo_cols = static_cast<int>(cp.req.phys_w_nm / kNmPerCell);
      cp.req.topo_rows = static_cast<int>(cp.req.phys_h_nm / kNmPerCell);
    }
    ++index;
    for (const std::string& n : cp.notes) {
      out.notes.push_back(util::format("subtask %d: %s", index, n.c_str()));
    }
    if (cp.both_styles) {
      for (int s = 0; s < dataset::kStyleCount; ++s) {
        RequirementList r = cp.req;
        r.style = dataset::style_name(s);
        out.subtasks.push_back(std::move(r));
      }
      out.notes.push_back(util::format("subtask %d: expanded over both styles", index));
    } else {
      out.subtasks.push_back(cp.req);
    }
  }
  return out;
}

}  // namespace cp::agent
