#include "agent/tools.h"

#include <stdexcept>

#include "dataset/style.h"
#include "diffusion/timestep_schedule.h"
#include "util/strings.h"

namespace cp::agent {

std::string PatternStore::put_topology(squish::Topology t) {
  std::string id = "topo-" + std::to_string(next_id_++);
  topologies_.emplace(id, std::move(t));
  return id;
}

std::string PatternStore::put_pattern(squish::SquishPattern p) {
  std::string id = "pat-" + std::to_string(next_id_++);
  patterns_.emplace(id, std::move(p));
  return id;
}

const squish::Topology& PatternStore::topology(const std::string& id) const {
  auto it = topologies_.find(id);
  if (it == topologies_.end()) throw std::out_of_range("PatternStore: no topology " + id);
  return it->second;
}

squish::Topology& PatternStore::topology(const std::string& id) {
  auto it = topologies_.find(id);
  if (it == topologies_.end()) throw std::out_of_range("PatternStore: no topology " + id);
  return it->second;
}

const squish::SquishPattern& PatternStore::pattern(const std::string& id) const {
  auto it = patterns_.find(id);
  if (it == patterns_.end()) throw std::out_of_range("PatternStore: no pattern " + id);
  return it->second;
}

void ToolRegistry::register_tool(ToolSpec spec) {
  tools_[spec.name] = std::move(spec);
}

const ToolSpec& ToolRegistry::spec(const std::string& name) const {
  auto it = tools_.find(name);
  if (it == tools_.end()) throw std::out_of_range("ToolRegistry: no tool " + name);
  return it->second;
}

std::vector<std::string> ToolRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, spec] : tools_) out.push_back(name);
  return out;
}

ToolResult ToolRegistry::call(const std::string& name, const util::Json& args) const {
  auto it = tools_.find(name);
  if (it == tools_.end()) {
    ToolResult r;
    r.payload["error"] = "unknown tool '" + name + "'";
    return r;
  }
  try {
    return it->second.fn(args);
  } catch (const std::exception& e) {
    ToolResult r;
    r.payload["error"] = std::string("tool exception: ") + e.what();
    return r;
  }
}

namespace {

int condition_of(const util::Json& args) {
  const std::string style = args.get_string("style", "Layer-10001");
  const int idx = dataset::style_index(style);
  if (idx < 0) throw std::invalid_argument("unknown style '" + style + "'");
  return idx;
}

/// Optional "schedule" argument shared by the sampling tools; empty =
/// noise-uniform (the legacy placement). Throws on an unknown name.
diffusion::ScheduleKind schedule_of(const util::Json& args) {
  const std::string name = args.get_string("schedule", "");
  if (name.empty()) return diffusion::ScheduleKind::kNoiseUniform;
  return diffusion::schedule_kind_from_string(name);
}

util::Json topology_summary(const squish::Topology& t) {
  const auto [cx, cy] = t.complexity();
  util::Json j;
  j["rows"] = t.rows();
  j["cols"] = t.cols();
  j["complexity_x"] = cx;
  j["complexity_y"] = cy;
  j["density"] = t.density();
  return j;
}

}  // namespace

ToolRegistry make_standard_tools(GeneratorBackend backend) {
  if (backend.sampler == nullptr || backend.store == nullptr || backend.legalizers.empty()) {
    throw std::invalid_argument("make_standard_tools: incomplete backend");
  }
  auto shared = std::make_shared<GeneratorBackend>(std::move(backend));
  ToolRegistry registry;

  registry.register_tool(ToolSpec{
      "topology_generation",
      "Random Topology Generation: samples a new topology matrix with the "
      "conditional diffusion model. Args: style (Layer-10001|Layer-10003), "
      "rows, cols (<= model window), seed, steps, schedule (noise_uniform|"
      "uniform|quadratic|searched; fast-sampling timestep placement). "
      "Returns topology_id and summary statistics; the matrix itself stays "
      "in the store.",
      [shared](const util::Json& args) {
        ToolResult r;
        const int cond = condition_of(args);
        diffusion::SampleConfig sc;
        sc.rows = static_cast<int>(args.get_int("rows", shared->window));
        sc.cols = static_cast<int>(args.get_int("cols", shared->window));
        sc.condition = cond;
        sc.sample_steps = static_cast<int>(args.get_int("steps", 16));
        sc.schedule_kind = schedule_of(args);
        if (sc.rows > shared->window || sc.cols > shared->window) {
          r.payload["error"] = util::format(
              "requested size %dx%d exceeds the model window %d; use topology_extension",
              sc.rows, sc.cols, shared->window);
          return r;
        }
        const std::uint64_t seed =
            static_cast<std::uint64_t>(args.get_int("seed", 1)) ^ shared->seed_mix;
        if (shared->server != nullptr) {
          // Serving path: the request lifecycle (queue, batching, cache)
          // wraps the diffusion call. Repeated generation with the same
          // arguments is a cache hit and skips diffusion entirely.
          serve::GenerationRequest req;
          req.id = "tool-gen-" + std::to_string(shared->store->topology_count()) + "-" +
                   std::to_string(seed);
          req.style = args.get_string("style", "Layer-10001");
          req.count = 1;
          req.rows = sc.rows;
          req.cols = sc.cols;
          req.sample_steps = sc.sample_steps;
          req.polish_rounds = sc.polish_rounds;
          req.schedule = args.get_string("schedule", "");
          req.seed = seed;
          req.legalize = false;  // this tool delivers a raw topology
          serve::Server::Submitted submitted = shared->server->submit(std::move(req));
          serve::GenerationResult res = submitted.result.get();
          if (res.payload == nullptr || res.payload->topologies.empty()) {
            r.payload["error"] = "serving layer returned no topology (" +
                                 std::string(serve::to_string(res.status)) +
                                 (res.reason.empty() ? "" : ": " + res.reason) + ")";
            return r;
          }
          squish::Topology t = res.payload->topologies.front();
          r.payload = topology_summary(t);
          r.payload["topology_id"] = shared->store->put_topology(std::move(t));
          r.payload["served"] = true;
          r.payload["cache_hit"] = res.cache_hit;
          r.ok = true;
          return r;
        }
        util::Rng rng(seed);
        squish::Topology t = shared->sampler->sample(sc, rng);
        r.payload = topology_summary(t);
        r.payload["topology_id"] = shared->store->put_topology(std::move(t));
        r.ok = true;
        return r;
      }});

  registry.register_tool(ToolSpec{
      "topology_extension",
      "Topology Extension: grows a topology to a target size with "
      "In-Painting or Out-Painting. Args: topology_id (optional; omit to "
      "grow from a fresh sample), target_rows, target_cols, method (Out|In), "
      "stride, style, seed, steps, schedule. Returns a new topology_id.",
      [shared](const util::Json& args) {
        ToolResult r;
        const int cond = condition_of(args);
        extension::ExtensionConfig ec;
        ec.window = shared->window;
        ec.stride = static_cast<int>(args.get_int("stride", shared->default_stride));
        ec.condition = cond;
        ec.sample_steps = static_cast<int>(args.get_int("steps", 16));
        ec.schedule_kind = schedule_of(args);
        const int rows = static_cast<int>(args.get_int("target_rows", shared->window));
        const int cols = static_cast<int>(args.get_int("target_cols", shared->window));
        const extension::Method method =
            extension::method_from_string(args.get_string("method", "Out"));
        squish::Topology seed;
        const std::string seed_id = args.get_string("topology_id", "");
        if (!seed_id.empty()) seed = shared->store->topology(seed_id);
        util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)) ^ shared->seed_mix);
        extension::ExtensionResult res =
            extension::extend(*shared->sampler, method, seed, rows, cols, ec, rng);
        r.payload = topology_summary(res.topology);
        r.payload["model_calls"] = res.model_calls;
        r.payload["method"] = extension::to_string(method);
        r.payload["topology_id"] = shared->store->put_topology(std::move(res.topology));
        r.ok = true;
        return r;
      }});

  registry.register_tool(ToolSpec{
      "topology_legalization",
      "Topology Legalization: assigns geometry vectors so the pattern is "
      "DRC-clean for the style's rules (DiffPattern's f_R(F, T)). Args: "
      "topology_id, width_nm, height_nm, style. On success returns "
      "pattern_id; on failure returns the offending region (upper/left/"
      "bottom/right in cell coordinates) and a log line.",
      [shared](const util::Json& args) {
        ToolResult r;
        const int cond = condition_of(args);
        const auto& topo = shared->store->topology(args.at("topology_id").as_string());
        const auto width = args.get_int("width_nm", 2048);
        const auto height = args.get_int("height_nm", 2048);
        const legalize::LegalizeResult res =
            shared->legalizers[static_cast<std::size_t>(cond)]->legalize(topo, width, height);
        if (!res.ok()) {
          const legalize::LegalizeFailure& f = *res.failure;
          r.payload["error"] = "legalization_failed";
          r.payload["log"] = f.message;
          r.payload["axis"] = std::string(1, f.axis);
          util::Json region;
          region["upper"] = f.row0;
          region["left"] = f.col0;
          region["bottom"] = f.row1;
          region["right"] = f.col1;
          r.payload["region"] = region;
          return r;
        }
        r.payload["pattern_id"] = shared->store->put_pattern(*res.pattern);
        r.payload["legal"] = true;
        r.ok = true;
        return r;
      }});

  registry.register_tool(ToolSpec{
      "topology_modification",
      "Topology Modification: re-generates the cell region [upper,bottom) x "
      "[left,right) of a topology with the masked reverse process (Eq. 12), "
      "keeping everything else. A time-efficient alternative to discarding a "
      "failed topology. Args: topology_id, upper, left, bottom, right, "
      "style, seed, steps, schedule. Returns a new topology_id.",
      [shared](const util::Json& args) {
        ToolResult r;
        const int cond = condition_of(args);
        const auto& topo = shared->store->topology(args.at("topology_id").as_string());
        const int upper = static_cast<int>(args.get_int("upper", 0));
        const int left = static_cast<int>(args.get_int("left", 0));
        const int bottom = static_cast<int>(args.get_int("bottom", topo.rows()));
        const int right = static_cast<int>(args.get_int("right", topo.cols()));
        if (upper < 0 || left < 0 || bottom > topo.rows() || right > topo.cols() ||
            upper >= bottom || left >= right) {
          r.payload["error"] = util::format(
              "bad region [%d,%d)x[%d,%d) for %dx%d topology", upper, bottom, left, right,
              topo.rows(), topo.cols());
          return r;
        }
        squish::Topology keep(topo.rows(), topo.cols(), 1);
        for (int rr = upper; rr < bottom; ++rr) {
          for (int cc = left; cc < right; ++cc) keep.set(rr, cc, 0);
        }
        diffusion::ModifyConfig mc;
        mc.condition = cond;
        mc.sample_steps = static_cast<int>(args.get_int("steps", 16));
        mc.schedule_kind = schedule_of(args);
        util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)) ^ shared->seed_mix);
        squish::Topology modified = shared->sampler->modify(topo, keep, mc, rng);
        r.payload = topology_summary(modified);
        r.payload["topology_id"] = shared->store->put_topology(std::move(modified));
        r.ok = true;
        return r;
      }});

  if (shared->library != nullptr) {
    registry.register_tool(ToolSpec{
        "library_retrieval",
        "Library Retrieval: queries the persistent pattern library for "
        "previously ingested or generated DRC-ready patterns instead of "
        "sampling new ones. Args: style_tag ('*' = any), count, min_density, "
        "max_density, layer (-1 = any). Returns pattern_id references into "
        "the session store plus per-pattern summaries; the matrices stay "
        "server-side.",
        [shared](const util::Json& args) {
          ToolResult r;
          pattlib::Query q;
          const std::string tag = args.get_string("style_tag", "*");
          if (tag != "*") q.style_tag = tag;
          q.limit = args.get_int("count", 4);
          q.min_density = args.get_number("min_density", 0.0);
          q.max_density = args.get_number("max_density", 1.0);
          q.layer = static_cast<int>(args.get_int("layer", -1));
          const std::vector<std::uint64_t> ids = shared->library->query(q);
          util::JsonArray found;
          for (const std::uint64_t id : ids) {
            const pattlib::StoredPattern& e = shared->library->at(id);
            util::Json item = topology_summary(e.pattern.topology);
            item["pattern_id"] = shared->store->put_pattern(e.pattern);
            item["style_tag"] = e.meta.style_tag;
            item["drc"] = std::string(pattlib::to_string(e.meta.drc));
            found.push_back(std::move(item));
          }
          r.payload["patterns"] = util::Json(std::move(found));
          r.payload["matched"] = ids.size();
          r.payload["library_size"] = shared->library->size();
          r.ok = true;
          return r;
        }});
  }

  registry.register_tool(ToolSpec{
      "topology_analysis",
      "Topology Analysis: reports size, complexity (c_x, c_y) and density of "
      "a stored topology without exposing the matrix. Args: topology_id.",
      [shared](const util::Json& args) {
        ToolResult r;
        const auto& topo = shared->store->topology(args.at("topology_id").as_string());
        r.payload = topology_summary(topo);
        r.payload["topology_id"] = args.at("topology_id").as_string();
        r.ok = true;
        return r;
      }});

  return registry;
}

}  // namespace cp::agent
