#pragma once
// The design-tool layer the agent operates (Section 3.1, "Tool Function
// Learning and Application").
//
// Tools exchange JSON arguments and JSON results — the exact wire shape of
// an LLM function-calling API — and, crucially, never hand the raw 0/1
// matrix to the agent: topologies and patterns live in the PatternStore and
// are referred to by id, while tool results carry only high-level
// characteristics (sizes, complexity, density, error locations). This is
// the paper's token-limit-driven design point.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "diffusion/sampler.h"
#include "extension/planner.h"
#include "legalize/legalizer.h"
#include "pattlib/pattern_store.h"
#include "serve/server.h"
#include "util/json.h"

namespace cp::agent {

/// In-memory object store: id -> topology / legalized pattern.
class PatternStore {
 public:
  std::string put_topology(squish::Topology t);
  std::string put_pattern(squish::SquishPattern p);

  bool has_topology(const std::string& id) const { return topologies_.count(id) > 0; }
  bool has_pattern(const std::string& id) const { return patterns_.count(id) > 0; }

  const squish::Topology& topology(const std::string& id) const;
  squish::Topology& topology(const std::string& id);
  const squish::SquishPattern& pattern(const std::string& id) const;

  std::size_t topology_count() const { return topologies_.size(); }
  std::size_t pattern_count() const { return patterns_.size(); }
  void erase_topology(const std::string& id) { topologies_.erase(id); }

 private:
  std::map<std::string, squish::Topology> topologies_;
  std::map<std::string, squish::SquishPattern> patterns_;
  long long next_id_ = 0;
};

/// Everything the tools need to do real work: one sampler (conditional over
/// all styles) and a per-style legalizer. Non-owning views; the owner (the
/// ChatPattern facade or a test fixture) outlives the registry.
struct GeneratorBackend {
  const diffusion::TopologyGenerator* sampler = nullptr;
  /// Legalizers indexed by style/condition index.
  std::vector<const legalize::Legalizer*> legalizers;
  PatternStore* store = nullptr;
  int window = 128;          // the model's native size L
  int default_stride = 64;   // out-painting stride S
  std::uint64_t seed_mix = 0x5eedULL;
  /// Optional serving layer (docs/SERVING.md). When set, topology_generation
  /// routes through the server instead of calling the sampler inline, so
  /// repeated agent queries hit the result cache and overlapping sessions
  /// share its batching. Changes the RNG stream (request streams instead of
  /// the inline tool stream), so attach it for serving deployments, not for
  /// reproducing the inline-tool baselines.
  serve::Server* server = nullptr;
  /// Optional persistent pattern library (docs/LIBRARY.md). When set, the
  /// library_retrieval tool is registered: the agent can pull previously
  /// ingested/generated patterns by metadata query instead of sampling new
  /// ones. Borrowed; must outlive the registry and not be mutated while
  /// tools run.
  const pattlib::PatternStore* library = nullptr;
};

struct ToolResult {
  bool ok = false;
  util::Json payload;  // result fields, or {error, log, region...} on failure
};

using ToolFn = std::function<ToolResult(const util::Json& args)>;

struct ToolSpec {
  std::string name;
  std::string documentation;  // what the agent "reads" to learn the tool
  ToolFn fn;
};

class ToolRegistry {
 public:
  void register_tool(ToolSpec spec);
  bool has(const std::string& name) const { return tools_.count(name) > 0; }
  const ToolSpec& spec(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Invoke a tool; unknown names yield an error ToolResult (the agent sees
  /// the same failure shape as any other tool error).
  ToolResult call(const std::string& name, const util::Json& args) const;

 private:
  std::map<std::string, ToolSpec> tools_;
};

/// Build the standard tool set over a backend:
///   topology_generation, topology_legalization, topology_extension,
///   topology_modification, topology_analysis,
/// plus library_retrieval when backend.library is attached.
ToolRegistry make_standard_tools(GeneratorBackend backend);

}  // namespace cp::agent
