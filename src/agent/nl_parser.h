#pragma once
// Rule-based natural-language requirement parser (part of substitution S3).
//
// This is the deterministic stand-in for the LLM's "Requirement
// Auto-Formatting" step: it decomposes a free-form request into clauses,
// extracts the slots of each RequirementList (counts, topology and physical
// sizes, style, extension method, drop policy, time limit, seed) and fills
// the documented defaults. It handles the paper's running example and a
// broad family of paraphrases (see tests/agent/nl_parser_test.cpp); a real
// LLM brain would produce the same structures from wilder text.

#include <string>
#include <vector>

#include "agent/requirement.h"

namespace cp::agent {

struct ParsedRequest {
  std::vector<RequirementList> subtasks;
  /// One parse-trace line per decision, for transcripts and debugging.
  std::vector<std::string> notes;
};

ParsedRequest parse_request(const std::string& text);

/// Exposed pieces for targeted testing.
namespace detail {
/// Split a request into sub-task clauses (sentences, semicolons, "then",
/// numbered items).
std::vector<std::string> split_clauses(const std::string& text);

/// Parse "NxM" / "N x M" / "N by M" pairs; returns true on success.
bool parse_size_pair(const std::string& token, long long* a, long long* b);
}  // namespace detail

}  // namespace cp::agent
