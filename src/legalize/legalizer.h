#pragma once
// Topology legalization: f_R(F, T) from DiffPattern (Equation 13 of the
// paper). Given a generated topology matrix T, a target physical size
// F = (W, H) nm and a set of design rules R, find geometry vectors Dx, Dy so
// that the resulting squish pattern is DRC-clean, or report the offending
// region when no such vectors exist.
//
// The width/space rules are linear lower bounds on contiguous delta sums and
// are solved exactly per axis via DiffConstraintSystem. The polygon area
// rule couples the axes non-linearly; it is handled by an iterative
// repair loop that converts an area shortfall into additional extent
// constraints and re-solves (a small fixed number of rounds, then fail).

#include <optional>
#include <string>

#include "drc/checker.h"
#include "legalize/diffconstraint.h"
#include "squish/squish.h"

namespace cp::legalize {

struct LegalizeFailure {
  /// Offending cell region: rows [row0,row1) x cols [col0,col1).
  int row0 = 0, col0 = 0, row1 = 0, col1 = 0;
  char axis = 'x';  // 'x', 'y', or 'a' (area)
  Coord required_nm = 0;
  Coord available_nm = 0;
  std::string message;  // log line handed to the agent
};

struct LegalizeResult {
  std::optional<squish::SquishPattern> pattern;
  std::optional<LegalizeFailure> failure;
  bool ok() const { return pattern.has_value(); }
};

class Legalizer {
 public:
  explicit Legalizer(drc::DesignRules rules) : rules_(rules) {}

  /// Legalize `topology` into a W x H nm pattern.
  LegalizeResult legalize(const squish::Topology& topology, Coord width_nm,
                          Coord height_nm) const;

  const drc::DesignRules& rules() const { return rules_; }

  /// Diagnostics: the minimum physical width/height (nm) any legal
  /// assignment needs — the longest constraint-chain path. Legalization at
  /// (W, H) succeeds (up to the non-linear area rule) iff W/H are at or
  /// above these. Used by benches to characterise topology difficulty.
  Coord required_width_nm(const squish::Topology& topology) const;
  Coord required_height_nm(const squish::Topology& topology) const;

 private:
  /// Build the per-axis constraint system from run structure.
  DiffConstraintSystem build_x_system(const squish::Topology& t) const;
  DiffConstraintSystem build_y_system(const squish::Topology& t) const;

  drc::DesignRules rules_;
};

}  // namespace cp::legalize
