#include "legalize/legalizer.h"

#include <algorithm>
#include <cmath>

#include "geometry/extract.h"
#include "obs/registry.h"
#include "util/strings.h"

namespace cp::legalize {

namespace {

LegalizeFailure make_failure(char axis, int row0, int col0, int row1, int col1, Coord required,
                             Coord available) {
  LegalizeFailure f;
  f.axis = axis;
  f.row0 = row0;
  f.col0 = col0;
  f.row1 = row1;
  f.col1 = col1;
  f.required_nm = required;
  f.available_nm = available;
  f.message = util::format(
      "legalization failed (%c-axis): region rows[%d,%d) cols[%d,%d) requires %lld nm but only "
      "%lld nm available",
      axis, row0, row1, col0, col1, static_cast<long long>(required),
      static_cast<long long>(available));
  return f;
}

}  // namespace

DiffConstraintSystem Legalizer::build_x_system(const squish::Topology& t) const {
  DiffConstraintSystem sys(t.cols());
  for (int r = 0; r < t.rows(); ++r) {
    const auto ones = drc::row_runs(t, r, 1);
    for (const auto& [b, e] : ones) {
      if (b == 0 || e == t.cols()) continue;  // border-exempt, as in the checker
      sys.add(b, e, rules_.min_width_nm);
    }
    for (std::size_t i = 0; i + 1 < ones.size(); ++i) {
      sys.add(ones[i].second, ones[i + 1].first, rules_.min_space_nm);
    }
  }
  return sys;
}

DiffConstraintSystem Legalizer::build_y_system(const squish::Topology& t) const {
  DiffConstraintSystem sys(t.rows());
  for (int c = 0; c < t.cols(); ++c) {
    const auto ones = drc::col_runs(t, c, 1);
    for (const auto& [b, e] : ones) {
      if (b == 0 || e == t.rows()) continue;
      sys.add(b, e, rules_.min_width_nm);
    }
    for (std::size_t i = 0; i + 1 < ones.size(); ++i) {
      sys.add(ones[i].second, ones[i + 1].first, rules_.min_space_nm);
    }
  }
  return sys;
}

Coord Legalizer::required_width_nm(const squish::Topology& topology) const {
  return build_x_system(topology).minimum_total(rules_.pitch_nm);
}

Coord Legalizer::required_height_nm(const squish::Topology& topology) const {
  return build_y_system(topology).minimum_total(rules_.pitch_nm);
}

LegalizeResult Legalizer::legalize(const squish::Topology& topology, Coord width_nm,
                                   Coord height_nm) const {
  const obs::Span span = obs::trace_scope("legalize/attempt");
  obs::count("legalize/attempts");
  LegalizeResult result = [&]() -> LegalizeResult {
  LegalizeResult result;
  if (topology.empty()) {
    result.failure = make_failure('x', 0, 0, 0, 0, 0, width_nm);
    result.failure->message = "legalization failed: empty topology";
    return result;
  }

  DiffConstraintSystem xsys = build_x_system(topology);
  DiffConstraintSystem ysys = build_y_system(topology);

  // Area-repair loop: solve both axes, check polygon areas, convert any
  // shortfall into extra extent constraints and re-solve.
  constexpr int kMaxAreaRounds = 4;
  for (int round = 0; round < kMaxAreaRounds; ++round) {
    const SolveResult xres = xsys.solve(width_nm, rules_.pitch_nm);
    if (!xres.ok()) {
      const SolveFailure& sf = *xres.failure;
      result.failure = make_failure('x', 0, sf.begin, topology.rows(), sf.end, sf.required_nm,
                                    sf.available_nm);
      return result;
    }
    const SolveResult yres = ysys.solve(height_nm, rules_.pitch_nm);
    if (!yres.ok()) {
      const SolveFailure& sf = *yres.failure;
      result.failure = make_failure('y', sf.begin, 0, sf.end, topology.cols(), sf.required_nm,
                                    sf.available_nm);
      return result;
    }

    squish::SquishPattern pattern;
    pattern.topology = topology;
    pattern.dx = *xres.deltas;
    pattern.dy = *yres.deltas;

    // Area check on the candidate assignment.
    bool area_clean = true;
    for (const auto& comp : geometry::connected_components(topology.view())) {
      const bool on_border = comp.min_row == 0 || comp.min_col == 0 ||
                             comp.max_row + 1 == topology.rows() ||
                             comp.max_col + 1 == topology.cols();
      if (on_border) continue;
      Coord area = 0;
      for (const geometry::Point& cell : comp.cells) {
        area += pattern.dx[static_cast<std::size_t>(cell.x)] *
                pattern.dy[static_cast<std::size_t>(cell.y)];
      }
      if (area >= rules_.min_area_nm2) continue;
      area_clean = false;
      if (round + 1 == kMaxAreaRounds) {
        result.failure = make_failure('a', comp.min_row, comp.min_col, comp.max_row + 1,
                                      comp.max_col + 1, rules_.min_area_nm2, area);
        return result;
      }
      // Ask both axes to grow the component's bounding extent: if each
      // direction reaches sqrt(min_area * current aspect), the cell-covered
      // area (>= half the bbox for connected rectilinear shapes we generate)
      // comfortably exceeds the rule after one or two rounds.
      const Coord cur_w = [&] {
        Coord w = 0;
        for (int c = comp.min_col; c <= comp.max_col; ++c) {
          w += pattern.dx[static_cast<std::size_t>(c)];
        }
        return w;
      }();
      const Coord cur_h = [&] {
        Coord h = 0;
        for (int r = comp.min_row; r <= comp.max_row; ++r) {
          h += pattern.dy[static_cast<std::size_t>(r)];
        }
        return h;
      }();
      const double grow = std::sqrt(static_cast<double>(rules_.min_area_nm2) /
                                    std::max<double>(1.0, static_cast<double>(area)));
      xsys.add(comp.min_col, comp.max_col + 1,
               static_cast<Coord>(std::ceil(static_cast<double>(cur_w) * grow)));
      ysys.add(comp.min_row, comp.max_row + 1,
               static_cast<Coord>(std::ceil(static_cast<double>(cur_h) * grow)));
    }
    if (area_clean) {
      result.pattern = std::move(pattern);
      return result;
    }
  }
  // Unreachable: the loop either returns a pattern or a failure.
  result.failure = make_failure('a', 0, 0, topology.rows(), topology.cols(), rules_.min_area_nm2, 0);
  return result;
  }();
  if (result.ok()) {
    obs::count("legalize/ok");
  } else {
    obs::count("legalize/fail");
    const char axis = result.failure.has_value() ? result.failure->axis : '?';
    obs::count(axis == 'x'   ? "legalize/fail_axis_x"
               : axis == 'y' ? "legalize/fail_axis_y"
                             : "legalize/fail_area");
  }
  return result;
}

}  // namespace cp::legalize
