#include "legalize/diffconstraint.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace cp::legalize {

DiffConstraintSystem::DiffConstraintSystem(int n) : n_(n) {
  if (n < 0) throw std::invalid_argument("DiffConstraintSystem: negative size");
}

void DiffConstraintSystem::add(int begin, int end, Coord min_length_nm) {
  if (begin < 0 || end > n_ || begin >= end) {
    throw std::invalid_argument("DiffConstraintSystem::add: bad interval");
  }
  constraints_.push_back(IntervalConstraint{begin, end, min_length_nm});
}

Coord DiffConstraintSystem::minimum_total(Coord pitch_nm) const {
  std::vector<Coord> f(static_cast<std::size_t>(n_) + 1, 0);
  std::vector<std::vector<std::pair<int, Coord>>> out_edges(static_cast<std::size_t>(n_) + 1);
  for (const IntervalConstraint& c : constraints_) {
    out_edges[static_cast<std::size_t>(c.begin)].emplace_back(c.end, c.min_length_nm);
  }
  for (int i = 0; i < n_; ++i) {
    f[i + 1] = std::max(f[i + 1], f[i] + pitch_nm);
    for (const auto& [to, bound] : out_edges[static_cast<std::size_t>(i)]) {
      f[static_cast<std::size_t>(to)] = std::max(f[static_cast<std::size_t>(to)], f[i] + bound);
    }
  }
  return f[static_cast<std::size_t>(n_)];
}

SolveResult DiffConstraintSystem::solve(Coord total_nm, Coord pitch_nm,
                                        int balance_sweeps) const {
  if (n_ == 0) {
    SolveResult result;
    if (total_nm == 0) {
      result.deltas = std::vector<Coord>{};
    } else {
      result.failure = SolveFailure{0, 0, 0, total_nm};
    }
    return result;
  }
  // Deduplicate constraints, keeping the strongest bound per interval, and
  // bucket edges by source node for the forward longest-path sweep.
  std::map<std::pair<int, int>, Coord> strongest;
  for (const IntervalConstraint& c : constraints_) {
    auto key = std::make_pair(c.begin, c.end);
    auto it = strongest.find(key);
    if (it == strongest.end() || it->second < c.min_length_nm) strongest[key] = c.min_length_nm;
  }
  std::vector<std::vector<std::pair<int, Coord>>> out_edges(static_cast<std::size_t>(n_) + 1);
  std::vector<std::vector<std::pair<int, Coord>>> in_edges(static_cast<std::size_t>(n_) + 1);
  for (const auto& [key, bound] : strongest) {
    out_edges[static_cast<std::size_t>(key.first)].emplace_back(key.second, bound);
    in_edges[static_cast<std::size_t>(key.second)].emplace_back(key.first, bound);
  }

  // Forward longest path f(i) = longest 0 -> i, with predecessor tracking
  // for critical-path extraction. Pitch edges are marked so the reported
  // failure region spans only the *constraint* edges of the critical path —
  // that localisation is what the agent repairs.
  std::vector<Coord> f(static_cast<std::size_t>(n_) + 1, 0);
  std::vector<int> pred(static_cast<std::size_t>(n_) + 1, -1);
  std::vector<char> pred_is_constraint(static_cast<std::size_t>(n_) + 1, 0);
  for (int i = 0; i < n_; ++i) {
    if (f[i] + pitch_nm > f[i + 1]) {
      f[i + 1] = f[i] + pitch_nm;
      pred[i + 1] = i;
      pred_is_constraint[i + 1] = 0;
    }
    for (const auto& [to, bound] : out_edges[static_cast<std::size_t>(i)]) {
      if (f[i] + bound > f[to]) {
        f[static_cast<std::size_t>(to)] = f[i] + bound;
        pred[static_cast<std::size_t>(to)] = i;
        pred_is_constraint[static_cast<std::size_t>(to)] = 1;
      }
    }
  }

  SolveResult result;
  if (f[static_cast<std::size_t>(n_)] > total_nm) {
    // Infeasible: walk the critical path back from n; the reported region
    // is the extent of its constraint edges (the whole axis if the path is
    // pure pitch, which only happens when the budget is below n * pitch).
    int lo = n_, hi = 0;
    for (int node = n_; node > 0 && pred[static_cast<std::size_t>(node)] >= 0;
         node = pred[static_cast<std::size_t>(node)]) {
      if (pred_is_constraint[static_cast<std::size_t>(node)]) {
        hi = std::max(hi, node);
        lo = std::min(lo, pred[static_cast<std::size_t>(node)]);
      }
    }
    if (hi == 0) {  // no constraint edge on the path
      lo = 0;
      hi = n_;
    }
    SolveFailure failure;
    failure.begin = lo;
    failure.end = hi;
    failure.required_nm = f[static_cast<std::size_t>(n_)];
    failure.available_nm = total_nm;
    result.failure = failure;
    return result;
  }

  // Backward longest path g(i) = longest i -> n.
  std::vector<Coord> g(static_cast<std::size_t>(n_) + 1, 0);
  for (int i = n_ - 1; i >= 0; --i) {
    g[i] = g[i + 1] + pitch_nm;
    for (const auto& [to, bound] : out_edges[static_cast<std::size_t>(i)]) {
      g[i] = std::max(g[static_cast<std::size_t>(i)], g[static_cast<std::size_t>(to)] + bound);
    }
  }

  // Feasible prefix-sum assignment: the "latest schedule"
  // s_i = max(f(i), W - g(i)) with the boundary values pinned. Feasibility of
  // every difference constraint follows from f(e) >= f(b) + L and
  // g(b) >= g(e) + L (see DESIGN.md section 4).
  std::vector<Coord> s(static_cast<std::size_t>(n_) + 1, 0);
  s[0] = 0;
  s[static_cast<std::size_t>(n_)] = total_nm;
  for (int i = 1; i < n_; ++i) {
    s[i] = std::max(f[i], total_nm - g[i]);
  }

  // Balance sweeps: nudge each interior prefix toward the uniform schedule
  // while staying within the bounds imposed by its incident constraints.
  for (int sweep = 0; sweep < balance_sweeps; ++sweep) {
    for (int i = 1; i < n_; ++i) {
      Coord lo = s[i - 1] + pitch_nm;
      Coord hi = s[i + 1] - pitch_nm;
      for (const auto& [from, bound] : in_edges[static_cast<std::size_t>(i)]) {
        lo = std::max(lo, s[static_cast<std::size_t>(from)] + bound);
      }
      for (const auto& [to, bound] : out_edges[static_cast<std::size_t>(i)]) {
        hi = std::min(hi, s[static_cast<std::size_t>(to)] - bound);
      }
      // Also respect constraints that merely *cross* i — they bound the pair
      // (s_b, s_e), not s_i, so they are already satisfied and unaffected.
      const Coord target = (total_nm * i) / n_;
      s[i] = std::clamp(target, lo, hi);
    }
  }

  std::vector<Coord> deltas(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) deltas[static_cast<std::size_t>(i)] = s[i + 1] - s[i];
  result.deltas = std::move(deltas);
  return result;
}

}  // namespace cp::legalize
