#pragma once
// Difference-constraint solver used by the legalizer.
//
// The DiffPattern-style non-linear legalization f_R(F, T) assigns physical
// lengths to scan-line intervals. Every design-rule run constraint
// ("columns [b, e) must span at least L nm") becomes a lower bound on a
// contiguous sum of deltas, i.e. a difference constraint s_e - s_b >= L on
// the prefix sums s. Together with the per-interval pitch bound and the
// fixed total s_n = W, feasibility is a longest-path computation on a DAG
// whose nodes are the n+1 scan lines. The longest (critical) path both
// decides feasibility and, when infeasible, localises the offending interval
// — the explainable-failure feature the paper's agent consumes.

#include <optional>
#include <vector>

#include "geometry/polygon.h"

namespace cp::legalize {

using geometry::Coord;

struct IntervalConstraint {
  int begin = 0;  // scan-line index
  int end = 0;    // scan-line index, > begin
  Coord min_length_nm = 0;
};

struct SolveFailure {
  /// Tightest over-constrained interval (scan-line indices of the critical
  /// path's extent).
  int begin = 0;
  int end = 0;
  Coord required_nm = 0;   // longest-path length
  Coord available_nm = 0;  // the budget W
};

struct SolveResult {
  /// Interval lengths (deltas), size n; present iff feasible.
  std::optional<std::vector<Coord>> deltas;
  std::optional<SolveFailure> failure;
  bool ok() const { return deltas.has_value(); }
};

class DiffConstraintSystem {
 public:
  /// A system over n intervals (n+1 scan lines).
  explicit DiffConstraintSystem(int n);

  /// Require sum of deltas[begin..end) >= min_length_nm.
  /// Duplicate intervals keep the strongest bound.
  void add(int begin, int end, Coord min_length_nm);

  int interval_count() const { return n_; }

  /// Solve for total budget W with per-delta lower bound `pitch`.
  /// On success the returned deltas satisfy every constraint, sum to exactly
  /// W, and slack is spread by `balance_sweeps` relaxation passes so the
  /// solution is smooth rather than front/back-loaded.
  SolveResult solve(Coord total_nm, Coord pitch_nm, int balance_sweeps = 3) const;

  /// The smallest total budget any feasible assignment needs (the longest
  /// constraint-chain path from scan line 0 to n).
  Coord minimum_total(Coord pitch_nm) const;

 private:
  int n_;
  // Edge list keyed by (begin, end) keeping the max bound.
  std::vector<IntervalConstraint> constraints_;
};

}  // namespace cp::legalize
