#include "squish/topology.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace cp::squish {

namespace {

using geometry::bitgrid_tail_mask;
using geometry::bitgrid_words_per_row;

/// Copy `count` bits starting at bit `offset` of the `src_words`-word source
/// row into `dst` starting at bit 0. Writes ceil(count/64) words with zero
/// tail bits; never reads past src[src_words - 1].
void extract_bits(const std::uint64_t* src, int src_words, int offset, int count,
                  std::uint64_t* dst) {
  if (count <= 0) return;
  const int out_words = bitgrid_words_per_row(count);
  const int q = offset >> 6;
  const int sh = offset & 63;
  for (int i = 0; i < out_words; ++i) {
    std::uint64_t w = src[q + i] >> sh;
    if (sh != 0 && q + i + 1 < src_words) w |= src[q + i + 1] << (64 - sh);
    dst[i] = w;
  }
  dst[out_words - 1] &= bitgrid_tail_mask(count);
}

/// Write `count` bits (read from bit 0 of `src`) into the destination row at
/// bit `offset`, leaving all other destination bits untouched.
void deposit_bits(std::uint64_t* dst, int offset, int count, const std::uint64_t* src) {
  if (count <= 0) return;
  const int q = offset >> 6;
  const int sh = offset & 63;
  const int in_words = bitgrid_words_per_row(count);
  for (int i = 0; i < in_words; ++i) {
    const int bits_here = std::min(64, count - i * 64);
    const std::uint64_t m = bitgrid_tail_mask(bits_here);
    const std::uint64_t v = src[i] & m;
    dst[q + i] = (dst[q + i] & ~(m << sh)) | (v << sh);
    if (sh != 0 && (m >> (64 - sh)) != 0) {
      dst[q + i + 1] = (dst[q + i + 1] & ~(m >> (64 - sh))) | (v >> (64 - sh));
    }
  }
}

std::uint64_t bit_reverse(std::uint64_t v) {
  v = ((v >> 1) & 0x5555555555555555ULL) | ((v & 0x5555555555555555ULL) << 1);
  v = ((v >> 2) & 0x3333333333333333ULL) | ((v & 0x3333333333333333ULL) << 2);
  v = ((v >> 4) & 0x0F0F0F0F0F0F0F0FULL) | ((v & 0x0F0F0F0F0F0F0F0FULL) << 4);
  v = ((v >> 8) & 0x00FF00FF00FF00FFULL) | ((v & 0x00FF00FF00FF00FFULL) << 8);
  v = ((v >> 16) & 0x0000FFFF0000FFFFULL) | ((v & 0x0000FFFF0000FFFFULL) << 16);
  return (v >> 32) | (v << 32);
}

}  // namespace

Topology::Topology(int rows, int cols, std::uint8_t fill)
    : rows_(rows),
      cols_(cols),
      words_per_row_(bitgrid_words_per_row(cols)),
      words_(static_cast<std::size_t>(rows) * bitgrid_words_per_row(cols),
             fill ? ~std::uint64_t{0} : 0) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("Topology: negative dimensions");
  if (fill && words_per_row_ > 0) {
    const std::uint64_t tail = tail_mask();
    for (int r = 0; r < rows_; ++r) {
      words_[word_index(r, words_per_row_ - 1)] &= tail;
    }
  }
}

std::vector<std::uint8_t> Topology::to_bytes() const {
  std::vector<std::uint8_t> bytes(size());
  std::size_t i = 0;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) bytes[i++] = at(r, c);
  }
  return bytes;
}

Topology Topology::from_bytes(int rows, int cols, const std::uint8_t* bytes,
                              std::size_t count) {
  Topology t(rows, cols);
  if (count != t.size()) throw std::invalid_argument("Topology::from_bytes: size mismatch");
  std::size_t i = 0;
  for (int r = 0; r < rows; ++r) {
    std::uint64_t* row = t.words_.data() + t.word_index(r, 0);
    for (int c = 0; c < cols; ++c, ++i) {
      const std::uint8_t v = bytes[i];
      if (v > 1) throw std::invalid_argument("Topology::from_bytes: cell value not in {0,1}");
      row[c >> 6] |= static_cast<std::uint64_t>(v) << (c & 63);
    }
  }
  return t;
}

std::size_t Topology::popcount() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

double Topology::density() const {
  return empty() ? 0.0 : static_cast<double>(popcount()) / static_cast<double>(size());
}

Topology Topology::window(int r0, int c0, int r1, int c1) const {
  if (r0 < 0 || c0 < 0 || r1 > rows_ || c1 > cols_ || r0 > r1 || c0 > c1) {
    throw std::out_of_range("Topology::window: bad bounds");
  }
  Topology out(r1 - r0, c1 - c0);
  for (int r = r0; r < r1; ++r) {
    extract_bits(row_words(r), words_per_row_, c0, c1 - c0,
                 out.words_.data() + out.word_index(r - r0, 0));
  }
  return out;
}

void Topology::paste(const Topology& tile, int r0, int c0) {
  const int r_begin = std::max(0, r0);
  const int c_begin = std::max(0, c0);
  const int r_end = std::min(rows_, r0 + tile.rows());
  const int c_end = std::min(cols_, c0 + tile.cols());
  const int count = c_end - c_begin;
  if (count <= 0 || r_end <= r_begin) return;
  std::vector<std::uint64_t> tmp(bitgrid_words_per_row(count));
  for (int r = r_begin; r < r_end; ++r) {
    extract_bits(tile.row_words(r - r0), tile.words_per_row_, c_begin - c0, count, tmp.data());
    deposit_bits(words_.data() + word_index(r, 0), c_begin, count, tmp.data());
  }
}

Topology Topology::transposed() const {
  Topology out(cols_, rows_);
  for (int bi = 0; bi * 64 < rows_; ++bi) {
    const int r_base = bi * 64;
    const int r_lim = std::min(64, rows_ - r_base);
    for (int bj = 0; bj < words_per_row_; ++bj) {
      std::uint64_t x[64] = {};
      for (int i = 0; i < r_lim; ++i) x[i] = word(r_base + i, bj);
      geometry::bitgrid_transpose64(x);
      const int c_base = bj * 64;
      const int c_lim = std::min(64, cols_ - c_base);
      for (int j = 0; j < c_lim; ++j) {
        out.words_[out.word_index(c_base + j, bi)] = x[j];
      }
    }
  }
  return out;
}

Topology Topology::flipped_horizontal() const {
  Topology out(rows_, cols_);
  if (words_per_row_ == 0) return out;
  const int pad = words_per_row_ * 64 - cols_;
  std::vector<std::uint64_t> tmp(words_per_row_);
  for (int r = 0; r < rows_; ++r) {
    const std::uint64_t* src = row_words(r);
    for (int i = 0; i < words_per_row_; ++i) {
      tmp[i] = bit_reverse(src[words_per_row_ - 1 - i]);
    }
    extract_bits(tmp.data(), words_per_row_, pad, cols_,
                 out.words_.data() + out.word_index(r, 0));
  }
  return out;
}

Topology Topology::flipped_vertical() const {
  Topology out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    std::copy(row_words(r), row_words(r) + words_per_row_,
              out.words_.data() + out.word_index(rows_ - 1 - r, 0));
  }
  return out;
}

bool Topology::rows_equal(int a, int b) const {
  return std::equal(row_words(a), row_words(a) + words_per_row_, row_words(b));
}

bool Topology::cols_equal(int a, int b) const {
  const int wa = a >> 6, sa = a & 63;
  const int wb = b >> 6, sb = b & 63;
  for (int r = 0; r < rows_; ++r) {
    const std::uint64_t* row = row_words(r);
    if (((row[wa] >> sa) ^ (row[wb] >> sb)) & 1u) return false;
  }
  return true;
}

Topology Topology::deduplicated() const {
  if (empty()) return Topology();
  std::vector<int> keep_rows{0};
  for (int r = 1; r < rows_; ++r) {
    if (!rows_equal(r, keep_rows.back())) keep_rows.push_back(r);
  }
  std::vector<int> keep_cols{0};
  for (int c = 1; c < cols_; ++c) {
    if (!cols_equal(c, keep_cols.back())) keep_cols.push_back(c);
  }
  Topology out(static_cast<int>(keep_rows.size()), static_cast<int>(keep_cols.size()));
  for (std::size_t r = 0; r < keep_rows.size(); ++r) {
    for (std::size_t c = 0; c < keep_cols.size(); ++c) {
      out.set(static_cast<int>(r), static_cast<int>(c), at(keep_rows[r], keep_cols[c]));
    }
  }
  return out;
}

std::pair<int, int> Topology::complexity() const {
  const Topology d = deduplicated();
  return {d.cols(), d.rows()};
}

std::string Topology::to_ascii() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(rows_) * (cols_ + 1));
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out += at(r, c) ? '#' : '.';
    out += '\n';
  }
  return out;
}

std::string Topology::to_pbm() const {
  std::string out = "P1\n" + std::to_string(cols_) + " " + std::to_string(rows_) + "\n";
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      out += at(r, c) ? '1' : '0';
      out += (c + 1 == cols_) ? '\n' : ' ';
    }
  }
  return out;
}

Topology downsample_majority(const Topology& t, int factor) {
  if (factor < 1 || t.rows() % factor != 0 || t.cols() % factor != 0) {
    throw std::invalid_argument("downsample_majority: dims must divide by factor");
  }
  Topology out(t.rows() / factor, t.cols() / factor);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      int ones = 0;
      for (int dr = 0; dr < factor; ++dr) {
        for (int dc = 0; dc < factor; ++dc) ones += t.at(r * factor + dr, c * factor + dc);
      }
      out.set(r, c, 2 * ones >= factor * factor ? 1 : 0);
    }
  }
  return out;
}

Topology upsample_nearest(const Topology& t, int factor) {
  if (factor < 1) throw std::invalid_argument("upsample_nearest: bad factor");
  Topology out(t.rows() * factor, t.cols() * factor);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.set(r, c, t.at(r / factor, c / factor));
  }
  return out;
}

}  // namespace cp::squish
