#include "squish/topology.h"

#include <algorithm>
#include <stdexcept>

namespace cp::squish {

Topology::Topology(int rows, int cols, std::uint8_t fill)
    : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols, fill ? 1 : 0) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("Topology: negative dimensions");
}

std::size_t Topology::popcount() const {
  std::size_t n = 0;
  for (std::uint8_t v : data_) n += v;
  return n;
}

double Topology::density() const {
  return data_.empty() ? 0.0 : static_cast<double>(popcount()) / static_cast<double>(data_.size());
}

Topology Topology::window(int r0, int c0, int r1, int c1) const {
  if (r0 < 0 || c0 < 0 || r1 > rows_ || c1 > cols_ || r0 > r1 || c0 > c1) {
    throw std::out_of_range("Topology::window: bad bounds");
  }
  Topology out(r1 - r0, c1 - c0);
  for (int r = r0; r < r1; ++r) {
    std::copy(data_.begin() + index(r, c0), data_.begin() + index(r, c1),
              out.data_.begin() + out.index(r - r0, 0));
  }
  return out;
}

void Topology::paste(const Topology& tile, int r0, int c0) {
  const int r_begin = std::max(0, r0);
  const int c_begin = std::max(0, c0);
  const int r_end = std::min(rows_, r0 + tile.rows());
  const int c_end = std::min(cols_, c0 + tile.cols());
  for (int r = r_begin; r < r_end; ++r) {
    for (int c = c_begin; c < c_end; ++c) {
      data_[index(r, c)] = tile.at(r - r0, c - c0);
    }
  }
}

Topology Topology::transposed() const {
  Topology out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.set(c, r, at(r, c));
  }
  return out;
}

Topology Topology::flipped_horizontal() const {
  Topology out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.set(r, cols_ - 1 - c, at(r, c));
  }
  return out;
}

Topology Topology::flipped_vertical() const {
  Topology out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.set(rows_ - 1 - r, c, at(r, c));
  }
  return out;
}

namespace {
bool rows_equal(const Topology& t, int a, int b) {
  for (int c = 0; c < t.cols(); ++c) {
    if (t.at(a, c) != t.at(b, c)) return false;
  }
  return true;
}
bool cols_equal(const Topology& t, int a, int b) {
  for (int r = 0; r < t.rows(); ++r) {
    if (t.at(r, a) != t.at(r, b)) return false;
  }
  return true;
}
}  // namespace

Topology Topology::deduplicated() const {
  if (empty()) return Topology();
  std::vector<int> keep_rows{0};
  for (int r = 1; r < rows_; ++r) {
    if (!rows_equal(*this, r, keep_rows.back())) keep_rows.push_back(r);
  }
  std::vector<int> keep_cols{0};
  for (int c = 1; c < cols_; ++c) {
    if (!cols_equal(*this, c, keep_cols.back())) keep_cols.push_back(c);
  }
  Topology out(static_cast<int>(keep_rows.size()), static_cast<int>(keep_cols.size()));
  for (std::size_t r = 0; r < keep_rows.size(); ++r) {
    for (std::size_t c = 0; c < keep_cols.size(); ++c) {
      out.set(static_cast<int>(r), static_cast<int>(c), at(keep_rows[r], keep_cols[c]));
    }
  }
  return out;
}

std::pair<int, int> Topology::complexity() const {
  const Topology d = deduplicated();
  return {d.cols(), d.rows()};
}

std::string Topology::to_ascii() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(rows_) * (cols_ + 1));
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out += at(r, c) ? '#' : '.';
    out += '\n';
  }
  return out;
}

std::string Topology::to_pbm() const {
  std::string out = "P1\n" + std::to_string(cols_) + " " + std::to_string(rows_) + "\n";
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      out += at(r, c) ? '1' : '0';
      out += (c + 1 == cols_) ? '\n' : ' ';
    }
  }
  return out;
}

Topology downsample_majority(const Topology& t, int factor) {
  if (factor < 1 || t.rows() % factor != 0 || t.cols() % factor != 0) {
    throw std::invalid_argument("downsample_majority: dims must divide by factor");
  }
  Topology out(t.rows() / factor, t.cols() / factor);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      int ones = 0;
      for (int dr = 0; dr < factor; ++dr) {
        for (int dc = 0; dc < factor; ++dc) ones += t.at(r * factor + dr, c * factor + dc);
      }
      out.set(r, c, 2 * ones >= factor * factor ? 1 : 0);
    }
  }
  return out;
}

Topology upsample_nearest(const Topology& t, int factor) {
  if (factor < 1) throw std::invalid_argument("upsample_nearest: bad factor");
  Topology out(t.rows() * factor, t.cols() * factor);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.set(r, c, t.at(r / factor, c / factor));
  }
  return out;
}

}  // namespace cp::squish
