#pragma once
// Byte-backed reference implementation of the topology grid.
//
// This is the pre-packing storage model (one cell per byte, row-major),
// retained verbatim as the executable specification of squish::Topology:
// the property suite in tests/squish/topology_property_test.cpp checks every
// packed grid operation against this class on randomized shapes, and the
// packed-vs-byte rows of BENCH_denoiser.json measure the packed kernels
// against these scalar loops. It is not used on any production path.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "squish/topology.h"

namespace cp::squish {

class ByteTopology {
 public:
  ByteTopology() = default;
  ByteTopology(int rows, int cols, std::uint8_t fill = 0);
  /// Unpack a packed topology into byte storage.
  explicit ByteTopology(const Topology& t);

  /// Pack back into the production representation.
  Topology packed() const;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  std::uint8_t at(int r, int c) const { return data_[index(r, c)]; }
  void set(int r, int c, std::uint8_t v) { data_[index(r, c)] = v ? 1 : 0; }

  const std::uint8_t* data() const { return data_.data(); }
  std::uint8_t* data() { return data_.data(); }

  std::size_t popcount() const;
  double density() const;
  ByteTopology window(int r0, int c0, int r1, int c1) const;
  void paste(const ByteTopology& tile, int r0, int c0);
  ByteTopology transposed() const;
  ByteTopology flipped_horizontal() const;
  ByteTopology flipped_vertical() const;
  bool rows_equal(int a, int b) const;
  bool cols_equal(int a, int b) const;
  ByteTopology deduplicated() const;

  bool operator==(const ByteTopology&) const = default;

 private:
  std::size_t index(int r, int c) const { return static_cast<std::size_t>(r) * cols_ + c; }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<std::uint8_t> data_;
};

}  // namespace cp::squish
