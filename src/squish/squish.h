#pragma once
// Squish pattern = (topology matrix T, geometry vectors Δx, Δy).
//
// squish() converts a physical layout clip (a set of non-overlapping rects in
// nm within a window) into the exact minimal squish pattern: scan lines are
// placed on every polygon edge, the Δ vectors store the interval lengths, and
// T marks which grid cells are covered (Figure 2 of the paper).
// unsquish() reconstructs the physical rect set; squish∘unsquish is the
// identity on the pattern geometry.

#include <vector>

#include "geometry/polygon.h"
#include "squish/topology.h"

namespace cp::squish {

using geometry::Coord;
using geometry::Rect;

/// Interval lengths between adjacent scan lines, in nm.
using DeltaVec = std::vector<Coord>;

struct SquishPattern {
  Topology topology;
  DeltaVec dx;  // size == topology.cols()
  DeltaVec dy;  // size == topology.rows()

  /// Physical extent (sum of deltas).
  Coord width_nm() const;
  Coord height_nm() const;

  /// True if the delta vectors are consistent with the topology dimensions
  /// and strictly positive.
  bool well_formed() const;
};

/// Build the squish pattern of `rects` clipped to `window`.
/// Rects fully outside the window are ignored; partially covered rects are
/// clipped. Throws std::invalid_argument if the window is empty.
SquishPattern squish(const std::vector<Rect>& rects, const Rect& window);

/// Reconstruct the physical rectangles (in nm, window-relative origin at 0,0)
/// from a squish pattern. Output rects are a maximal rectilinear
/// decomposition of each polygon.
std::vector<Rect> unsquish(const SquishPattern& pattern);

/// Uniform delta vector helper: n intervals summing (as closely as integer
/// division allows) to `total_nm`, each >= 1.
DeltaVec uniform_deltas(int n, Coord total_nm);

}  // namespace cp::squish
