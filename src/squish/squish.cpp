#include "squish/squish.h"

#include <algorithm>
#include <stdexcept>

#include "geometry/extract.h"

namespace cp::squish {

Coord SquishPattern::width_nm() const {
  Coord w = 0;
  for (Coord d : dx) w += d;
  return w;
}

Coord SquishPattern::height_nm() const {
  Coord h = 0;
  for (Coord d : dy) h += d;
  return h;
}

bool SquishPattern::well_formed() const {
  if (static_cast<int>(dx.size()) != topology.cols()) return false;
  if (static_cast<int>(dy.size()) != topology.rows()) return false;
  for (Coord d : dx) {
    if (d <= 0) return false;
  }
  for (Coord d : dy) {
    if (d <= 0) return false;
  }
  return true;
}

SquishPattern squish(const std::vector<Rect>& rects, const Rect& window) {
  if (window.empty()) throw std::invalid_argument("squish: empty window");

  std::vector<Coord> xs{window.x0, window.x1};
  std::vector<Coord> ys{window.y0, window.y1};
  std::vector<Rect> clipped;
  clipped.reserve(rects.size());
  for (const Rect& r : rects) {
    const Rect c = r.clipped_to(window);
    if (c.empty()) continue;
    clipped.push_back(c);
    xs.push_back(c.x0);
    xs.push_back(c.x1);
    ys.push_back(c.y0);
    ys.push_back(c.y1);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  const int cols = static_cast<int>(xs.size()) - 1;
  const int rows = static_cast<int>(ys.size()) - 1;
  SquishPattern out;
  out.topology = Topology(rows, cols);
  out.dx.resize(cols);
  out.dy.resize(rows);
  for (int c = 0; c < cols; ++c) out.dx[c] = xs[c + 1] - xs[c];
  for (int r = 0; r < rows; ++r) out.dy[r] = ys[r + 1] - ys[r];

  for (const Rect& r : clipped) {
    const int c0 = static_cast<int>(std::lower_bound(xs.begin(), xs.end(), r.x0) - xs.begin());
    const int c1 = static_cast<int>(std::lower_bound(xs.begin(), xs.end(), r.x1) - xs.begin());
    const int r0 = static_cast<int>(std::lower_bound(ys.begin(), ys.end(), r.y0) - ys.begin());
    const int r1 = static_cast<int>(std::lower_bound(ys.begin(), ys.end(), r.y1) - ys.begin());
    for (int rr = r0; rr < r1; ++rr) {
      for (int cc = c0; cc < c1; ++cc) out.topology.set(rr, cc, 1);
    }
  }
  return out;
}

std::vector<Rect> unsquish(const SquishPattern& pattern) {
  if (!pattern.well_formed()) throw std::invalid_argument("unsquish: malformed pattern");
  const int rows = pattern.topology.rows();
  const int cols = pattern.topology.cols();
  std::vector<Coord> px(cols + 1, 0);
  std::vector<Coord> py(rows + 1, 0);
  for (int c = 0; c < cols; ++c) px[c + 1] = px[c] + pattern.dx[c];
  for (int r = 0; r < rows; ++r) py[r + 1] = py[r] + pattern.dy[r];

  std::vector<Rect> out;
  for (const Rect& cell_rect : geometry::grid_to_cell_rects(pattern.topology.view())) {
    out.push_back(Rect{px[cell_rect.x0], py[cell_rect.y0], px[cell_rect.x1], py[cell_rect.y1]});
  }
  return out;
}

DeltaVec uniform_deltas(int n, Coord total_nm) {
  if (n <= 0) return {};
  DeltaVec d(static_cast<std::size_t>(n));
  const Coord base = std::max<Coord>(1, total_nm / n);
  Coord remaining = total_nm;
  for (int i = 0; i < n; ++i) {
    Coord v = (i + 1 == n) ? remaining : base;
    if (v < 1) v = 1;
    d[static_cast<std::size_t>(i)] = v;
    remaining -= v;
  }
  return d;
}

}  // namespace cp::squish
