#include "squish/reference.h"

#include <algorithm>
#include <stdexcept>

namespace cp::squish {

ByteTopology::ByteTopology(int rows, int cols, std::uint8_t fill)
    : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols, fill ? 1 : 0) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("ByteTopology: negative dimensions");
}

ByteTopology::ByteTopology(const Topology& t) : ByteTopology(t.rows(), t.cols()) {
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) data_[index(r, c)] = t.at(r, c);
  }
}

Topology ByteTopology::packed() const {
  return Topology::from_bytes(rows_, cols_, data_.data(), data_.size());
}

std::size_t ByteTopology::popcount() const {
  std::size_t n = 0;
  for (std::uint8_t v : data_) n += v;
  return n;
}

double ByteTopology::density() const {
  return data_.empty() ? 0.0 : static_cast<double>(popcount()) / static_cast<double>(data_.size());
}

ByteTopology ByteTopology::window(int r0, int c0, int r1, int c1) const {
  if (r0 < 0 || c0 < 0 || r1 > rows_ || c1 > cols_ || r0 > r1 || c0 > c1) {
    throw std::out_of_range("ByteTopology::window: bad bounds");
  }
  ByteTopology out(r1 - r0, c1 - c0);
  for (int r = r0; r < r1; ++r) {
    std::copy(data_.begin() + index(r, c0), data_.begin() + index(r, c1),
              out.data_.begin() + out.index(r - r0, 0));
  }
  return out;
}

void ByteTopology::paste(const ByteTopology& tile, int r0, int c0) {
  const int r_begin = std::max(0, r0);
  const int c_begin = std::max(0, c0);
  const int r_end = std::min(rows_, r0 + tile.rows());
  const int c_end = std::min(cols_, c0 + tile.cols());
  for (int r = r_begin; r < r_end; ++r) {
    for (int c = c_begin; c < c_end; ++c) {
      data_[index(r, c)] = tile.at(r - r0, c - c0);
    }
  }
}

ByteTopology ByteTopology::transposed() const {
  ByteTopology out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.set(c, r, at(r, c));
  }
  return out;
}

ByteTopology ByteTopology::flipped_horizontal() const {
  ByteTopology out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.set(r, cols_ - 1 - c, at(r, c));
  }
  return out;
}

ByteTopology ByteTopology::flipped_vertical() const {
  ByteTopology out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.set(rows_ - 1 - r, c, at(r, c));
  }
  return out;
}

bool ByteTopology::rows_equal(int a, int b) const {
  for (int c = 0; c < cols_; ++c) {
    if (at(a, c) != at(b, c)) return false;
  }
  return true;
}

bool ByteTopology::cols_equal(int a, int b) const {
  for (int r = 0; r < rows_; ++r) {
    if (at(r, a) != at(r, b)) return false;
  }
  return true;
}

ByteTopology ByteTopology::deduplicated() const {
  if (empty()) return ByteTopology();
  std::vector<int> keep_rows{0};
  for (int r = 1; r < rows_; ++r) {
    if (!rows_equal(r, keep_rows.back())) keep_rows.push_back(r);
  }
  std::vector<int> keep_cols{0};
  for (int c = 1; c < cols_; ++c) {
    if (!cols_equal(c, keep_cols.back())) keep_cols.push_back(c);
  }
  ByteTopology out(static_cast<int>(keep_rows.size()), static_cast<int>(keep_cols.size()));
  for (std::size_t r = 0; r < keep_rows.size(); ++r) {
    for (std::size_t c = 0; c < keep_cols.size(); ++c) {
      out.set(static_cast<int>(r), static_cast<int>(c), at(keep_rows[r], keep_cols[c]));
    }
  }
  return out;
}

}  // namespace cp::squish
