#pragma once
// Adaptive squish-pattern normalisation (Yang et al., "Adaptive squish
// patterns", DAC'19): every training topology is brought to a fixed NxN
// square so a single generative model can consume patterns of any scan-line
// complexity.
//
//   - merge step: adjacent identical rows/columns are fused (their deltas
//     summed) — the minimal squish form;
//   - pad step: while the matrix is smaller than NxN, the row/column with the
//     largest delta is split in two (the topology row/column is duplicated,
//     the delta halved). Splitting never changes the physical pattern.
//
// Normalisation fails if the minimal form is already larger than NxN (the
// clip is too complex for the model window); such clips are dropped by the
// dataset builder, mirroring the paper's preprocessing.

#include <optional>

#include "squish/squish.h"

namespace cp::squish {

/// Minimal squish form: deduplicate rows/columns, summing merged deltas.
SquishPattern merge_redundant_lines(const SquishPattern& pattern);

/// Normalise to an n x n matrix (merge, then pad). Returns std::nullopt if
/// the merged pattern exceeds n in either dimension.
std::optional<SquishPattern> normalize_to(const SquishPattern& pattern, int n);

/// Pad a bare topology (no geometry) to n x n by duplicating rows/columns as
/// evenly as possible; used for reference libraries where only the topology
/// statistics matter. Requires pattern dims <= n.
std::optional<Topology> pad_topology_to(const Topology& topology, int n);

}  // namespace cp::squish
