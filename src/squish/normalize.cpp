#include "squish/normalize.h"

#include <algorithm>
#include <stdexcept>

namespace cp::squish {

namespace {

/// Rebuild a pattern keeping `keep` rows (merging the delta mass of dropped
/// duplicates into the kept representative). Duplicate detection is a packed
/// word-vector compare per row pair (Topology::rows_equal).
SquishPattern merge_rows(const SquishPattern& p) {
  const int rows = p.topology.rows();
  std::vector<int> rep;  // representative row per group
  DeltaVec dy;
  for (int r = 0; r < rows; ++r) {
    if (!rep.empty() && p.topology.rows_equal(r, rep.back())) {
      dy.back() += p.dy[static_cast<std::size_t>(r)];
    } else {
      rep.push_back(r);
      dy.push_back(p.dy[static_cast<std::size_t>(r)]);
    }
  }
  SquishPattern out;
  out.topology = Topology(static_cast<int>(rep.size()), p.topology.cols());
  for (std::size_t r = 0; r < rep.size(); ++r) {
    for (int c = 0; c < p.topology.cols(); ++c) {
      out.topology.set(static_cast<int>(r), c, p.topology.at(rep[r], c));
    }
  }
  out.dy = std::move(dy);
  out.dx = p.dx;
  return out;
}

SquishPattern merge_cols(const SquishPattern& p) {
  const int cols = p.topology.cols();
  std::vector<int> rep;
  DeltaVec dx;
  for (int c = 0; c < cols; ++c) {
    if (!rep.empty() && p.topology.cols_equal(c, rep.back())) {
      dx.back() += p.dx[static_cast<std::size_t>(c)];
    } else {
      rep.push_back(c);
      dx.push_back(p.dx[static_cast<std::size_t>(c)]);
    }
  }
  SquishPattern out;
  out.topology = Topology(p.topology.rows(), static_cast<int>(rep.size()));
  for (int r = 0; r < p.topology.rows(); ++r) {
    for (std::size_t c = 0; c < rep.size(); ++c) {
      out.topology.set(r, static_cast<int>(c), p.topology.at(r, rep[c]));
    }
  }
  out.dx = std::move(dx);
  out.dy = p.dy;
  return out;
}

/// Split the row with the largest delta until `target` rows are reached.
void pad_rows(SquishPattern& p, int target) {
  while (p.topology.rows() < target) {
    // Find the largest splittable (delta >= 2) row.
    int best = -1;
    for (int r = 0; r < p.topology.rows(); ++r) {
      if (p.dy[static_cast<std::size_t>(r)] < 2) continue;
      if (best < 0 || p.dy[static_cast<std::size_t>(r)] > p.dy[static_cast<std::size_t>(best)]) {
        best = r;
      }
    }
    if (best < 0) throw std::runtime_error("normalize: cannot pad rows, all deltas are 1 nm");
    const Coord d = p.dy[static_cast<std::size_t>(best)];
    Topology t(p.topology.rows() + 1, p.topology.cols());
    DeltaVec dy;
    dy.reserve(p.dy.size() + 1);
    int out_r = 0;
    for (int r = 0; r < p.topology.rows(); ++r) {
      for (int c = 0; c < p.topology.cols(); ++c) t.set(out_r, c, p.topology.at(r, c));
      if (r == best) {
        dy.push_back(d / 2);
        ++out_r;
        for (int c = 0; c < p.topology.cols(); ++c) t.set(out_r, c, p.topology.at(r, c));
        dy.push_back(d - d / 2);
      } else {
        dy.push_back(p.dy[static_cast<std::size_t>(r)]);
      }
      ++out_r;
    }
    p.topology = std::move(t);
    p.dy = std::move(dy);
  }
}

void pad_cols(SquishPattern& p, int target) {
  // Transpose-free mirror of pad_rows.
  while (p.topology.cols() < target) {
    int best = -1;
    for (int c = 0; c < p.topology.cols(); ++c) {
      if (p.dx[static_cast<std::size_t>(c)] < 2) continue;
      if (best < 0 || p.dx[static_cast<std::size_t>(c)] > p.dx[static_cast<std::size_t>(best)]) {
        best = c;
      }
    }
    if (best < 0) throw std::runtime_error("normalize: cannot pad cols, all deltas are 1 nm");
    const Coord d = p.dx[static_cast<std::size_t>(best)];
    Topology t(p.topology.rows(), p.topology.cols() + 1);
    DeltaVec dx;
    dx.reserve(p.dx.size() + 1);
    for (int r = 0; r < p.topology.rows(); ++r) {
      int out_c = 0;
      for (int c = 0; c < p.topology.cols(); ++c) {
        t.set(r, out_c, p.topology.at(r, c));
        if (c == best) {
          ++out_c;
          t.set(r, out_c, p.topology.at(r, c));
        }
        ++out_c;
      }
    }
    for (int c = 0; c < p.topology.cols(); ++c) {
      if (c == best) {
        dx.push_back(d / 2);
        dx.push_back(d - d / 2);
      } else {
        dx.push_back(p.dx[static_cast<std::size_t>(c)]);
      }
    }
    p.topology = std::move(t);
    p.dx = std::move(dx);
  }
}

}  // namespace

SquishPattern merge_redundant_lines(const SquishPattern& pattern) {
  return merge_cols(merge_rows(pattern));
}

std::optional<SquishPattern> normalize_to(const SquishPattern& pattern, int n) {
  SquishPattern merged = merge_redundant_lines(pattern);
  if (merged.topology.rows() > n || merged.topology.cols() > n) return std::nullopt;
  pad_rows(merged, n);
  pad_cols(merged, n);
  return merged;
}

std::optional<Topology> pad_topology_to(const Topology& topology, int n) {
  if (topology.rows() > n || topology.cols() > n) return std::nullopt;
  SquishPattern p;
  p.topology = topology;
  // Give every line generous synthetic mass so padding can always split.
  p.dx = DeltaVec(static_cast<std::size_t>(topology.cols()), 1 << 20);
  p.dy = DeltaVec(static_cast<std::size_t>(topology.rows()), 1 << 20);
  pad_rows(p, n);
  pad_cols(p, n);
  return p.topology;
}

}  // namespace cp::squish
