#pragma once
// The binary topology matrix T of the squish pattern representation
// (Gennari & Lai, "Topology design using squish patterns").
//
// A Topology is a dense row-major {0,1} matrix. Row index grows downward
// (y direction), column index rightward (x direction). All generative-model
// state in this library is a Topology; geometry only re-enters through the
// delta vectors of SquishPattern.

#include <cstdint>
#include <string>
#include <vector>

namespace cp::squish {

class Topology {
 public:
  Topology() = default;
  Topology(int rows, int cols, std::uint8_t fill = 0);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  std::uint8_t at(int r, int c) const { return data_[index(r, c)]; }
  void set(int r, int c, std::uint8_t v) { data_[index(r, c)] = v ? 1 : 0; }

  const std::uint8_t* data() const { return data_.data(); }
  std::uint8_t* data() { return data_.data(); }

  /// Number of filled cells.
  std::size_t popcount() const;

  /// Fraction of filled cells in [0,1].
  double density() const;

  /// Extract the half-open cell window [r0,r1) x [c0,c1) as a new Topology.
  Topology window(int r0, int c0, int r1, int c1) const;

  /// Paste `tile` with its top-left cell at (r0, c0); clips at the border.
  void paste(const Topology& tile, int r0, int c0);

  /// Transforms used by the rule-based augmentation baseline.
  Topology transposed() const;
  Topology flipped_horizontal() const;
  Topology flipped_vertical() const;

  /// Remove adjacent duplicate rows and columns — the inverse of the
  /// pad-normalisation. The result is the minimal "squished" matrix whose
  /// scan-line structure matches this topology.
  Topology deduplicated() const;

  /// Complexity (c_x, c_y): the number of scan lines minus one along each
  /// axis of the deduplicated matrix (Definition 2 in the paper), i.e. the
  /// deduplicated column/row counts.
  std::pair<int, int> complexity() const;

  /// Multi-line '.'/'#' art (for figures and debugging).
  std::string to_ascii() const;

  /// PBM (P1) image text, viewable by common tools.
  std::string to_pbm() const;

  bool operator==(const Topology&) const = default;

  friend Topology downsample_majority(const Topology& t, int factor);
  friend Topology upsample_nearest(const Topology& t, int factor);

 private:
  std::size_t index(int r, int c) const { return static_cast<std::size_t>(r) * cols_ + c; }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<std::uint8_t> data_;
};

/// Majority pooling: each factor x factor block becomes one cell (1 iff at
/// least half the block is filled). Dimensions must divide evenly.
Topology downsample_majority(const Topology& t, int factor);

/// Nearest-neighbour upsampling: each cell expands to a factor x factor
/// block. Exact inverse of downsample for block-constant topologies.
Topology upsample_nearest(const Topology& t, int factor);

}  // namespace cp::squish
