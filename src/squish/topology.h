#pragma once
// The binary topology matrix T of the squish pattern representation
// (Gennari & Lai, "Topology design using squish patterns").
//
// A Topology is a {0,1} matrix. Row index grows downward (y direction),
// column index rightward (x direction). All generative-model state in this
// library is a Topology; geometry only re-enters through the delta vectors of
// SquishPattern.
//
// Storage is bit-packed: 64 cells per std::uint64_t word, row-major with a
// word-aligned row pitch of `words_per_row() = ceil(cols / 64)` words, least
// significant bit first within a word (cell (r, c) is bit c % 64 of word
// r * words_per_row() + c / 64). Bits at positions >= cols in the last word
// of each row are always zero — the tail-mask invariant — which makes
// equality a plain member compare and row comparison a word-vector compare.
// docs/GRID.md is the authoritative description of the layout and of how to
// write new packed kernels; src/squish/reference.h retains the byte-backed
// implementation as the executable specification.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "geometry/bitgrid.h"

namespace cp::squish {

class Topology {
 public:
  Topology() = default;
  Topology(int rows, int cols, std::uint8_t fill = 0);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  /// Number of cells (rows * cols), NOT the storage footprint.
  std::size_t size() const { return static_cast<std::size_t>(rows_) * cols_; }
  bool empty() const { return size() == 0; }

  std::uint8_t at(int r, int c) const {
    return static_cast<std::uint8_t>((words_[word_index(r, c >> 6)] >> (c & 63)) & 1u);
  }
  void set(int r, int c, std::uint8_t v) {
    std::uint64_t& w = words_[word_index(r, c >> 6)];
    const std::uint64_t bit = std::uint64_t{1} << (c & 63);
    w = v ? (w | bit) : (w & ~bit);
  }

  /// --- packed-storage access (see docs/GRID.md) ---

  /// Words per row (the row pitch): ceil(cols / 64).
  int words_per_row() const { return words_per_row_; }
  /// Word `w` of row `r`: cells [w*64, min((w+1)*64, cols)) of that row.
  std::uint64_t word(int r, int w) const { return words_[word_index(r, w)]; }
  /// Pointer to the first word of row `r` (words_per_row() words long).
  const std::uint64_t* row_words(int r) const {
    return words_.data() + static_cast<std::size_t>(r) * words_per_row_;
  }
  /// Flip the cells selected by `mask` in word `w` of row `r` — the word-
  /// parallel mutation primitive of the noising kernels. Tail bits of the
  /// mask are discarded so the zero-tail invariant cannot be violated.
  void xor_word(int r, int w, std::uint64_t mask) {
    if (w == words_per_row_ - 1) mask &= tail_mask();
    words_[word_index(r, w)] ^= mask;
  }
  /// Mask of valid bits in the last word of each row (all ones if cols % 64
  /// == 0). Tail bits above it are zero by invariant.
  std::uint64_t tail_mask() const { return geometry::bitgrid_tail_mask(cols_); }
  /// Read-only bit-grid view for the geometry module.
  geometry::BitGridView view() const {
    return geometry::BitGridView{words_.data(), rows_, cols_, words_per_row_};
  }

  /// Unpack to one byte per cell (row-major, values in {0,1}) — the external
  /// serialization format of the populate journal and friends.
  std::vector<std::uint8_t> to_bytes() const;
  /// Pack from one byte per cell. This is the validating boundary between
  /// byte-oriented inputs and the packed substrate: any byte outside {0,1}
  /// throws std::invalid_argument, so non-binary state is impossible to
  /// construct.
  static Topology from_bytes(int rows, int cols, const std::uint8_t* bytes, std::size_t count);

  /// Number of filled cells.
  std::size_t popcount() const;

  /// Fraction of filled cells in [0,1].
  double density() const;

  /// Extract the half-open cell window [r0,r1) x [c0,c1) as a new Topology.
  Topology window(int r0, int c0, int r1, int c1) const;

  /// Paste `tile` with its top-left cell at (r0, c0); clips at the border.
  void paste(const Topology& tile, int r0, int c0);

  /// Transforms used by the rule-based augmentation baseline.
  Topology transposed() const;
  Topology flipped_horizontal() const;
  Topology flipped_vertical() const;

  /// Whole-row / whole-column equality (word-vector compares).
  bool rows_equal(int a, int b) const;
  bool cols_equal(int a, int b) const;

  /// Remove adjacent duplicate rows and columns — the inverse of the
  /// pad-normalisation. The result is the minimal "squished" matrix whose
  /// scan-line structure matches this topology.
  Topology deduplicated() const;

  /// Complexity (c_x, c_y): the number of scan lines minus one along each
  /// axis of the deduplicated matrix (Definition 2 in the paper), i.e. the
  /// deduplicated column/row counts.
  std::pair<int, int> complexity() const;

  /// Multi-line '.'/'#' art (for figures and debugging).
  std::string to_ascii() const;

  /// PBM (P1) image text, viewable by common tools.
  std::string to_pbm() const;

  /// Sound because of the tail-mask invariant: padding bits are always zero,
  /// so equal logical grids have equal word vectors.
  bool operator==(const Topology&) const = default;

 private:
  std::size_t word_index(int r, int w) const {
    return static_cast<std::size_t>(r) * words_per_row_ + w;
  }

  int rows_ = 0;
  int cols_ = 0;
  int words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Majority pooling: each factor x factor block becomes one cell (1 iff at
/// least half the block is filled). Dimensions must divide evenly.
Topology downsample_majority(const Topology& t, int factor);

/// Nearest-neighbour upsampling: each cell expands to a factor x factor
/// block. Exact inverse of downsample for block-constant topologies.
Topology upsample_nearest(const Topology& t, int factor);

}  // namespace cp::squish
