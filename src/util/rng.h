#pragma once
// Deterministic, seedable random number generation.
//
// All randomness in the library flows through util::Rng so that every
// experiment is reproducible from a single --seed flag. The engine is
// xoshiro256** (public-domain algorithm by Blackman & Vigna), seeded via
// SplitMix64 so that nearby seeds yield decorrelated streams.

#include <cstdint>
#include <vector>

namespace cp::util {

/// SplitMix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo-random generator with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Sample an index from a (not necessarily normalised) weight vector.
  /// Returns weights.size()-1 if the weights sum to zero.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fork an independent generator (stream-split) from this one.
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace cp::util
