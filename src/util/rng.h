#pragma once
// Deterministic, seedable random number generation.
//
// All randomness in the library flows through util::Rng so that every
// experiment is reproducible from a single --seed flag. The engine is
// xoshiro256** (public-domain algorithm by Blackman & Vigna), seeded via
// SplitMix64 so that nearby seeds yield decorrelated streams.
//
// Thread-safety: an Rng instance is NOT thread-safe and is never shared
// across threads. Parallel code derives one independent stream per work
// item with fork(i) — a stateless SplitMix-style split from the root seed —
// so batch output is bit-identical regardless of thread count or the order
// in which streams are consumed (see DESIGN.md "Threading model").

#include <cstdint>
#include <vector>

namespace cp::util {

/// SplitMix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo-random generator with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Sample an index from a (not necessarily normalised) weight vector.
  /// Returns weights.size()-1 if the weights sum to zero.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fork an independent generator (stream-split) from this one. Stateful:
  /// advances this generator, so successive calls yield distinct children.
  Rng fork();

  /// Stateless stream split: the child generator for stream index `stream`,
  /// derived from this generator's *root seed* only. fork(i) returns the
  /// same child no matter how much this generator has been used, which is
  /// what makes N-thread batch runs bit-identical to 1-thread runs: work
  /// item i always consumes stream i. Children of distinct indices are
  /// pairwise decorrelated (SplitMix64 avalanche on seed and index).
  Rng fork(std::uint64_t stream) const;

  /// The seed this generator was constructed from (root of fork(i) streams).
  std::uint64_t seed() const { return seed_; }

  /// Complete generator state, for checkpoint/resume: a generator restored
  /// from a snapshot produces the exact draw sequence the snapshotted one
  /// would have (including a buffered Box-Muller spare normal).
  struct State {
    std::uint64_t seed = 0;
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool has_spare_normal = false;
    double spare_normal = 0.0;
  };
  State state() const;
  void restore(const State& state);

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace cp::util
