#include "util/thread_pool.h"

#include <algorithm>

namespace cp::util {

ThreadPool::ThreadPool(int threads) {
  const int n = threads > 0 ? threads : hardware_threads();
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain-on-destruction: keep executing queued work after stop_ so
      // futures from submit() always complete.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace cp::util
