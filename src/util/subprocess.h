#pragma once
// Child-process control for the serving supervisor (docs/SERVING.md).
//
// Thin, explicit wrappers over fork/exec/waitpid/kill. The supervisor is
// deliberately single-threaded, so plain fork() is safe here; the child
// execs immediately (no allocation between fork and exec beyond the argv
// that was prepared before forking). A failed exec exits with code 127,
// the shell convention, which the supervisor reports as a spawn failure.

#include <sys/types.h>

#include <string>
#include <vector>

namespace cp::util {

/// Exit information of a reaped child.
struct ExitStatus {
  bool exited = false;    // normal _exit / return from main
  int code = 0;           // exit code when `exited`
  bool signaled = false;  // killed by a signal
  int signal = 0;         // the signal when `signaled`

  /// Human-readable "exit 0" / "signal 9 (SIGKILL)".
  std::string describe() const;
};

/// Absolute path of the running executable (/proc/self/exe). Falls back to
/// `fallback` (typically argv[0]) when the proc link is unreadable.
std::string self_exe_path(const std::string& fallback = "");

/// fork + execv. `argv[0]` is the binary path. File descriptors are
/// inherited by number (callers mark supervisor-private fds CLOEXEC).
/// Returns the child pid, or -1 with *error filled. The child _exit(127)s
/// when exec fails.
pid_t spawn_process(const std::vector<std::string>& argv, std::string* error);

/// Non-blocking reap of a specific child. True when the child was reaped
/// (status filled); false while it is still running. A vanished/foreign
/// pid reaps as {exited, code 127}.
bool try_wait(pid_t pid, ExitStatus* status);

/// Blocking reap of a specific child.
ExitStatus wait_process(pid_t pid);

/// Reap any exited child without blocking. Returns the pid (status filled)
/// or -1 when none are reapable.
pid_t reap_any(ExitStatus* status);

/// Send `sig` to `pid`. False when the signal cannot be delivered (ESRCH —
/// already gone — included).
bool kill_process(pid_t pid, int sig);

/// True while `pid` exists (kill(pid, 0) semantics).
bool process_alive(pid_t pid);

}  // namespace cp::util
