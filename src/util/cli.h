#pragma once
// Tiny command-line flag parser for the bench harnesses and examples.
// Supports --name value and --name=value forms plus boolean switches.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cp::util {

class CliFlags {
 public:
  /// Parse argv. Unknown positional arguments are collected separately.
  CliFlags(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace cp::util
