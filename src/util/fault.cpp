#include "util/fault.h"

#ifndef CP_FAULT_DISABLED

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "obs/registry.h"
#include "util/rng.h"
#include "util/strings.h"

namespace cp::util::fault {

namespace {

enum class Mode { kEvery, kOnce, kProb };

struct PointState {
  Mode mode = Mode::kEvery;
  long long n = 1;          // every/once period or target call
  double p = 0.0;           // prob threshold
  std::uint64_t seed = 0;   // prob seed
  long long calls = 0;
  long long fired = 0;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, PointState, std::less<>> points;
  bool env_checked = false;
};

// Leaked (like obs::Registry) so points may be evaluated during static
// destruction without ordering hazards.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

std::atomic<bool> g_armed{false};
// Cleared once the env has been consulted (or configure() preempted it);
// keeps the disarmed fast path at one relaxed load after the first call.
std::atomic<bool> g_env_pending{true};

PointState parse_mode(const std::string& name, const std::string& mode) {
  const std::vector<std::string> parts = util::split(mode, ':');
  auto fail = [&](const char* why) {
    throw std::invalid_argument("fault::configure: bad schedule '" + mode + "' for '" + name +
                                "': " + why);
  };
  PointState s;
  if (parts.empty()) fail("empty mode");
  try {
    if (parts[0] == "every" || parts[0] == "once") {
      if (parts.size() != 2) fail("expected every:N / once:N");
      s.mode = parts[0] == "every" ? Mode::kEvery : Mode::kOnce;
      s.n = std::stoll(parts[1]);
      if (s.n < 1) fail("N must be >= 1");
    } else if (parts[0] == "prob") {
      if (parts.size() != 3) fail("expected prob:P:SEED");
      s.mode = Mode::kProb;
      s.p = std::stod(parts[1]);
      if (s.p < 0.0 || s.p > 1.0) fail("P must be in [0,1]");
      s.seed = static_cast<std::uint64_t>(std::stoull(parts[2]));
    } else {
      fail("unknown mode (every/once/prob)");
    }
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception&) {
    fail("unparsable number");
  }
  return s;
}

std::map<std::string, PointState, std::less<>> parse_spec(const std::string& spec) {
  std::map<std::string, PointState, std::less<>> points;
  std::string normalized = spec;
  for (char& c : normalized) {
    if (c == ',') c = ';';
  }
  for (const std::string& raw : util::split(normalized, ';')) {
    const std::string entry = util::trim(raw);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("fault::configure: expected name=mode, got '" + entry + "'");
    }
    const std::string name = util::trim(entry.substr(0, eq));
    points[name] = parse_mode(name, util::trim(entry.substr(eq + 1)));
  }
  return points;
}

void install(std::map<std::string, PointState, std::less<>> points) {
  Registry& r = registry();
  r.points = std::move(points);
  r.env_checked = true;
  g_env_pending.store(false, std::memory_order_relaxed);
  g_armed.store(!r.points.empty(), std::memory_order_relaxed);
}

/// Lazy CHATPATTERN_FAULTS pickup: runs at most once, on the first point
/// evaluation that happens before any programmatic configure().
void check_env_locked(Registry& r) {
  if (r.env_checked) return;
  r.env_checked = true;
  g_env_pending.store(false, std::memory_order_relaxed);
  const char* env = std::getenv("CHATPATTERN_FAULTS");
  if (env == nullptr || *env == '\0') return;
  r.points = parse_spec(env);  // a malformed env spec throws: fail loudly
  g_armed.store(!r.points.empty(), std::memory_order_relaxed);
}

}  // namespace

bool armed() { return g_armed.load(std::memory_order_relaxed); }

void configure(const std::string& spec) { install(parse_spec(spec)); }

void clear() { install({}); }

bool should_fire(std::string_view name) {
  if (!g_armed.load(std::memory_order_relaxed) &&
      !g_env_pending.load(std::memory_order_relaxed)) {
    return false;
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  check_env_locked(r);
  const auto it = r.points.find(name);
  if (it == r.points.end()) return false;
  PointState& s = it->second;
  const long long call = ++s.calls;  // 1-based
  bool fire = false;
  switch (s.mode) {
    case Mode::kEvery:
      fire = call % s.n == 0;
      break;
    case Mode::kOnce:
      fire = call == s.n;
      break;
    case Mode::kProb: {
      std::uint64_t sm = s.seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(call));
      const std::uint64_t u = splitmix64(sm);
      fire = static_cast<double>(u >> 11) * 0x1.0p-53 < s.p;
      break;
    }
  }
  if (fire) {
    ++s.fired;
    obs::count("fault/" + std::string(name));
  }
  return fire;
}

long long fired_count(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.fired;
}

long long call_count(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.calls;
}

}  // namespace cp::util::fault

#endif  // CP_FAULT_DISABLED
