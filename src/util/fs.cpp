#include "util/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/fault.h"
#include "util/strings.h"

namespace cp::util {

namespace {

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t crc) {
  const auto& table = crc_table();
  crc = ~crc;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

std::string read_file(const std::string& path, std::uint64_t max_bytes) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw std::runtime_error("read_file: cannot open '" + path + "'");
  const std::streamoff size = is.tellg();
  if (size < 0) throw std::runtime_error("read_file: cannot stat '" + path + "'");
  if (max_bytes != 0 && static_cast<std::uint64_t>(size) > max_bytes) {
    throw std::runtime_error(util::format("read_file: '%s' is %lld bytes, over the %llu-byte cap",
                                          path.c_str(), static_cast<long long>(size),
                                          static_cast<unsigned long long>(max_bytes)));
  }
  is.seekg(0);
  std::string data(static_cast<std::size_t>(size), '\0');
  is.read(data.data(), size);
  if (!is) throw std::runtime_error("read_file: short read from '" + path + "'");
  return data;
}

void atomic_write_file(const std::string& path, std::string_view data) {
  fault::point("io/atomic_write");
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec) {
      throw std::runtime_error("atomic_write_file: cannot create directory '" +
                               target.parent_path().string() + "': " + ec.message());
    }
  }
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("atomic_write_file: cannot create", tmp);
  auto fail = [&](const char* what) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = saved;
    throw_errno(what, tmp);
  };
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("atomic_write_file: write failed for");
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) fail("atomic_write_file: fsync failed for");
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("atomic_write_file: close failed for", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    throw_errno("atomic_write_file: rename failed onto", path);
  }
  // Durability of the rename itself: fsync the directory, best-effort (the
  // data is already safe; a lost rename just resurfaces the old file).
  const std::string dir = target.has_parent_path() ? target.parent_path().string() : ".";
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

void atomic_write_file_checksummed(const std::string& path, std::string_view data) {
  std::string out;
  out.reserve(data.size() + kCrcTrailerBytes);
  out.assign(data);
  out += kCrcTrailerMagic;
  const std::uint32_t crc = crc32(data);
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((crc >> (8 * i)) & 0xffu));
  atomic_write_file(path, out);
}

bool has_crc_trailer(std::string_view data) {
  return data.size() >= kCrcTrailerBytes &&
         data.substr(data.size() - kCrcTrailerBytes, kCrcTrailerMagic.size()) ==
             kCrcTrailerMagic;
}

bool strip_crc_trailer(std::string& data, const std::string& context) {
  if (!has_crc_trailer(data)) return false;
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(
                  static_cast<unsigned char>(data[data.size() - 4 + static_cast<std::size_t>(i)]))
              << (8 * i);
  }
  const std::string_view payload(data.data(), data.size() - kCrcTrailerBytes);
  const std::uint32_t actual = crc32(payload);
  if (actual != stored) {
    throw std::runtime_error(util::format("%s: checksum mismatch (stored %08x, computed %08x)",
                                          context.c_str(), stored, actual));
  }
  data.resize(data.size() - kCrcTrailerBytes);
  return true;
}

std::string read_file_checksummed(const std::string& path, const std::string& context,
                                  bool require_trailer, std::uint64_t max_bytes) {
  std::string data = read_file(path, max_bytes);
  if (!strip_crc_trailer(data, context) && require_trailer) {
    throw std::runtime_error(context + ": missing integrity trailer in '" + path + "'");
  }
  return data;
}

}  // namespace cp::util
