#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cmath>

namespace cp::util {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string replace_all(std::string_view s, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out += s.substr(pos);
      return out;
    }
    out += s.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
}

std::optional<long long> parse_quantity(std::string_view token) {
  std::string cleaned;
  cleaned.reserve(token.size());
  double multiplier = 1.0;
  for (std::size_t i = 0; i < token.size(); ++i) {
    const char c = token[i];
    if (c == ',' || c == '_') continue;
    if (i + 1 == token.size() && (c == 'k' || c == 'K')) {
      multiplier = 1e3;
      continue;
    }
    if (i + 1 == token.size() && (c == 'm' || c == 'M')) {
      multiplier = 1e6;
      continue;
    }
    cleaned += c;
  }
  if (cleaned.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(cleaned.c_str(), &end);
  if (end == nullptr || *end != '\0') return std::nullopt;
  const double scaled = value * multiplier;
  if (std::abs(scaled - std::llround(scaled)) > 1e-6) return std::nullopt;
  return std::llround(scaled);
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args2);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args2);
  return out;
}

}  // namespace cp::util
