#include "util/net.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <chrono>
#include <mutex>
#include <stdexcept>

namespace cp::util::net {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::string(strerror(errno)));
}

/// Remaining budget of a deadline started `timeout_ms` ago; -1 passes
/// through (wait forever), and an elapsed budget clamps to 0 so poll()
/// still makes one nonblocking check.
int remaining_ms(Clock::time_point start, int timeout_ms) {
  if (timeout_ms < 0) return -1;
  const auto spent =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start).count();
  const long long left = static_cast<long long>(timeout_ms) - spent;
  return left > 0 ? static_cast<int>(left) : 0;
}

IoStatus poll_one(int fd, short events, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) {
      // POLLERR/POLLHUP surface through the subsequent read/write, which
      // reports the precise condition (EOF vs errno).
      return IoStatus::kOk;
    }
    if (rc == 0) return IoStatus::kTimeout;
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
}

}  // namespace

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

void Socket::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

const char* to_string(IoStatus s) {
  switch (s) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kAgain: return "again";
    case IoStatus::kTimeout: return "timeout";
    case IoStatus::kClosed: return "closed";
    case IoStatus::kError: return "error";
  }
  return "unknown";
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

bool set_cloexec(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags < 0) return false;
  const int next = on ? (flags | FD_CLOEXEC) : (flags & ~FD_CLOEXEC);
  return ::fcntl(fd, F_SETFD, next) == 0;
}

Socket listen_tcp(const std::string& host, int port, int backlog, int* bound_port) {
  ignore_sigpipe();
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("net: socket");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("net: bad listen host '" + host + "' (want IPv4 dotted quad)");
  }
  if (::bind(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("net: bind " + host + ":" + std::to_string(port));
  }
  if (::listen(sock.fd(), backlog) != 0) throw_errno("net: listen");
  if (bound_port != nullptr) {
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<struct sockaddr*>(&bound), &len) != 0) {
      throw_errno("net: getsockname");
    }
    *bound_port = static_cast<int>(ntohs(bound.sin_port));
  }
  if (!set_nonblocking(sock.fd(), true)) throw_errno("net: nonblocking listener");
  return sock;
}

IoStatus accept_conn(int listen_fd, Socket* out) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      if (!set_nonblocking(fd, true)) return IoStatus::kError;
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      *out = std::move(sock);
      return IoStatus::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kAgain;
    // Transient per-connection accept failures (ECONNABORTED, EMFILE...)
    // are the caller's retry decision, not a listener death.
    return IoStatus::kError;
  }
}

Socket connect_tcp(const std::string& host, int port, int timeout_ms) {
  ignore_sigpipe();
  const auto start = Clock::now();
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("net: socket");

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("net: bad host '" + host + "' (want IPv4 dotted quad)");
  }
  if (!set_nonblocking(sock.fd(), true)) throw_errno("net: nonblocking connect");
  for (;;) {
    if (::connect(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) == 0) break;
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS || errno == EALREADY) {
      const IoStatus st = poll_writable(sock.fd(), remaining_ms(start, timeout_ms));
      if (st == IoStatus::kTimeout) {
        throw std::runtime_error("net: connect " + host + ":" + std::to_string(port) +
                                 ": timed out");
      }
      if (st != IoStatus::kOk) throw_errno("net: connect poll");
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        throw_errno("net: connect getsockopt");
      }
      if (err != 0) {
        errno = err;
        throw_errno("net: connect " + host + ":" + std::to_string(port));
      }
      break;
    }
    if (errno == EISCONN) break;
    throw_errno("net: connect " + host + ":" + std::to_string(port));
  }
  if (!set_nonblocking(sock.fd(), false)) throw_errno("net: blocking connect socket");
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

std::pair<Socket, Socket> socketpair_stream() {
  ignore_sigpipe();
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) throw_errno("net: socketpair");
  return {Socket(fds[0]), Socket(fds[1])};
}

IoStatus poll_readable(int fd, int timeout_ms) { return poll_one(fd, POLLIN, timeout_ms); }
IoStatus poll_writable(int fd, int timeout_ms) { return poll_one(fd, POLLOUT, timeout_ms); }

IoStatus read_some(int fd, char* buf, std::size_t cap, std::size_t* n_read) {
  *n_read = 0;
  for (;;) {
    const ssize_t n = ::read(fd, buf, cap);
    if (n > 0) {
      *n_read = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kAgain;
    return IoStatus::kError;
  }
}

IoStatus write_some(int fd, std::string_view data, std::size_t* n_written) {
  *n_written = 0;
  if (data.empty()) return IoStatus::kOk;
  for (;;) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n >= 0) {
      *n_written = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kAgain;
    return IoStatus::kError;  // EPIPE included — SIGPIPE is ignored
  }
}

IoStatus send_all(int fd, std::string_view data, int timeout_ms) {
  ignore_sigpipe();
  const auto start = Clock::now();
  while (!data.empty()) {
    std::size_t n = 0;
    const IoStatus st = write_some(fd, data, &n);
    if (st == IoStatus::kOk) {
      data.remove_prefix(n);
      continue;
    }
    if (st == IoStatus::kAgain) {
      const IoStatus wait = poll_writable(fd, remaining_ms(start, timeout_ms));
      if (wait == IoStatus::kTimeout) return IoStatus::kTimeout;
      if (wait != IoStatus::kOk) return wait;
      continue;
    }
    return st;
  }
  return IoStatus::kOk;
}

bool LineBuffer::next_line(std::string* line) {
  const std::size_t pos = buf_.find('\n');
  if (pos == std::string::npos) return false;
  line->assign(buf_, 0, pos);
  if (!line->empty() && line->back() == '\r') line->pop_back();
  buf_.erase(0, pos + 1);
  return true;
}

IoStatus LineReader::read_line(std::string* line, int timeout_ms) {
  const auto start = Clock::now();
  char chunk[4096];
  for (;;) {
    if (buffer_.next_line(line)) return IoStatus::kOk;
    if (buffer_.pending() > max_line_) return IoStatus::kError;  // unframed stream
    // Poll before reading: the fd may be blocking (worker channels are), and
    // a bare read() would ignore the deadline entirely.
    const IoStatus wait = poll_readable(fd_, remaining_ms(start, timeout_ms));
    if (wait == IoStatus::kTimeout) return IoStatus::kTimeout;
    if (wait != IoStatus::kOk) return wait;
    std::size_t n = 0;
    const IoStatus st = read_some(fd_, chunk, sizeof(chunk), &n);
    if (st == IoStatus::kOk) {
      buffer_.append(chunk, n);
      continue;
    }
    if (st == IoStatus::kAgain) continue;  // spurious wakeup
    return st;  // kClosed / kError
  }
}

}  // namespace cp::util::net
