#pragma once
// POSIX socket primitives for the multi-process serving tier
// (docs/SERVING.md "Process architecture").
//
// Everything here is deliberately low-level and allocation-light: RAII fd
// ownership, EINTR/EAGAIN-correct read/write loops, poll-based timeouts,
// and newline-delimited framing for the NDJSON wire format. SIGPIPE is a
// process-wide hazard of socket servers — a peer that disappears between
// poll() and write() turns the write into a fatal signal — so every entry
// point that can write calls ignore_sigpipe() (idempotent, thread-safe)
// and failures surface as ordinary IoStatus::kError returns instead.
//
// Two I/O styles, matching the two process roles:
//   * the front-end event loop runs every fd nonblocking and multiplexes
//     with poll() (read_some / write_some / LineBuffer);
//   * workers and replay clients own one stream each and use the blocking
//     helpers (send_all / LineReader::read_line) whose waits are poll-based
//     so a per-call timeout is always honoured.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace cp::util::net {

/// Ignore SIGPIPE process-wide (idempotent; safe from any thread). Called
/// by every helper that may write to a socket, so binaries need no wiring.
void ignore_sigpipe();

/// Move-only RAII wrapper of a file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { reset(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Close now (idempotent). EINTR on close is not retried (POSIX leaves
  /// the fd state unspecified; retrying risks closing a reused fd).
  void reset();
  /// Give up ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Outcome of one I/O step.
enum class IoStatus {
  kOk,       // made progress
  kAgain,    // nonblocking fd has nothing right now
  kTimeout,  // poll deadline elapsed
  kClosed,   // orderly EOF / peer closed
  kError,    // errno-level failure (connection reset, bad fd, ...)
};

const char* to_string(IoStatus s);

/// O_NONBLOCK on/off. Returns false on fcntl failure.
bool set_nonblocking(int fd, bool on);
/// FD_CLOEXEC on/off. Returns false on fcntl failure.
bool set_cloexec(int fd, bool on);

/// Bind + listen on host:port (IPv4 dotted or "0.0.0.0"). `port` 0 picks an
/// ephemeral port; *bound_port receives the actual one. SO_REUSEADDR is set.
/// Throws std::runtime_error with errno context on failure.
Socket listen_tcp(const std::string& host, int port, int backlog, int* bound_port);

/// Accept one connection from a (nonblocking) listener. kAgain when none
/// pending. The accepted socket is returned nonblocking.
IoStatus accept_conn(int listen_fd, Socket* out);

/// Connect to host:port, waiting up to timeout_ms for the handshake.
/// Throws std::runtime_error on failure/timeout. The socket is blocking.
Socket connect_tcp(const std::string& host, int port, int timeout_ms);

/// A connected AF_UNIX stream pair (supervisor <-> worker channel). Both
/// ends are blocking, CLOEXEC off — callers set per-end flags themselves.
/// Throws std::runtime_error on failure.
std::pair<Socket, Socket> socketpair_stream();

/// Wait until `fd` is readable. -1 = wait forever.
IoStatus poll_readable(int fd, int timeout_ms);
/// Wait until `fd` is writable. -1 = wait forever.
IoStatus poll_writable(int fd, int timeout_ms);

/// One nonblocking-friendly read. Returns kOk and sets *n_read (> 0),
/// kAgain (nonblocking fd drained), kClosed (EOF) or kError. EINTR retried.
IoStatus read_some(int fd, char* buf, std::size_t cap, std::size_t* n_read);

/// One nonblocking-friendly write of as much as the kernel takes. Returns
/// kOk and sets *n_written (>= 0; 0 only when data is empty), kAgain, or
/// kError (EPIPE lands here thanks to ignore_sigpipe). EINTR retried.
IoStatus write_some(int fd, std::string_view data, std::size_t* n_written);

/// Blocking write of the whole buffer with poll-based waits; EINTR/EAGAIN
/// are absorbed. -1 = no timeout. kTimeout means a *partial* write may have
/// happened — callers treat the stream as poisoned and close it.
IoStatus send_all(int fd, std::string_view data, int timeout_ms);

/// Newline framing over an append buffer. Lines are '\n'-separated;
/// trailing '\r' is stripped (telnet-friendly). No length limit of its own —
/// callers enforce one via pending().
class LineBuffer {
 public:
  void append(const char* data, std::size_t n) { buf_.append(data, n); }
  /// Extract the next complete line into *line (without the newline).
  bool next_line(std::string* line);
  /// Bytes buffered without a completing newline yet.
  std::size_t pending() const { return buf_.size(); }
  void clear() { buf_.clear(); }

 private:
  std::string buf_;
};

/// Blocking line reader over one fd (worker / replay-client side).
class LineReader {
 public:
  explicit LineReader(int fd, std::size_t max_line_bytes = 1 << 20)
      : fd_(fd), max_line_(max_line_bytes) {}

  /// Next line, waiting up to timeout_ms (-1 = forever). kOk fills *line;
  /// kClosed = EOF with no buffered line left; a line exceeding the cap is
  /// kError (protocol violation, the stream is unframed from here on).
  IoStatus read_line(std::string* line, int timeout_ms);

 private:
  int fd_;
  std::size_t max_line_;
  LineBuffer buffer_;
};

}  // namespace cp::util::net
