#pragma once
// Crash-safe file persistence (docs/ROBUSTNESS.md).
//
// atomic_write_file implements the classic tmp + fsync + rename protocol:
// readers observe either the complete old contents or the complete new
// contents, never a torn write — a crash (or an injected `io/atomic_write`
// fault) mid-write leaves the destination untouched. The checksummed
// variants append an 8-byte trailer ("CPCK" magic + little-endian CRC32 of
// the payload) so readers also detect bit rot and truncation that rename
// atomicity cannot: read_file_checksummed verifies and strips the trailer,
// throwing a structured std::runtime_error on mismatch, and tolerates
// trailer-less files for backward compatibility with pre-trailer writers
// (a valid payload cannot end in the magic by construction of our formats).

#include <cstdint>
#include <string>
#include <string_view>

namespace cp::util {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`, continuing from
/// `crc` (pass 0 to start a fresh checksum).
std::uint32_t crc32(std::string_view data, std::uint32_t crc = 0);

/// Whole-file read. Throws std::runtime_error when the file cannot be
/// opened or read, or when it exceeds `max_bytes` (resource-exhaustion
/// guard; 0 = unlimited).
std::string read_file(const std::string& path, std::uint64_t max_bytes = 0);

/// Crash-safe whole-file write: the data lands in `<path>.tmp.<pid>` in the
/// same directory (created if missing), is flushed and fsync'd, then
/// renamed over `path`. Throws std::runtime_error on any I/O failure, after
/// removing the temporary. Fault point: `io/atomic_write`.
void atomic_write_file(const std::string& path, std::string_view data);

/// The 8-byte integrity trailer appended by the checksummed writers.
inline constexpr std::string_view kCrcTrailerMagic = "CPCK";
inline constexpr std::size_t kCrcTrailerBytes = 8;

/// `data` + trailer, atomically (see atomic_write_file).
void atomic_write_file_checksummed(const std::string& path, std::string_view data);

/// True when `data` ends in a trailer whose magic matches (the CRC is not
/// yet checked — see strip_crc_trailer).
bool has_crc_trailer(std::string_view data);

/// Verify and remove the trailer in place. Returns true when a valid
/// trailer was stripped, false when no trailer is present (legacy file).
/// Throws std::runtime_error("<context>: checksum mismatch ...") when the
/// trailer magic is present but the CRC disagrees — the corruption signal.
bool strip_crc_trailer(std::string& data, const std::string& context);

/// read_file + strip_crc_trailer. `require_trailer` additionally rejects
/// trailer-less files (for formats that have always been checksummed).
std::string read_file_checksummed(const std::string& path, const std::string& context,
                                  bool require_trailer = false,
                                  std::uint64_t max_bytes = 0);

}  // namespace cp::util
