#pragma once
// Minimal leveled logger used across the library and by the agent to record
// tool-call transcripts. Thread-safe: the level is atomic and line emission
// is serialised under a mutex, so log lines from pool workers (see
// util/thread_pool.h) never interleave mid-line. Each LogStream buffers its
// message thread-locally and emits one complete line on destruction.

#include <sstream>
#include <string>

namespace cp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (with level prefix) to stderr if enabled.
void log_line(LogLevel level, const std::string& message);

/// Stream-style helper: LogStream(kInfo) << "x=" << x;  emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace cp::util

#define CP_LOG_DEBUG ::cp::util::LogStream(::cp::util::LogLevel::kDebug)
#define CP_LOG_INFO ::cp::util::LogStream(::cp::util::LogLevel::kInfo)
#define CP_LOG_WARN ::cp::util::LogStream(::cp::util::LogLevel::kWarn)
#define CP_LOG_ERROR ::cp::util::LogStream(::cp::util::LogLevel::kError)
