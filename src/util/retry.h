#pragma once
// Bounded retry with capped exponential backoff and deterministic jitter
// (docs/ROBUSTNESS.md "Retry and fallback semantics").
//
// retry_call(policy, rng, fn) invokes fn() up to policy.max_attempts times,
// swallowing std::exception failures between attempts and rethrowing the
// last one when the budget is exhausted. The sleep before attempt k+1 is
//
//     min(max_delay_ms, base_delay_ms * backoff^k) * (0.5 + 0.5 * u)
//
// with u drawn from the caller-supplied Rng — callers derive it from
// Rng::fork of their work item's stream, so the jitter sequence (like every
// other random choice in this codebase) is a pure function of the root
// seed, never of wall-clock or thread identity. A base_delay_ms of 0 (the
// default) retries immediately, which is what deterministic tests and the
// serving fast path want; real deployments set a small base so a struggling
// dependency gets breathing room.
//
// The policy deliberately retries *calls*, not state: fn must be safe to
// re-invoke from scratch (our call sites re-fork their sample Rng per
// attempt, so a retried draw is bit-identical to an undisturbed first try).

#include <chrono>
#include <exception>
#include <thread>
#include <type_traits>

#include "util/rng.h"

namespace cp::util {

struct RetryPolicy {
  int max_attempts = 3;        // total tries, including the first
  double base_delay_ms = 0.0;  // 0 = no sleep between attempts
  double max_delay_ms = 50.0;  // backoff cap
  double backoff = 2.0;        // delay multiplier per failed attempt
};

/// Backoff before attempt `attempt`+1 (0-based failed attempt index), with
/// jitter from `rng`. Exposed for tests; retry_call uses it internally.
inline double backoff_delay_ms(const RetryPolicy& policy, int attempt, Rng& rng) {
  double delay = policy.base_delay_ms;
  for (int i = 0; i < attempt && delay < policy.max_delay_ms; ++i) delay *= policy.backoff;
  if (delay > policy.max_delay_ms) delay = policy.max_delay_ms;
  return delay * (0.5 + 0.5 * rng.uniform());
}

/// Outcome bookkeeping a call site can feed into its own counters.
struct RetryStats {
  int attempts = 0;  // attempts actually made
  bool succeeded = false;
};

/// Run fn() with bounded retries. Returns fn()'s value on the first
/// success; rethrows the final failure once max_attempts std::exceptions
/// have been swallowed. Non-std::exception throwables propagate
/// immediately (they are not failures, they are bugs).
template <typename F>
auto retry_call(const RetryPolicy& policy, Rng& rng, F&& fn, RetryStats* stats = nullptr)
    -> decltype(fn()) {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 0;; ++attempt) {
    try {
      if (stats != nullptr) ++stats->attempts;
      if constexpr (std::is_void_v<decltype(fn())>) {
        fn();
        if (stats != nullptr) stats->succeeded = true;
        return;
      } else {
        auto result = fn();
        if (stats != nullptr) stats->succeeded = true;
        return result;
      }
    } catch (const std::exception&) {
      if (attempt + 1 >= attempts) throw;
      const double delay = backoff_delay_ms(policy, attempt, rng);
      if (delay > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
      }
    }
  }
}

}  // namespace cp::util
