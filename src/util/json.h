#pragma once
// A small JSON value type with parser and printer.
//
// The agent subsystem exchanges tool arguments and tool results as JSON, the
// same wire format an actual LLM function-calling API would use; keeping the
// boundary in JSON means a real LLM client can be dropped in without touching
// the tool implementations.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cp::util {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;  // ordered for stable printing

/// JSON value: null, bool, number (double), string, array, or object.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int v) : type_(Type::kNumber), number_(v) {}
  Json(long long v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(std::size_t v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(JsonArray a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  long long as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonObject& as_object() const;
  JsonObject& as_object();

  /// Object field access. `at` throws if absent; `get` returns nullopt-style
  /// defaults; operator[] inserts (object must already be an object or null).
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  Json& operator[](const std::string& key);

  /// Convenience getters with defaults for optional tool arguments.
  double get_number(const std::string& key, double fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;

  /// Serialise. `indent` < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

  /// Parse; throws std::runtime_error with position info on malformed input.
  static Json parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

}  // namespace cp::util
