#pragma once
// Fixed-size thread pool with futures-based submission and a
// caller-participating parallel_for.
//
// Design notes (see DESIGN.md "Threading model"):
//   * The pool is deliberately work-stealing-free: a single mutex-guarded
//     FIFO queue. The tasks this library fans out (reverse-diffusion
//     samples, tile denoising jobs, legalization attempts) run for
//     milliseconds to seconds each, so queue contention is irrelevant and
//     the simple design is easy to reason about under TSAN.
//   * parallel_for claims indices from a shared atomic counter and the
//     *calling thread participates*, so a task may itself call parallel_for
//     on the same pool without deadlock: even if every worker is busy, the
//     nested caller drains its own index range.
//   * Determinism is the caller's job and follows one rule everywhere in
//     this codebase: work item i derives its own Rng via fork(i) from a
//     root seed and writes only to slot i of a preallocated output vector.
//     Which thread runs which index is scheduling noise; the output is not.
//   * wait_help() blocks on a future while running queued tasks, so chains
//     of submit()+wait from inside tasks cannot starve the pool.
//   * The destructor drains the queue: every submitted task runs before the
//     workers join, so futures obtained from submit() never become broken
//     promises.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cp::util {

class ThreadPool {
 public:
  /// `threads` <= 0 selects hardware_threads(). A pool of size 1 still has
  /// one worker thread (submit() is asynchronous); use parallel_for for
  /// inline single-thread execution.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Number of concurrent hardware threads (>= 1).
  static int hardware_threads();

  /// Enqueue a nullary callable; the future carries its result or exception.
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>>>
  std::future<R> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Run fn(i) for every i in [0, n). The calling thread participates, so
  /// this is safe to call from inside a pool task (nested parallelism) and
  /// degenerates to a plain loop when the pool has no spare workers. If any
  /// invocation throws, the exception thrown by the lowest index is
  /// rethrown after all indices finish or are abandoned.
  template <typename F>
  void parallel_for(long long n, F&& fn) {
    if (n <= 0) return;
    if (size() <= 1 || n == 1) {  // inline fast path, no synchronisation
      for (long long i = 0; i < n; ++i) fn(i);
      return;
    }
    auto state = std::make_shared<ForState>();
    state->total = n;
    auto drive = [state, &fn] {
      for (;;) {
        const long long i = state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= state->total) break;
        try {
          fn(i);
        } catch (...) {
          state->record_exception(i, std::current_exception());
        }
        state->finish_one();
      }
    };
    // One driver task per worker; the caller is the final driver. Extra
    // drivers that wake after the counter is exhausted exit immediately.
    const int drivers = static_cast<int>(std::min<long long>(size(), n - 1));
    for (int t = 0; t < drivers; ++t) enqueue(drive);
    drive();
    state->wait_all();
    state->rethrow_first();
  }

  /// Block until `future` is ready, running queued pool tasks while waiting.
  /// Use this instead of future.wait()/get() when waiting from inside a
  /// pool task, so a saturated pool keeps making progress.
  template <typename R>
  void wait_help(const std::future<R>& future) {
    while (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!try_run_one()) std::this_thread::yield();
    }
  }

 private:
  struct ForState {
    std::atomic<long long> next{0};
    std::atomic<long long> finished{0};
    long long total = 0;
    std::mutex mutex;
    std::condition_variable done_cv;
    long long first_error_index = -1;
    std::exception_ptr first_error;

    void record_exception(long long index, std::exception_ptr error) {
      std::lock_guard<std::mutex> lock(mutex);
      if (first_error_index < 0 || index < first_error_index) {
        first_error_index = index;
        first_error = error;
      }
    }
    void finish_one() {
      if (finished.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        std::lock_guard<std::mutex> lock(mutex);  // pairs with wait_all
        done_cv.notify_all();
      }
    }
    void wait_all() {
      std::unique_lock<std::mutex> lock(mutex);
      done_cv.wait(lock, [this] { return finished.load(std::memory_order_acquire) == total; });
    }
    void rethrow_first() {
      if (first_error) std::rethrow_exception(first_error);
    }
  };

  void enqueue(std::function<void()> task);
  bool try_run_one();
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace cp::util
