#include "util/cli.h"

#include <cstdlib>

#include "util/strings.h"

namespace cp::util {

CliFlags::CliFlags(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (starts_with(arg, "--")) {
      std::string body = arg.substr(2);
      const auto eq = body.find('=');
      if (eq != std::string::npos) {
        flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        flags_[body] = argv[++i];
      } else {
        flags_[body] = "true";
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool CliFlags::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string CliFlags::get(const std::string& name, const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

long long CliFlags::get_int(const std::string& name, long long fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  auto parsed = parse_quantity(it->second);
  return parsed ? *parsed : fallback;
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string v = to_lower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return fallback;
}

}  // namespace cp::util
