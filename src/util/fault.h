#pragma once
// Deterministic, seedable fault injection (docs/ROBUSTNESS.md).
//
// Production code marks its failure-prone operations with named fault
// points: `util::fault::point("denoiser/infer")` at the top of the guarded
// call. A point is inert (one relaxed atomic load) until a schedule is
// armed for its name, either programmatically via configure() or through
// the CHATPATTERN_FAULTS environment variable, which is read lazily on the
// first point() evaluation so every binary honours it with zero wiring:
//
//   CHATPATTERN_FAULTS='denoiser/infer=every:3;io/atomic_write=once:2'
//
// Schedule grammar — entries separated by ';' or ',', each `name=mode`:
//   every:N      fire on calls N, 2N, 3N, ...        (N >= 1)
//   once:N       fire exactly once, on call N        (N >= 1, 1-based)
//   prob:P:SEED  fire when splitmix64(SEED, call#) < P (P in [0,1])
//
// Call numbering is per point and process-global. In a serial run the
// firing pattern is exactly reproducible; under a thread pool the call
// *indices* are still deterministic per call, but which work item draws
// which index depends on scheduling — use every:1/once/serial runs when a
// test needs an exact firing sequence.
//
// A fired point throws FaultInjected (a std::runtime_error) and bumps both
// its internal fired counter (fired_count(), for tests) and the obs counter
// `fault/<name>`, so injected failures are visible in run manifests.
//
// Building with -DCHATPATTERN_FAULTS=OFF compiles every point to nothing.

#include <stdexcept>
#include <string>
#include <string_view>

namespace cp::util::fault {

/// Thrown by point() when its schedule fires.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(std::string_view name)
      : std::runtime_error("injected fault at '" + std::string(name) + "'"),
        point_(name) {}
  const std::string& point_name() const { return point_; }

 private:
  std::string point_;
};

/// True when fault points are compiled in (CHATPATTERN_FAULTS=ON, default).
inline constexpr bool kCompiledIn =
#ifdef CP_FAULT_DISABLED
    false;
#else
    true;
#endif

#ifdef CP_FAULT_DISABLED

inline bool armed() { return false; }
inline void configure(const std::string&) {}
inline void clear() {}
inline bool should_fire(std::string_view) { return false; }
inline long long fired_count(std::string_view) { return 0; }
inline long long call_count(std::string_view) { return 0; }

#else

/// True once any schedule is active (env or configure()).
bool armed();

/// Replace the active schedules with `spec` (see grammar above; an empty
/// spec disarms everything). Throws std::invalid_argument on a malformed
/// spec. Also marks the env variable as consumed, so tests that configure
/// programmatically are immune to a stray CHATPATTERN_FAULTS in the
/// environment.
void configure(const std::string& spec);

/// Disarm every point and reset all counters.
void clear();

/// Evaluate the schedule of `name`, advancing its call counter. Returns
/// true when the point should fail this call. Thread-safe.
bool should_fire(std::string_view name);

/// Times `name` has fired / been evaluated since the last configure/clear.
long long fired_count(std::string_view name);
long long call_count(std::string_view name);

#endif  // CP_FAULT_DISABLED

/// The fault point marker: throws FaultInjected when the armed schedule for
/// `name` says this call fails. No-op otherwise.
inline void point(std::string_view name) {
  if (should_fire(name)) throw FaultInjected(name);
}

}  // namespace cp::util::fault
