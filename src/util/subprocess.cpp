#include "util/subprocess.h"

#include <errno.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/strings.h"

namespace cp::util {

namespace {

ExitStatus from_wait_status(int wstatus) {
  ExitStatus st;
  if (WIFEXITED(wstatus)) {
    st.exited = true;
    st.code = WEXITSTATUS(wstatus);
  } else if (WIFSIGNALED(wstatus)) {
    st.signaled = true;
    st.signal = WTERMSIG(wstatus);
  }
  return st;
}

}  // namespace

std::string ExitStatus::describe() const {
  if (exited) return format("exit %d", code);
  if (signaled) {
    const char* name = strsignal(signal);
    return format("signal %d (%s)", signal, name != nullptr ? name : "?");
  }
  return "unknown";
}

std::string self_exe_path(const std::string& fallback) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return fallback;
}

pid_t spawn_process(const std::vector<std::string>& argv, std::string* error) {
  if (argv.empty()) {
    if (error != nullptr) *error = "spawn: empty argv";
    return -1;
  }
  // Build the exec vector BEFORE forking: the child must not allocate.
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (error != nullptr) *error = std::string("spawn: fork: ") + strerror(errno);
    return -1;
  }
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    _exit(127);  // exec failed; only async-signal-safe calls on this path
  }
  return pid;
}

bool try_wait(pid_t pid, ExitStatus* status) {
  int wstatus = 0;
  for (;;) {
    const pid_t rc = ::waitpid(pid, &wstatus, WNOHANG);
    if (rc == pid) {
      if (status != nullptr) *status = from_wait_status(wstatus);
      return true;
    }
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    // ECHILD: nothing of ours by that pid — report a synthetic failure so
    // supervisors treat it as gone rather than spinning.
    if (status != nullptr) {
      *status = ExitStatus{};
      status->exited = true;
      status->code = 127;
    }
    return true;
  }
}

ExitStatus wait_process(pid_t pid) {
  int wstatus = 0;
  for (;;) {
    const pid_t rc = ::waitpid(pid, &wstatus, 0);
    if (rc == pid) return from_wait_status(wstatus);
    if (rc < 0 && errno == EINTR) continue;
    ExitStatus st;
    st.exited = true;
    st.code = 127;
    return st;
  }
}

pid_t reap_any(ExitStatus* status) {
  int wstatus = 0;
  for (;;) {
    const pid_t rc = ::waitpid(-1, &wstatus, WNOHANG);
    if (rc > 0) {
      if (status != nullptr) *status = from_wait_status(wstatus);
      return rc;
    }
    if (rc < 0 && errno == EINTR) continue;
    return -1;  // no reapable children (or none exist)
  }
}

bool kill_process(pid_t pid, int sig) {
  if (pid <= 0) return false;  // never signal process groups by accident
  return ::kill(pid, sig) == 0;
}

bool process_alive(pid_t pid) {
  if (pid <= 0) return false;
  return ::kill(pid, 0) == 0 || errno == EPERM;
}

}  // namespace cp::util
