#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cp::util {

namespace {
[[noreturn]] void type_error(const char* want, Json::Type got) {
  throw std::runtime_error(std::string("Json: expected ") + want + ", got type " +
                           std::to_string(static_cast<int>(got)));
}
}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

long long Json::as_int() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return static_cast<long long>(std::llround(number_));
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const JsonArray& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

JsonArray& Json::as_array() {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const JsonObject& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

JsonObject& Json::as_object() {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw std::runtime_error("Json: missing key '" + key + "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) > 0;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  return object_[key];
}

double Json::get_number(const std::string& key, double fallback) const {
  if (!contains(key) || !at(key).is_number()) return fallback;
  return at(key).as_number();
}

long long Json::get_int(const std::string& key, long long fallback) const {
  if (!contains(key) || !at(key).is_number()) return fallback;
  return at(key).as_int();
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  if (!contains(key) || !at(key).is_bool()) return fallback;
  return at(key).as_bool();
}

std::string Json::get_string(const std::string& key, const std::string& fallback) const {
  if (!contains(key) || !at(key).is_string()) return fallback;
  return at(key).as_string();
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

namespace {

void escape_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: append_number(out, number_); return;
    case Type::kString: escape_string(out, string_); return;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += indent < 0 ? "," : ", ";
        newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += indent < 0 ? "," : ",";
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_string(out, key);
        out += indent < 0 ? ":" : ": ";
        value.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* why) {
    throw std::runtime_error("Json parse error at offset " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json(nullptr);
    return parse_number();
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit");
            }
            // Encode as UTF-8 (basic multilingual plane only).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool any = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
      any = true;
    }
    if (!any) fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number");
    return Json(v);
  }

  Json parse_array() {
    ++pos_;  // consume '['
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(arr));
      }
      fail("expected ',' or ']'");
    }
  }

  Json parse_object() {
    ++pos_;  // consume '{'
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      if (peek() != ':') fail("expected ':'");
      ++pos_;
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(obj));
      }
      fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace cp::util
