#pragma once
// Small string helpers shared by the NL parser, the JSON printer and the
// bench harnesses.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cp::util {

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

/// Strip leading/trailing whitespace.
std::string trim(std::string_view s);

/// Split on a single character, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Split on any whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Replace every occurrence of `from` with `to`.
std::string replace_all(std::string_view s, std::string_view from, std::string_view to);

/// Parse an integer that may carry thousands separators or a k/m suffix:
/// "50,000" -> 50000, "50k" -> 50000, "1.5M" -> 1500000.
std::optional<long long> parse_quantity(std::string_view token);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace cp::util
