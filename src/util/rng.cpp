#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cp::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>(next_u64() % span);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_spare_normal_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

std::size_t Rng::categorical(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("Rng::categorical: empty weights");
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.size() - 1;
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

Rng::State Rng::state() const {
  State out;
  out.seed = seed_;
  for (int i = 0; i < 4; ++i) out.s[i] = s_[i];
  out.has_spare_normal = has_spare_normal_;
  out.spare_normal = spare_normal_;
  return out;
}

void Rng::restore(const State& state) {
  seed_ = state.seed;
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_spare_normal_ = state.has_spare_normal;
  spare_normal_ = state.spare_normal;
}

Rng Rng::fork() { return Rng(next_u64()); }

Rng Rng::fork(std::uint64_t stream) const {
  // Child seed = SplitMix64 hash of (root seed, stream index). Two rounds:
  // the first mixes the index into the seed, the second avalanches the
  // result so that consecutive indices yield decorrelated child states
  // (the Rng constructor adds further SplitMix64 rounds per state word).
  std::uint64_t sm = seed_ ^ (0xbf58476d1ce4e5b9ULL * (stream + 1));
  const std::uint64_t mixed = splitmix64(sm);
  sm = mixed;
  return Rng(splitmix64(sm));
}

}  // namespace cp::util
