#pragma once
// Observability substrate: process-wide counters, gauges, value histograms
// and hierarchical span timers (see docs/OBSERVABILITY.md).
//
// Design:
//   * Recording goes through free functions (obs::count / obs::gauge /
//     obs::observe) and the RAII obs::Span returned by obs::trace_scope.
//     All of them are no-ops unless the registry is enabled at runtime
//     (one relaxed atomic load on the fast path), and compile to nothing
//     when the library is built with -DCHATPATTERN_OBS=OFF.
//   * Storage is sharded by thread: a writer locks the shard owned by its
//     thread-id hash, so the mutex is effectively uncontended per-thread
//     accumulation. snapshot() merges every shard into one Snapshot — the
//     "merge on flush". All merge operations (sums, min/max, bucket adds)
//     are commutative and associative, so the merged totals are identical
//     for every thread count and interleaving.
//   * Span paths are hierarchical per thread: nested Spans join their names
//     with '/' ("sampler/sample/denoise_step"). The path stack is
//     thread-local, so work fanned out to a pool roots a fresh path on the
//     worker thread; identical work is still aggregated because equal paths
//     merge (see docs/OBSERVABILITY.md "Span paths and threads").
//   * util::Rng is untouched: the registry never draws randomness, so
//     instrumentation cannot perturb any deterministic output.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "util/json.h"

namespace cp::obs {

/// True when instrumentation is compiled in (CHATPATTERN_OBS=ON, default).
inline constexpr bool kCompiledIn =
#ifdef CP_OBS_DISABLED
    false;
#else
    true;
#endif

/// Aggregate of one span path: invocation count + wall-time statistics.
struct TimerStat {
  long long count = 0;
  double total_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;

  void add(double seconds) {
    if (count == 0 || seconds < min_s) min_s = seconds;
    if (count == 0 || seconds > max_s) max_s = seconds;
    ++count;
    total_s += seconds;
  }
  void merge(const TimerStat& other) {
    if (other.count == 0) return;
    if (count == 0 || other.min_s < min_s) min_s = other.min_s;
    if (count == 0 || other.max_s > max_s) max_s = other.max_s;
    count += other.count;
    total_s += other.total_s;
  }
};

/// Aggregate of one observed value stream: moments plus a power-of-two
/// histogram. Bucket i counts observations with value <= 2^i (bucket 0
/// additionally holds everything <= 1, including zero and negatives); the
/// last bucket is a catch-all.
struct ValueStat {
  static constexpr int kBuckets = 32;

  long long count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<long long, kBuckets> buckets{};

  static int bucket_for(double value) {
    double upper = 1.0;
    int index = 0;
    while (value > upper && index < kBuckets - 1) {
      upper *= 2.0;
      ++index;
    }
    return index;
  }
  void add(double value) {
    if (count == 0 || value < min) min = value;
    if (count == 0 || value > max) max = value;
    ++count;
    sum += value;
    ++buckets[static_cast<std::size_t>(bucket_for(value))];
  }
  void merge(const ValueStat& other) {
    if (other.count == 0) return;
    if (count == 0 || other.min < min) min = other.min;
    if (count == 0 || other.max > max) max = other.max;
    count += other.count;
    sum += other.sum;
    for (int i = 0; i < kBuckets; ++i) {
      buckets[static_cast<std::size_t>(i)] += other.buckets[static_cast<std::size_t>(i)];
    }
  }
};

/// A merged, immutable view of everything the registry has accumulated.
/// Ordered maps so the JSON rendering is stable.
struct Snapshot {
  std::map<std::string, long long> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimerStat> spans;      // key = '/'-joined span path
  std::map<std::string, ValueStat> histograms;

  /// {"counters": {...}, "gauges": {...}, "spans": {path: {count, total_s,
  /// mean_s, min_s, max_s}}, "span_tree": nested-by-path, "histograms":
  /// {name: {count, sum, mean, min, max, buckets: [{le, count}, ...]}}}.
  util::Json to_json() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every instrumentation site records into.
  /// Never destroyed (intentionally leaked) so worker threads may record
  /// during static destruction without ordering hazards.
  static Registry& global();

  /// Runtime switch; disabled by default so uninstrumented runs pay only
  /// the atomic check. Enabling mid-run is safe.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Monotonic counter `name` += delta.
  void add(std::string_view name, long long delta = 1);
  /// Last-write-wins gauge.
  void set_gauge(std::string_view name, double value);
  /// One observation of a value histogram.
  void observe(std::string_view name, double value);
  /// One completed span at `path` lasting `seconds`.
  void record_span(std::string_view path, double seconds);

  /// Merge every shard into one view ("flush"). Safe concurrently with
  /// writers; writers racing the flush land in the next snapshot.
  Snapshot snapshot() const;

  /// Drop everything recorded so far (the enabled flag is unchanged).
  void reset();

 private:
  // One shard per thread-id hash bucket: writers from distinct threads
  // almost never share a shard, so the per-record lock is uncontended.
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, long long> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, TimerStat> spans;
    std::map<std::string, ValueStat> histograms;
  };
  Shard& local_shard();

  std::atomic<bool> enabled_{false};
  std::array<Shard, kShards> shards_;
};

/// RAII hierarchical timer. Construction pushes `name` onto the calling
/// thread's span path; destruction records the elapsed wall time for the
/// full '/'-joined path and pops. Inert when the registry is disabled (the
/// decision is taken at construction) or when instrumentation is compiled
/// out.
class Span {
 public:
  explicit Span(std::string_view name, Registry* registry = nullptr);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&&) = delete;
  Span& operator=(Span&&) = delete;

 private:
#ifndef CP_OBS_DISABLED
  Registry* registry_ = nullptr;  // null => inactive
  std::size_t prev_len_ = 0;
  std::chrono::steady_clock::time_point start_;
#endif
};

/// `const obs::Span span = obs::trace_scope("sampler/sample");`
/// (guaranteed copy elision; the Span never moves).
inline Span trace_scope(std::string_view name, Registry* registry = nullptr) {
  return Span(name, registry);
}

/// Convenience recorders against the global registry; compile to nothing
/// with CHATPATTERN_OBS=OFF and to one relaxed load when disabled.
inline void count(std::string_view name, long long delta = 1) {
  if constexpr (kCompiledIn) Registry::global().add(name, delta);
}
inline void gauge(std::string_view name, double value) {
  if constexpr (kCompiledIn) Registry::global().set_gauge(name, value);
}
inline void observe(std::string_view name, double value) {
  if constexpr (kCompiledIn) Registry::global().observe(name, value);
}

}  // namespace cp::obs
