#pragma once
// JSON run manifests: one self-describing artifact per run that captures
// what was run (tool + argv), how (config: seeds, thread counts, flags),
// where (environment: git describe, hardware), what happened (result
// metrics) and where the time went (the registry snapshot: counters,
// gauges, histograms and the span tree). Every bench binary writes one via
// the shared --manifest flag (bench/common.h); see docs/OBSERVABILITY.md
// for the schema and how to read it.

#include <string>
#include <vector>

#include "obs/registry.h"
#include "util/json.h"

namespace cp::obs {

/// Best-effort `git describe --always --dirty` of the working directory;
/// empty when git or the repository is unavailable. Never throws.
std::string git_describe();

/// UTC wall-clock timestamp "YYYY-MM-DDTHH:MM:SSZ".
std::string utc_timestamp();

struct RunManifest {
  std::string tool;               // binary / harness name
  std::vector<std::string> args;  // raw argv echo (argv[1..])
  util::JsonObject config;        // seeds, thread counts, parsed flags
  util::JsonObject metrics;       // final result metrics of the run

  /// Assemble the full manifest: {schema_version, tool, args, timestamp_utc,
  /// environment: {git_describe, hardware_threads, obs_compiled_in,
  /// obs_enabled}, config, metrics, observability: <registry snapshot>}.
  util::Json to_json(const Registry& registry = Registry::global()) const;

  /// Serialise to `path` (pretty-printed), creating parent directories as
  /// needed. Returns false and fills `error` (if non-null) on failure —
  /// callers decide whether that is fatal.
  bool write(const std::string& path, const Registry& registry = Registry::global(),
             std::string* error = nullptr) const;
};

}  // namespace cp::obs
