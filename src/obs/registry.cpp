#include "obs/registry.h"

#include <functional>
#include <thread>
#include <vector>

namespace cp::obs {

namespace {

/// Current '/'-joined span path of this thread. Registry-independent: it
/// tracks call nesting, which is a property of the thread, not the sink.
thread_local std::string t_span_path;

}  // namespace

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: see header
  return *instance;
}

Registry::Shard& Registry::local_shard() {
  thread_local const std::size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return shards_[index];
}

void Registry::add(std::string_view name, long long delta) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.counters[std::string(name)] += delta;
}

void Registry::set_gauge(std::string_view name, double value) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.gauges[std::string(name)] = value;
}

void Registry::observe(std::string_view name, double value) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.histograms[std::string(name)].add(value);
}

void Registry::record_span(std::string_view path, double seconds) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.spans[std::string(path)].add(seconds);
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, value] : shard.counters) out.counters[name] += value;
    // Gauges are last-write-wins per shard; across shards the merge picks an
    // arbitrary-but-stable winner (highest shard index). Gauges are meant
    // for run-level scalars written once, so cross-thread races don't occur
    // in practice.
    for (const auto& [name, value] : shard.gauges) out.gauges[name] = value;
    for (const auto& [path, stat] : shard.spans) out.spans[path].merge(stat);
    for (const auto& [name, stat] : shard.histograms) out.histograms[name].merge(stat);
  }
  return out;
}

void Registry::reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.counters.clear();
    shard.gauges.clear();
    shard.spans.clear();
    shard.histograms.clear();
  }
}

// ---------------------------------------------------------------------------
// Span

#ifndef CP_OBS_DISABLED

Span::Span(std::string_view name, Registry* registry) {
  Registry* target = registry != nullptr ? registry : &Registry::global();
  if (!target->enabled()) return;  // stays inactive for its whole lifetime
  registry_ = target;
  prev_len_ = t_span_path.size();
  if (!t_span_path.empty()) t_span_path += '/';
  t_span_path += name;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (registry_ == nullptr) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  registry_->record_span(t_span_path, seconds);
  t_span_path.resize(prev_len_);
}

#else  // CP_OBS_DISABLED: fully inert

Span::Span(std::string_view, Registry*) {}
Span::~Span() {}

#endif

// ---------------------------------------------------------------------------
// Snapshot rendering

namespace {

util::Json timer_json(const TimerStat& stat) {
  util::JsonObject o;
  o["count"] = stat.count;
  o["total_s"] = stat.total_s;
  o["mean_s"] = stat.count == 0 ? 0.0 : stat.total_s / static_cast<double>(stat.count);
  o["min_s"] = stat.min_s;
  o["max_s"] = stat.max_s;
  return util::Json(std::move(o));
}

util::Json value_json(const ValueStat& stat) {
  util::JsonObject o;
  o["count"] = stat.count;
  o["sum"] = stat.sum;
  o["mean"] = stat.count == 0 ? 0.0 : stat.sum / static_cast<double>(stat.count);
  o["min"] = stat.min;
  o["max"] = stat.max;
  util::JsonArray buckets;
  double upper = 1.0;
  for (int i = 0; i < ValueStat::kBuckets; ++i, upper *= 2.0) {
    const long long n = stat.buckets[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    util::JsonObject b;
    b["le"] = upper;
    b["count"] = n;
    buckets.push_back(util::Json(std::move(b)));
  }
  o["buckets"] = util::Json(std::move(buckets));
  return util::Json(std::move(o));
}

/// Split a '/'-joined span path into components.
std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= path.size()) {
    const std::size_t slash = path.find('/', begin);
    if (slash == std::string::npos) {
      parts.push_back(path.substr(begin));
      break;
    }
    parts.push_back(path.substr(begin, slash - begin));
    begin = slash + 1;
  }
  return parts;
}

}  // namespace

util::Json Snapshot::to_json() const {
  util::JsonObject root;

  util::JsonObject counters_obj;
  for (const auto& [name, value] : counters) counters_obj[name] = value;
  root["counters"] = util::Json(std::move(counters_obj));

  util::JsonObject gauges_obj;
  for (const auto& [name, value] : gauges) gauges_obj[name] = value;
  root["gauges"] = util::Json(std::move(gauges_obj));

  util::JsonObject spans_obj;
  for (const auto& [path, stat] : spans) spans_obj[path] = timer_json(stat);
  root["spans"] = util::Json(std::move(spans_obj));

  // Nested rendering of the same data: node = {<stats>, "children": {...}}.
  // Intermediate path components that never closed a span of their own
  // appear with children only.
  util::Json tree{util::JsonObject{}};
  for (const auto& [path, stat] : spans) {
    util::Json* node = &tree;
    for (const std::string& part : split_path(path)) {
      util::Json& children = (*node)["children"];
      node = &children[part];
    }
    const util::Json rendered = timer_json(stat);
    for (const auto& [key, value] : rendered.as_object()) (*node)[key] = value;
  }
  root["span_tree"] =
      tree.is_object() && tree.contains("children") ? tree.at("children") : util::Json(util::JsonObject{});

  util::JsonObject histograms_obj;
  for (const auto& [name, stat] : histograms) histograms_obj[name] = value_json(stat);
  root["histograms"] = util::Json(std::move(histograms_obj));

  return util::Json(std::move(root));
}

}  // namespace cp::obs
