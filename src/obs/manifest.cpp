#include "obs/manifest.h"

#include <cstdio>
#include <ctime>
#include <thread>

#include "util/fs.h"

namespace cp::obs {

std::string git_describe() {
  // Best-effort: the manifest is still valid without version info (e.g.
  // when a bench runs from an installed tree). popen keeps this dependency-
  // free; stderr is dropped so a missing repo stays silent.
  FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "";
  char buffer[256];
  std::string out;
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) out += buffer;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  return out;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buffer;
}

util::Json RunManifest::to_json(const Registry& registry) const {
  util::JsonObject root;
  root["schema_version"] = 1;
  root["tool"] = tool;
  util::JsonArray arg_array;
  for (const std::string& arg : args) arg_array.push_back(util::Json(arg));
  root["args"] = util::Json(std::move(arg_array));
  root["timestamp_utc"] = utc_timestamp();

  util::JsonObject environment;
  environment["git_describe"] = git_describe();
  environment["hardware_threads"] =
      static_cast<long long>(std::thread::hardware_concurrency());
  environment["obs_compiled_in"] = kCompiledIn;
  environment["obs_enabled"] = registry.enabled();
  root["environment"] = util::Json(std::move(environment));

  root["config"] = util::Json(config);
  root["metrics"] = util::Json(metrics);
  root["observability"] = registry.snapshot().to_json();
  return util::Json(std::move(root));
}

bool RunManifest::write(const std::string& path, const Registry& registry,
                        std::string* error) const {
  // Crash-safe tmp + fsync + rename: a manifest is either the previous
  // complete run or this complete run, never a torn JSON document. No CRC
  // trailer — manifests stay plain JSON for jq and friends.
  try {
    util::atomic_write_file(path, to_json(registry).dump(2) + "\n");
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  return true;
}

}  // namespace cp::obs
