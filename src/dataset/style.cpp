#include "dataset/style.h"

#include <stdexcept>

#include "util/strings.h"

namespace cp::dataset {

int style_index(const std::string& name) {
  const std::string s = util::to_lower(name);
  if (s == "layer-10001" || s == "10001" || s == "layer10001" || s == "layer_10001") return 0;
  if (s == "layer-10003" || s == "10003" || s == "layer10003" || s == "layer_10003") return 1;
  return -1;
}

std::string style_name(int index) {
  if (index < 0 || index >= kStyleCount) {
    throw std::out_of_range("style_name: bad index " + std::to_string(index));
  }
  return kStyleNames[index];
}

StyleParams style_params(int index) {
  StyleParams p;
  p.name = style_name(index);
  p.rules = drc::rules_for_style(p.name);
  if (index == 0) {
    p.routing_style = true;
    p.snap_nm = 64;
    // Remaining defaults in the header are the Layer-10001 routing numbers.
  } else {
    p.routing_style = false;
    p.snap_nm = 80;
    p.block_cell = 560;
    p.block_min = 160;
    p.block_max = 400;
    p.block_probability = 0.62;
    p.lshape_probability = 0.35;
  }
  return p;
}

}  // namespace cp::dataset
