#include "dataset/builder.h"

#include <algorithm>

#include "util/logging.h"

namespace cp::dataset {

using geometry::Coord;
using geometry::Rect;

Dataset build_dataset(const DatasetConfig& config) {
  Dataset out;
  out.config = config;
  const StyleParams style = style_params(config.style);
  util::Rng rng(config.seed);

  // Auto map size: comfortably larger than the window so many decorrelated
  // clips exist, but bounded so map generation stays cheap.
  const Coord map_nm =
      config.map_nm > 0 ? config.map_nm : std::max<Coord>(4 * config.window_nm, 8192);
  // Keep clips away from the map border where construction-rule exemptions
  // (clipped tails) live.
  const Coord inset = std::max<Coord>(style.rules.min_space_nm * 4, 256);

  std::vector<Rect> map = generate_map(style, map_nm, rng);
  int windows_from_current_map = 0;
  const int max_windows_per_map =
      std::max(8, static_cast<int>((map_nm / config.window_nm) * (map_nm / config.window_nm)) * 4);

  int guard = 0;
  while (static_cast<int>(out.topologies.size()) < config.count) {
    if (++guard > config.count * 64 + 1024) {
      CP_LOG_WARN << "build_dataset: giving up after too many rejected windows ("
                  << out.rejected << " rejected, " << out.topologies.size() << " kept)";
      break;
    }
    if (windows_from_current_map >= max_windows_per_map) {
      map = generate_map(style, map_nm, rng);
      windows_from_current_map = 0;
    }
    ++windows_from_current_map;
    const Coord x0 = inset + static_cast<Coord>(rng.uniform_int(
                                 0, static_cast<int>(map_nm - config.window_nm - 2 * inset)));
    const Coord y0 = inset + static_cast<Coord>(rng.uniform_int(
                                 0, static_cast<int>(map_nm - config.window_nm - 2 * inset)));
    const Rect window{x0, y0, x0 + config.window_nm, y0 + config.window_nm};
    const squish::SquishPattern clip = squish::squish(map, window);
    auto normalised = squish::normalize_to(clip, config.topo_size);
    if (!normalised) {
      ++out.rejected;
      continue;
    }
    out.topologies.push_back(std::move(normalised->topology));
  }
  return out;
}

Dataset build_reference_library(const DatasetConfig& config) {
  // The reference library is built the same way; the distinction is semantic
  // (it is used as the "Real Patterns" row, never for training).
  return build_dataset(config);
}

}  // namespace cp::dataset
