#include "dataset/mapgen.h"

#include <algorithm>

namespace cp::dataset {

using geometry::Coord;
using geometry::Rect;

namespace {

struct Track {
  Coord x0 = 0, x1 = 0;
  // Segment y-extents, ascending and separated by at least min_space.
  std::vector<std::pair<Coord, Coord>> segments;
};

Coord rand_coord(util::Rng& rng, Coord lo, Coord hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<Coord>(rng.uniform_int(0, static_cast<int>(hi - lo)));
}

/// Random multiple of `snap` in [lo, hi]; returns the smallest legal
/// multiple when the interval contains none above lo.
Coord rand_snapped(util::Rng& rng, Coord lo, Coord hi, Coord snap) {
  const Coord lo_q = (lo + snap - 1) / snap;
  const Coord hi_q = hi / snap;
  if (hi_q <= lo_q) return lo_q * snap;
  return static_cast<Coord>(rng.uniform_int(static_cast<int>(lo_q), static_cast<int>(hi_q))) *
         snap;
}

Coord snap_up(Coord v, Coord snap) { return (v + snap - 1) / snap * snap; }

}  // namespace

std::vector<Rect> generate_routing_map(const StyleParams& style, Coord size_nm, util::Rng& rng) {
  const drc::DesignRules& rules = style.rules;
  const Coord snap = style.snap_nm;
  std::vector<Track> tracks;

  // Lay vertical tracks left to right with rule-respecting gaps. Track x
  // positions are not snapped (each track contributes exactly two x scan
  // lines regardless); y edges are snapped to the routing grid so that scan
  // lines are shared across tracks, as in real layouts.
  Coord x = rand_coord(rng, 0, style.track_gap_max);
  while (true) {
    const Coord w = rand_coord(rng, style.track_width_min, style.track_width_max);
    if (x + w > size_nm) break;
    Track t;
    t.x0 = x;
    t.x1 = x + w;
    const Coord len_floor = snap_up(
        std::max({style.segment_len_min, rules.min_width_nm, (rules.min_area_nm2 + w - 1) / w}),
        snap);
    const Coord gap_floor = snap_up(std::max(style.segment_gap_min, rules.min_space_nm), snap);
    const Coord gap_ceil = std::max(gap_floor, snap_up(style.segment_gap_max, snap));
    Coord y = rng.bernoulli(0.5) ? 0 : rand_snapped(rng, 0, style.segment_gap_max, snap);
    while (y < size_nm) {
      Coord len = rand_snapped(rng, len_floor, std::max(len_floor, style.segment_len_max), snap);
      if (y + len > size_nm) len = size_nm - y;
      // Drop clipped tails that fall below the legal floor; windows are
      // sampled away from the map border, so a short tail would otherwise
      // appear as an interior width violation.
      if (len < len_floor) break;
      t.segments.emplace_back(y, y + len);
      y += len + rand_snapped(rng, gap_floor, gap_ceil, snap);
    }
    x = t.x1 + rand_coord(rng, std::max(style.track_gap_min, rules.min_space_nm),
                          std::max(style.track_gap_max, rules.min_space_nm));
    tracks.push_back(std::move(t));
  }

  std::vector<Rect> rects;
  for (const Track& t : tracks) {
    for (const auto& [y0, y1] : t.segments) rects.push_back(Rect{t.x0, y0, t.x1, y1});
  }

  // Straps: connect vertically overlapping segments of adjacent tracks.
  // Straps within one gap keep min_space vertical separation (segment
  // ordering already guarantees it across different segment pairs).
  const Coord strap_h_floor = snap_up(rules.min_width_nm, snap);
  for (std::size_t i = 0; i + 1 < tracks.size(); ++i) {
    const Track& a = tracks[i];
    const Track& b = tracks[i + 1];
    Coord last_strap_end = -(1 << 30);
    for (const auto& [ay0, ay1] : a.segments) {
      for (const auto& [by0, by1] : b.segments) {
        const Coord lo = std::max(ay0, by0);
        const Coord hi = std::min(ay1, by1);
        if (hi - lo < strap_h_floor) continue;
        if (!rng.bernoulli(style.strap_probability)) continue;
        const Coord h = std::min<Coord>(hi - lo, strap_h_floor + (rng.bernoulli(0.3) ? snap : 0));
        const Coord y0 = rand_snapped(rng, lo, hi - h, snap);
        if (y0 + h > hi || y0 < lo) continue;
        if (y0 < last_strap_end + rules.min_space_nm) continue;
        rects.push_back(Rect{a.x0, y0, b.x1, y0 + h});
        last_strap_end = y0 + h;
      }
    }
  }
  return rects;
}

std::vector<Rect> generate_block_map(const StyleParams& style, Coord size_nm, util::Rng& rng) {
  const drc::DesignRules& rules = style.rules;
  const Coord snap = style.snap_nm;
  std::vector<Rect> rects;
  const Coord cell = style.block_cell;
  const Coord margin = snap_up((rules.min_space_nm + 1) / 2 + 1, snap);
  for (Coord cy = 0; cy + cell <= size_nm; cy += cell) {
    for (Coord cx = 0; cx + cell <= size_nm; cx += cell) {
      if (!rng.bernoulli(style.block_probability)) continue;
      const Coord avail = cell - 2 * margin;
      const Coord wmin = snap_up(std::max(style.block_min, rules.min_width_nm), snap);
      if (avail < wmin) continue;
      const Coord wmax = std::min(style.block_max, avail);
      const Coord w = rand_snapped(rng, wmin, std::max(wmin, wmax), snap);
      const Coord h = rand_snapped(rng, wmin, std::max(wmin, wmax), snap);
      if (w > avail || h > avail) continue;
      const Coord x0 = cx + margin + rand_snapped(rng, 0, avail - w, snap);
      const Coord y0 = cy + margin + rand_snapped(rng, 0, avail - h, snap);
      rects.push_back(Rect{x0, y0, x0 + w, y0 + h});
      if (rng.bernoulli(style.lshape_probability) && w >= 2 * wmin) {
        // Grow an L by attaching a leg below the block's left half, staying
        // inside the cell margins so neighbours keep their spacing.
        const Coord leg_w = snap_up(std::max(wmin, w / 2), snap);
        const Coord leg_room = (cy + cell - margin) - (y0 + h);
        const Coord leg_h = std::min(snap_up(std::max(wmin, h / 2), snap), leg_room / snap * snap);
        if (leg_h >= wmin && leg_w <= w) {
          rects.push_back(Rect{x0, y0 + h, x0 + leg_w, y0 + h + leg_h});
        }
      }
    }
  }
  return rects;
}

std::vector<Rect> generate_map(const StyleParams& style, Coord size_nm, util::Rng& rng) {
  return style.routing_style ? generate_routing_map(style, size_nm, rng)
                             : generate_block_map(style, size_nm, rng);
}

}  // namespace cp::dataset
