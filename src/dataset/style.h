#pragma once
// Layout style definitions. A style bundles the design rules with the
// parameters of the synthetic map generator that mimics that layer's look:
// Layer-10001 is a dense thin-wire routing layer (vertical tracks with
// segment breaks, jogs and inter-track straps); Layer-10003 is a sparser
// wide-feature layer (blocks and L-shapes on a coarse grid).
//
// The two styles have visibly different local statistics — exactly what the
// paper's conditional generation experiment needs (the condition c selects
// the style distribution).

#include <string>
#include <vector>

#include "drc/rules.h"

namespace cp::dataset {

/// Condition labels used across the library. The condition embedding of the
/// diffusion model is the index into this list.
inline constexpr int kStyleCount = 2;
inline constexpr const char* kStyleNames[kStyleCount] = {"Layer-10001", "Layer-10003"};

/// Map a style name (any capitalisation, with or without the "Layer-" prefix)
/// to its condition index; returns -1 if unknown.
int style_index(const std::string& name);

/// Inverse of style_index.
std::string style_name(int index);

struct StyleParams {
  std::string name;
  drc::DesignRules rules;

  /// Placement grid for shape edges along y (routing style) or both axes
  /// (block style). Real layouts snap edges to a routing/placement grid,
  /// which is what keeps the scan-line count of large clips bounded; without
  /// it a 1024x1024-topology window would exceed its own scan-line budget.
  geometry::Coord snap_nm = 64;

  // Routing-style parameters (Layer-10001). The layer runs close to its
  // design-rule capacity (requirement/budget ~ 0.85 per clip), like a dense
  // production metal layer — this is what makes very large extensions of
  // this style progressively harder (Table 1, 1024^2 row).
  bool routing_style = true;
  geometry::Coord track_width_min = 48, track_width_max = 64;
  geometry::Coord track_gap_min = 48, track_gap_max = 76;
  geometry::Coord segment_len_min = 160, segment_len_max = 900;
  geometry::Coord segment_gap_min = 48, segment_gap_max = 280;
  double strap_probability = 0.3;  // chance of a strap in a given gap slot

  // Block-style parameters (Layer-10003).
  geometry::Coord block_cell = 560;  // coarse placement grid
  geometry::Coord block_min = 96, block_max = 420;
  double block_probability = 0.62;
  double lshape_probability = 0.35;
};

/// Built-in parameter sets for the two evaluation styles.
StyleParams style_params(int index);

}  // namespace cp::dataset
