#pragma once
// Dataset construction: clip windows from synthetic layout maps, squish,
// normalise to the model size, and assemble topology libraries. This is the
// C++ equivalent of the paper's preprocessing of the ICCAD-2014 maps
// ("splitting the layout map ... with overlap").

#include <vector>

#include "dataset/mapgen.h"
#include "squish/normalize.h"

namespace cp::dataset {

struct DatasetConfig {
  int style = 0;                        // condition index
  geometry::Coord window_nm = 2048;     // physical clip size (square)
  int topo_size = 128;                  // normalised topology size (square)
  int count = 256;                      // number of clips to keep
  std::uint64_t seed = 1;
  geometry::Coord map_nm = 0;           // 0 = auto (a few windows across)
};

struct Dataset {
  DatasetConfig config;
  /// Normalised topo_size x topo_size topologies.
  std::vector<squish::Topology> topologies;
  /// Number of windows rejected because their minimal squish form exceeded
  /// topo_size (too complex for the model window) — paper-style filtering.
  int rejected = 0;
};

/// Build a dataset of normalised topologies for one style.
Dataset build_dataset(const DatasetConfig& config);

/// Reference ("Real Patterns") library: un-normalised complexities are what
/// the diversity metric consumes, so the library stores the clips' minimal
/// squish topologies padded to topo_size only when needed downstream.
/// Here we keep the normalised form for uniformity.
Dataset build_reference_library(const DatasetConfig& config);

}  // namespace cp::dataset
