#pragma once
// Synthetic layout-map generation (substitution S1 in DESIGN.md).
//
// The paper obtains training clips by splitting the ICCAD-2014 contest layout
// maps. That data is unavailable offline, so we synthesise large DRC-clean
// layout maps with the same role: a big rect soup from which overlapping
// windows are clipped, squished and normalised. The generators are
// correct-by-construction with respect to the style's design rules (verified
// by tests that DRC-check random windows).

#include <vector>

#include "dataset/style.h"
#include "geometry/polygon.h"
#include "util/rng.h"

namespace cp::dataset {

/// Generate a `size_nm` x `size_nm` layout map in the given style.
/// The returned rects may overlap only where they intentionally form one
/// polygon (straps/L-shapes); the squish step rasterises the union.
std::vector<geometry::Rect> generate_map(const StyleParams& style, geometry::Coord size_nm,
                                         util::Rng& rng);

/// Routing-style map (vertical tracks, segment breaks, straps). Exposed for
/// targeted tests; generate_map dispatches on style.routing_style.
std::vector<geometry::Rect> generate_routing_map(const StyleParams& style,
                                                 geometry::Coord size_nm, util::Rng& rng);

/// Block-style map (random blocks and L-shapes on a coarse grid).
std::vector<geometry::Rect> generate_block_map(const StyleParams& style, geometry::Coord size_nm,
                                               util::Rng& rng);

}  // namespace cp::dataset
