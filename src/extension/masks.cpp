#include "extension/masks.h"

namespace cp::extension {

squish::Topology full_mask(int rows, int cols, std::uint8_t value) {
  return squish::Topology(rows, cols, value);
}

squish::Topology keep_except_row_band(int rows, int cols, int band_r0, int band_r1) {
  squish::Topology m(rows, cols, 1);
  for (int r = band_r0; r < band_r1 && r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m.set(r, c, 0);
  }
  return m;
}

squish::Topology keep_except_col_band(int rows, int cols, int band_c0, int band_c1) {
  squish::Topology m(rows, cols, 1);
  for (int r = 0; r < rows; ++r) {
    for (int c = band_c0; c < band_c1 && c < cols; ++c) m.set(r, c, 0);
  }
  return m;
}

squish::Topology keep_except_box(int rows, int cols, int r0, int c0, int r1, int c1) {
  squish::Topology m(rows, cols, 1);
  for (int r = r0; r < r1 && r < rows; ++r) {
    for (int c = c0; c < c1 && c < cols; ++c) m.set(r, c, 0);
  }
  return m;
}

}  // namespace cp::extension
