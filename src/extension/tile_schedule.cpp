#include "extension/tile_schedule.h"

#include <algorithm>
#include <cstdlib>

#include "obs/registry.h"
#include "util/logging.h"

namespace cp::extension {

std::vector<std::vector<int>> tile_waves(const std::vector<TileJob>& jobs, int window) {
  const int n = static_cast<int>(jobs.size());
  std::vector<int> wave_of(static_cast<std::size_t>(n), 0);
  int wave_count = 0;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < j; ++i) {
      const bool overlap = std::abs(jobs[i].r0 - jobs[j].r0) < window &&
                           std::abs(jobs[i].c0 - jobs[j].c0) < window;
      if (overlap) {
        wave_of[static_cast<std::size_t>(j)] =
            std::max(wave_of[static_cast<std::size_t>(j)], wave_of[static_cast<std::size_t>(i)] + 1);
      }
    }
    wave_count = std::max(wave_count, wave_of[static_cast<std::size_t>(j)] + 1);
  }
  std::vector<std::vector<int>> waves(static_cast<std::size_t>(wave_count));
  for (int j = 0; j < n; ++j) waves[static_cast<std::size_t>(wave_of[static_cast<std::size_t>(j)])].push_back(j);
  return waves;
}

int run_tile_jobs(const diffusion::TopologyGenerator& generator, squish::Topology& canvas,
                  const std::vector<TileJob>& jobs, int window,
                  const diffusion::SampleConfig& sc, const diffusion::ModifyConfig& mc,
                  const util::Rng& root, util::ThreadPool* pool, int* waves_out) {
  const obs::Span all_waves = obs::trace_scope("extension/tile_jobs");
  obs::count("extension/tile_jobs", static_cast<long long>(jobs.size()));
  const std::vector<std::vector<int>> waves = tile_waves(jobs, window);
  obs::count("extension/waves", static_cast<long long>(waves.size()));
  const bool fan_out = pool != nullptr && pool->size() > 1 && generator.thread_safe();
  if (!fan_out && pool != nullptr && pool->size() > 1) {
    obs::count("extension/serial_fallback", 1);
    CP_LOG_WARN << "run_tile_jobs: generator '" << generator.name()
                << "' is not thread-safe; running tile waves serially despite a "
                << pool->size() << "-worker pool";
  }
  for (const std::vector<int>& wave : waves) {
    // Per-wave wall time: waves are the parallelism quanta of the tile
    // scheduler, so their durations are the useful timing granularity.
    const obs::Span wave_span = obs::trace_scope("wave");
    obs::observe("extension/jobs_per_wave", static_cast<double>(wave.size()));
    auto run_one = [&](long long wi) {
      const int j = wave[static_cast<std::size_t>(wi)];
      const TileJob& job = jobs[static_cast<std::size_t>(j)];
      util::Rng rng = root.fork(static_cast<std::uint64_t>(j));
      squish::Topology tile;
      if (job.keep.empty()) {
        tile = generator.sample(sc, rng);
      } else {
        const squish::Topology content =
            canvas.window(job.r0, job.c0, job.r0 + window, job.c0 + window);
        tile = generator.modify(content, job.keep, mc, rng);
      }
      canvas.paste(tile, job.r0, job.c0);
    };
    const long long wn = static_cast<long long>(wave.size());
    if (fan_out) {
      pool->parallel_for(wn, run_one);
    } else {
      for (long long wi = 0; wi < wn; ++wi) run_one(wi);
    }
  }
  if (waves_out != nullptr) *waves_out = static_cast<int>(waves.size());
  return static_cast<int>(jobs.size());
}

}  // namespace cp::extension
