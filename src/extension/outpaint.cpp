#include "extension/outpaint.h"

#include <stdexcept>
#include <vector>

namespace cp::extension {

namespace {

/// Window origin positions along one axis: 0, S, 2S, ..., with the last
/// clamped so the final window ends exactly at the target edge.
std::vector<int> axis_positions(int target, int window, int stride) {
  std::vector<int> pos{0};
  while (pos.back() + window < target) {
    pos.push_back(std::min(pos.back() + stride, target - window));
  }
  return pos;
}

}  // namespace

long long expected_samples_outpaint(int target_w, int target_h, int window, int stride) {
  auto per_axis = [&](int target) {
    return (target - window + stride - 1) / stride + 1;
  };
  return static_cast<long long>(per_axis(target_w)) * per_axis(target_h);
}

ExtensionResult extend_outpaint(const diffusion::TopologyGenerator& generator,
                                const squish::Topology& seed, int rows, int cols,
                                const ExtensionConfig& config, util::Rng& rng) {
  const int L = config.window;
  if (rows < L || cols < L) throw std::invalid_argument("extend_outpaint: target smaller than window");
  if (config.stride < 1 || config.stride > L) {
    throw std::invalid_argument("extend_outpaint: stride must be in [1, window]");
  }

  ExtensionResult result;
  result.topology = squish::Topology(rows, cols);
  squish::Topology known(rows, cols);  // 1 = already generated

  // Starting tile.
  squish::Topology start = seed;
  if (start.empty()) {
    diffusion::SampleConfig sc;
    sc.rows = L;
    sc.cols = L;
    sc.condition = config.condition;
    sc.sample_steps = config.sample_steps;
    start = generator.sample(sc, rng);
    ++result.model_calls;
  }
  if (start.rows() != L || start.cols() != L) {
    throw std::invalid_argument("extend_outpaint: seed must be window-sized");
  }
  result.topology.paste(start, 0, 0);
  known.paste(squish::Topology(L, L, 1), 0, 0);

  diffusion::ModifyConfig mc;
  mc.condition = config.condition;
  mc.sample_steps = config.sample_steps;
  mc.resample_rounds = config.resample_rounds;

  for (int r0 : axis_positions(rows, L, config.stride)) {
    for (int c0 : axis_positions(cols, L, config.stride)) {
      // Skip windows that are already fully known (the seed window).
      const squish::Topology keep = known.window(r0, c0, r0 + L, c0 + L);
      if (keep.popcount() == keep.size()) continue;
      const squish::Topology content = result.topology.window(r0, c0, r0 + L, c0 + L);
      squish::Topology filled = generator.modify(content, keep, mc, rng);
      ++result.model_calls;
      result.topology.paste(filled, r0, c0);
      known.paste(squish::Topology(L, L, 1), r0, c0);
    }
  }
  return result;
}

}  // namespace cp::extension
