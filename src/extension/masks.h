#pragma once
// Keep-mask builders for the extension algorithms. A keep mask has the same
// dims as the model window; 1 = preserve the pixel, 0 = regenerate.

#include "squish/topology.h"

namespace cp::extension {

/// All-zero (regenerate everything) / all-one masks.
squish::Topology full_mask(int rows, int cols, std::uint8_t value);

/// Keep everything except the horizontal band rows [band_r0, band_r1).
squish::Topology keep_except_row_band(int rows, int cols, int band_r0, int band_r1);

/// Keep everything except the vertical band cols [band_c0, band_c1).
squish::Topology keep_except_col_band(int rows, int cols, int band_c0, int band_c1);

/// Keep everything except the central box rows [r0,r1) x cols [c0,c1).
squish::Topology keep_except_box(int rows, int cols, int r0, int c0, int r1, int c1);

}  // namespace cp::extension
