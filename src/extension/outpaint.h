#pragma once
// Out-painting pattern extension (Figure 7, right): grow a pattern by
// sliding the model window across the target canvas with stride S; each
// window keeps the already-generated overlap region and generates the new
// border. The number of model calls follows the paper's formula
//     N_out = (ceil((W-L)/S)+1) * (ceil((H-L)/S)+1).

#include "diffusion/modification.h"
#include "util/thread_pool.h"

namespace cp::extension {

struct ExtensionConfig {
  int window = 128;  // L: the model's native size
  int stride = 64;   // S: out-painting stride (overlap = L - S)
  int condition = 0;
  int sample_steps = 16;
  /// Visited-subset placement for every window sample and seam repair
  /// (timestep_schedule.h) — fast mode covers extension end to end.
  diffusion::ScheduleKind schedule_kind = diffusion::ScheduleKind::kNoiseUniform;
  int resample_rounds = 1;
  /// Inference-precision tier applied to every window sample and seam repair
  /// (see diffusion::SampleConfig::precision).
  diffusion::Precision precision = diffusion::Precision::kFp32;
};

struct ExtensionResult {
  squish::Topology topology;
  int model_calls = 0;
  /// Number of scheduling waves the window sweep decomposed into (see
  /// extension/tile_schedule.h); model_calls / waves is the mean fan-out.
  int waves = 0;
};

/// Paper formula for the number of window samples.
long long expected_samples_outpaint(int target_w, int target_h, int window, int stride);

/// Extend to rows x cols (each >= window). If `seed` is non-empty it is
/// placed at the top-left as the starting window content; otherwise a fresh
/// window is sampled. With a `pool`, windows whose regions are independent
/// are denoised concurrently (per-window fork(i) RNG streams keep the
/// result bit-identical for any thread count).
ExtensionResult extend_outpaint(const diffusion::TopologyGenerator& generator,
                                const squish::Topology& seed, int rows, int cols,
                                const ExtensionConfig& config, util::Rng& rng,
                                util::ThreadPool* pool = nullptr);

}  // namespace cp::extension
