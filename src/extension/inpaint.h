#pragma once
// In-painting pattern extension (Figure 7, left): tile the target with
// independently sampled windows, then repair every tile border and corner by
// regenerating a band across the seam while keeping the tile interiors.
// The half-step window grid gives the paper's sample-count formula
//     N_in = (2*ceil(W/L) - 1) * (2*ceil(H/L) - 1).

#include "extension/outpaint.h"

namespace cp::extension {

/// Paper formula for the number of window samples.
long long expected_samples_inpaint(int target_w, int target_h, int window);

/// Build a rows x cols topology by tiling + seam in-painting. If `seed` is
/// non-empty it becomes the top-left tile. With a `pool`, phase-1 tiles
/// (fully independent) and non-adjacent seam repairs fan out concurrently;
/// per-window fork(i) RNG streams keep the result bit-identical for any
/// thread count.
ExtensionResult extend_inpaint(const diffusion::TopologyGenerator& generator,
                               const squish::Topology& seed, int rows, int cols,
                               const ExtensionConfig& config, util::Rng& rng,
                               util::ThreadPool* pool = nullptr);

}  // namespace cp::extension
