#include "extension/planner.h"

#include <stdexcept>

#include "util/strings.h"

namespace cp::extension {

const char* to_string(Method method) {
  return method == Method::kOutPainting ? "Out-Painting" : "In-Painting";
}

Method method_from_string(const std::string& name) {
  const std::string s = util::to_lower(name);
  if (s == "out" || s == "outpaint" || s == "outpainting" || s == "out-painting" ||
      s == "out_painting") {
    return Method::kOutPainting;
  }
  if (s == "in" || s == "inpaint" || s == "inpainting" || s == "in-painting" ||
      s == "in_painting") {
    return Method::kInPainting;
  }
  throw std::invalid_argument("method_from_string: unknown extension method '" + name + "'");
}

long long expected_samples(Method method, int target_w, int target_h, int window, int stride) {
  return method == Method::kOutPainting
             ? expected_samples_outpaint(target_w, target_h, window, stride)
             : expected_samples_inpaint(target_w, target_h, window);
}

ExtensionResult extend(const diffusion::TopologyGenerator& generator, Method method,
                       const squish::Topology& seed, int rows, int cols,
                       const ExtensionConfig& config, util::Rng& rng) {
  return method == Method::kOutPainting
             ? extend_outpaint(generator, seed, rows, cols, config, rng)
             : extend_inpaint(generator, seed, rows, cols, config, rng);
}

}  // namespace cp::extension
