#pragma once
// Dependency-respecting parallel execution of window (tile) jobs.
//
// Both extension algorithms are sweeps of window-sized model calls over a
// larger canvas: in-painting first fills independent tiles and then repairs
// seams, out-painting slides an overlapping window. Each job reads and
// writes only its own window, and its input content depends exactly on the
// earlier jobs whose windows overlap it. That gives a natural parallel
// schedule:
//
//   * job j is placed in the first wave strictly after every earlier-index
//     job whose window overlaps j's window;
//   * within a wave all windows are therefore pairwise disjoint, so the
//     jobs of one wave run concurrently without touching shared cells;
//   * job j always consumes Rng stream root.fork(j).
//
// Running the waves in order reproduces the serial per-ordinal sweep
// bit-for-bit: when job j starts, every earlier overlapping job has
// completed (earlier wave) and no other job can have modified j's window.
// Thread count changes only the wall clock, never the canvas. For
// non-overlapping tilings (in-painting phase 1, out-painting with
// stride == window) the whole phase collapses into one wave — the
// "independent tile denoising fan-out"; with stride < window the schedule
// degrades gracefully toward serial, exactly mirroring the true data
// dependencies.

#include <vector>

#include "diffusion/generator.h"
#include "diffusion/modification.h"
#include "diffusion/sampler.h"
#include "squish/topology.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cp::extension {

struct TileJob {
  int r0 = 0, c0 = 0;     // window origin on the canvas
  squish::Topology keep;  // window-sized keep mask; empty => fresh sample
};

/// Wave partition of `jobs` (windows are `window` x `window`): result[w] is
/// the list of job indices in wave w; every job appears exactly once, waves
/// preserve index order, and overlapping jobs never share a wave.
std::vector<std::vector<int>> tile_waves(const std::vector<TileJob>& jobs, int window);

/// Execute the jobs on `canvas` wave by wave. Sample jobs (empty keep) draw
/// a fresh window via `sc`; repair jobs regenerate the zero-mask cells of
/// their current window content via `mc`. Job j uses root.fork(j). Fans out
/// across `pool` when it is non-null, has > 1 worker and the generator is
/// thread-safe; otherwise runs serially with identical output. Returns the
/// number of model calls (== jobs.size()); if `waves_out` is non-null it
/// receives the number of waves (a parallelism diagnostic).
int run_tile_jobs(const diffusion::TopologyGenerator& generator, squish::Topology& canvas,
                  const std::vector<TileJob>& jobs, int window,
                  const diffusion::SampleConfig& sc, const diffusion::ModifyConfig& mc,
                  const util::Rng& root, util::ThreadPool* pool, int* waves_out = nullptr);

}  // namespace cp::extension
