#include "extension/inpaint.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "extension/masks.h"
#include "extension/tile_schedule.h"

namespace cp::extension {

namespace {

/// Tile origins: multiples of L with the last clamped inside the target.
std::vector<int> tile_positions(int target, int window) {
  std::vector<int> pos{0};
  while (pos.back() + window < target) {
    pos.push_back(std::min(pos.back() + window, target - window));
  }
  return pos;
}

}  // namespace

long long expected_samples_inpaint(int target_w, int target_h, int window) {
  const long long mw = (target_w + window - 1) / window;
  const long long mh = (target_h + window - 1) / window;
  return (2 * mw - 1) * (2 * mh - 1);
}

ExtensionResult extend_inpaint(const diffusion::TopologyGenerator& generator,
                               const squish::Topology& seed, int rows, int cols,
                               const ExtensionConfig& config, util::Rng& rng,
                               util::ThreadPool* pool) {
  const int L = config.window;
  if (rows < L || cols < L) throw std::invalid_argument("extend_inpaint: target smaller than window");
  if (!seed.empty() && (seed.rows() != L || seed.cols() != L)) {
    throw std::invalid_argument("extend_inpaint: seed must be window-sized");
  }

  ExtensionResult result;
  result.topology = squish::Topology(rows, cols);

  // Every phase is a list of window jobs whose keep masks are pure
  // geometry, so the whole sweep is planned upfront and handed to the wave
  // scheduler: phase-1 tiles are pairwise disjoint (one wave, full
  // fan-out), seam and corner repairs overlap their neighbours and land in
  // later waves automatically.
  std::vector<TileJob> jobs;

  // Phase 1: independent tiles (the concatenation).
  const std::vector<int> rpos = tile_positions(rows, L);
  const std::vector<int> cpos = tile_positions(cols, L);
  for (std::size_t i = 0; i < rpos.size(); ++i) {
    for (std::size_t j = 0; j < cpos.size(); ++j) {
      if (i == 0 && j == 0 && !seed.empty()) {
        result.topology.paste(seed, 0, 0);
        continue;
      }
      jobs.push_back(TileJob{rpos[i], cpos[j], squish::Topology()});  // fresh sample
    }
  }

  const int band = L / 2;
  // Phase 2: vertical seams (windows straddling tile column boundaries).
  // Interior boundaries are at the *start* of every tile except the first.
  for (std::size_t j = 1; j < cpos.size(); ++j) {
    const int boundary = cpos[j];
    const int c0 = std::clamp(boundary - L / 2, 0, cols - L);
    for (int r0 : rpos) {
      jobs.push_back(TileJob{
          r0, c0,
          keep_except_col_band(L, L, boundary - c0 - band / 2, boundary - c0 + band / 2)});
    }
  }
  // Phase 3: horizontal seams.
  for (std::size_t i = 1; i < rpos.size(); ++i) {
    const int boundary = rpos[i];
    const int r0 = std::clamp(boundary - L / 2, 0, rows - L);
    for (int c0 : cpos) {
      jobs.push_back(TileJob{
          r0, c0,
          keep_except_row_band(L, L, boundary - r0 - band / 2, boundary - r0 + band / 2)});
    }
  }
  // Phase 4: corners (both boundaries cross).
  for (std::size_t i = 1; i < rpos.size(); ++i) {
    for (std::size_t j = 1; j < cpos.size(); ++j) {
      const int rb = rpos[i];
      const int cb = cpos[j];
      const int r0 = std::clamp(rb - L / 2, 0, rows - L);
      const int c0 = std::clamp(cb - L / 2, 0, cols - L);
      jobs.push_back(TileJob{r0, c0,
                             keep_except_box(L, L, rb - r0 - band / 2, cb - c0 - band / 2,
                                             rb - r0 + band / 2, cb - c0 + band / 2)});
    }
  }

  diffusion::SampleConfig sc;
  sc.rows = L;
  sc.cols = L;
  sc.condition = config.condition;
  sc.sample_steps = config.sample_steps;
  sc.schedule_kind = config.schedule_kind;
  sc.precision = config.precision;
  diffusion::ModifyConfig mc;
  mc.condition = config.condition;
  mc.sample_steps = config.sample_steps;
  mc.schedule_kind = config.schedule_kind;
  mc.resample_rounds = config.resample_rounds;
  mc.precision = config.precision;

  result.model_calls = run_tile_jobs(generator, result.topology, jobs, L, sc, mc, rng.fork(),
                                     pool, &result.waves);
  return result;
}

}  // namespace cp::extension
