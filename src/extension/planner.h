#pragma once
// Free-size extension front door: dispatches between the two algorithms and
// exposes the sample-count formulas. The *choice* of algorithm for a given
// request is made by the agent (using its experience store, Section 3.1
// "Learning from Documents and Experience"); this module only executes.

#include <string>

#include "extension/inpaint.h"
#include "extension/outpaint.h"

namespace cp::extension {

enum class Method { kOutPainting, kInPainting };

const char* to_string(Method method);
/// Parses "out"/"outpaint"/"out-painting" etc.; throws on unknown names.
Method method_from_string(const std::string& name);

/// Number of model window samples the method will use.
long long expected_samples(Method method, int target_w, int target_h, int window, int stride);

/// Extend `seed` (may be empty) to rows x cols with the chosen method.
ExtensionResult extend(const diffusion::TopologyGenerator& generator, Method method,
                       const squish::Topology& seed, int rows, int cols,
                       const ExtensionConfig& config, util::Rng& rng);

}  // namespace cp::extension
