#include "core/chatpattern.h"

#include <fstream>

#include "dataset/style.h"
#include "obs/registry.h"
#include "util/logging.h"

namespace cp::core {

ChatPattern::ChatPattern(const ChatPatternConfig& config) : config_(config) {
  const obs::Span span = obs::trace_scope("core/build_backend");
  // 1. Datasets: one per style, normalised to the model window.
  for (int s = 0; s < dataset::kStyleCount; ++s) {
    dataset::DatasetConfig dc;
    dc.style = s;
    dc.window_nm = config.window_nm;
    dc.topo_size = config.window;
    dc.count = config.train_clips_per_class;
    dc.seed = config.seed + static_cast<std::uint64_t>(s) * 101;
    training_sets_.push_back(dataset::build_dataset(dc));
    CP_LOG_INFO << "ChatPattern: dataset " << dataset::style_name(s) << " built ("
                << training_sets_.back().topologies.size() << " clips, "
                << training_sets_.back().rejected << " rejected)";
  }

  // 2. Diffusion model: schedule + conditional tabular denoiser.
  diffusion::ScheduleConfig sc;
  sc.steps = config.diffusion_steps;
  schedule_ = std::make_unique<diffusion::NoiseSchedule>(sc);
  diffusion::TabularConfig tc;
  tc.conditions = dataset::kStyleCount;
  tc.time_buckets = config.time_buckets;
  tc.draws_per_bucket = config.draws_per_bucket;
  std::vector<std::vector<squish::Topology>> per_class;
  std::vector<std::vector<squish::Topology>> per_class_coarse;
  for (const auto& ds : training_sets_) {
    per_class.push_back(ds.topologies);
    std::vector<squish::Topology> coarse;
    coarse.reserve(ds.topologies.size());
    for (const auto& t : ds.topologies) {
      coarse.push_back(squish::downsample_majority(t, config.cascade.factor));
    }
    per_class_coarse.push_back(std::move(coarse));
  }
  bool loaded = false;
  if (!config.model_cache_path.empty()) {
    std::ifstream is(config.model_cache_path, std::ios::binary);
    if (is) {
      try {
        denoiser_ = std::make_unique<diffusion::TabularDenoiser>(*schedule_, tc);
        coarse_denoiser_ = std::make_unique<diffusion::TabularDenoiser>(*schedule_, tc);
        denoiser_->load(is);
        coarse_denoiser_->load(is);
        loaded = true;
        CP_LOG_INFO << "ChatPattern: loaded denoisers from " << config.model_cache_path;
      } catch (const std::exception& e) {
        CP_LOG_WARN << "ChatPattern: cache load failed (" << e.what() << "); re-fitting";
        loaded = false;
      }
    }
  }
  if (!loaded) {
    denoiser_ = std::make_unique<diffusion::TabularDenoiser>(
        diffusion::fit_tabular(*schedule_, tc, per_class, config.seed + 7));
    coarse_denoiser_ = std::make_unique<diffusion::TabularDenoiser>(
        diffusion::fit_tabular(*schedule_, tc, per_class_coarse, config.seed + 11));
    if (!config.model_cache_path.empty()) {
      std::ofstream os(config.model_cache_path, std::ios::binary);
      if (os) {
        denoiser_->save(os);
        coarse_denoiser_->save(os);
        CP_LOG_INFO << "ChatPattern: cached denoisers to " << config.model_cache_path;
      }
    }
  }
  sampler_ = std::make_unique<diffusion::CascadeSampler>(*schedule_, *coarse_denoiser_,
                                                         *denoiser_, config.cascade);

  // 3. Per-style legalizers.
  for (int s = 0; s < dataset::kStyleCount; ++s) {
    legalizers_.push_back(
        std::make_unique<legalize::Legalizer>(drc::rules_for_style(dataset::style_name(s))));
  }

  // 4. Agent stack: store, tools, experience, session.
  store_ = std::make_unique<agent::PatternStore>();
  experience_ = std::make_unique<agent::ExperienceStore>();
  agent::GeneratorBackend backend;
  backend.sampler = sampler_.get();
  for (const auto& l : legalizers_) backend.legalizers.push_back(l.get());
  backend.store = store_.get();
  backend.window = config.window;
  backend.default_stride = config.window / 2;
  backend.seed_mix = config.seed * 0x9e3779b97f4a7c15ULL;
  tools_ = std::make_unique<agent::ToolRegistry>(agent::make_standard_tools(backend));
  session_ = std::make_unique<agent::ChatSession>(
      tools_.get(), std::make_unique<agent::ScriptedBrain>(), store_.get(), experience_.get(),
      config.window);
}

agent::SessionReport ChatPattern::customize(const std::string& request) {
  return session_->handle(request);
}

PatternLibrary ChatPattern::library_of(const agent::SubtaskReport& subtask) const {
  PatternLibrary lib(subtask.requirement.style);
  for (const std::string& id : subtask.execution.pattern_ids) {
    if (store_->has_pattern(id)) lib.add(store_->pattern(id));
  }
  return lib;
}

}  // namespace cp::core
