#include "core/pattern_library.h"

#include <filesystem>
#include <fstream>

#include "io/gds.h"
#include "util/strings.h"

namespace cp::core {

metrics::LegalityResult PatternLibrary::legality(const drc::DesignRules& rules) const {
  return metrics::legality(patterns_, rules);
}

double PatternLibrary::diversity() const {
  std::vector<squish::Topology> topos;
  topos.reserve(patterns_.size());
  for (const auto& p : patterns_) topos.push_back(p.topology);
  return metrics::diversity(topos);
}

int PatternLibrary::export_pbm(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  std::ofstream manifest(dir + "/manifest.txt");
  manifest << "style " << style_ << "\ncount " << patterns_.size() << "\n";
  int written = 0;
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    const std::string name = util::format("pattern_%05zu.pbm", i);
    std::ofstream out(dir + "/" + name);
    out << patterns_[i].topology.to_pbm();
    manifest << name << " " << patterns_[i].width_nm() << "x" << patterns_[i].height_nm()
             << " nm\n";
    ++written;
  }
  return written + 1;
}

int PatternLibrary::export_gds(const std::string& path, int layer) const {
  io::GdsLibrary lib;
  lib.name = "CHATPATTERN_" + style_;
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    io::GdsStructure str;
    str.name = util::format("PATTERN_%05zu", i);
    str.layer = layer;
    str.rects = squish::unsquish(patterns_[i]);
    lib.structures.push_back(std::move(str));
  }
  io::write_gds(path, lib);
  return static_cast<int>(lib.structures.size());
}

}  // namespace cp::core
