#include "core/pattern_library.h"

#include <algorithm>
#include <filesystem>

#include "core/populate_journal.h"
#include "io/gds.h"
#include "obs/registry.h"
#include "util/fs.h"
#include "util/strings.h"

namespace cp::core {

PopulateStats PatternLibrary::populate(const diffusion::TopologyGenerator& generator,
                                       const legalize::Legalizer& legalizer,
                                       const diffusion::SampleConfig& sample_config,
                                       geometry::Coord width_nm, geometry::Coord height_nm,
                                       int count, std::uint64_t seed, util::ThreadPool* pool,
                                       long long max_attempts, PopulateJournal* journal) {
  const obs::Span span = obs::trace_scope("library/populate");
  PopulateStats stats;
  if (count <= 0) {
    stats.complete = true;
    return stats;
  }
  if (max_attempts <= 0) max_attempts = 16LL * count + 64;
  const util::Rng root(seed);
  const diffusion::BatchSampler batch(generator, pool);

  int accepted = 0;
  std::uint64_t next_stream = 0;

  // Resume from a journal of completed rounds, if one matches this run.
  // Candidates are derived statelessly from (seed, stream index), so
  // continuing at the journalled next_stream replays exactly the rounds an
  // uninterrupted run would have executed next.
  if (journal != nullptr) {
    PopulateJournal::Fingerprint fp;
    fp.seed = seed;
    fp.count = count;
    fp.width_nm = width_nm;
    fp.height_nm = height_nm;
    fp.max_attempts = max_attempts;
    PopulateJournal::State restored;
    if (journal->open(fp, &restored)) {
      stats.attempts = restored.attempts;
      stats.rounds = restored.rounds;
      next_stream = restored.next_stream;
      accepted = static_cast<int>(restored.patterns.size());
      for (auto& p : restored.patterns) patterns_.push_back(std::move(p));
      obs::count("library/journal_resumes");
      obs::count("library/journal_restored_patterns", accepted);
    }
  }

  while (accepted < count && stats.attempts < max_attempts) {
    // Oversample by the observed rejection rate (at least 2x the remaining
    // need) so most libraries fill in one or two rounds, clipped to the
    // attempt budget.
    const int remaining = count - accepted;
    const double yield = stats.attempts == 0
                             ? 0.5
                             : std::max(0.05, static_cast<double>(accepted) /
                                                  static_cast<double>(stats.attempts));
    const long long want = std::min<long long>(
        max_attempts - stats.attempts,
        std::max<long long>(remaining * 2, static_cast<long long>(remaining / yield) + 1));
    ++stats.rounds;
    obs::count("library/rounds");
    const obs::Span round_span = obs::trace_scope("round");

    const std::vector<squish::Topology> candidates =
        batch.sample_batch(sample_config, static_cast<int>(want), root, next_stream);
    next_stream += static_cast<std::uint64_t>(want);

    // Legalization is independent per candidate: fan it out into slots,
    // then accept in stream order until the library is full.
    const obs::Span legalize_span = obs::trace_scope("legalize_batch");
    std::vector<legalize::LegalizeResult> results(candidates.size());
    auto legalize_one = [&](long long i) {
      results[static_cast<std::size_t>(i)] =
          legalizer.legalize(candidates[static_cast<std::size_t>(i)], width_nm, height_nm);
    };
    const long long n = static_cast<long long>(candidates.size());
    if (pool != nullptr && pool->size() > 1) {
      pool->parallel_for(n, legalize_one);
    } else {
      for (long long i = 0; i < n; ++i) legalize_one(i);
    }

    const std::size_t round_start = patterns_.size();
    for (long long i = 0; i < n && accepted < count; ++i) {
      ++stats.attempts;
      legalize::LegalizeResult& res = results[static_cast<std::size_t>(i)];
      if (res.ok()) {
        patterns_.push_back(std::move(*res.pattern));
        ++accepted;
      }
    }
    if (journal != nullptr) {
      journal->append_round(stats.attempts, stats.rounds, next_stream, patterns_, round_start);
    }
  }
  stats.complete = accepted == count;
  obs::count("library/attempts", stats.attempts);
  obs::count("library/accepted", accepted);
  if (!stats.complete) obs::count("library/incomplete_populates");
  return stats;
}

metrics::LegalityResult PatternLibrary::legality(const drc::DesignRules& rules) const {
  return metrics::legality(patterns_, rules);
}

double PatternLibrary::diversity() const {
  std::vector<squish::Topology> topos;
  topos.reserve(patterns_.size());
  for (const auto& p : patterns_) topos.push_back(p.topology);
  return metrics::diversity(topos);
}

int PatternLibrary::export_pbm(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  std::string manifest = "style " + style_ + "\ncount " + std::to_string(patterns_.size()) + "\n";
  int written = 0;
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    const std::string name = util::format("pattern_%05zu.pbm", i);
    util::atomic_write_file(dir + "/" + name, patterns_[i].topology.to_pbm());
    manifest += util::format("%s %lldx%lld nm\n", name.c_str(),
                             static_cast<long long>(patterns_[i].width_nm()),
                             static_cast<long long>(patterns_[i].height_nm()));
    ++written;
  }
  // Atomic: a reader (or a crash) never observes a manifest that names files
  // which were not fully written.
  util::atomic_write_file(dir + "/manifest.txt", manifest);
  return written + 1;
}

int PatternLibrary::export_gds(const std::string& path, int layer) const {
  io::GdsLibrary lib;
  lib.name = "CHATPATTERN_" + style_;
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    io::GdsStructure str;
    str.name = util::format("PATTERN_%05zu", i);
    str.layer = layer;
    str.rects = squish::unsquish(patterns_[i]);
    lib.structures.push_back(std::move(str));
  }
  io::write_gds(path, lib);
  return static_cast<int>(lib.structures.size());
}

int PatternLibrary::export_store(pattlib::PatternStore& store, int layer) const {
  int inserted = 0;
  for (const squish::SquishPattern& p : patterns_) {
    pattlib::PatternMeta meta;
    meta.source = "generated";
    meta.style_tag = style_;
    meta.layer = layer;
    if (store.add(p, std::move(meta)).inserted) ++inserted;
  }
  store.flush();
  return inserted;
}

PatternLibrary PatternLibrary::from_store(const pattlib::PatternStore& store,
                                          const std::vector<std::uint64_t>& ids,
                                          std::string style) {
  PatternLibrary lib(std::move(style));
  for (const std::uint64_t id : ids) lib.add(store.at(id).pattern);
  return lib;
}

}  // namespace cp::core
