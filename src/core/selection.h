#pragma once
// Topology selection (Section 4.1): "every squish-pattern-based method can
// reach 100% legality via selection" — generate surplus topologies and keep
// only those that legalize. The paper *removes* this step when comparing
// models (and so do the benches); it is provided here because a production
// library builder wants it, and bench/ablation_sampler quantifies its cost.

#include <vector>

#include "diffusion/sampler.h"
#include "legalize/legalizer.h"

namespace cp::core {

struct SelectionResult {
  std::vector<squish::SquishPattern> patterns;  // exactly `count` on success
  long long attempts = 0;                       // topologies sampled in total
  bool complete = false;                        // false if the budget ran out
};

/// Sample until `count` legal patterns exist (or the attempt budget runs
/// out). Every returned pattern is DRC-clean by construction.
SelectionResult select_legal(const diffusion::TopologyGenerator& generator,
                             const legalize::Legalizer& legalizer,
                             const diffusion::SampleConfig& sample_config,
                             geometry::Coord width_nm, geometry::Coord height_nm, int count,
                             util::Rng& rng, long long max_attempts = 0);

}  // namespace cp::core
