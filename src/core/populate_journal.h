#pragma once
// Crash-safe work journal for PatternLibrary::populate.
//
// populate generates patterns in rounds; the journal appends one
// self-checksummed record per completed round (counters + the patterns
// accepted that round). A killed run restarted against the same journal
// restores every completed round and resumes at the next round boundary —
// regenerating zero already-accepted patterns — and, because a round's
// candidates are derived statelessly from (seed, stream index), the resumed
// library is bit-identical to an uninterrupted run.
//
// File layout: a sequence of records, each
//   [u32 payload_len][payload][u32 crc32(payload)]
// The first record is a header carrying a magic/version and the run
// fingerprint (seed, count, window, attempt budget). A crash mid-append
// leaves a torn final record, which fails its CRC and is dropped on load;
// everything before it is intact. A journal whose fingerprint does not
// match the current run is discarded and restarted fresh.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "geometry/polygon.h"
#include "squish/squish.h"

namespace cp::core {

class PopulateJournal {
 public:
  /// Identifies one populate run; a journal only resumes a run with the
  /// identical fingerprint.
  struct Fingerprint {
    std::uint64_t seed = 0;
    std::int32_t count = 0;
    std::int64_t width_nm = 0;
    std::int64_t height_nm = 0;
    std::int64_t max_attempts = 0;
  };

  /// Completed-round state restored by open().
  struct State {
    long long attempts = 0;
    int rounds = 0;
    std::uint64_t next_stream = 0;
    std::vector<squish::SquishPattern> patterns;
  };

  explicit PopulateJournal(std::string path) : path_(std::move(path)) {}

  /// Open the journal for a run with fingerprint `fp`. When the file exists,
  /// matches the fingerprint and holds at least one intact round record,
  /// restores that state into *state and returns true (later appends extend
  /// the journal). A missing, foreign, fingerprint-mismatched or
  /// header-corrupt file starts a fresh journal (truncating it) and returns
  /// false. Never throws on corrupt content — a journal is an optimisation,
  /// losing it only costs recomputation.
  bool open(const Fingerprint& fp, State* state);

  /// Append one completed round: the counter values after the round and the
  /// patterns accepted during it (patterns[first_new..end)). Flushed
  /// immediately; a torn append is dropped by the next open().
  void append_round(long long attempts, int rounds, std::uint64_t next_stream,
                    const std::vector<squish::SquishPattern>& patterns, std::size_t first_new);

  const std::string& path() const { return path_; }

 private:
  void start_fresh(const Fingerprint& fp);

  std::string path_;
  std::ofstream out_;
};

}  // namespace cp::core
