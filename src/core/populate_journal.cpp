#include "core/populate_journal.h"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "util/fs.h"

namespace cp::core {

namespace {

constexpr char kMagic[4] = {'C', 'P', 'P', 'J'};
constexpr std::uint32_t kVersion = 1;
// A single record holds at most one round of patterns; anything larger than
// this is a corrupt length field, not a real payload.
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

template <typename T>
void put(std::string& buf, const T& v) {
  const char* p = reinterpret_cast<const char*>(&v);
  buf.append(p, sizeof(v));
}

template <typename T>
bool get(const std::string& buf, std::size_t& pos, T& v) {
  if (buf.size() - pos < sizeof(v)) return false;
  std::memcpy(&v, buf.data() + pos, sizeof(v));
  pos += sizeof(v);
  return true;
}

std::string header_payload(const PopulateJournal::Fingerprint& fp) {
  std::string buf;
  buf.append(kMagic, sizeof(kMagic));
  put(buf, kVersion);
  put(buf, fp.seed);
  put(buf, fp.count);
  put(buf, fp.width_nm);
  put(buf, fp.height_nm);
  put(buf, fp.max_attempts);
  return buf;
}

void put_deltas(std::string& buf, const squish::DeltaVec& d) {
  put(buf, static_cast<std::uint32_t>(d.size()));
  for (geometry::Coord v : d) put(buf, static_cast<std::int64_t>(v));
}

bool get_deltas(const std::string& buf, std::size_t& pos, squish::DeltaVec& d) {
  std::uint32_t n = 0;
  if (!get(buf, pos, n)) return false;
  if (buf.size() - pos < static_cast<std::size_t>(n) * sizeof(std::int64_t)) return false;
  d.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::int64_t v = 0;
    get(buf, pos, v);
    d[i] = static_cast<geometry::Coord>(v);
  }
  return true;
}

void put_pattern(std::string& buf, const squish::SquishPattern& p) {
  put(buf, static_cast<std::int32_t>(p.topology.rows()));
  put(buf, static_cast<std::int32_t>(p.topology.cols()));
  // On-disk format stays one byte per cell regardless of the packed in-memory
  // representation, so journals written before the packing refactor replay.
  const std::vector<std::uint8_t> cells = p.topology.to_bytes();
  buf.append(reinterpret_cast<const char*>(cells.data()), cells.size());
  put_deltas(buf, p.dx);
  put_deltas(buf, p.dy);
}

bool get_pattern(const std::string& buf, std::size_t& pos, squish::SquishPattern& p) {
  std::int32_t rows = 0, cols = 0;
  if (!get(buf, pos, rows) || !get(buf, pos, cols)) return false;
  if (rows < 0 || cols < 0 || rows > 1 << 16 || cols > 1 << 16) return false;
  const std::size_t cells = static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  if (buf.size() - pos < cells) return false;
  try {
    // from_bytes rejects any cell byte outside {0,1}: a record that passed the
    // CRC but carries non-binary cells is treated as corrupt, not replayed.
    p.topology = squish::Topology::from_bytes(
        rows, cols, reinterpret_cast<const std::uint8_t*>(buf.data() + pos), cells);
  } catch (const std::invalid_argument&) {
    return false;
  }
  pos += cells;
  return get_deltas(buf, pos, p.dx) && get_deltas(buf, pos, p.dy);
}

/// Read the next [len][payload][crc] record; returns false at end-of-file or
/// on any corruption (torn tail).
bool next_record(const std::string& data, std::size_t& pos, std::string& payload) {
  std::uint32_t len = 0;
  if (data.size() - pos < sizeof(len)) return false;
  std::memcpy(&len, data.data() + pos, sizeof(len));
  if (len == 0 || len > kMaxRecordBytes) return false;
  if (data.size() - pos < sizeof(len) + len + sizeof(std::uint32_t)) return false;
  pos += sizeof(len);
  payload.assign(data.data() + pos, len);
  pos += len;
  std::uint32_t stored = 0;
  std::memcpy(&stored, data.data() + pos, sizeof(stored));
  pos += sizeof(stored);
  return stored == util::crc32(payload);
}

}  // namespace

bool PopulateJournal::open(const Fingerprint& fp, State* state) {
  std::string data;
  try {
    data = util::read_file(path_, kMaxRecordBytes);
  } catch (const std::exception&) {
    data.clear();  // missing or unreadable: start fresh below
  }

  const std::string expect_header = header_payload(fp);
  std::size_t pos = 0;
  std::string payload;
  bool resumed = false;
  if (next_record(data, pos, payload) && payload == expect_header) {
    // Replay every intact round record; each carries the full counters and
    // the patterns accepted during that round.
    State restored;
    while (next_record(data, pos, payload)) {
      std::size_t p = 0;
      std::int64_t attempts = 0;
      std::int32_t rounds = 0;
      std::uint64_t next_stream = 0;
      std::uint32_t n_new = 0;
      if (!get(payload, p, attempts) || !get(payload, p, rounds) ||
          !get(payload, p, next_stream) || !get(payload, p, n_new)) {
        break;
      }
      std::vector<squish::SquishPattern> round_patterns(n_new);
      bool ok = true;
      for (std::uint32_t i = 0; i < n_new && ok; ++i) ok = get_pattern(payload, p, round_patterns[i]);
      if (!ok) break;
      restored.attempts = attempts;
      restored.rounds = rounds;
      restored.next_stream = next_stream;
      for (auto& pat : round_patterns) restored.patterns.push_back(std::move(pat));
    }
    if (restored.rounds > 0) {
      *state = std::move(restored);
      resumed = true;
    }
  }

  if (resumed) {
    out_.open(path_, std::ios::binary | std::ios::app);
  } else {
    start_fresh(fp);
  }
  if (!out_) throw std::runtime_error("PopulateJournal: cannot open " + path_);
  return resumed;
}

void PopulateJournal::start_fresh(const Fingerprint& fp) {
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) return;
  const std::string payload = header_payload(fp);
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = util::crc32(payload);
  out_.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out_.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out_.flush();
}

void PopulateJournal::append_round(long long attempts, int rounds, std::uint64_t next_stream,
                                   const std::vector<squish::SquishPattern>& patterns,
                                   std::size_t first_new) {
  if (!out_.is_open()) return;
  std::string payload;
  put(payload, static_cast<std::int64_t>(attempts));
  put(payload, static_cast<std::int32_t>(rounds));
  put(payload, next_stream);
  put(payload, static_cast<std::uint32_t>(patterns.size() - first_new));
  for (std::size_t i = first_new; i < patterns.size(); ++i) put_pattern(payload, patterns[i]);
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = util::crc32(payload);
  out_.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out_.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out_.flush();
}

}  // namespace cp::core
