#pragma once
// A pattern library: the deliverable of a ChatPattern request. Bundles the
// legalized patterns of one style with metric helpers and disk export.

#include <string>
#include <vector>

#include "diffusion/batch_sampler.h"
#include "drc/rules.h"
#include "legalize/legalizer.h"
#include "metrics/metrics.h"
#include "pattlib/pattern_store.h"
#include "squish/squish.h"
#include "util/thread_pool.h"

namespace cp::core {

class PopulateJournal;

/// Outcome of PatternLibrary::populate.
struct PopulateStats {
  long long attempts = 0;  // topologies sampled in total
  bool complete = false;   // false if the attempt budget ran out
  int rounds = 0;          // generation rounds used
};

class PatternLibrary {
 public:
  PatternLibrary() = default;
  explicit PatternLibrary(std::string style) : style_(std::move(style)) {}

  void add(squish::SquishPattern pattern) { patterns_.push_back(std::move(pattern)); }

  /// Batch population: append `count` DRC-clean patterns by sampling and
  /// legalizing candidates in parallel rounds on `pool` (null = serial).
  /// Candidate (round, i) always consumes Rng stream fork-derived from
  /// (seed, round, i) and candidates are accepted in stream order, so the
  /// resulting library is bit-identical for every thread count. The
  /// parallel analogue of core::select_legal (see selection.h); benches use
  /// that serial form, a production library builder uses this.
  ///
  /// With a `journal` (see populate_journal.h) each completed round is
  /// persisted: a killed run restarted against the same journal restores all
  /// previously accepted patterns instead of regenerating them, and the
  /// final library is bit-identical to an uninterrupted run.
  PopulateStats populate(const diffusion::TopologyGenerator& generator,
                         const legalize::Legalizer& legalizer,
                         const diffusion::SampleConfig& sample_config,
                         geometry::Coord width_nm, geometry::Coord height_nm, int count,
                         std::uint64_t seed, util::ThreadPool* pool = nullptr,
                         long long max_attempts = 0, PopulateJournal* journal = nullptr);
  std::size_t size() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }
  const std::string& style() const { return style_; }
  const std::vector<squish::SquishPattern>& patterns() const { return patterns_; }
  const squish::SquishPattern& at(std::size_t i) const { return patterns_[i]; }

  /// Re-checked legality under `rules` (Definition 1).
  metrics::LegalityResult legality(const drc::DesignRules& rules) const;

  /// Diversity of the topologies (Definition 2).
  double diversity() const;

  /// Write every pattern as a PBM image plus a manifest.txt into `dir`
  /// (created if missing). Returns the number of files written.
  int export_pbm(const std::string& dir) const;

  /// Write the library as a GDSII stream file (one structure per pattern,
  /// coordinates in nm on the given layer). Loads into standard layout
  /// viewers. Returns the number of structures written.
  int export_gds(const std::string& path, int layer = 1) const;

  /// Append every pattern to a persistent pattlib::PatternStore, tagged with
  /// this library's style and source "generated". Duplicates (by canonical
  /// topology hash) are dropped by the store; returns the number actually
  /// inserted.
  int export_store(pattlib::PatternStore& store, int layer = 1) const;

  /// Build a library from store entries — the retrieval bridge used by the
  /// serve layer and the library CLI. Throws std::out_of_range on unknown
  /// ids.
  static PatternLibrary from_store(const pattlib::PatternStore& store,
                                   const std::vector<std::uint64_t>& ids, std::string style);

 private:
  std::string style_;
  std::vector<squish::SquishPattern> patterns_;
};

}  // namespace cp::core
