#include "core/selection.h"

namespace cp::core {

SelectionResult select_legal(const diffusion::TopologyGenerator& generator,
                             const legalize::Legalizer& legalizer,
                             const diffusion::SampleConfig& sample_config,
                             geometry::Coord width_nm, geometry::Coord height_nm, int count,
                             util::Rng& rng, long long max_attempts) {
  SelectionResult result;
  if (max_attempts <= 0) max_attempts = 16LL * count + 64;
  while (static_cast<int>(result.patterns.size()) < count &&
         result.attempts < max_attempts) {
    ++result.attempts;
    const squish::Topology t = generator.sample(sample_config, rng);
    legalize::LegalizeResult res = legalizer.legalize(t, width_nm, height_nm);
    if (res.ok()) result.patterns.push_back(std::move(*res.pattern));
  }
  result.complete = static_cast<int>(result.patterns.size()) == count;
  return result;
}

}  // namespace cp::core
