#pragma once
// The ChatPattern facade: the one-stop public API of the library.
//
// Construction assembles and trains the whole stack — synthetic datasets for
// every style, the conditional discrete diffusion model (tabular denoiser by
// default), the per-style legalizers, the tool registry and the agent — so a
// downstream user can do:
//
//   cp::core::ChatPattern chat(cp::core::ChatPatternConfig{});
//   auto report = chat.customize(
//       "Generate 50 patterns of 256x256 in Layer-10003 style.");
//   cp::core::PatternLibrary lib = chat.library_of(report.subtasks[0]);
//
// The lower-level handles (sampler, legalizer, datasets) are exposed for
// benchmarking and research use.

#include <memory>
#include <string>
#include <vector>

#include "agent/chat_session.h"
#include "core/pattern_library.h"
#include "dataset/builder.h"
#include "diffusion/cascade.h"
#include "diffusion/trainer.h"

namespace cp::core {

struct ChatPatternConfig {
  int window = 128;            // model size L
  int diffusion_steps = 1000;  // K (paper value; sampling is strided)
  int sample_steps = 16;       // visited reverse steps on CPU
  diffusion::CascadeConfig cascade;  // coarse-to-fine sampling parameters
  int train_clips_per_class = 160;
  int draws_per_bucket = 2;    // tabular-denoiser training draws
  int time_buckets = 8;
  geometry::Coord window_nm = 2048;  // physical size of one window
  std::uint64_t seed = 1;
  /// When non-empty, the trained denoisers are cached here: if the file
  /// exists and is compatible it is loaded instead of re-fitting, otherwise
  /// it is written after training (warm restarts for repeated runs).
  std::string model_cache_path;
};

class ChatPattern {
 public:
  explicit ChatPattern(const ChatPatternConfig& config);

  /// Natural-language front door (Figures 1 and 4).
  agent::SessionReport customize(const std::string& request);

  /// Collect the legalized patterns a sub-task produced.
  PatternLibrary library_of(const agent::SubtaskReport& subtask) const;

  // ---- research-grade direct access ----
  const diffusion::TopologyGenerator& sampler() const { return *sampler_; }
  /// Single-resolution sampler over the fine denoiser (ablations, tests).
  const diffusion::DiffusionSampler& fine_sampler() const { return sampler_->fine_sampler(); }
  const legalize::Legalizer& legalizer(int style) const { return *legalizers_.at(style); }
  const dataset::Dataset& training_set(int style) const {
    return training_sets_.at(static_cast<std::size_t>(style));
  }
  const diffusion::NoiseSchedule& schedule() const { return *schedule_; }
  agent::PatternStore& store() { return *store_; }
  agent::ExperienceStore& experience() { return *experience_; }
  const agent::ToolRegistry& tools() const { return *tools_; }
  const ChatPatternConfig& config() const { return config_; }

  /// Physical nm per topology cell at the native scale.
  geometry::Coord nm_per_cell() const { return config_.window_nm / config_.window; }

 private:
  ChatPatternConfig config_;
  std::vector<dataset::Dataset> training_sets_;
  std::unique_ptr<diffusion::NoiseSchedule> schedule_;
  std::unique_ptr<diffusion::TabularDenoiser> denoiser_;         // fine resolution
  std::unique_ptr<diffusion::TabularDenoiser> coarse_denoiser_;  // 1/factor resolution
  std::unique_ptr<diffusion::CascadeSampler> sampler_;
  std::vector<std::unique_ptr<legalize::Legalizer>> legalizers_;
  std::unique_ptr<agent::PatternStore> store_;
  std::unique_ptr<agent::ExperienceStore> experience_;
  std::unique_ptr<agent::ToolRegistry> tools_;
  std::unique_ptr<agent::ChatSession> session_;
};

}  // namespace cp::core
