#include "geometry/polygon.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace cp::geometry {

Rect Rect::clipped_to(const Rect& o) const {
  Rect r;
  r.x0 = std::max(x0, o.x0);
  r.y0 = std::max(y0, o.y0);
  r.x1 = std::min(x1, o.x1);
  r.y1 = std::min(y1, o.y1);
  if (r.empty()) return Rect{};
  return r;
}

Rect bounding_box(const std::vector<Rect>& rects) {
  if (rects.empty()) return Rect{};
  Rect b{std::numeric_limits<Coord>::max(), std::numeric_limits<Coord>::max(),
         std::numeric_limits<Coord>::min(), std::numeric_limits<Coord>::min()};
  for (const Rect& r : rects) {
    b.x0 = std::min(b.x0, r.x0);
    b.y0 = std::min(b.y0, r.y0);
    b.x1 = std::max(b.x1, r.x1);
    b.y1 = std::max(b.y1, r.y1);
  }
  return b;
}

Coord Polygon::area() const {
  Coord a = 0;
  for (const Rect& r : rects) a += r.area();
  return a;
}

Rect Polygon::bbox() const { return bounding_box(rects); }

Coord Polygon::min_feature() const {
  Coord m = std::numeric_limits<Coord>::max();
  for (const Rect& r : rects) m = std::min(m, std::min(r.width(), r.height()));
  return rects.empty() ? 0 : m;
}

namespace {
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};
}  // namespace

std::vector<Polygon> group_into_polygons(const std::vector<Rect>& rects) {
  const std::size_t n = rects.size();
  UnionFind uf(n);
  // Sweep by x to avoid the full quadratic pass on large patterns: sort by
  // x0 and only compare against rects whose x-interval can still touch.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return rects[a].x0 < rects[b].x0; });
  for (std::size_t i = 0; i < n; ++i) {
    const Rect& a = rects[order[i]];
    for (std::size_t j = i + 1; j < n; ++j) {
      const Rect& b = rects[order[j]];
      if (b.x0 > a.x1) break;  // no later rect can touch `a`
      if (a.touches(b)) uf.unite(order[i], order[j]);
    }
  }
  std::vector<Polygon> polys;
  std::vector<long long> root_to_poly(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = uf.find(i);
    if (root_to_poly[root] < 0) {
      root_to_poly[root] = static_cast<long long>(polys.size());
      polys.emplace_back();
    }
    polys[static_cast<std::size_t>(root_to_poly[root])].rects.push_back(rects[i]);
  }
  return polys;
}

}  // namespace cp::geometry
