#pragma once
// Bit-packed binary occupancy grids.
//
// One cell per bit, 64 cells per `std::uint64_t` word, row-major with a
// word-aligned row pitch of `words_per_row = ceil(cols / 64)` words. Within a
// word the least-significant bit is the lowest column index: cell (r, c) is
// bit `c % 64` of word `r * words_per_row + c / 64`. Bits at positions >= cols
// in the last word of a row (the "tail") must be zero — see docs/GRID.md for
// the full layout contract and kernel-writing idioms.
//
// This header is the geometry-side view of that layout. squish::Topology owns
// the canonical packed storage and exposes it as a BitGridView; modules that
// build transient grids of their own (e.g. the GDS reader's point-in-polygon
// raster) use the owning BitGrid. Geometry stays deliberately independent of
// the squish module to keep the dependency graph acyclic.

#include <cstdint>
#include <vector>

namespace cp::geometry {

/// Number of cells per storage word.
inline constexpr int kBitGridWordBits = 64;

/// Words needed to hold `cols` cells in one row.
constexpr int bitgrid_words_per_row(int cols) {
  return (cols + kBitGridWordBits - 1) / kBitGridWordBits;
}

/// Mask of the valid (non-tail) bits in the last word of a `cols`-cell row;
/// all ones when cols is a multiple of 64 (and for cols == 0, where no last
/// word exists).
constexpr std::uint64_t bitgrid_tail_mask(int cols) {
  const int rem = cols % kBitGridWordBits;
  return rem == 0 ? ~std::uint64_t{0} : (~std::uint64_t{0} >> (kBitGridWordBits - rem));
}

/// In-place transpose of a 64x64 bit tile, LSB-first: afterwards bit i of
/// x[j] is the old bit j of x[i]. Masked-swap network (Hacker's Delight 7-3,
/// mirrored for least-significant-bit-first column order). Shared by the
/// Topology transpose and the denoiser plane-gather kernels.
inline void bitgrid_transpose64(std::uint64_t x[64]) {
  std::uint64_t m = 0xFFFFFFFF00000000ULL;
  for (int j = 32; j != 0; j >>= 1, m ^= m >> j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = (x[k] ^ (x[k + j] << j)) & m;
      x[k] ^= t;
      x[k + j] ^= t >> j;
    }
  }
}

/// Non-owning read-only view of a bit-packed grid.
struct BitGridView {
  const std::uint64_t* words = nullptr;
  int rows = 0;
  int cols = 0;
  int words_per_row = 0;

  bool test(int r, int c) const {
    return (word(r, c / kBitGridWordBits) >> (c % kBitGridWordBits)) & 1u;
  }
  std::uint64_t word(int r, int w) const {
    return words[static_cast<std::size_t>(r) * words_per_row + w];
  }
  const std::uint64_t* row(int r) const {
    return words + static_cast<std::size_t>(r) * words_per_row;
  }
};

/// Minimal owning bit-packed grid for modules that raster their own masks.
struct BitGrid {
  int rows = 0;
  int cols = 0;
  int words_per_row = 0;
  std::vector<std::uint64_t> words;

  BitGrid() = default;
  BitGrid(int rows_in, int cols_in)
      : rows(rows_in),
        cols(cols_in),
        words_per_row(bitgrid_words_per_row(cols_in)),
        words(static_cast<std::size_t>(rows_in) * bitgrid_words_per_row(cols_in), 0) {}

  void set(int r, int c, bool v) {
    std::uint64_t& w =
        words[static_cast<std::size_t>(r) * words_per_row + c / kBitGridWordBits];
    const std::uint64_t bit = std::uint64_t{1} << (c % kBitGridWordBits);
    w = v ? (w | bit) : (w & ~bit);
  }
  bool test(int r, int c) const { return view().test(r, c); }
  BitGridView view() const { return BitGridView{words.data(), rows, cols, words_per_row}; }
};

}  // namespace cp::geometry
