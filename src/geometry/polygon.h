#pragma once
// Integer rectilinear geometry primitives. All coordinates are in nanometres.
//
// Layout patterns are sets of axis-aligned, non-overlapping rectilinear
// polygons; internally we manipulate them as rectangle sets (every
// rectilinear polygon decomposes into rectangles) plus explicit vertex loops
// where the true polygon boundary is needed.

#include <cstdint>
#include <vector>

namespace cp::geometry {

using Coord = std::int64_t;  // nanometres

struct Point {
  Coord x = 0;
  Coord y = 0;
  bool operator==(const Point&) const = default;
};

/// Half-open axis-aligned rectangle: [x0, x1) x [y0, y1).
struct Rect {
  Coord x0 = 0;
  Coord y0 = 0;
  Coord x1 = 0;
  Coord y1 = 0;

  Coord width() const { return x1 - x0; }
  Coord height() const { return y1 - y0; }
  Coord area() const { return width() * height(); }
  bool empty() const { return x1 <= x0 || y1 <= y0; }
  bool contains(Point p) const { return p.x >= x0 && p.x < x1 && p.y >= y0 && p.y < y1; }
  bool intersects(const Rect& o) const {
    return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
  }
  /// Intersection (possibly empty).
  Rect clipped_to(const Rect& o) const;
  /// True if the rects share area or touch along an edge (used to merge
  /// abutting rects into one polygon component).
  bool touches(const Rect& o) const {
    return x0 <= o.x1 && o.x0 <= x1 && y0 <= o.y1 && o.y0 <= y1 && !(x0 == o.x1 && y0 == o.y1) &&
           !(x1 == o.x0 && y1 == o.y0) && !(x0 == o.x1 && y1 == o.y0) && !(x1 == o.x0 && y0 == o.y1);
  }
  bool operator==(const Rect&) const = default;
};

/// Bounding box of a rect set; returns an empty Rect for an empty input.
Rect bounding_box(const std::vector<Rect>& rects);

/// A rectilinear polygon: a rectangle decomposition plus cached metrics.
/// Rects within one polygon are non-overlapping and edge-connected.
struct Polygon {
  std::vector<Rect> rects;

  Coord area() const;
  Rect bbox() const;
  /// Smallest dimension over the decomposition rows/columns — used as the
  /// polygon "width" in the min-width design rule sense (a conservative
  /// per-rect lower bound; the DRC checker applies the exact run-based rule).
  Coord min_feature() const;
};

/// Group a set of non-overlapping rects into edge-connected polygons
/// (union-find over the touch relation).
std::vector<Polygon> group_into_polygons(const std::vector<Rect>& rects);

}  // namespace cp::geometry
