#include "geometry/extract.h"

#include <algorithm>
#include <bit>

namespace cp::geometry {

std::vector<GridComponent> connected_components(const BitGridView& grid) {
  const int rows = grid.rows;
  const int cols = grid.cols;
  std::vector<int> label(static_cast<std::size_t>(rows) * cols, -1);
  std::vector<GridComponent> components;
  std::vector<int> stack;
  auto idx = [cols](int r, int c) { return static_cast<std::size_t>(r) * cols + c; };

  for (int r = 0; r < rows; ++r) {
    for (int w = 0; w < grid.words_per_row; ++w) {
      std::uint64_t bits = grid.word(r, w);
      while (bits != 0) {
        const int c = w * kBitGridWordBits + std::countr_zero(bits);
        bits &= bits - 1;  // clear lowest set bit; seeds stay in column order
        if (label[idx(r, c)] >= 0) continue;
        const int id = static_cast<int>(components.size());
        components.emplace_back();
        GridComponent& comp = components.back();
        comp.min_row = comp.max_row = r;
        comp.min_col = comp.max_col = c;
        stack.push_back(static_cast<int>(idx(r, c)));
        label[idx(r, c)] = id;
        while (!stack.empty()) {
          const int cell = stack.back();
          stack.pop_back();
          const int cr = cell / cols;
          const int cc = cell % cols;
          comp.cells.push_back(Point{cc, cr});
          comp.min_row = std::min(comp.min_row, cr);
          comp.max_row = std::max(comp.max_row, cr);
          comp.min_col = std::min(comp.min_col, cc);
          comp.max_col = std::max(comp.max_col, cc);
          const int dr[4] = {-1, 1, 0, 0};
          const int dc[4] = {0, 0, -1, 1};
          for (int d = 0; d < 4; ++d) {
            const int nr = cr + dr[d];
            const int nc = cc + dc[d];
            if (nr < 0 || nr >= rows || nc < 0 || nc >= cols) continue;
            if (!grid.test(nr, nc) || label[idx(nr, nc)] >= 0) continue;
            label[idx(nr, nc)] = id;
            stack.push_back(static_cast<int>(idx(nr, nc)));
          }
        }
      }
    }
  }
  return components;
}

std::vector<Rect> component_to_cell_rects(const GridComponent& component) {
  // Build per-row horizontal runs restricted to this component's cells, then
  // merge runs with identical column extents across consecutive rows.
  std::vector<std::vector<std::pair<int, int>>> runs_by_row(
      static_cast<std::size_t>(component.max_row - component.min_row + 1));
  // Mark membership into a local bitmap for run extraction.
  const int width = component.max_col - component.min_col + 1;
  std::vector<std::uint8_t> local(runs_by_row.size() * static_cast<std::size_t>(width), 0);
  for (const Point& p : component.cells) {
    const int lr = static_cast<int>(p.y) - component.min_row;
    const int lc = static_cast<int>(p.x) - component.min_col;
    local[static_cast<std::size_t>(lr) * width + lc] = 1;
  }
  for (std::size_t lr = 0; lr < runs_by_row.size(); ++lr) {
    int c = 0;
    while (c < width) {
      if (local[lr * width + c] == 0) {
        ++c;
        continue;
      }
      int start = c;
      while (c < width && local[lr * width + c] != 0) ++c;
      runs_by_row[lr].emplace_back(start, c);  // half-open [start, c)
    }
  }
  std::vector<Rect> rects;
  // Active rects from the previous row: (col0, col1, start_row).
  struct Active {
    int col0, col1, row0;
  };
  std::vector<Active> active;
  for (std::size_t lr = 0; lr <= runs_by_row.size(); ++lr) {
    std::vector<Active> next;
    const auto* runs = lr < runs_by_row.size() ? &runs_by_row[lr] : nullptr;
    std::vector<bool> matched(runs != nullptr ? runs->size() : 0, false);
    for (const Active& a : active) {
      bool extended = false;
      if (runs != nullptr) {
        for (std::size_t i = 0; i < runs->size(); ++i) {
          if (!matched[i] && (*runs)[i].first == a.col0 && (*runs)[i].second == a.col1) {
            matched[i] = true;
            next.push_back(a);
            extended = true;
            break;
          }
        }
      }
      if (!extended) {
        rects.push_back(Rect{component.min_col + a.col0, component.min_row + a.row0,
                             component.min_col + a.col1,
                             component.min_row + static_cast<int>(lr)});
      }
    }
    if (runs != nullptr) {
      for (std::size_t i = 0; i < runs->size(); ++i) {
        if (!matched[i]) {
          next.push_back(Active{(*runs)[i].first, (*runs)[i].second, static_cast<int>(lr)});
        }
      }
    }
    active = std::move(next);
  }
  return rects;
}

std::vector<Rect> grid_to_cell_rects(const BitGridView& grid) {
  std::vector<Rect> all;
  for (const GridComponent& comp : connected_components(grid)) {
    auto rects = component_to_cell_rects(comp);
    all.insert(all.end(), rects.begin(), rects.end());
  }
  return all;
}

}  // namespace cp::geometry
