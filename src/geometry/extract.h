#pragma once
// Extraction of polygon structure from binary occupancy grids.
//
// The squish-pattern topology matrix is such a grid; this module provides the
// grid-side analyses (connected components, per-component cell rectangles)
// that the DRC checker and the unsquish step build on. It is deliberately
// independent of the squish module to keep the dependency graph acyclic:
// callers pass a bit-packed BitGridView (squish::Topology::view() produces
// one; transient rasters use geometry::BitGrid).

#include <cstdint>
#include <vector>

#include "geometry/bitgrid.h"
#include "geometry/polygon.h"

namespace cp::geometry {

/// One connected component of filled grid cells (4-connectivity).
struct GridComponent {
  std::vector<Point> cells;  // (x=column, y=row) of each member cell
  int min_row = 0, max_row = 0, min_col = 0, max_col = 0;
};

/// Label 4-connected components of the bit-packed binary grid. Components are
/// seeded in row-major scan order (word-skipping over empty words), so the
/// result ordering matches a scalar row-major scan.
std::vector<GridComponent> connected_components(const BitGridView& grid);

/// Decompose one component into maximal horizontal cell-run rectangles merged
/// vertically (a standard rectilinear decomposition): the result rects are in
/// *cell* coordinates (col0, row0, col1, row1), half-open.
std::vector<Rect> component_to_cell_rects(const GridComponent& component);

/// Convenience: full grid -> cell-coordinate rects of all filled regions.
std::vector<Rect> grid_to_cell_rects(const BitGridView& grid);

}  // namespace cp::geometry
