#pragma once
// Extraction of polygon structure from binary occupancy grids.
//
// The squish-pattern topology matrix is such a grid; this module provides the
// grid-side analyses (connected components, per-component cell rectangles)
// that the DRC checker and the unsquish step build on. It is deliberately
// independent of the squish module to keep the dependency graph acyclic:
// callers pass raw row-major data.

#include <cstdint>
#include <vector>

#include "geometry/polygon.h"

namespace cp::geometry {

/// One connected component of filled grid cells (4-connectivity).
struct GridComponent {
  std::vector<Point> cells;  // (x=column, y=row) of each member cell
  int min_row = 0, max_row = 0, min_col = 0, max_col = 0;
};

/// Label 4-connected components of the `rows x cols` row-major binary grid.
std::vector<GridComponent> connected_components(const std::uint8_t* data, int rows, int cols);

/// Decompose one component into maximal horizontal cell-run rectangles merged
/// vertically (a standard rectilinear decomposition): the result rects are in
/// *cell* coordinates (col0, row0, col1, row1), half-open.
std::vector<Rect> component_to_cell_rects(const GridComponent& component, const std::uint8_t* data,
                                          int rows, int cols);

/// Convenience: full grid -> cell-coordinate rects of all filled regions.
std::vector<Rect> grid_to_cell_rects(const std::uint8_t* data, int rows, int cols);

}  // namespace cp::geometry
