#pragma once
// GDSII record-level vocabulary shared by the whole-file reader (io/gds) and
// the streaming reader (io/gds_stream): record ids, the id -> name table used
// in error messages, the 8-byte excess-64 real codec of the UNITS record, and
// the rectilinear BOUNDARY-loop -> rect decomposition.
//
// A GDSII stream is a flat sequence of records: a 2-byte big-endian total
// length (header included), a 2-byte id (record type << 8 | data type), then
// the payload. Both readers parse exactly this framing; keeping the
// vocabulary here guarantees their error messages and element handling can
// never drift apart.

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/polygon.h"

namespace cp::io {

/// Record ids (record type << 8 | data type) of the subset we read/write.
inline constexpr std::uint16_t kRecHeader = 0x0002;
inline constexpr std::uint16_t kRecBgnLib = 0x0102;
inline constexpr std::uint16_t kRecLibName = 0x0206;
inline constexpr std::uint16_t kRecUnits = 0x0305;
inline constexpr std::uint16_t kRecEndLib = 0x0400;
inline constexpr std::uint16_t kRecBgnStr = 0x0502;
inline constexpr std::uint16_t kRecStrName = 0x0606;
inline constexpr std::uint16_t kRecEndStr = 0x0700;
inline constexpr std::uint16_t kRecBoundary = 0x0800;
inline constexpr std::uint16_t kRecLayer = 0x0D02;
inline constexpr std::uint16_t kRecDatatype = 0x0E02;
inline constexpr std::uint16_t kRecXy = 0x1003;
inline constexpr std::uint16_t kRecEndEl = 0x1100;

/// Spec name of a record id ("HEADER", "BGNLIB", ...), or nullptr when the
/// id is not in the GDSII vocabulary. Covers the full spec table, not just
/// the subset above, so foreign files fail with a recognisable name.
const char* record_name(std::uint16_t id);

/// "BOUNDARY (0x0800)" for known ids, "unknown record 0x1234" otherwise —
/// the form every reader error message uses.
std::string describe_record(std::uint16_t id);

/// GDSII 8-byte real: sign bit, 7-bit excess-64 base-16 exponent, 56-bit
/// mantissa in [1/16, 1). Appends the 8 big-endian bytes to `out`.
void put_real8(std::string& out, double value);

/// Decode an 8-byte real at `p`.
double get_real8(const unsigned char* p);

/// Decompose a closed rectilinear XY loop into rects (even-odd fill over the
/// scan-line grid). Throws std::runtime_error on degenerate or adversarially
/// complex loops (the kMaxBoundary* guards).
std::vector<geometry::Rect> boundary_to_rects(const std::vector<geometry::Point>& loop);

}  // namespace cp::io
