#include "io/gds_stream.h"

#include <algorithm>
#include <stdexcept>

#include "io/gds_records.h"
#include "util/fault.h"
#include "util/fs.h"
#include "util/strings.h"

namespace cp::io {

namespace {

// Same record-count guard as the whole-file reader: a corrupt stream of
// minimal 4-byte records must terminate, not spin.
constexpr long long kMaxStreamRecords = 1LL << 22;

std::int32_t get_i32(const std::string& p, std::size_t i) {
  return static_cast<std::int32_t>((static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
                                    << 24) |
                                   (static_cast<unsigned char>(p[i + 1]) << 16) |
                                   (static_cast<unsigned char>(p[i + 2]) << 8) |
                                   static_cast<unsigned char>(p[i + 3]));
}

std::string trim_nul(const std::string& s) {
  std::string out = s;
  while (!out.empty() && out.back() == '\0') out.pop_back();
  return out;
}

}  // namespace

GdsStreamReader::GdsStreamReader(const std::string& path, std::size_t buffer_bytes)
    : in_(path, std::ios::binary), path_(path), buffer_bytes_(std::max<std::size_t>(buffer_bytes, 512)) {
  if (!in_) throw std::runtime_error("gds_stream: cannot open '" + path + "'");
  in_.seekg(0, std::ios::end);
  const std::streamoff size = in_.tellg();
  if (size < 0) throw std::runtime_error("gds_stream: cannot stat '" + path + "'");
  region_end_ = static_cast<std::uint64_t>(size);
  // Probe for the util::fs CRC trailer: 4 magic bytes + little-endian CRC32
  // of everything before them. Foreign files have no trailer and stream
  // unchecked; a present-but-wrong trailer fails in finish().
  if (region_end_ >= util::kCrcTrailerBytes) {
    char tail[util::kCrcTrailerBytes];
    in_.seekg(size - static_cast<std::streamoff>(util::kCrcTrailerBytes));
    in_.read(tail, util::kCrcTrailerBytes);
    if (in_ && std::string_view(tail, util::kCrcTrailerMagic.size()) == util::kCrcTrailerMagic) {
      has_trailer_ = true;
      region_end_ -= util::kCrcTrailerBytes;
      stored_crc_ = 0;
      for (int i = 0; i < 4; ++i) {
        stored_crc_ |= static_cast<std::uint32_t>(static_cast<unsigned char>(
                           tail[util::kCrcTrailerMagic.size() + static_cast<std::size_t>(i)]))
                       << (8 * i);
      }
    }
  }
  in_.clear();
  in_.seekg(0);
}

void GdsStreamReader::corrupt(const std::string& what, std::uint64_t offset) const {
  throw std::runtime_error(util::format("gds_stream: %s at byte %llu", what.c_str(),
                                        static_cast<unsigned long long>(offset)));
}

void GdsStreamReader::refill(std::size_t want) {
  if (buffered() >= want) return;
  if (buf_pos_ > 0) {
    buf_.erase(0, buf_pos_);
    buf_pos_ = 0;
  }
  while (buffered() < want) {
    const std::uint64_t fed = pos_ + buffered();  // next unread file offset
    if (fed >= region_end_) return;               // record region exhausted
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(buffer_bytes_, region_end_ - fed));
    const std::size_t old = buf_.size();
    buf_.resize(old + chunk);
    in_.read(buf_.data() + old, static_cast<std::streamsize>(chunk));
    const std::size_t got = static_cast<std::size_t>(in_.gcount());
    buf_.resize(old + got);
    if (got == 0) corrupt("short read (file shrank mid-stream)", fed);
    // The CRC covers every record-region byte in file order; bytes enter the
    // buffer in file order, so folding at fill time is exact.
    running_crc_ = util::crc32(std::string_view(buf_.data() + old, got), running_crc_);
  }
}

bool GdsStreamReader::next(StreamRecord& record) {
  if (saw_endlib_) return false;
  refill(4);
  if (buffered() == 0) return false;  // clean end of region (ENDLIB-less: finish() decides)
  if (buffered() < 4) corrupt("truncated record header", pos_);
  if (++records_ > kMaxStreamRecords) corrupt("too many records", pos_);
  const auto* p = reinterpret_cast<const unsigned char*>(buf_.data() + buf_pos_);
  const std::size_t len = (static_cast<std::size_t>(p[0]) << 8) | p[1];
  record.id = static_cast<std::uint16_t>((static_cast<std::uint16_t>(p[2]) << 8) | p[3]);
  record.offset = pos_;
  if (len < 4) {
    corrupt(util::format("corrupt record length %zu (%s)", len,
                         describe_record(record.id).c_str()),
            pos_);
  }
  if (pos_ + len > region_end_) {
    corrupt(util::format("record length %zu runs past the end of the file (%s)", len,
                         describe_record(record.id).c_str()),
            pos_);
  }
  refill(len);
  if (buffered() < len) corrupt("truncated record", pos_);
  record.payload.assign(buf_.data() + buf_pos_ + 4, len - 4);
  buf_pos_ += len;
  pos_ += len;
  if (record.id == kRecEndLib) saw_endlib_ = true;
  return true;
}

void GdsStreamReader::finish(bool require_endlib) {
  if (require_endlib && !saw_endlib_) {
    throw std::runtime_error("gds_stream: missing ENDLIB in '" + path_ + "'");
  }
  // Drain the remainder of the record region: tape-format writers pad to
  // block boundaries with NULs; anything else is a torn trailer or foreign
  // bytes appended to the stream.
  while (pos_ < region_end_) {
    refill(1);
    if (buffered() == 0) corrupt("short read (file shrank mid-stream)", pos_);
    const std::size_t n = buffered();
    for (std::size_t i = 0; i < n; ++i) {
      if (buf_[buf_pos_ + i] != '\0') corrupt("trailing bytes after ENDLIB", pos_ + i);
    }
    buf_pos_ += n;
    pos_ += n;
  }
  if (has_trailer_ && running_crc_ != stored_crc_) {
    throw std::runtime_error(util::format("gds_stream: checksum mismatch (stored %08x, computed %08x)",
                                          stored_crc_, running_crc_));
  }
}

StreamStats stream_gds_structures(const std::string& path,
                                  const std::function<void(GdsStructure&&)>& on_structure) {
  util::fault::point("gds/stream");
  GdsStreamReader reader(path);
  StreamStats stats;

  StreamRecord rec;
  GdsStructure current;
  bool in_structure = false;
  bool in_boundary = false;
  int layer = 1, datatype = 0;
  std::vector<geometry::Point> loop;

  auto flush = [&] {
    if (!in_structure) return;
    ++stats.structures;
    on_structure(std::move(current));
    current = GdsStructure{};
    in_structure = false;
  };
  auto bad = [&](const char* what) {
    throw std::runtime_error(util::format("gds_stream: %s %s at byte %llu", what,
                                          describe_record(rec.id).c_str(),
                                          static_cast<unsigned long long>(rec.offset)));
  };

  while (reader.next(rec)) {
    switch (rec.id) {
      case kRecHeader:
      case kRecBgnLib:
      case kRecBgnStr:
      case kRecEndEl:
        break;
      case kRecLibName:
        stats.library_name = trim_nul(rec.payload);
        break;
      case kRecUnits:
        if (rec.payload.size() != 16) bad("bad");
        stats.dbu_per_user_unit =
            get_real8(reinterpret_cast<const unsigned char*>(rec.payload.data()));
        stats.dbu_in_meter =
            get_real8(reinterpret_cast<const unsigned char*>(rec.payload.data()) + 8);
        break;
      case kRecStrName:
        flush();  // a STRNAME without ENDSTR still ends the previous structure
        in_structure = true;
        current.name = trim_nul(rec.payload);
        break;
      case kRecBoundary:
        in_boundary = true;
        loop.clear();
        break;
      case kRecLayer:
        if (rec.payload.size() < 2) bad("bad");
        layer = (static_cast<unsigned char>(rec.payload[0]) << 8) |
                static_cast<unsigned char>(rec.payload[1]);
        break;
      case kRecDatatype:
        if (rec.payload.size() < 2) bad("bad");
        datatype = (static_cast<unsigned char>(rec.payload[0]) << 8) |
                   static_cast<unsigned char>(rec.payload[1]);
        break;
      case kRecXy: {
        if (!in_boundary) break;  // ignore paths etc., like read_gds
        loop.clear();
        for (std::size_t i = 0; i + 8 <= rec.payload.size(); i += 8) {
          loop.push_back(geometry::Point{get_i32(rec.payload, i), get_i32(rec.payload, i + 4)});
        }
        if (!in_structure) {
          throw std::runtime_error(
              util::format("gds_stream: XY outside a structure at byte %llu",
                           static_cast<unsigned long long>(rec.offset)));
        }
        current.layer = layer;
        current.datatype = datatype;
        for (const geometry::Rect& r : boundary_to_rects(loop)) current.rects.push_back(r);
        ++stats.boundaries;
        in_boundary = false;
        break;
      }
      case kRecEndStr:
        flush();
        break;
      case kRecEndLib:
        flush();
        reader.finish();
        stats.bytes = reader.bytes_read();
        stats.records = reader.records_read();
        return stats;
      default:
        bad("unsupported");
    }
  }
  reader.finish();  // throws: missing ENDLIB (or trailing-garbage diagnosis)
  throw std::runtime_error("gds_stream: missing ENDLIB in '" + path + "'");
}

}  // namespace cp::io
