#pragma once
// GDSII stream-format I/O (binary, the native interchange format of layout
// tools). Pattern libraries exported here load directly into KLayout &co.
//
// The writer emits one structure per pattern, each polygon as a BOUNDARY
// element; the reader accepts the subset the writer produces plus arbitrary
// rectilinear BOUNDARYs from other tools (decomposed back into rects via the
// grid rasteriser). Numbers follow the spec: big-endian records, 8-byte
// excess-64 reals for UNITS.

#include <string>
#include <vector>

#include "geometry/polygon.h"

namespace cp::io {

struct GdsStructure {
  std::string name;
  /// Axis-aligned rectangles on `layer` (the library's patterns are
  /// rectilinear; general polygons are decomposed on read).
  std::vector<geometry::Rect> rects;
  int layer = 1;
  int datatype = 0;
};

struct GdsLibrary {
  std::string name = "CHATPATTERN";
  /// Database unit in metres (1 nm default) and user unit in database units.
  double dbu_in_meter = 1e-9;
  double dbu_per_user_unit = 1e-3;
  std::vector<GdsStructure> structures;
};

/// Write a GDSII stream file. Throws std::runtime_error on I/O failure.
void write_gds(const std::string& path, const GdsLibrary& library);

/// Read a GDSII stream file written by this library or containing
/// rectilinear BOUNDARY elements. Non-rectilinear polygons and unsupported
/// record types raise std::runtime_error naming the offending record (the
/// io/gds_records.h table) and its absolute byte offset. Slurps the whole
/// file; for bounded-memory ingestion of foreign libraries use
/// io/gds_stream.h.
GdsLibrary read_gds(const std::string& path);

}  // namespace cp::io
