#include "io/gds_records.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geometry/bitgrid.h"
#include "geometry/extract.h"
#include "util/strings.h"

namespace cp::io {

namespace {

// Resource-exhaustion guards for the boundary decomposer: an adversarial
// loop must not allocate an enormous grid or pin the CPU. Orders of
// magnitude above anything this library writes.
constexpr std::size_t kMaxBoundaryPoints = 8192;     // points per XY loop
constexpr std::size_t kMaxBoundaryWork = 64u << 20;  // grid cells x edges

}  // namespace

const char* record_name(std::uint16_t id) {
  // Keyed by the record-type byte; the data-type byte is format plumbing and
  // does not change the name (a LAYER record is a LAYER record even when a
  // corrupt file mislabels its data type).
  switch (id >> 8) {
    case 0x00: return "HEADER";
    case 0x01: return "BGNLIB";
    case 0x02: return "LIBNAME";
    case 0x03: return "UNITS";
    case 0x04: return "ENDLIB";
    case 0x05: return "BGNSTR";
    case 0x06: return "STRNAME";
    case 0x07: return "ENDSTR";
    case 0x08: return "BOUNDARY";
    case 0x09: return "PATH";
    case 0x0A: return "SREF";
    case 0x0B: return "AREF";
    case 0x0C: return "TEXT";
    case 0x0D: return "LAYER";
    case 0x0E: return "DATATYPE";
    case 0x0F: return "WIDTH";
    case 0x10: return "XY";
    case 0x11: return "ENDEL";
    case 0x12: return "SNAME";
    case 0x13: return "COLROW";
    case 0x15: return "NODE";
    case 0x16: return "TEXTTYPE";
    case 0x17: return "PRESENTATION";
    case 0x19: return "STRING";
    case 0x1A: return "STRANS";
    case 0x1B: return "MAG";
    case 0x1C: return "ANGLE";
    case 0x1F: return "REFLIBS";
    case 0x20: return "FONTS";
    case 0x21: return "PATHTYPE";
    case 0x22: return "GENERATIONS";
    case 0x23: return "ATTRTABLE";
    case 0x26: return "ELFLAGS";
    case 0x2A: return "NODETYPE";
    case 0x2B: return "PROPATTR";
    case 0x2C: return "PROPVALUE";
    case 0x2D: return "BOX";
    case 0x2E: return "BOXTYPE";
    case 0x2F: return "PLEX";
    default: return nullptr;
  }
}

std::string describe_record(std::uint16_t id) {
  const char* name = record_name(id);
  if (name != nullptr) return util::format("%s (0x%04x)", name, id);
  return util::format("unknown record 0x%04x", id);
}

void put_real8(std::string& out, double value) {
  std::uint64_t bits = 0;
  if (value != 0.0) {
    const bool negative = value < 0.0;
    double mag = std::fabs(value);
    int exponent = 64;
    while (mag >= 1.0) {
      mag /= 16.0;
      ++exponent;
    }
    while (mag < 1.0 / 16.0) {
      mag *= 16.0;
      --exponent;
    }
    const std::uint64_t mantissa = static_cast<std::uint64_t>(std::llround(mag * 72057594037927936.0));  // 2^56
    bits = (static_cast<std::uint64_t>(negative) << 63) |
           (static_cast<std::uint64_t>(exponent & 0x7f) << 56) |
           (mantissa & 0x00ffffffffffffffULL);
  }
  for (int i = 7; i >= 0; --i) out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
}

double get_real8(const unsigned char* p) {
  const bool negative = (p[0] & 0x80) != 0;
  const int exponent = (p[0] & 0x7f) - 64;
  std::uint64_t mantissa = 0;
  for (int i = 1; i < 8; ++i) mantissa = (mantissa << 8) | p[i];
  const double value =
      static_cast<double>(mantissa) / 72057594037927936.0 * std::pow(16.0, exponent);
  return negative ? -value : value;
}

std::vector<geometry::Rect> boundary_to_rects(const std::vector<geometry::Point>& loop) {
  if (loop.size() < 4) throw std::runtime_error("gds: degenerate boundary");
  if (loop.size() > kMaxBoundaryPoints) throw std::runtime_error("gds: boundary too complex");
  std::vector<geometry::Coord> xs, ys;
  for (const auto& p : loop) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  const int cols = static_cast<int>(xs.size()) - 1;
  const int rows = static_cast<int>(ys.size()) - 1;
  if (cols <= 0 || rows <= 0) throw std::runtime_error("gds: empty boundary");
  // The even-odd rasterisation below costs grid-cells x edges; bound it so
  // an adversarial loop with thousands of distinct coordinates cannot pin
  // the CPU (or allocate an enormous grid).
  if (static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols) * loop.size() >
      kMaxBoundaryWork) {
    throw std::runtime_error("gds: boundary too complex");
  }

  geometry::BitGrid grid(rows, cols);
  for (int r = 0; r < rows; ++r) {
    const double cy = 0.5 * (static_cast<double>(ys[r]) + static_cast<double>(ys[r + 1]));
    for (int c = 0; c < cols; ++c) {
      const double cx = 0.5 * (static_cast<double>(xs[c]) + static_cast<double>(xs[c + 1]));
      // Even-odd ray cast to +x over the loop's vertical edges.
      int crossings = 0;
      for (std::size_t i = 0; i + 1 < loop.size(); ++i) {
        const auto& a = loop[i];
        const auto& b = loop[i + 1];
        if (a.x != b.x) continue;  // horizontal edge
        const double lo = static_cast<double>(std::min(a.y, b.y));
        const double hi = static_cast<double>(std::max(a.y, b.y));
        if (cy > lo && cy < hi && static_cast<double>(a.x) > cx) ++crossings;
      }
      grid.set(r, c, crossings % 2 != 0);
    }
  }
  std::vector<geometry::Rect> rects;
  for (const geometry::Rect& cell : geometry::grid_to_cell_rects(grid.view())) {
    rects.push_back(geometry::Rect{xs[cell.x0], ys[cell.y0], xs[cell.x1], ys[cell.y1]});
  }
  return rects;
}

}  // namespace cp::io
