#include "io/gds.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "geometry/extract.h"
#include "util/fault.h"
#include "util/fs.h"
#include "util/strings.h"

namespace cp::io {

namespace {

// Resource-exhaustion guards for the reader: a malicious or corrupt header
// must not make us over-allocate or loop unboundedly. All caps are orders
// of magnitude above anything this library writes.
constexpr std::uint64_t kMaxFileBytes = 256ULL << 20;   // whole-file slurp cap
constexpr std::size_t kMaxRecords = 1u << 22;           // ~4M records
constexpr std::size_t kMaxBoundaryPoints = 8192;        // points per XY loop
constexpr std::size_t kMaxBoundaryWork = 64u << 20;     // grid cells x edges

// GDSII record ids (record type << 8 | data type).
constexpr std::uint16_t kHeader = 0x0002;
constexpr std::uint16_t kBgnLib = 0x0102;
constexpr std::uint16_t kLibName = 0x0206;
constexpr std::uint16_t kUnits = 0x0305;
constexpr std::uint16_t kEndLib = 0x0400;
constexpr std::uint16_t kBgnStr = 0x0502;
constexpr std::uint16_t kStrName = 0x0606;
constexpr std::uint16_t kEndStr = 0x0700;
constexpr std::uint16_t kBoundary = 0x0800;
constexpr std::uint16_t kLayer = 0x0D02;
constexpr std::uint16_t kDatatype = 0x0E02;
constexpr std::uint16_t kXy = 0x1003;
constexpr std::uint16_t kEndEl = 0x1100;

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v & 0xff));
}

void put_i32(std::string& out, std::int32_t v) {
  const std::uint32_t u = static_cast<std::uint32_t>(v);
  out.push_back(static_cast<char>(u >> 24));
  out.push_back(static_cast<char>((u >> 16) & 0xff));
  out.push_back(static_cast<char>((u >> 8) & 0xff));
  out.push_back(static_cast<char>(u & 0xff));
}

/// GDSII 8-byte real: sign bit, 7-bit excess-64 base-16 exponent, 56-bit
/// mantissa in [1/16, 1).
void put_real8(std::string& out, double value) {
  std::uint64_t bits = 0;
  if (value != 0.0) {
    const bool negative = value < 0.0;
    double mag = std::fabs(value);
    int exponent = 64;
    while (mag >= 1.0) {
      mag /= 16.0;
      ++exponent;
    }
    while (mag < 1.0 / 16.0) {
      mag *= 16.0;
      --exponent;
    }
    const std::uint64_t mantissa = static_cast<std::uint64_t>(std::llround(mag * 72057594037927936.0));  // 2^56
    bits = (static_cast<std::uint64_t>(negative) << 63) |
           (static_cast<std::uint64_t>(exponent & 0x7f) << 56) |
           (mantissa & 0x00ffffffffffffffULL);
  }
  for (int i = 7; i >= 0; --i) out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
}

double get_real8(const unsigned char* p) {
  const bool negative = (p[0] & 0x80) != 0;
  const int exponent = (p[0] & 0x7f) - 64;
  std::uint64_t mantissa = 0;
  for (int i = 1; i < 8; ++i) mantissa = (mantissa << 8) | p[i];
  const double value =
      static_cast<double>(mantissa) / 72057594037927936.0 * std::pow(16.0, exponent);
  return negative ? -value : value;
}

void put_record(std::string& out, std::uint16_t id, const std::string& payload) {
  if (payload.size() + 4 > 0xffff) throw std::runtime_error("gds: record too long");
  put_u16(out, static_cast<std::uint16_t>(payload.size() + 4));
  put_u16(out, id);
  out += payload;
}

std::string ascii_payload(const std::string& s) {
  std::string p = s;
  if (p.size() % 2) p.push_back('\0');  // records are word-aligned
  return p;
}

std::string timestamp_payload() {
  // 12 int16 fields twice (creation/modification); fixed epoch for
  // reproducible byte-identical output.
  std::string p;
  for (int rep = 0; rep < 2; ++rep) {
    const std::int16_t fields[6] = {2024, 1, 1, 0, 0, 0};
    for (std::int16_t f : fields) put_u16(p, static_cast<std::uint16_t>(f));
  }
  return p;
}

}  // namespace

void write_gds(const std::string& path, const GdsLibrary& library) {
  std::string out;
  {
    std::string p;
    put_u16(p, 600);  // stream version 6
    put_record(out, kHeader, p);
  }
  put_record(out, kBgnLib, timestamp_payload());
  put_record(out, kLibName, ascii_payload(library.name));
  {
    std::string p;
    put_real8(p, library.dbu_per_user_unit);
    put_real8(p, library.dbu_in_meter);
    put_record(out, kUnits, p);
  }
  for (const GdsStructure& str : library.structures) {
    put_record(out, kBgnStr, timestamp_payload());
    put_record(out, kStrName, ascii_payload(str.name));
    for (const geometry::Rect& r : str.rects) {
      put_record(out, kBoundary, "");
      {
        std::string p;
        put_u16(p, static_cast<std::uint16_t>(str.layer));
        put_record(out, kLayer, p);
      }
      {
        std::string p;
        put_u16(p, static_cast<std::uint16_t>(str.datatype));
        put_record(out, kDatatype, p);
      }
      {
        std::string p;  // closed loop: 5 points
        const std::int32_t xs[5] = {static_cast<std::int32_t>(r.x0),
                                    static_cast<std::int32_t>(r.x1),
                                    static_cast<std::int32_t>(r.x1),
                                    static_cast<std::int32_t>(r.x0),
                                    static_cast<std::int32_t>(r.x0)};
        const std::int32_t ys[5] = {static_cast<std::int32_t>(r.y0),
                                    static_cast<std::int32_t>(r.y0),
                                    static_cast<std::int32_t>(r.y1),
                                    static_cast<std::int32_t>(r.y1),
                                    static_cast<std::int32_t>(r.y0)};
        for (int i = 0; i < 5; ++i) {
          put_i32(p, xs[i]);
          put_i32(p, ys[i]);
        }
        put_record(out, kXy, p);
      }
      put_record(out, kEndEl, "");
    }
    put_record(out, kEndStr, "");
  }
  put_record(out, kEndLib, "");

  // Crash-safe: tmp + fsync + rename, with a CRC32 trailer after ENDLIB.
  // Readers (ours and standard viewers) stop at ENDLIB, so the trailer is
  // invisible to record parsing; read_gds verifies and strips it first.
  util::fault::point("gds/write");
  util::atomic_write_file_checksummed(path, out);
}

namespace {

struct Record {
  std::uint16_t id = 0;
  std::string payload;
};

class Reader {
 public:
  explicit Reader(const std::string& path) {
    // Cap the slurp (kMaxFileBytes) and verify our CRC trailer when present
    // — files from other tools have no trailer and parse as before; a
    // present-but-mismatching trailer throws a checksum error.
    data_ = util::read_file(path, kMaxFileBytes);
    util::strip_crc_trailer(data_, "gds");
  }

  bool next(Record& record) {
    if (pos_ + 4 > data_.size()) return false;
    if (++records_ > kMaxRecords) throw std::runtime_error("gds: too many records");
    const std::size_t len = (static_cast<unsigned char>(data_[pos_]) << 8) |
                            static_cast<unsigned char>(data_[pos_ + 1]);
    // A declared length below the 4-byte header or past the end of the file
    // (truncation, or a malicious header promising more than exists) is
    // structural corruption, never a loop or an over-read.
    if (len < 4 || len > data_.size() - pos_) {
      throw std::runtime_error("gds: corrupt record length");
    }
    record.id = static_cast<std::uint16_t>((static_cast<unsigned char>(data_[pos_ + 2]) << 8) |
                                           static_cast<unsigned char>(data_[pos_ + 3]));
    record.payload.assign(data_.begin() + static_cast<long>(pos_) + 4,
                          data_.begin() + static_cast<long>(pos_ + len));
    pos_ += len;
    return true;
  }

  /// After ENDLIB: tape-format writers pad to block boundaries with NULs,
  /// so trailing zeros are fine; any other residue is a torn CRC trailer or
  /// foreign bytes appended to the stream.
  void expect_only_padding() const {
    for (std::size_t i = pos_; i < data_.size(); ++i) {
      if (data_[i] != '\0') throw std::runtime_error("gds: trailing bytes after ENDLIB");
    }
  }

 private:
  std::string data_;
  std::size_t pos_ = 0;
  std::size_t records_ = 0;
};

std::int32_t get_i32(const std::string& p, std::size_t i) {
  return static_cast<std::int32_t>((static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
                                    << 24) |
                                   (static_cast<unsigned char>(p[i + 1]) << 16) |
                                   (static_cast<unsigned char>(p[i + 2]) << 8) |
                                   static_cast<unsigned char>(p[i + 3]));
}

std::string trim_nul(const std::string& s) {
  std::string out = s;
  while (!out.empty() && out.back() == '\0') out.pop_back();
  return out;
}

/// Decompose a closed rectilinear loop into rects (even-odd fill over the
/// scan-line grid).
std::vector<geometry::Rect> loop_to_rects(const std::vector<geometry::Point>& loop) {
  if (loop.size() < 4) throw std::runtime_error("gds: degenerate boundary");
  if (loop.size() > kMaxBoundaryPoints) throw std::runtime_error("gds: boundary too complex");
  std::vector<geometry::Coord> xs, ys;
  for (const auto& p : loop) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  const int cols = static_cast<int>(xs.size()) - 1;
  const int rows = static_cast<int>(ys.size()) - 1;
  if (cols <= 0 || rows <= 0) throw std::runtime_error("gds: empty boundary");
  // The even-odd rasterisation below costs grid-cells x edges; bound it so
  // an adversarial loop with thousands of distinct coordinates cannot pin
  // the CPU (or allocate an enormous grid).
  if (static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols) * loop.size() >
      kMaxBoundaryWork) {
    throw std::runtime_error("gds: boundary too complex");
  }

  geometry::BitGrid grid(rows, cols);
  for (int r = 0; r < rows; ++r) {
    const double cy = 0.5 * (static_cast<double>(ys[r]) + static_cast<double>(ys[r + 1]));
    for (int c = 0; c < cols; ++c) {
      const double cx = 0.5 * (static_cast<double>(xs[c]) + static_cast<double>(xs[c + 1]));
      // Even-odd ray cast to +x over the loop's vertical edges.
      int crossings = 0;
      for (std::size_t i = 0; i + 1 < loop.size(); ++i) {
        const auto& a = loop[i];
        const auto& b = loop[i + 1];
        if (a.x != b.x) continue;  // horizontal edge
        const double lo = static_cast<double>(std::min(a.y, b.y));
        const double hi = static_cast<double>(std::max(a.y, b.y));
        if (cy > lo && cy < hi && static_cast<double>(a.x) > cx) ++crossings;
      }
      grid.set(r, c, crossings % 2 != 0);
    }
  }
  std::vector<geometry::Rect> rects;
  for (const geometry::Rect& cell : geometry::grid_to_cell_rects(grid.view())) {
    rects.push_back(geometry::Rect{xs[cell.x0], ys[cell.y0], xs[cell.x1], ys[cell.y1]});
  }
  return rects;
}

}  // namespace

GdsLibrary read_gds(const std::string& path) {
  util::fault::point("gds/read");
  Reader reader(path);
  GdsLibrary lib;
  lib.structures.clear();
  Record rec;
  GdsStructure* current = nullptr;
  bool in_boundary = false;
  int layer = 1, datatype = 0;
  std::vector<geometry::Point> loop;

  while (reader.next(rec)) {
    switch (rec.id) {
      case kHeader:
      case kBgnLib:
      case kBgnStr:
      case kEndEl:
        break;
      case kLibName:
        lib.name = trim_nul(rec.payload);
        break;
      case kUnits:
        if (rec.payload.size() != 16) throw std::runtime_error("gds: bad UNITS");
        lib.dbu_per_user_unit =
            get_real8(reinterpret_cast<const unsigned char*>(rec.payload.data()));
        lib.dbu_in_meter =
            get_real8(reinterpret_cast<const unsigned char*>(rec.payload.data()) + 8);
        break;
      case kStrName:
        lib.structures.emplace_back();
        current = &lib.structures.back();
        current->name = trim_nul(rec.payload);
        break;
      case kBoundary:
        in_boundary = true;
        loop.clear();
        break;
      case kLayer:
        if (rec.payload.size() < 2) throw std::runtime_error("gds: bad LAYER");
        layer = (static_cast<unsigned char>(rec.payload[0]) << 8) |
                static_cast<unsigned char>(rec.payload[1]);
        break;
      case kDatatype:
        if (rec.payload.size() < 2) throw std::runtime_error("gds: bad DATATYPE");
        datatype = (static_cast<unsigned char>(rec.payload[0]) << 8) |
                   static_cast<unsigned char>(rec.payload[1]);
        break;
      case kXy: {
        if (!in_boundary) break;  // ignore paths etc.
        loop.clear();
        for (std::size_t i = 0; i + 8 <= rec.payload.size(); i += 8) {
          loop.push_back(geometry::Point{get_i32(rec.payload, i), get_i32(rec.payload, i + 4)});
        }
        if (current == nullptr) throw std::runtime_error("gds: XY outside structure");
        current->layer = layer;
        current->datatype = datatype;
        for (const geometry::Rect& r : loop_to_rects(loop)) current->rects.push_back(r);
        in_boundary = false;
        break;
      }
      case kEndStr:
        current = nullptr;
        break;
      case kEndLib:
        reader.expect_only_padding();
        return lib;
      default:
        throw std::runtime_error(
            util::format("gds: unsupported record 0x%04x", rec.id));
    }
  }
  throw std::runtime_error("gds: missing ENDLIB");
}

}  // namespace cp::io
