#include "io/gds.h"

#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "io/gds_records.h"
#include "util/fault.h"
#include "util/fs.h"
#include "util/strings.h"

namespace cp::io {

namespace {

// Resource-exhaustion guards for the reader: a malicious or corrupt header
// must not make us over-allocate or loop unboundedly. All caps are orders
// of magnitude above anything this library writes.
constexpr std::uint64_t kMaxFileBytes = 256ULL << 20;   // whole-file slurp cap
constexpr std::size_t kMaxRecords = 1u << 22;           // ~4M records

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v & 0xff));
}

void put_i32(std::string& out, std::int32_t v) {
  const std::uint32_t u = static_cast<std::uint32_t>(v);
  out.push_back(static_cast<char>(u >> 24));
  out.push_back(static_cast<char>((u >> 16) & 0xff));
  out.push_back(static_cast<char>((u >> 8) & 0xff));
  out.push_back(static_cast<char>(u & 0xff));
}

void put_record(std::string& out, std::uint16_t id, const std::string& payload) {
  if (payload.size() + 4 > 0xffff) throw std::runtime_error("gds: record too long");
  put_u16(out, static_cast<std::uint16_t>(payload.size() + 4));
  put_u16(out, id);
  out += payload;
}

std::string ascii_payload(const std::string& s) {
  std::string p = s;
  if (p.size() % 2) p.push_back('\0');  // records are word-aligned
  return p;
}

std::string timestamp_payload() {
  // 12 int16 fields twice (creation/modification); fixed epoch for
  // reproducible byte-identical output.
  std::string p;
  for (int rep = 0; rep < 2; ++rep) {
    const std::int16_t fields[6] = {2024, 1, 1, 0, 0, 0};
    for (std::int16_t f : fields) put_u16(p, static_cast<std::uint16_t>(f));
  }
  return p;
}

}  // namespace

void write_gds(const std::string& path, const GdsLibrary& library) {
  std::string out;
  {
    std::string p;
    put_u16(p, 600);  // stream version 6
    put_record(out, kRecHeader, p);
  }
  put_record(out, kRecBgnLib, timestamp_payload());
  put_record(out, kRecLibName, ascii_payload(library.name));
  {
    std::string p;
    put_real8(p, library.dbu_per_user_unit);
    put_real8(p, library.dbu_in_meter);
    put_record(out, kRecUnits, p);
  }
  for (const GdsStructure& str : library.structures) {
    put_record(out, kRecBgnStr, timestamp_payload());
    put_record(out, kRecStrName, ascii_payload(str.name));
    for (const geometry::Rect& r : str.rects) {
      put_record(out, kRecBoundary, "");
      {
        std::string p;
        put_u16(p, static_cast<std::uint16_t>(str.layer));
        put_record(out, kRecLayer, p);
      }
      {
        std::string p;
        put_u16(p, static_cast<std::uint16_t>(str.datatype));
        put_record(out, kRecDatatype, p);
      }
      {
        std::string p;  // closed loop: 5 points
        const std::int32_t xs[5] = {static_cast<std::int32_t>(r.x0),
                                    static_cast<std::int32_t>(r.x1),
                                    static_cast<std::int32_t>(r.x1),
                                    static_cast<std::int32_t>(r.x0),
                                    static_cast<std::int32_t>(r.x0)};
        const std::int32_t ys[5] = {static_cast<std::int32_t>(r.y0),
                                    static_cast<std::int32_t>(r.y0),
                                    static_cast<std::int32_t>(r.y1),
                                    static_cast<std::int32_t>(r.y1),
                                    static_cast<std::int32_t>(r.y0)};
        for (int i = 0; i < 5; ++i) {
          put_i32(p, xs[i]);
          put_i32(p, ys[i]);
        }
        put_record(out, kRecXy, p);
      }
      put_record(out, kRecEndEl, "");
    }
    put_record(out, kRecEndStr, "");
  }
  put_record(out, kRecEndLib, "");

  // Crash-safe: tmp + fsync + rename, with a CRC32 trailer after ENDLIB.
  // Readers (ours and standard viewers) stop at ENDLIB, so the trailer is
  // invisible to record parsing; read_gds verifies and strips it first.
  util::fault::point("gds/write");
  util::atomic_write_file_checksummed(path, out);
}

namespace {

struct Record {
  std::uint16_t id = 0;
  std::uint64_t offset = 0;  // absolute byte offset of the record header
  std::string payload;
};

class Reader {
 public:
  explicit Reader(const std::string& path) {
    // Cap the slurp (kMaxFileBytes) and verify our CRC trailer when present
    // — files from other tools have no trailer and parse as before; a
    // present-but-mismatching trailer throws a checksum error.
    data_ = util::read_file(path, kMaxFileBytes);
    util::strip_crc_trailer(data_, "gds");
  }

  bool next(Record& record) {
    if (pos_ + 4 > data_.size()) return false;
    if (++records_ > kMaxRecords) throw std::runtime_error("gds: too many records");
    const std::size_t len = (static_cast<unsigned char>(data_[pos_]) << 8) |
                            static_cast<unsigned char>(data_[pos_ + 1]);
    record.id = static_cast<std::uint16_t>((static_cast<unsigned char>(data_[pos_ + 2]) << 8) |
                                           static_cast<unsigned char>(data_[pos_ + 3]));
    record.offset = pos_;
    // A declared length below the 4-byte header or past the end of the file
    // (truncation, or a malicious header promising more than exists) is
    // structural corruption, never a loop or an over-read.
    if (len < 4 || len > data_.size() - pos_) {
      throw std::runtime_error(
          util::format("gds: corrupt record length %zu at byte %llu (%s)", len,
                       static_cast<unsigned long long>(pos_),
                       describe_record(record.id).c_str()));
    }
    record.payload.assign(data_.begin() + static_cast<long>(pos_) + 4,
                          data_.begin() + static_cast<long>(pos_ + len));
    pos_ += len;
    return true;
  }

  /// After ENDLIB: tape-format writers pad to block boundaries with NULs,
  /// so trailing zeros are fine; any other residue is a torn CRC trailer or
  /// foreign bytes appended to the stream.
  void expect_only_padding() const {
    for (std::size_t i = pos_; i < data_.size(); ++i) {
      if (data_[i] != '\0') {
        throw std::runtime_error(util::format(
            "gds: trailing bytes after ENDLIB at byte %llu",
            static_cast<unsigned long long>(i)));
      }
    }
  }

 private:
  std::string data_;
  std::size_t pos_ = 0;
  std::size_t records_ = 0;
};

std::int32_t get_i32(const std::string& p, std::size_t i) {
  return static_cast<std::int32_t>((static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
                                    << 24) |
                                   (static_cast<unsigned char>(p[i + 1]) << 16) |
                                   (static_cast<unsigned char>(p[i + 2]) << 8) |
                                   static_cast<unsigned char>(p[i + 3]));
}

std::string trim_nul(const std::string& s) {
  std::string out = s;
  while (!out.empty() && out.back() == '\0') out.pop_back();
  return out;
}

/// "gds: bad UNITS (0x0305) at byte 28" — the shared corrupt-payload error
/// form; the record name comes from the table both readers use.
[[noreturn]] void throw_bad_record(const Record& rec, const char* what) {
  throw std::runtime_error(util::format("gds: %s %s at byte %llu", what,
                                        describe_record(rec.id).c_str(),
                                        static_cast<unsigned long long>(rec.offset)));
}

}  // namespace

GdsLibrary read_gds(const std::string& path) {
  util::fault::point("gds/read");
  Reader reader(path);
  GdsLibrary lib;
  lib.structures.clear();
  Record rec;
  GdsStructure* current = nullptr;
  bool in_boundary = false;
  int layer = 1, datatype = 0;
  std::vector<geometry::Point> loop;

  while (reader.next(rec)) {
    switch (rec.id) {
      case kRecHeader:
      case kRecBgnLib:
      case kRecBgnStr:
      case kRecEndEl:
        break;
      case kRecLibName:
        lib.name = trim_nul(rec.payload);
        break;
      case kRecUnits:
        if (rec.payload.size() != 16) throw_bad_record(rec, "bad");
        lib.dbu_per_user_unit =
            get_real8(reinterpret_cast<const unsigned char*>(rec.payload.data()));
        lib.dbu_in_meter =
            get_real8(reinterpret_cast<const unsigned char*>(rec.payload.data()) + 8);
        break;
      case kRecStrName:
        lib.structures.emplace_back();
        current = &lib.structures.back();
        current->name = trim_nul(rec.payload);
        break;
      case kRecBoundary:
        in_boundary = true;
        loop.clear();
        break;
      case kRecLayer:
        if (rec.payload.size() < 2) throw_bad_record(rec, "bad");
        layer = (static_cast<unsigned char>(rec.payload[0]) << 8) |
                static_cast<unsigned char>(rec.payload[1]);
        break;
      case kRecDatatype:
        if (rec.payload.size() < 2) throw_bad_record(rec, "bad");
        datatype = (static_cast<unsigned char>(rec.payload[0]) << 8) |
                   static_cast<unsigned char>(rec.payload[1]);
        break;
      case kRecXy: {
        if (!in_boundary) break;  // ignore paths etc.
        loop.clear();
        for (std::size_t i = 0; i + 8 <= rec.payload.size(); i += 8) {
          loop.push_back(geometry::Point{get_i32(rec.payload, i), get_i32(rec.payload, i + 4)});
        }
        if (current == nullptr) {
          throw std::runtime_error(util::format(
              "gds: XY outside a structure at byte %llu",
              static_cast<unsigned long long>(rec.offset)));
        }
        current->layer = layer;
        current->datatype = datatype;
        for (const geometry::Rect& r : boundary_to_rects(loop)) current->rects.push_back(r);
        in_boundary = false;
        break;
      }
      case kRecEndStr:
        current = nullptr;
        break;
      case kRecEndLib:
        reader.expect_only_padding();
        return lib;
      default:
        throw_bad_record(rec, "unsupported");
    }
  }
  throw std::runtime_error("gds: missing ENDLIB");
}

}  // namespace cp::io
