#pragma once
// Streaming GDSII ingestion: a record-level pull parser over buffered reads
// whose memory footprint is one I/O buffer plus one record payload (records
// are <= 64 KiB by format), independent of file size — the entry point for
// feeding real layout libraries into the pattern pipeline without ever
// materialising the whole layout (docs/LIBRARY.md).
//
// Two layers:
//
//   * GdsStreamReader — the raw record cursor. next() yields one record at a
//     time with its absolute byte offset; finish() (call after ENDLIB)
//     checks that only NUL tape padding remains and verifies the util::fs
//     CRC32 trailer when one is present, computed incrementally while the
//     records were being read. Foreign files without a trailer stream
//     unchecked, exactly like read_gds.
//   * stream_gds_structures — the element state machine shared in spirit
//     with read_gds (same io/gds_records.h vocabulary, same BOUNDARY
//     decomposition): invokes a callback per completed structure and then
//     drops it, so only one structure is resident at a time.
//
// Corruption discipline (docs/ROBUSTNESS.md): truncation, garbage record
// headers, declared lengths past EOF, non-rectilinear boundaries and
// checksum mismatches all surface as std::runtime_error with the offending
// record's name and absolute byte offset — never UB, a hang, or a silently
// wrong library.

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "io/gds.h"

namespace cp::io {

/// One GDSII record as yielded by GdsStreamReader.
struct StreamRecord {
  std::uint16_t id = 0;
  std::uint64_t offset = 0;  // absolute byte offset of the 4-byte header
  std::string payload;       // reused between next() calls
};

class GdsStreamReader {
 public:
  /// Opens `path` and probes the trailing 8 bytes for the util::fs CRC
  /// trailer (present on everything write_gds produces, absent on foreign
  /// files). Throws std::runtime_error when the file cannot be opened.
  explicit GdsStreamReader(const std::string& path, std::size_t buffer_bytes = 64 * 1024);

  GdsStreamReader(const GdsStreamReader&) = delete;
  GdsStreamReader& operator=(const GdsStreamReader&) = delete;

  /// Advance to the next record. Returns false at the end of the record
  /// region (end of file, minus any CRC trailer). Throws std::runtime_error
  /// on a corrupt record header, a declared length past EOF, or too many
  /// records.
  bool next(StreamRecord& record);

  /// Call once after the consumer saw ENDLIB (or next() returned false):
  /// drains the remainder, requiring NUL-only padding, and verifies the CRC
  /// trailer when one was detected at open. Throws std::runtime_error on
  /// trailing garbage, a checksum mismatch, or a missing ENDLIB when
  /// `require_endlib`.
  void finish(bool require_endlib = true);

  /// Bytes consumed from the file so far (records + padding; excludes the
  /// CRC trailer). The ingestion-bench MB/s numerator.
  std::uint64_t bytes_read() const { return pos_; }
  /// Records yielded so far.
  long long records_read() const { return records_; }
  /// True when the file carries a CRC trailer (written by this library).
  bool has_trailer() const { return has_trailer_; }

 private:
  /// Ensure >= want bytes buffered (best effort; short at end of region).
  std::size_t buffered() const { return buf_.size() - buf_pos_; }
  void refill(std::size_t want);
  [[noreturn]] void corrupt(const std::string& what, std::uint64_t offset) const;

  std::ifstream in_;
  std::string path_;
  std::string buf_;          // sliding window over the record region
  std::size_t buf_pos_ = 0;  // consumed prefix of buf_
  std::size_t buffer_bytes_;
  std::uint64_t pos_ = 0;        // absolute offset of buf_[buf_pos_]
  std::uint64_t region_end_ = 0; // file size minus trailer
  long long records_ = 0;
  bool saw_endlib_ = false;
  bool has_trailer_ = false;
  std::uint32_t running_crc_ = 0;  // over every region byte consumed
  std::uint32_t stored_crc_ = 0;   // from the trailer, when present
};

/// Library-level metadata plus streaming counters returned by
/// stream_gds_structures.
struct StreamStats {
  std::string library_name;
  double dbu_per_user_unit = 1e-3;
  double dbu_in_meter = 1e-9;
  std::uint64_t bytes = 0;     // record-region bytes streamed
  long long records = 0;       // records parsed
  long long structures = 0;    // structures delivered
  long long boundaries = 0;    // BOUNDARY elements decomposed
};

/// Stream every structure of `path` through `on_structure`, holding at most
/// one structure in memory. Semantics match read_gds exactly (same record
/// subset, same rect decomposition) — the parity contract tested by
/// tests/io/gds_stream_test.cpp. Throws std::runtime_error with record name
/// and byte offset on any corruption.
StreamStats stream_gds_structures(const std::string& path,
                                  const std::function<void(GdsStructure&&)>& on_structure);

}  // namespace cp::io
