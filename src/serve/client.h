#pragma once
// Pipelined NDJSON replay client of the TCP serving front-end
// (docs/SERVING.md "Process architecture").
//
// Drives a trace (one request line per entry, the same files the offline
// replay consumes) through a running front-end over a small pool of
// connections. Requests are pipelined: each connection thread interleaves
// nonblocking writes of its remaining lines with reads of whatever results
// have arrived, so thousands of requests can be in flight at once without
// thousands of sockets — this is how the bench reaches 10k+ concurrency
// and how the chaos harness keeps pressure on while workers are killed.
//
// Results arrive in completion order and are matched back to their trace
// slot by id, so the combined FNV hash over `library_hash` in *input*
// order is comparable bit-for-bit with the offline replay's summary — the
// cross-process determinism audit.
//
// Requirement on the trace: ids must be unique (duplicate-request load is
// expressed as distinct ids with identical content, which also exercises
// the worker caches the way real traffic would).

#include <cstdint>
#include <string>
#include <vector>

namespace cp::serve {

struct ReplayClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 4;       // parallel sockets; trace is split round-robin
  int connect_timeout_ms = 5000;
  int overall_timeout_ms = 600000;  // whole-replay budget per connection
};

/// Outcome of one replayed request (input order).
struct ReplayOutcome {
  std::string id;
  std::string status;          // "ok", "failed", ... ("" = never answered)
  std::uint64_t library_hash = 0;
  bool cache_hit = false;
  bool degraded = false;
  bool answered = false;
  double latency_ms = 0.0;  // send -> result on the wire
};

struct ReplayReport {
  bool ok = false;        // transport-level success (every line answered)
  std::string error;      // first transport error when !ok
  long long sent = 0;
  long long answered = 0;
  std::uint64_t combined_hash = 0;  // FNV over library_hash, input order
  std::vector<ReplayOutcome> outcomes;  // one per trace line, input order
};

/// Replay `lines` (complete request JSON lines, no trailing newline)
/// against host:port. Blocks until every request is answered or a
/// connection fails/times out.
ReplayReport replay_over_tcp(const std::vector<std::string>& lines,
                             const ReplayClientOptions& options);

}  // namespace cp::serve
