#include "serve/client.h"

#include <chrono>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/json.h"
#include "util/net.h"

namespace cp::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::string extract_id(const std::string& line) {
  try {
    const util::Json j = util::Json::parse(line);
    if (j.is_object()) return j.get_string("id", "");
  } catch (const std::exception&) {
  }
  return "";
}

std::uint64_t parse_hash(const std::string& hex) {
  return std::strtoull(hex.c_str(), nullptr, 16);
}

/// One connection's replay: pipelined nonblocking writes interleaved with
/// result reads, so the whole allotment can be in flight at once.
void run_connection(const std::vector<std::string>& lines, const std::vector<std::size_t>& slots,
                    const ReplayClientOptions& options, std::vector<ReplayOutcome>* outcomes,
                    std::string* error) {
  if (slots.empty()) return;
  util::net::Socket sock;
  try {
    sock = util::net::connect_tcp(options.host, options.port, options.connect_timeout_ms);
  } catch (const std::exception& e) {
    *error = e.what();
    return;
  }
  util::net::set_nonblocking(sock.fd(), true);

  // Outgoing bytes plus per-slot completion offsets (latency stamps when a
  // request's final byte hits the kernel).
  std::string out;
  std::vector<std::size_t> sent_boundary(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    out.append(lines[slots[i]]).append("\n");
    sent_boundary[i] = out.size();
  }
  // Replies match by id; duplicate/empty ids resolve FIFO in send order.
  std::unordered_map<std::string, std::deque<std::size_t>> by_id;  // -> local index
  for (std::size_t i = 0; i < slots.size(); ++i) {
    by_id[extract_id(lines[slots[i]])].push_back(i);
  }
  std::vector<Clock::time_point> sent_at(slots.size());

  const auto deadline = Clock::now() + std::chrono::milliseconds(options.overall_timeout_ms);
  std::size_t out_offset = 0;
  std::size_t next_stamp = 0;
  std::size_t answered = 0;
  util::net::LineBuffer inbuf;
  char chunk[65536];

  while (answered < slots.size()) {
    const auto now = Clock::now();
    if (now >= deadline) {
      *error = "replay timed out with " + std::to_string(slots.size() - answered) +
               " request(s) unanswered";
      return;
    }
    // Write as much as the kernel takes.
    bool write_blocked = false;
    while (out_offset < out.size()) {
      std::size_t n = 0;
      const util::net::IoStatus st = util::net::write_some(
          sock.fd(), std::string_view(out).substr(out_offset), &n);
      if (st == util::net::IoStatus::kOk) {
        out_offset += n;
        const auto stamp = Clock::now();
        while (next_stamp < slots.size() && sent_boundary[next_stamp] <= out_offset) {
          sent_at[next_stamp++] = stamp;
        }
        continue;
      }
      if (st == util::net::IoStatus::kAgain) {
        write_blocked = true;
        break;
      }
      *error = "write failed (" + std::string(util::net::to_string(st)) + ")";
      return;
    }
    // Read whatever results have arrived.
    bool made_progress = false;
    for (;;) {
      std::size_t n = 0;
      const util::net::IoStatus st = util::net::read_some(sock.fd(), chunk, sizeof(chunk), &n);
      if (st == util::net::IoStatus::kOk) {
        made_progress = true;
        inbuf.append(chunk, n);
        continue;
      }
      if (st == util::net::IoStatus::kAgain) break;
      *error = st == util::net::IoStatus::kClosed
                   ? "connection closed with " + std::to_string(slots.size() - answered) +
                         " request(s) unanswered"
                   : "read failed";
      return;
    }
    std::string line;
    while (inbuf.next_line(&line)) {
      util::Json j;
      try {
        j = util::Json::parse(line);
      } catch (const std::exception&) {
        *error = "unparseable result line";
        return;
      }
      const std::string id = j.get_string("id", "");
      auto it = by_id.find(id);
      if (it == by_id.end() || it->second.empty()) continue;  // stats reply etc.
      const std::size_t local = it->second.front();
      it->second.pop_front();
      ReplayOutcome& o = (*outcomes)[slots[local]];
      o.id = id;
      o.answered = true;
      o.status = j.get_string("status", "");
      o.library_hash = parse_hash(j.get_string("library_hash", "0"));
      o.cache_hit = j.get_bool("cache_hit", false);
      o.degraded = j.get_bool("degraded", false);
      o.latency_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - sent_at[local]).count();
      ++answered;
    }
    if (answered >= slots.size()) break;
    if (!made_progress) {
      const int wait_ms = static_cast<int>(std::min<long long>(
          250, std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now())
                   .count()));
      if (write_blocked && out_offset < out.size()) {
        util::net::poll_writable(sock.fd(), std::max(1, wait_ms));
      } else {
        util::net::poll_readable(sock.fd(), std::max(1, wait_ms));
      }
    }
  }
}

}  // namespace

ReplayReport replay_over_tcp(const std::vector<std::string>& lines,
                             const ReplayClientOptions& options) {
  ReplayReport report;
  report.outcomes.resize(lines.size());
  report.sent = static_cast<long long>(lines.size());
  if (lines.empty()) {
    report.ok = true;
    report.combined_hash = 1469598103934665603ULL;
    return report;
  }

  const int conns = std::max(1, std::min<int>(options.connections,
                                              static_cast<int>(lines.size())));
  std::vector<std::vector<std::size_t>> split(static_cast<std::size_t>(conns));
  for (std::size_t i = 0; i < lines.size(); ++i) {
    split[i % static_cast<std::size_t>(conns)].push_back(i);
  }
  std::vector<std::string> errors(static_cast<std::size_t>(conns));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(conns));
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      run_connection(lines, split[static_cast<std::size_t>(c)], options, &report.outcomes,
                     &errors[static_cast<std::size_t>(c)]);
    });
  }
  for (auto& t : threads) t.join();

  for (const auto& e : errors) {
    if (!e.empty() && report.error.empty()) report.error = e;
  }
  std::uint64_t combined = 1469598103934665603ULL;
  for (const auto& o : report.outcomes) {
    if (o.answered) ++report.answered;
    combined ^= o.library_hash;
    combined *= 1099511628211ULL;
  }
  report.combined_hash = combined;
  report.ok = report.error.empty() && report.answered == report.sent;
  return report;
}

}  // namespace cp::serve
