#include "serve/supervisor.h"

#include <signal.h>

#include <algorithm>

#include "obs/registry.h"
#include "serve/wire.h"
#include "util/logging.h"

namespace cp::serve {

namespace {

/// Result lines are small; anything past this on a worker channel is a
/// framing bug and the worker is killed rather than buffered without bound.
constexpr std::size_t kMaxWorkerLineBytes = 1 << 20;

int ms_since(std::chrono::steady_clock::time_point then,
             std::chrono::steady_clock::time_point now) {
  return static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - then).count());
}

}  // namespace

WorkerPool::WorkerPool(std::vector<std::string> spawn_argv, SupervisorConfig config,
                       Handler handler)
    : spawn_argv_(std::move(spawn_argv)),
      config_(config),
      handler_(std::move(handler)),
      shards_(config.workers),
      workers_(static_cast<std::size_t>(config.workers)) {
  util::net::ignore_sigpipe();
}

WorkerPool::~WorkerPool() {
  for (auto& w : workers_) {
    if (w.pid > 0) {
      util::kill_process(w.pid, SIGKILL);
      util::wait_process(w.pid);
      w.pid = -1;
    }
  }
}

void WorkerPool::start() {
  for (int i = 0; i < shards(); ++i) spawn(i);
}

void WorkerPool::spawn(int shard) {
  Worker& w = workers_[static_cast<std::size_t>(shard)];
  auto [parent_end, child_end] = util::net::socketpair_stream();
  // Parent end: nonblocking for the event loop, CLOEXEC so the *next*
  // spawned sibling does not inherit this worker's channel.
  util::net::set_nonblocking(parent_end.fd(), true);
  util::net::set_cloexec(parent_end.fd(), true);

  std::vector<std::string> argv = spawn_argv_;
  argv.push_back("--worker-fd");
  argv.push_back(std::to_string(child_end.fd()));
  argv.push_back("--shard");
  argv.push_back(std::to_string(shard));

  std::string error;
  const pid_t pid = util::spawn_process(argv, &error);
  // child_end closes here either way: the child inherited its own copy.
  if (pid < 0) {
    CP_LOG_WARN << "serve supervisor: spawn shard " << shard << " failed: " << error;
    obs::count("serve_net/spawn_failures");
    w.state = State::kDown;
    w.respawn_at = Clock::now() + std::chrono::milliseconds(std::min(
                                      config_.backoff_max_ms,
                                      config_.backoff_base_ms << std::min(w.fail_streak, 10)));
    ++w.fail_streak;
    return;
  }
  if (w.started_once) ++restarts_;
  w.started_once = true;
  w.pid = pid;
  w.channel = std::move(parent_end);
  w.inbuf.clear();
  w.outbuf.clear();
  w.state = State::kStarting;
  w.spawned_at = Clock::now();
  w.last_line = w.spawned_at;
  w.last_result = w.spawned_at;
  w.inflight = 0;
  obs::count("serve_net/worker_spawns");
}

void WorkerPool::kill_worker(int shard, const std::string& why, bool backoff) {
  Worker& w = workers_[static_cast<std::size_t>(shard)];
  if (w.state == State::kDown) return;
  CP_LOG_WARN << "serve supervisor: shard " << shard << " down: " << why;
  if (w.pid > 0) {
    util::kill_process(w.pid, SIGKILL);  // also frees a SIGSTOPped worker
    util::wait_process(w.pid);
    w.pid = -1;
  }
  w.channel.reset();
  w.inbuf.clear();
  w.outbuf.clear();
  w.state = State::kDown;
  w.inflight = 0;
  shards_.set_alive(shard, false);
  obs::count("serve_net/worker_deaths");
  const auto now = Clock::now();
  if (backoff) {
    const int delay = std::min(config_.backoff_max_ms,
                               config_.backoff_base_ms << std::min(w.fail_streak, 10));
    ++w.fail_streak;
    w.respawn_at = now + std::chrono::milliseconds(delay);
  } else {
    w.respawn_at = now;  // clean drain: respawn immediately
  }
  if (handler_.on_down) handler_.on_down(shard, why);
}

void WorkerPool::handle_line(int shard, const std::string& line) {
  Worker& w = workers_[static_cast<std::size_t>(shard)];
  w.last_line = Clock::now();
  switch (wire::classify_worker_line(line)) {
    case wire::WorkerLine::kHeartbeat:
      return;
    case wire::WorkerLine::kReady:
      if (w.state == State::kStarting) {
        w.state = State::kReady;
        w.last_result = w.last_line;
        shards_.set_alive(shard, true);
        if (handler_.on_ready) handler_.on_ready(shard);
      }
      return;
    case wire::WorkerLine::kDrained:
      if (w.state == State::kDraining) {
        w.outbuf.append(wire::kStopCmd).append("\n");
        flush_out(shard);
      }
      return;
    case wire::WorkerLine::kResult:
      w.last_result = w.last_line;
      if (w.inflight > 0) --w.inflight;
      if (handler_.on_result_line) handler_.on_result_line(shard, line);
      return;
  }
}

void WorkerPool::flush_out(int shard) {
  Worker& w = workers_[static_cast<std::size_t>(shard)];
  while (!w.outbuf.empty() && w.channel.valid()) {
    std::size_t n = 0;
    const util::net::IoStatus st = util::net::write_some(w.channel.fd(), w.outbuf, &n);
    if (st == util::net::IoStatus::kOk) {
      w.outbuf.erase(0, n);
      continue;
    }
    if (st == util::net::IoStatus::kAgain) return;  // poll() for POLLOUT
    kill_worker(shard, "channel write error", /*backoff=*/true);
    return;
  }
}

void WorkerPool::collect_pollfds(std::vector<struct pollfd>* fds) const {
  for (const auto& w : workers_) {
    if (!w.channel.valid()) continue;
    struct pollfd p;
    p.fd = w.channel.fd();
    p.events = static_cast<short>(POLLIN | (w.outbuf.empty() ? 0 : POLLOUT));
    p.revents = 0;
    fds->push_back(p);
  }
}

void WorkerPool::pump() {
  char chunk[4096];
  for (int shard = 0; shard < shards(); ++shard) {
    Worker& w = workers_[static_cast<std::size_t>(shard)];
    if (!w.channel.valid()) continue;
    // Read everything currently available.
    for (;;) {
      std::size_t n = 0;
      const util::net::IoStatus st = util::net::read_some(w.channel.fd(), chunk, sizeof(chunk), &n);
      if (st == util::net::IoStatus::kOk) {
        w.inbuf.append(chunk, n);
        std::string line;
        while (w.channel.valid() && w.inbuf.next_line(&line)) handle_line(shard, line);
        if (!w.channel.valid()) break;  // a callback killed this worker
        if (w.inbuf.pending() > kMaxWorkerLineBytes) {
          kill_worker(shard, "unframed channel (line too long)", /*backoff=*/true);
          break;
        }
        continue;
      }
      if (st == util::net::IoStatus::kAgain) break;
      // kClosed / kError: the process is gone or dying; reap + reroute now.
      kill_worker(shard, "channel closed", /*backoff=*/true);
      break;
    }
    if (w.channel.valid()) flush_out(shard);
  }
}

void WorkerPool::tick() {
  const auto now = Clock::now();

  // Reap exits the channel has not already surfaced.
  util::ExitStatus status;
  pid_t pid;
  while ((pid = util::reap_any(&status)) > 0) {
    for (int shard = 0; shard < shards(); ++shard) {
      Worker& w = workers_[static_cast<std::size_t>(shard)];
      if (w.pid != pid) continue;
      w.pid = -1;  // already reaped; kill_worker must not wait again
      const bool clean = w.state == State::kDraining && status.exited && status.code == 0;
      kill_worker(shard, clean ? "drained" : "exit: " + status.describe(), /*backoff=*/!clean);
      break;
    }
  }

  for (int shard = 0; shard < shards(); ++shard) {
    Worker& w = workers_[static_cast<std::size_t>(shard)];
    switch (w.state) {
      case State::kStarting:
        if (ms_since(w.spawned_at, now) > config_.startup_timeout_ms) {
          obs::count("serve_net/startup_timeouts");
          kill_worker(shard, "startup timeout", /*backoff=*/true);
        }
        break;
      case State::kReady:
      case State::kDraining:
        if (ms_since(w.last_line, now) > config_.heartbeat_timeout_ms) {
          obs::count("serve_net/heartbeat_timeouts");
          kill_worker(shard, "heartbeat timeout", /*backoff=*/true);
          break;
        }
        if (w.inflight > 0 && ms_since(w.last_result, now) > config_.watchdog_ms) {
          obs::count("serve_net/watchdog_kills");
          kill_worker(shard, "request watchdog (no progress)", /*backoff=*/true);
          break;
        }
        if (w.state == State::kReady && w.fail_streak > 0 &&
            ms_since(w.spawned_at, now) > config_.min_uptime_ms) {
          w.fail_streak = 0;  // healthy again: future crashes restart fast
        }
        break;
      case State::kDown:
        if (!shut_down_ && now >= w.respawn_at) spawn(shard);
        break;
    }
  }

  // Rolling restart: cycle one shard at a time, never reducing capacity by
  // more than one worker.
  if (rolling_next_ >= 0) {
    if (rolling_draining_ >= 0) {
      const Worker& w = workers_[static_cast<std::size_t>(rolling_draining_)];
      if (w.state == State::kReady) {  // back up: advance to the next shard
        rolling_draining_ = -1;
        ++rolling_next_;
      }
    }
    if (rolling_draining_ < 0) {
      while (rolling_next_ >= 0 && rolling_next_ < shards()) {
        Worker& w = workers_[static_cast<std::size_t>(rolling_next_)];
        if (w.state == State::kReady) {
          w.outbuf.append(wire::kDrainCmd).append("\n");
          w.state = State::kDraining;
          shards_.set_alive(rolling_next_, false);  // route new work elsewhere
          flush_out(rolling_next_);
          rolling_draining_ = rolling_next_;
          break;
        }
        ++rolling_next_;  // down/still starting: skip (a restart is free)
      }
      if (rolling_next_ >= shards()) {
        rolling_next_ = -1;
        rolling_draining_ = -1;
        obs::count("serve_net/rolling_restarts_done");
      }
    }
  }
}

int WorkerPool::next_timeout_ms() const {
  const auto now = Clock::now();
  int timeout = 1000;
  auto consider = [&](int remaining) { timeout = std::max(1, std::min(timeout, remaining)); };
  for (const auto& w : workers_) {
    switch (w.state) {
      case State::kStarting:
        consider(config_.startup_timeout_ms - ms_since(w.spawned_at, now));
        break;
      case State::kReady:
      case State::kDraining:
        consider(config_.heartbeat_timeout_ms - ms_since(w.last_line, now));
        if (w.inflight > 0) consider(config_.watchdog_ms - ms_since(w.last_result, now));
        break;
      case State::kDown:
        consider(ms_since(now, w.respawn_at));
        break;
    }
  }
  return timeout;
}

bool WorkerPool::send_request(int shard, const std::string& line) {
  if (shard < 0 || shard >= shards()) return false;
  Worker& w = workers_[static_cast<std::size_t>(shard)];
  if (w.state != State::kReady) return false;
  w.outbuf.append(line).append("\n");
  // The watchdog measures "time since last progress"; an idle worker's
  // last_result goes stale, so restart the clock on the idle->busy edge or
  // the first request after a long idle period would be judged instantly.
  if (w.inflight == 0) w.last_result = Clock::now();
  ++w.inflight;
  flush_out(shard);
  // flush_out can kill the worker on a write error; report honestly.
  return w.state == State::kReady;
}

void WorkerPool::rolling_restart() {
  if (rolling_next_ >= 0 || shut_down_) return;
  rolling_next_ = 0;
  rolling_draining_ = -1;
  obs::count("serve_net/rolling_restarts");
}

void WorkerPool::shutdown(int timeout_ms) {
  if (shut_down_) return;
  shut_down_ = true;
  rolling_next_ = -1;
  rolling_draining_ = -1;
  for (int shard = 0; shard < shards(); ++shard) {
    Worker& w = workers_[static_cast<std::size_t>(shard)];
    if (w.state == State::kReady || w.state == State::kStarting) {
      w.outbuf.append(wire::kDrainCmd).append("\n");
      w.state = State::kDraining;
      shards_.set_alive(shard, false);
      flush_out(shard);
    }
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    bool any_up = false;
    for (const auto& w : workers_) any_up = any_up || w.state != State::kDown;
    if (!any_up || Clock::now() >= deadline) break;
    std::vector<struct pollfd> fds;
    collect_pollfds(&fds);
    if (!fds.empty()) ::poll(fds.data(), fds.size(), 50);
    pump();
    tick();
  }
  for (int shard = 0; shard < shards(); ++shard) {
    if (workers_[static_cast<std::size_t>(shard)].state != State::kDown) {
      kill_worker(shard, "shutdown timeout", /*backoff=*/true);
    }
  }
}

bool WorkerPool::ready(int shard) const {
  return shard >= 0 && shard < shards() &&
         workers_[static_cast<std::size_t>(shard)].state == State::kReady;
}

long long WorkerPool::inflight(int shard) const {
  if (shard < 0 || shard >= shards()) return 0;
  return workers_[static_cast<std::size_t>(shard)].inflight;
}

std::vector<pid_t> WorkerPool::pids() const {
  std::vector<pid_t> out;
  out.reserve(workers_.size());
  for (const auto& w : workers_) out.push_back(w.state == State::kDown ? -1 : w.pid);
  return out;
}

}  // namespace cp::serve
