#pragma once
// Accepted-work ledger of the serving front-end (docs/ROBUSTNESS.md).
//
// The no-lost-work contract of the multi-process tier is an accounting
// claim: every request the front-end admits must eventually complete with
// some terminal status (ok / incomplete / failed / ...), across worker
// crashes, restarts and retries. The ledger is that account: accept() at
// admission, complete() exactly once when the result (or synthesized
// failure) is written back, outstanding() must be zero at drain.
//
// With a journal path, the ledger also appends one CRC32-framed record per
// event to an on-disk journal — the same [len][payload][crc] discipline as
// core::PopulateJournal (PR 5): a crash tears at most the final record,
// which fails its CRC and is dropped on load, so a restarted supervisor
// (or a post-mortem) can report exactly which accepted requests were still
// unfinished. The journal is an audit artifact; serving never reads it on
// the hot path.

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cp::serve {

class RequestLedger {
 public:
  /// `journal_path` empty = in-memory accounting only. A pre-existing
  /// journal file is truncated (each front-end run owns its journal).
  /// Journal open failures are recorded (journal_error()) but never fatal —
  /// losing the audit trail must not take down serving.
  explicit RequestLedger(std::string journal_path = "");

  RequestLedger(const RequestLedger&) = delete;
  RequestLedger& operator=(const RequestLedger&) = delete;

  /// Record an admission; returns the ledger sequence number that
  /// complete() must be called with.
  std::uint64_t accept(const std::string& client_id, std::uint64_t content_hash);

  /// Record the terminal status of `seq`. Unknown/duplicate seqs are
  /// counted (double_completes()) instead of corrupting the account —
  /// exactly-once completion is the invariant under test.
  void complete(std::uint64_t seq, std::string_view status);

  long long accepted() const { return accepted_; }
  long long completed() const { return completed_; }
  long long outstanding() const { return static_cast<long long>(open_.size()); }
  long long double_completes() const { return double_completes_; }
  const std::string& journal_error() const { return journal_error_; }

  /// Client ids of still-unfinished requests (diagnostics; unordered).
  std::vector<std::string> unfinished_ids() const;

  /// Flush buffered journal records to the OS.
  void flush();

  /// Parsed journal contents. A torn final record is dropped (torn_tail);
  /// an unreadable or foreign file reports ok=false.
  struct Recovered {
    bool ok = false;
    std::string error;
    bool torn_tail = false;
    long long accepted = 0;
    long long completed = 0;
    std::vector<std::string> unfinished_ids;  // accepted, never completed
  };
  static Recovered load(const std::string& path);

 private:
  void append_record(std::string_view payload);

  long long accepted_ = 0;
  long long completed_ = 0;
  long long double_completes_ = 0;
  std::uint64_t next_seq_ = 1;
  std::unordered_map<std::uint64_t, std::string> open_;  // seq -> client id
  std::ofstream journal_;
  std::string journal_error_;
};

}  // namespace cp::serve
