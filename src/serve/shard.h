#pragma once
// Consistent-hash shard map of the multi-process serving tier
// (docs/SERVING.md "Process architecture").
//
// Requests are routed to worker processes by rendezvous (highest-random-
// weight) hashing of their content hash: owner(key) is the alive shard
// whose mixed weight(key, shard) is largest. Two properties matter here:
//
//   * stability — identical requests always land on the same worker while
//     the alive set is unchanged, so each worker's PatternCache owns a
//     disjoint slice of the key space and repeated requests keep hitting;
//   * minimal movement — when a worker dies, only the keys it owned move
//     (each to its second-highest weight); every other key keeps its
//     owner, so a crash does not flush the surviving caches.
//
// The map is a pure function of (key, alive set): the front-end and any
// test can predict routing without talking to the workers.

#include <cstdint>
#include <vector>

namespace cp::serve {

class ShardMap {
 public:
  /// `shards` slots, all initially dead (workers announce readiness).
  explicit ShardMap(int shards);

  int shards() const { return static_cast<int>(alive_.size()); }
  void set_alive(int shard, bool alive);
  bool alive(int shard) const { return alive_[static_cast<std::size_t>(shard)] != 0; }
  int alive_count() const;

  /// Owning shard of `key` among the alive set; -1 when none are alive.
  int owner(std::uint64_t key) const;

  /// Owner of `key` with `excluded` treated as dead — the retry target
  /// after losing a worker mid-request. -1 when no other shard is alive.
  int owner_excluding(std::uint64_t key, int excluded) const;

  /// The rendezvous weight (pure; exposed for tests).
  static std::uint64_t weight(std::uint64_t key, int shard);

 private:
  std::vector<std::uint8_t> alive_;
};

}  // namespace cp::serve
