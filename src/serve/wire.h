#pragma once
// Wire protocol of the supervisor <-> worker channel and the client-facing
// control lines (docs/SERVING.md "Process architecture").
//
// Everything on every stream is NDJSON — one JSON object per '\n'-separated
// line — so the worker channel, the TCP client protocol and the offline
// replay files all share one framing. Three line families:
//
//   * requests / results: serve::GenerationRequest / GenerationResult wire
//     forms (request.h). The front-end rewrites request ids to "s<seq>"
//     before forwarding so worker-side ids are unique across clients, and
//     restores the client id on the way back.
//   * worker control: exact-prefix lines the worker emits on its channel
//     ({"hb":N} heartbeats, {"ready":true} after its Server is up,
//     {"drained":true} after a graceful drain) and commands the supervisor
//     sends it ({"cmd":"drain"}, {"cmd":"stop"}).
//   * client control: {"cmd":"stats"} / {"cmd":"shutdown"} /
//     {"cmd":"rolling_restart"} on a client TCP connection.
//
// Worker-emitted control lines are classified by exact prefix match, not a
// JSON parse: the worker writes them itself, so the format is canonical by
// construction and the front-end stays cheap on its per-line hot path.

#include <cstdint>
#include <string>
#include <string_view>

namespace cp::serve::wire {

// -- worker -> supervisor ---------------------------------------------------
inline constexpr std::string_view kHeartbeatPrefix = "{\"hb\":";
inline constexpr std::string_view kReadyLine = "{\"ready\":true}";
inline constexpr std::string_view kDrainedLine = "{\"drained\":true}";

// -- supervisor -> worker ---------------------------------------------------
inline constexpr std::string_view kDrainCmd = "{\"cmd\":\"drain\"}";
inline constexpr std::string_view kStopCmd = "{\"cmd\":\"stop\"}";

/// Kinds of line a worker writes on its channel.
enum class WorkerLine { kResult, kHeartbeat, kReady, kDrained };

inline WorkerLine classify_worker_line(std::string_view line) {
  if (line.size() >= kHeartbeatPrefix.size() &&
      line.substr(0, kHeartbeatPrefix.size()) == kHeartbeatPrefix) {
    return WorkerLine::kHeartbeat;
  }
  if (line == kReadyLine) return WorkerLine::kReady;
  if (line == kDrainedLine) return WorkerLine::kDrained;
  return WorkerLine::kResult;
}

/// The internal id the front-end forwards for ledger sequence `seq`.
inline std::string internal_id(std::uint64_t seq) { return "s" + std::to_string(seq); }

/// Parse an internal id back to its sequence. False when `id` is not of
/// internal form (defensive: a worker never invents ids).
inline bool parse_internal_id(std::string_view id, std::uint64_t* seq) {
  if (id.size() < 2 || id[0] != 's') return false;
  std::uint64_t value = 0;
  for (std::size_t i = 1; i < id.size(); ++i) {
    const char c = id[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

}  // namespace cp::serve::wire
