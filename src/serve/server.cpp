#include "serve/server.h"

#include <algorithm>
#include <unordered_map>

#include "dataset/style.h"
#include "obs/registry.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/retry.h"

namespace cp::serve {

namespace {

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

diffusion::SampleConfig sample_config(const GenerationRequest& r, int condition,
                                      diffusion::ScheduleKind default_schedule) {
  diffusion::SampleConfig sc;
  sc.rows = r.rows;
  sc.cols = r.cols;
  sc.condition = condition;
  sc.sample_steps = r.sample_steps;
  sc.schedule_kind =
      r.schedule.empty() ? default_schedule : diffusion::schedule_kind_from_string(r.schedule);
  sc.polish_rounds = r.polish_rounds;
  // validate() guarantees the string parses; fp32 stays the fallback.
  diffusion::precision_from_string(r.precision, &sc.precision);
  return sc;
}

}  // namespace

Server::Server(const diffusion::TopologyGenerator& generator,
               std::vector<const legalize::Legalizer*> legalizers, ServerConfig config)
    : config_(config),
      legalizers_(std::move(legalizers)),
      pool_(config.workers > 1 ? std::make_unique<util::ThreadPool>(config.workers) : nullptr),
      sampler_(generator, pool_.get()),
      cache_(config.cache_entries),
      queue_(config.queue_capacity, config.aging_interval_ms),
      batcher_(&queue_, config.batch) {
  if (legalizers_.empty()) throw std::invalid_argument("Server: no legalizers");
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

Server::~Server() { shutdown(); }

Server::Submitted Server::submit_impl(GenerationRequest request, bool blocking,
                                      ResultCallback on_result) {
  Submitted out;
  std::promise<GenerationResult> promise;
  out.result = promise.get_future();
  // Immediate completions (rejections, cache hits, store reads) bypass the
  // queue, so the push-style callback fires here rather than in fulfill().
  auto finish = [&](GenerationResult result) {
    if (on_result) on_result(result);
    promise.set_value(std::move(result));
  };

  const std::string invalid = validate(request);
  if (!invalid.empty()) {
    obs::count("serve/rejected_invalid");
    out.reason = "invalid: " + invalid;
    GenerationResult result;
    result.id = request.id;
    result.status = RequestStatus::kRejected;
    result.reason = out.reason;
    finish(std::move(result));
    return out;
  }
  // Store-backed retrieval: answered synchronously from the attached
  // PatternStore's index — no sampling, no queue slot, and no cache entry
  // (the store may gain patterns between identical requests).
  if (request.source == "store") {
    if (config_.store == nullptr) {
      obs::count("serve/rejected_invalid");
      out.reason = "invalid: source 'store' but the server has no pattern store attached";
      GenerationResult result;
      result.id = request.id;
      result.status = RequestStatus::kRejected;
      result.reason = out.reason;
      finish(std::move(result));
      return out;
    }
    finish(store_lookup(request));
    out.admitted = true;
    return out;
  }

  const int condition = dataset::style_index(request.style);
  if (static_cast<std::size_t>(condition) >= legalizers_.size()) {
    obs::count("serve/rejected_invalid");
    out.reason = "invalid: no legalizer for style '" + request.style + "'";
    GenerationResult result;
    result.id = request.id;
    result.status = RequestStatus::kRejected;
    result.reason = out.reason;
    finish(std::move(result));
    return out;
  }

  // Fast path: a repeated request never touches the queue. Requests marked
  // no_cache (front-end worker-loss retries) skip the cache in both
  // directions — see request.h.
  const std::uint64_t key = request.content_hash();
  if (!request.no_cache) {
    if (auto payload = cache_.lookup(key)) {
      GenerationResult result;
      result.id = request.id;
      result.status = RequestStatus::kOk;
      result.payload = std::move(payload);
      result.cache_hit = true;
      finish(std::move(result));
      out.admitted = true;
      return out;
    }
  }

  PendingRequest pending;
  pending.request = std::move(request);
  pending.condition = condition;
  pending.promise = std::move(promise);
  pending.on_result = std::move(on_result);
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    ++outstanding_;
  }
  pending.on_complete = [this] {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    --outstanding_;
    drain_cv_.notify_all();
  };
  const Admission admission =
      blocking ? queue_.enqueue_wait(std::move(pending)) : queue_.try_enqueue(std::move(pending));
  out.admitted = admission.admitted;
  out.reason = admission.reason;
  return out;
}

GenerationResult Server::store_lookup(const GenerationRequest& request) {
  GenerationResult result;
  result.id = request.id;
  pattlib::Query query;
  if (request.style != "*") query.style_tag = request.style;
  // Guard rail: clip the read to store_result_cap so one greedy request
  // cannot materialize the whole library (docs/ROBUSTNESS.md).
  long long limit = request.count;
  if (config_.store_result_cap > 0 && limit > config_.store_result_cap) {
    limit = config_.store_result_cap;
    result.truncated = true;
    obs::count("serve/store_truncated");
  }
  query.limit = static_cast<int>(limit);
  util::Rng jitter(request.content_hash());
  util::RetryStats stats;
  try {
    auto payload = std::make_shared<GenerationPayload>();
    payload->patterns = util::retry_call(
        config_.store_retry, jitter,
        [&] {
          util::fault::point("pattlib/query");
          return config_.store->patterns(config_.store->query(query));
        },
        &stats);
    if (stats.attempts > 1) obs::count("serve/store_retries", stats.attempts - 1);
    result.status = static_cast<long long>(payload->patterns.size()) >= request.count
                        ? RequestStatus::kOk
                        : RequestStatus::kIncomplete;
    result.payload = std::move(payload);
    obs::count("serve/store_requests");
  } catch (const std::exception& e) {
    // A corrupt or faulting store fails THIS request; it never throws
    // through submit into the caller.
    if (stats.attempts > 1) obs::count("serve/store_retries", stats.attempts - 1);
    obs::count("serve/store_errors");
    result.status = RequestStatus::kFailed;
    result.reason = std::string("store error: ") + e.what();
  }
  return result;
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void Server::shutdown() {
  if (stopped_.exchange(true)) {
    if (dispatcher_.joinable()) dispatcher_.join();
    return;
  }
  queue_.close();  // reject new work; the dispatcher drains what is queued
  if (dispatcher_.joinable()) dispatcher_.join();
}

void Server::dispatch_loop() {
  for (;;) {
    std::vector<PendingRequest> batch = batcher_.next_batch();
    if (batch.empty()) return;  // queue closed and drained
    try {
      execute_batch(std::move(batch));
    } catch (const std::exception& e) {
      // Last-resort containment: execute_batch fails individual requests
      // internally, so reaching here is a bug — but the dispatcher must
      // outlive it either way, or every queued request behind this batch
      // hangs forever.
      obs::count("serve/batch_failures");
      CP_LOG_WARN << "serve: batch escaped execute_batch: " << e.what();
    }
  }
}

void Server::complete(PendingRequest pending, GenerationResult result) {
  switch (result.status) {
    case RequestStatus::kOk:
      obs::count("serve/requests_ok");
      break;
    case RequestStatus::kIncomplete:
      obs::count("serve/requests_incomplete");
      break;
    case RequestStatus::kFailed:
      obs::count("serve/requests_failed");
      break;
    default:
      break;
  }
  if (result.degraded) obs::count("serve/degraded");
  fulfill(pending, std::move(result));
}

Server::GuardedSamples Server::sample_jobs_guarded(
    const std::vector<diffusion::BatchSampler::SampleJob>& jobs) {
  GuardedSamples out;
  out.topologies.resize(jobs.size());
  out.degraded.assign(jobs.size(), 0);
  out.failed.assign(jobs.size(), 0);
  const diffusion::TopologyGenerator& primary = sampler_.generator();
  const diffusion::TopologyGenerator* fallback = config_.fallback;

  auto one = [&](long long i) {
    const auto idx = static_cast<std::size_t>(i);
    const auto& job = jobs[idx];
    // Jitter rng for the backoff sleeps only — the sample itself re-forks
    // job.root.fork(job.stream) on every attempt, so a retried draw is
    // bit-identical to an undisturbed first try.
    util::Rng jitter(job.root.fork(job.stream).next_u64());
    util::RetryStats stats;
    try {
      out.topologies[idx] = util::retry_call(
          config_.sample_retry, jitter,
          [&] {
            util::fault::point("denoiser/infer");
            util::Rng rng = job.root.fork(job.stream);
            return primary.sample(job.config, rng);
          },
          &stats);
      if (stats.attempts > 1) obs::count("serve/sample_retries", stats.attempts - 1);
      return;
    } catch (const std::exception&) {
      if (stats.attempts > 1) obs::count("serve/sample_retries", stats.attempts - 1);
    }
    if (fallback != nullptr) {
      try {
        util::Rng rng = job.root.fork(job.stream);
        out.topologies[idx] = fallback->sample(job.config, rng);
        out.degraded[idx] = 1;
        obs::count("serve/sample_fallbacks");
        return;
      } catch (const std::exception&) {
        // fall through: the sample is lost, not the request
      }
    }
    out.failed[idx] = 1;
    obs::count("serve/sample_failures");
  };

  const long long n = static_cast<long long>(jobs.size());
  const bool par = pool_ != nullptr && pool_->size() > 1 && primary.thread_safe() &&
                   (fallback == nullptr || fallback->thread_safe());
  if (par) {
    pool_->parallel_for(n, one);
  } else {
    for (long long i = 0; i < n; ++i) one(i);
  }
  return out;
}

void Server::execute_batch(std::vector<PendingRequest> batch) {
  const obs::Span span = obs::trace_scope("serve/batch");
  const auto batch_start = Clock::now();

  // Stage 0: late cache hits (payload landed after this request was
  // admitted) and in-batch dedup of identical content hashes.
  std::vector<Active> active;
  active.reserve(batch.size());
  std::unordered_map<std::uint64_t, int> leader_of;
  for (auto& pending : batch) {
    Active a;
    a.key = pending.request.content_hash();
    a.budget = config_.max_attempts_per_pattern * pending.request.count + 64;
    a.pending = std::move(pending);
    if (auto payload = a.pending.request.no_cache ? nullptr : cache_.lookup(a.key)) {
      GenerationResult result;
      result.id = a.pending.request.id;
      result.status = RequestStatus::kOk;
      result.payload = std::move(payload);
      result.cache_hit = true;
      result.queue_wait_ms = ms_between(a.pending.admitted_at, batch_start);
      result.total_ms = ms_between(a.pending.admitted_at, Clock::now());
      complete(std::move(a.pending), std::move(result));
      continue;
    }
    auto [it, inserted] = leader_of.try_emplace(a.key, static_cast<int>(active.size()));
    if (!inserted) {
      a.dedup_leader = it->second;
      obs::count("serve/dedup_hit");
    }
    active.push_back(std::move(a));
  }

  // Stage 1: generation rounds. Each round coalesces the outstanding need
  // of every unfilled leader into ONE guarded sampling fan-out (retry /
  // fallback per sample — see sample_jobs_guarded), legalizes every
  // candidate in parallel, then accepts per request in stream order. A
  // request whose round yields too few legal patterns simply re-enters the
  // next round with its stream cursor advanced — that is the legalization
  // retry path. Anything that still escapes fails this batch's requests as
  // kFailed below; it never kills the dispatcher.
  std::string batch_error;
  try {
  for (;;) {
    struct JobRange {
      int owner = 0;
      std::size_t begin = 0;
      long long want = 0;
    };
    std::vector<diffusion::BatchSampler::SampleJob> jobs;
    std::vector<JobRange> ranges;
    for (int i = 0; i < static_cast<int>(active.size()); ++i) {
      Active& a = active[i];
      if (a.done || a.dedup_leader >= 0) continue;
      const GenerationRequest& r = a.pending.request;
      const long long accepted = static_cast<long long>(a.payload.size());
      const long long remaining = r.count - accepted;
      if (remaining <= 0) {
        a.done = true;
        continue;
      }
      long long want = remaining;
      if (r.legalize) {
        // Oversample by the observed per-request rejection rate (at least
        // 2x the remaining need), clipped to the attempt budget — the same
        // policy as PatternLibrary::populate, applied per request so the
        // round count stays a pure function of the request's own streams.
        const double yield =
            a.attempts == 0 ? 0.5
                            : std::max(0.05, static_cast<double>(accepted) /
                                                 static_cast<double>(a.attempts));
        want = std::max<long long>(remaining * 2,
                                   static_cast<long long>(remaining / yield) + 1);
        want = std::min(want, a.budget - a.attempts);
      }
      if (want <= 0) {
        a.done = true;  // budget exhausted: completes as kIncomplete below
        continue;
      }
      ranges.push_back({i, jobs.size(), want});
      const util::Rng root(r.seed);
      for (long long k = 0; k < want; ++k) {
        jobs.push_back({sample_config(r, a.pending.condition, config_.default_schedule), root,
                        a.next_stream + k});
      }
      ++a.rounds;
    }
    if (jobs.empty()) break;

    obs::observe("serve/batch_samples", static_cast<double>(jobs.size()));
    GuardedSamples sampled;
    {
      const obs::Span sample_span = obs::trace_scope("sample");
      sampled = sample_jobs_guarded(jobs);
    }
    const std::vector<squish::Topology>& candidates = sampled.topologies;

    // Legalize every candidate of every legalizing owner, fanned out. A
    // legalization failure (fault point `legalize/run`) retries the SAME
    // candidate, so a transient fault leaves the payload bit-identical; an
    // exhausted budget drops the candidate (the request re-rounds).
    std::vector<legalize::LegalizeResult> legal(candidates.size());
    {
      const obs::Span legalize_span = obs::trace_scope("legalize");
      auto legalize_one = [&](long long j) {
        const auto idx = static_cast<std::size_t>(j);
        if (sampled.failed[idx] != 0) return;  // no candidate to legalize
        // Find the owning range (few ranges; linear scan is fine).
        for (const auto& range : ranges) {
          if (idx >= range.begin && idx < range.begin + static_cast<std::size_t>(range.want)) {
            const Active& a = active[static_cast<std::size_t>(range.owner)];
            const GenerationRequest& r = a.pending.request;
            if (r.legalize) {
              util::Rng jitter(r.seed ^ (0xc2b2ae3d27d4eb4fULL + idx));
              try {
                legal[idx] = util::retry_call(config_.legalize_retry, jitter, [&] {
                  util::fault::point("legalize/run");
                  return legalizers_[static_cast<std::size_t>(a.pending.condition)]->legalize(
                      candidates[idx], r.width_nm, r.height_nm);
                });
              } catch (const std::exception&) {
                obs::count("serve/legalize_faults");  // dropped; request re-rounds
              }
            }
            return;
          }
        }
      };
      const long long n = static_cast<long long>(candidates.size());
      if (pool_ != nullptr && pool_->size() > 1) {
        pool_->parallel_for(n, legalize_one);
      } else {
        for (long long j = 0; j < n; ++j) legalize_one(j);
      }
    }

    // Accept in stream order; unexamined surplus candidates do not count
    // against the budget (mirrors populate's accounting). A failed sample
    // consumes budget but delivers nothing, so a fully-failing backend
    // still terminates as kIncomplete instead of looping forever.
    for (const auto& range : ranges) {
      Active& a = active[static_cast<std::size_t>(range.owner)];
      const GenerationRequest& r = a.pending.request;
      for (long long k = 0; k < range.want; ++k) {
        if (static_cast<int>(a.payload.size()) >= r.count) break;
        const auto idx = range.begin + static_cast<std::size_t>(k);
        ++a.attempts;
        if (sampled.failed[idx] != 0) continue;
        if (!r.legalize) {
          a.payload.topologies.push_back(candidates[idx]);
          if (sampled.degraded[idx] != 0) a.degraded = true;
        } else if (legal[idx].ok()) {
          a.payload.patterns.push_back(std::move(*legal[idx].pattern));
          if (sampled.degraded[idx] != 0) a.degraded = true;
        } else {
          obs::count("serve/legalize_failures");
        }
      }
      a.next_stream += static_cast<std::uint64_t>(range.want);
      if (static_cast<int>(a.payload.size()) >= r.count) a.done = true;
    }
    obs::count("serve/rounds");
  }
  } catch (const std::exception& e) {
    batch_error = e.what();
    obs::count("serve/batch_failures");
    CP_LOG_WARN << "serve: generation failed for a batch of " << active.size()
                << " request(s): " << e.what();
  }

  // Failure publish: every request of this batch completes as kFailed with
  // the error as its reason. The dispatcher moves on to the next batch.
  if (!batch_error.empty()) {
    const auto fail_time = Clock::now();
    for (Active& a : active) {
      GenerationResult result;
      result.id = a.pending.request.id;
      result.status = RequestStatus::kFailed;
      result.reason = "internal error: " + batch_error;
      result.attempts = a.attempts;
      result.rounds = a.rounds;
      result.queue_wait_ms = ms_between(a.pending.admitted_at, batch_start);
      result.service_ms = ms_between(batch_start, fail_time);
      result.total_ms = ms_between(a.pending.admitted_at, fail_time);
      complete(std::move(a.pending), std::move(result));
    }
    return;
  }

  // Stage 2: publish. Leaders first (so followers can share their payload),
  // then dedup followers.
  const auto finish = Clock::now();
  std::vector<std::shared_ptr<const GenerationPayload>> published(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    Active& a = active[i];
    if (a.dedup_leader >= 0) continue;
    auto payload = std::make_shared<const GenerationPayload>(std::move(a.payload));
    published[i] = payload;
    const bool full = static_cast<int>(payload->size()) >= a.pending.request.count;
    // A degraded payload is never cached: a later identical request should
    // get a fresh shot at the primary generator, not a stale fallback.
    // no_cache requests (front-end worker-loss retries) never publish either.
    if (full && !a.degraded && !a.pending.request.no_cache) cache_.insert(a.key, payload);
    if (a.rounds > 1) obs::count("serve/legalize_retries", a.rounds - 1);

    GenerationResult result;
    result.id = a.pending.request.id;
    result.status = full ? RequestStatus::kOk : RequestStatus::kIncomplete;
    if (!full) result.reason = "attempt budget exhausted";
    result.degraded = a.degraded;
    result.payload = std::move(payload);
    result.attempts = a.attempts;
    result.rounds = a.rounds;
    result.queue_wait_ms = ms_between(a.pending.admitted_at, batch_start);
    result.service_ms = ms_between(batch_start, finish);
    result.total_ms = ms_between(a.pending.admitted_at, finish);
    complete(std::move(a.pending), std::move(result));
  }
  for (std::size_t i = 0; i < active.size(); ++i) {
    Active& a = active[i];
    if (a.dedup_leader < 0) continue;
    const auto& payload = published[static_cast<std::size_t>(a.dedup_leader)];
    const bool full = static_cast<int>(payload->size()) >= a.pending.request.count;
    GenerationResult result;
    result.id = a.pending.request.id;
    result.status = full ? RequestStatus::kOk : RequestStatus::kIncomplete;
    if (!full) result.reason = "attempt budget exhausted";
    result.degraded = active[static_cast<std::size_t>(a.dedup_leader)].degraded;
    result.payload = payload;
    result.deduped = true;
    result.queue_wait_ms = ms_between(a.pending.admitted_at, batch_start);
    result.service_ms = ms_between(batch_start, finish);
    result.total_ms = ms_between(a.pending.admitted_at, finish);
    complete(std::move(a.pending), std::move(result));
  }
}

}  // namespace cp::serve
