#include "serve/ledger.h"

#include <cstring>

#include "obs/registry.h"
#include "util/fs.h"

namespace cp::serve {

namespace {

constexpr char kMagic[4] = {'C', 'P', 'S', 'J'};
constexpr std::uint32_t kVersion = 1;
constexpr char kAccept = 'A';
constexpr char kComplete = 'C';
// Framing overhead per record: u32 length + u32 crc.
constexpr std::size_t kFrameBytes = 8;
// Sanity cap on one record (ids are short; a huge length is corruption).
constexpr std::uint32_t kMaxRecordBytes = 1 << 20;

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

RequestLedger::RequestLedger(std::string journal_path) {
  if (journal_path.empty()) return;
  journal_.open(journal_path, std::ios::binary | std::ios::trunc);
  if (!journal_) {
    journal_error_ = "ledger: cannot open journal '" + journal_path + "'";
    return;
  }
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  put_u32(header, kVersion);
  append_record(header);
}

std::uint64_t RequestLedger::accept(const std::string& client_id, std::uint64_t content_hash) {
  const std::uint64_t seq = next_seq_++;
  ++accepted_;
  open_.emplace(seq, client_id);
  if (journal_.is_open()) {
    std::string payload;
    payload.push_back(kAccept);
    put_u64(payload, seq);
    put_u64(payload, content_hash);
    put_u32(payload, static_cast<std::uint32_t>(client_id.size()));
    payload.append(client_id);
    append_record(payload);
  }
  return seq;
}

void RequestLedger::complete(std::uint64_t seq, std::string_view status) {
  const auto it = open_.find(seq);
  if (it == open_.end()) {
    ++double_completes_;
    obs::count("serve_net/ledger_double_complete");
    return;
  }
  open_.erase(it);
  ++completed_;
  if (journal_.is_open()) {
    std::string payload;
    payload.push_back(kComplete);
    put_u64(payload, seq);
    put_u32(payload, static_cast<std::uint32_t>(status.size()));
    payload.append(status);
    append_record(payload);
  }
}

std::vector<std::string> RequestLedger::unfinished_ids() const {
  std::vector<std::string> out;
  out.reserve(open_.size());
  for (const auto& [seq, id] : open_) out.push_back(id);
  return out;
}

void RequestLedger::flush() {
  if (journal_.is_open()) journal_.flush();
}

void RequestLedger::append_record(std::string_view payload) {
  if (!journal_.is_open()) return;
  std::string frame;
  frame.reserve(payload.size() + kFrameBytes);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  put_u32(frame, util::crc32(payload));
  journal_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  journal_.flush();
  if (!journal_ && journal_error_.empty()) {
    journal_error_ = "ledger: journal write failed";
    obs::count("serve_net/ledger_write_errors");
  }
}

RequestLedger::Recovered RequestLedger::load(const std::string& path) {
  Recovered out;
  std::string data;
  try {
    data = util::read_file(path);
  } catch (const std::exception& e) {
    out.error = e.what();
    return out;
  }

  std::unordered_map<std::uint64_t, std::string> open;
  std::size_t pos = 0;
  bool saw_header = false;
  while (pos + kFrameBytes <= data.size()) {
    const std::uint32_t len = get_u32(data.data() + pos);
    if (len > kMaxRecordBytes || pos + kFrameBytes + len > data.size()) {
      out.torn_tail = true;
      break;
    }
    const char* payload = data.data() + pos + 4;
    const std::uint32_t crc = get_u32(payload + len);
    if (util::crc32(std::string_view(payload, len)) != crc) {
      out.torn_tail = true;  // torn or bit-rotted final record(s): stop here
      break;
    }
    pos += kFrameBytes + len;

    if (!saw_header) {
      if (len != sizeof(kMagic) + 4 || std::memcmp(payload, kMagic, sizeof(kMagic)) != 0 ||
          get_u32(payload + sizeof(kMagic)) != kVersion) {
        out.error = "ledger: not a CPSJ journal: " + path;
        return out;
      }
      saw_header = true;
      continue;
    }
    if (len < 1) continue;
    const char kind = payload[0];
    if (kind == kAccept && len >= 1 + 8 + 8 + 4) {
      const std::uint64_t seq = get_u64(payload + 1);
      const std::uint32_t id_len = get_u32(payload + 17);
      // len >= 21 was checked above; subtracting there cannot wrap, whereas
      // `21 + id_len` can when id_len is near UINT32_MAX.
      if (id_len <= len - (1 + 8 + 8 + 4)) {
        open.emplace(seq, std::string(payload + 21, id_len));
        ++out.accepted;
      }
    } else if (kind == kComplete && len >= 1 + 8 + 4) {
      const std::uint64_t seq = get_u64(payload + 1);
      open.erase(seq);
      ++out.completed;
    }
    // Unknown kinds are skipped: future writers stay loadable.
  }
  if (pos < data.size() && !out.torn_tail) out.torn_tail = true;
  if (!saw_header) {
    out.error = "ledger: empty or headerless journal: " + path;
    return out;
  }
  for (auto& [seq, id] : open) out.unfinished_ids.push_back(std::move(id));
  out.ok = true;
  return out;
}

}  // namespace cp::serve
