#include "serve/request_queue.h"

#include <algorithm>

#include "obs/registry.h"

namespace cp::serve {

namespace {

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

void complete_without_payload(PendingRequest& p, RequestStatus status, std::string reason,
                              Clock::time_point now) {
  GenerationResult result;
  result.id = p.request.id;
  result.status = status;
  result.reason = std::move(reason);
  result.queue_wait_ms = ms_between(p.admitted_at, now);
  result.total_ms = result.queue_wait_ms;
  fulfill(p, std::move(result));
}

}  // namespace

void fulfill(PendingRequest& pending, GenerationResult result) {
  if (pending.on_result) pending.on_result(result);
  pending.promise.set_value(std::move(result));
  if (pending.on_complete) pending.on_complete();
}

RequestQueue::~RequestQueue() {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto now = Clock::now();
  for (auto& p : pending_) {
    complete_without_payload(p, RequestStatus::kCancelled, "queue destroyed", now);
  }
  pending_.clear();
}

Admission RequestQueue::try_enqueue(PendingRequest pending) {
  std::lock_guard<std::mutex> lock(mutex_);
  pending.admitted_at = Clock::now();
  if (closed_) {
    obs::count("serve/rejected_shutdown");
    complete_without_payload(pending, RequestStatus::kRejected, "shutting_down", Clock::now());
    return {false, "shutting_down"};
  }
  if (pending_.size() >= capacity_) {
    obs::count("serve/rejected_full");
    complete_without_payload(pending, RequestStatus::kRejected, "queue_full", Clock::now());
    return {false, "queue_full"};
  }
  pending.sequence = next_sequence_++;
  pending_.push_back(std::move(pending));
  obs::count("serve/admitted");
  publish_depth_locked();
  work_cv_.notify_one();
  return {true, ""};
}

Admission RequestQueue::enqueue_wait(PendingRequest pending) {
  std::unique_lock<std::mutex> lock(mutex_);
  space_cv_.wait(lock, [this] { return closed_ || pending_.size() < capacity_; });
  pending.admitted_at = Clock::now();
  if (closed_) {
    obs::count("serve/rejected_shutdown");
    complete_without_payload(pending, RequestStatus::kRejected, "shutting_down", Clock::now());
    return {false, "shutting_down"};
  }
  pending.sequence = next_sequence_++;
  pending_.push_back(std::move(pending));
  obs::count("serve/admitted");
  publish_depth_locked();
  work_cv_.notify_one();
  return {true, ""};
}

bool RequestQueue::cancel(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->request.id == id) {
      complete_without_payload(*it, RequestStatus::kCancelled, "cancelled", Clock::now());
      pending_.erase(it);
      obs::count("serve/cancelled");
      publish_depth_locked();
      space_cv_.notify_one();
      return true;
    }
  }
  return false;
}

double RequestQueue::effective_priority(const PendingRequest& p, Clock::time_point now) const {
  const double waited_ms = ms_between(p.admitted_at, now);
  return static_cast<double>(p.request.priority) +
         (aging_interval_ms_ > 0 ? waited_ms / aging_interval_ms_ : 0.0);
}

void RequestQueue::expire_locked(Clock::time_point now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    const double deadline = it->request.deadline_ms;
    if (deadline > 0 && ms_between(it->admitted_at, now) > deadline) {
      complete_without_payload(*it, RequestStatus::kDeadlineExpired, "deadline_expired", now);
      obs::count("serve/deadline_expired");
      it = pending_.erase(it);
      space_cv_.notify_one();
    } else {
      ++it;
    }
  }
}

std::vector<PendingRequest> RequestQueue::pop_batch(int max_requests,
                                                    std::chrono::microseconds max_wait) {
  std::vector<PendingRequest> batch;
  if (max_requests <= 0) return batch;
  std::unique_lock<std::mutex> lock(mutex_);
  // Phase 1: wait for any work (or shutdown). Expiry runs on every wake so
  // a dead request never blocks the consumer.
  for (;;) {
    expire_locked(Clock::now());
    if (!pending_.empty() || closed_) break;
    work_cv_.wait(lock);
  }
  if (pending_.empty()) {  // closed and drained
    publish_depth_locked();
    return batch;
  }

  // Phase 2: give a not-yet-full batch a short chance to fill. The head
  // choice is re-taken after every wake — a higher-priority arrival during
  // the wait becomes the new head.
  const auto fill_deadline = Clock::now() + max_wait;
  for (;;) {
    const auto now = Clock::now();
    auto head = pending_.begin();
    double best = effective_priority(*head, now);
    for (auto it = std::next(head); it != pending_.end(); ++it) {
      const double p = effective_priority(*it, now);
      if (p > best || (p == best && it->sequence < head->sequence)) {
        head = it;
        best = p;
      }
    }
    const BatchKey key = batch_key(head->request, head->condition);
    int compatible = 0;
    for (const auto& p : pending_) {
      if (batch_key(p.request, p.condition) == key) ++compatible;
    }
    if (compatible >= max_requests || closed_ || now >= fill_deadline) {
      // Cut the batch: head first, then compatible requests in FIFO order.
      batch.push_back(std::move(*head));
      pending_.erase(head);
      for (auto it = pending_.begin();
           it != pending_.end() && static_cast<int>(batch.size()) < max_requests;) {
        if (batch_key(it->request, it->condition) == key) {
          batch.push_back(std::move(*it));
          it = pending_.erase(it);
        } else {
          ++it;
        }
      }
      publish_depth_locked();
      space_cv_.notify_all();
      return batch;
    }
    work_cv_.wait_until(lock, fill_deadline);
    expire_locked(Clock::now());
    if (pending_.empty()) {
      if (closed_) {
        publish_depth_locked();
        return batch;
      }
      // Everything expired while waiting; go back to phase 1.
      for (;;) {
        expire_locked(Clock::now());
        if (!pending_.empty() || closed_) break;
        work_cv_.wait(lock);
      }
      if (pending_.empty()) {
        publish_depth_locked();
        return batch;
      }
    }
  }
}

void RequestQueue::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  work_cv_.notify_all();
  space_cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

void RequestQueue::publish_depth_locked() {
  obs::gauge("serve/queue_depth", static_cast<double>(pending_.size()));
}

}  // namespace cp::serve
