#pragma once
// Worker-process supervision for the serving front-end (docs/SERVING.md
// "Process architecture", docs/ROBUSTNESS.md "Worker supervision").
//
// The WorkerPool owns N forked worker processes, one per shard. Each worker
// is spawned by re-exec'ing this binary (spec.argv + "--worker-fd K
// --shard I"): the channel is an AF_UNIX socketpair whose child end is
// inherited by fd number, and whose parent end is nonblocking + CLOEXEC so
// sibling workers never inherit each other's channels.
//
// The pool is event-loop state, not a thread: the single-threaded front-end
// calls collect_pollfds() before poll(), pump() after it, and tick() on
// every iteration. Keeping the supervisor single-threaded is what makes
// fork() safe here.
//
// Health model (all timers in tick()):
//   * liveness   — a READY worker that writes nothing (heartbeat or result)
//     for heartbeat_timeout_ms is presumed stopped (SIGSTOP, livelock) and
//     is SIGKILLed. Workers heartbeat every ~200ms from a dedicated thread,
//     so this fires only when the whole process is frozen.
//   * progress   — a READY worker with inflight requests that produces no
//     result line for watchdog_ms is wedged (or silently dropping results —
//     fault point `serve_net/worker_result`) and is SIGKILLed. This is
//     progress-based on purpose: a deep queue under load keeps producing
//     *some* results, so the watchdog does not false-positive under load.
//   * startup    — a spawned worker must emit {"ready":true} within
//     startup_timeout_ms (generous: workers train their backend first).
//   * exits      — reaped via waitpid(WNOHANG); any exit of a non-draining
//     worker is a crash.
// Every death fires Handler::on_down (the front-end re-routes that shard's
// inflight requests) and schedules a respawn with exponential backoff
// (base·2^streak, capped; the streak resets after min_uptime_ms of healthy
// uptime, so a worker that crashes only occasionally restarts fast).
//
// Rolling restart drains shards one at a time: drain cmd -> {"drained":true}
// -> stop cmd -> clean exit -> immediate respawn -> wait ready -> next
// shard. At most one shard is down at any moment and its queue was empty,
// so no accepted work is lost (the ledger audits exactly this).

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <poll.h>

#include "serve/shard.h"
#include "util/net.h"
#include "util/subprocess.h"

namespace cp::serve {

struct SupervisorConfig {
  int workers = 2;
  int heartbeat_timeout_ms = 2000;  // silence after ready => presumed dead
  int startup_timeout_ms = 120000;  // spawn -> ready (includes training)
  int watchdog_ms = 20000;          // inflight but no result => wedged
  int backoff_base_ms = 100;        // restart delay = base * 2^streak
  int backoff_max_ms = 5000;
  int min_uptime_ms = 5000;  // uptime that resets the failure streak
};

class WorkerPool {
 public:
  /// Event callbacks into the front-end. All fire from pump()/tick() on the
  /// event-loop thread.
  struct Handler {
    /// Worker `shard` announced {"ready":true}; routing may include it.
    std::function<void(int shard)> on_ready;
    /// A result NDJSON line from `shard` (control lines are consumed
    /// internally).
    std::function<void(int shard, const std::string& line)> on_result_line;
    /// Worker `shard` died or was killed (`why` is diagnostic). Its channel
    /// is closed and the shard is already marked dead — the front-end must
    /// re-route whatever it had in flight there.
    std::function<void(int shard, const std::string& why)> on_down;
  };

  /// `spawn_argv` is the worker command line minus the per-shard suffix;
  /// the pool appends "--worker-fd <fd> --shard <i>" at spawn time.
  WorkerPool(std::vector<std::string> spawn_argv, SupervisorConfig config, Handler handler);
  ~WorkerPool();  // SIGKILL + reap everything still running

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawn every worker. Call once before the event loop.
  void start();

  /// Append worker-channel pollfds (POLLIN always, POLLOUT when a write is
  /// buffered) for the front-end's poll() call.
  void collect_pollfds(std::vector<struct pollfd>* fds) const;

  /// Drain readable/writable worker channels; fires handler callbacks.
  void pump();

  /// Timers: reap exits, heartbeat/startup/watchdog checks, backoff
  /// respawns, rolling-restart progression. Call every loop iteration.
  void tick();

  /// Upper bound on how long the event loop may sleep before a pool timer
  /// could fire (milliseconds; always in (0, 1000]).
  int next_timeout_ms() const;

  /// Queue one request line for `shard` and count it inflight. False when
  /// the shard is not ready (caller re-routes or fails the request).
  bool send_request(int shard, const std::string& line);

  /// Begin a rolling restart (no-op if one is already running).
  void rolling_restart();
  bool rolling_restart_active() const { return rolling_next_ >= 0; }

  /// Graceful shutdown: drain+stop every worker, wait up to `timeout_ms`,
  /// SIGKILL stragglers, reap all. The pool is dead afterwards.
  void shutdown(int timeout_ms);

  const ShardMap& shard_map() const { return shards_; }
  int shards() const { return shards_.shards(); }
  bool ready(int shard) const;
  long long inflight(int shard) const;
  long long total_restarts() const { return restarts_; }
  /// Live worker pids, -1 for down shards (chaos harness targets these).
  std::vector<pid_t> pids() const;

 private:
  enum class State { kDown, kStarting, kReady, kDraining };
  using Clock = std::chrono::steady_clock;

  struct Worker {
    pid_t pid = -1;
    util::net::Socket channel;  // parent end: nonblocking, CLOEXEC
    util::net::LineBuffer inbuf;
    std::string outbuf;  // unsent bytes (channel buffer full)
    State state = State::kDown;
    Clock::time_point spawned_at{};
    Clock::time_point last_line{};     // any line: liveness marker
    Clock::time_point last_result{};   // result lines only: progress marker
    Clock::time_point respawn_at{};    // kDown: when backoff expires
    long long inflight = 0;
    int fail_streak = 0;
    bool started_once = false;  // respawn (vs first spawn) accounting
  };

  void spawn(int shard);
  void kill_worker(int shard, const std::string& why, bool backoff);
  void handle_line(int shard, const std::string& line);
  void flush_out(int shard);

  std::vector<std::string> spawn_argv_;
  SupervisorConfig config_;
  Handler handler_;
  ShardMap shards_;
  std::vector<Worker> workers_;
  long long restarts_ = 0;
  int rolling_next_ = -1;      // next shard to cycle; -1 = no rolling restart
  int rolling_draining_ = -1;  // shard currently mid-cycle; -1 = none
  bool shut_down_ = false;
};

}  // namespace cp::serve
