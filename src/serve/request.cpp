#include "serve/request.h"

#include <stdexcept>

#include "dataset/style.h"
#include "diffusion/precision.h"
#include "diffusion/timestep_schedule.h"
#include "util/rng.h"
#include "util/strings.h"

namespace cp::serve {

namespace {

/// Avalanche-mix one 64-bit word into the running hash state.
std::uint64_t mix(std::uint64_t state, std::uint64_t value) {
  state ^= value + 0x9e3779b97f4a7c15ULL + (state << 6) + (state >> 2);
  util::splitmix64(state);  // avalanche round; advances state in place
  return state;
}

std::uint64_t mix_string(std::uint64_t state, const std::string& s) {
  state = mix(state, static_cast<std::uint64_t>(s.size()));
  for (unsigned char c : s) state = mix(state, c);
  return state;
}

}  // namespace

std::uint64_t GenerationRequest::content_hash() const {
  std::uint64_t h = 0x43503a7365727665ULL;  // "CP:serve"
  h = mix_string(h, style);
  h = mix(h, static_cast<std::uint64_t>(count));
  h = mix(h, static_cast<std::uint64_t>(rows));
  h = mix(h, static_cast<std::uint64_t>(cols));
  h = mix(h, static_cast<std::uint64_t>(sample_steps));
  h = mix(h, static_cast<std::uint64_t>(polish_rounds));
  h = mix_string(h, schedule);
  h = mix_string(h, precision);
  h = mix(h, static_cast<std::uint64_t>(width_nm));
  h = mix(h, static_cast<std::uint64_t>(height_nm));
  h = mix(h, seed);
  h = mix(h, legalize ? 1 : 0);
  h = mix_string(h, source);
  std::uint64_t state = h;
  return util::splitmix64(state);
}

util::Json GenerationRequest::to_json() const {
  util::Json j;
  j["id"] = id;
  j["style"] = style;
  j["count"] = count;
  j["rows"] = rows;
  j["cols"] = cols;
  j["steps"] = sample_steps;
  j["polish"] = polish_rounds;
  if (!schedule.empty()) j["schedule"] = schedule;
  if (precision != "fp32") j["precision"] = precision;
  j["width_nm"] = static_cast<long long>(width_nm);
  j["height_nm"] = static_cast<long long>(height_nm);
  j["seed"] = static_cast<long long>(seed);
  j["legalize"] = legalize;
  if (!source.empty()) j["source"] = source;
  if (priority != 1) j["priority"] = priority;
  if (deadline_ms > 0) j["deadline_ms"] = deadline_ms;
  if (!tenant.empty()) j["tenant"] = tenant;
  if (no_cache) j["no_cache"] = true;
  return j;
}

std::string validate(const GenerationRequest& r) {
  if (r.id.empty()) return "missing or empty 'id'";
  if (!r.source.empty() && r.source != "store") {
    return "unknown 'source' '" + r.source + "' (want \"\"|store)";
  }
  // Store requests reinterpret `style` as the store's free-form style tag,
  // so the dataset style registry does not apply to them.
  if (r.source.empty() && dataset::style_index(r.style) < 0) {
    return "unknown style '" + r.style + "'";
  }
  if (r.count <= 0) return "'count' must be positive";
  if (r.rows <= 0 || r.cols <= 0) return "'rows'/'cols' must be positive";
  if (r.sample_steps <= 0) return "'steps' must be positive";
  if (r.polish_rounds < 0) return "'polish' must be >= 0";
  if (!r.schedule.empty() && !diffusion::is_schedule_kind(r.schedule)) {
    return "unknown 'schedule' '" + r.schedule +
           "' (want noise_uniform|uniform|quadratic|searched)";
  }
  {
    diffusion::Precision p;
    if (!diffusion::precision_from_string(r.precision, &p)) {
      return "unknown 'precision' '" + r.precision + "' (want fp32|int8)";
    }
  }
  if (r.width_nm <= 0 || r.height_nm <= 0) return "'width_nm'/'height_nm' must be positive";
  if (r.deadline_ms < 0) return "'deadline_ms' must be >= 0";
  return "";
}

GenerationRequest GenerationRequest::from_json(const util::Json& j) {
  if (!j.is_object()) throw std::invalid_argument("request must be a JSON object");
  GenerationRequest r;
  r.id = j.get_string("id", "");
  r.style = j.get_string("style", r.style);
  r.count = static_cast<int>(j.get_int("count", r.count));
  r.rows = static_cast<int>(j.get_int("rows", r.rows));
  r.cols = static_cast<int>(j.get_int("cols", r.cols));
  r.sample_steps = static_cast<int>(j.get_int("steps", r.sample_steps));
  r.polish_rounds = static_cast<int>(j.get_int("polish", r.polish_rounds));
  r.schedule = j.get_string("schedule", "");
  r.precision = j.get_string("precision", "fp32");
  r.width_nm = j.get_int("width_nm", r.width_nm);
  r.height_nm = j.get_int("height_nm", r.height_nm);
  r.seed = static_cast<std::uint64_t>(j.get_int("seed", 1));
  r.legalize = j.get_bool("legalize", true);
  r.source = j.get_string("source", "");
  r.priority = static_cast<int>(j.get_int("priority", 1));
  r.deadline_ms = j.get_number("deadline_ms", 0.0);
  r.tenant = j.get_string("tenant", "");
  r.no_cache = j.get_bool("no_cache", false);
  const std::string reason = validate(r);
  if (!reason.empty()) throw std::invalid_argument(reason);
  return r;
}

BatchKey batch_key(const GenerationRequest& request, int condition) {
  BatchKey key;
  key.condition = condition;
  key.rows = request.rows;
  key.cols = request.cols;
  key.sample_steps = request.sample_steps;
  key.polish_rounds = request.polish_rounds;
  key.schedule = request.schedule;
  key.precision = request.precision;
  return key;
}

const char* to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kIncomplete: return "incomplete";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kDeadlineExpired: return "deadline_expired";
    case RequestStatus::kCancelled: return "cancelled";
    case RequestStatus::kFailed: return "failed";
  }
  return "unknown";
}

std::uint64_t payload_hash(const GenerationPayload& payload) {
  std::uint64_t h = 1469598103934665603ULL;
  auto fnv = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  auto fnv_topology = [&](const squish::Topology& t) {
    fnv(static_cast<std::uint64_t>(t.rows()));
    fnv(static_cast<std::uint64_t>(t.cols()));
    // Per-cell 0/1 feed keeps hash values identical to the byte-backed era.
    for (int r = 0; r < t.rows(); ++r) {
      for (int c = 0; c < t.cols(); ++c) fnv(t.at(r, c));
    }
  };
  for (const auto& p : payload.patterns) {
    fnv_topology(p.topology);
    for (const auto d : p.dx) fnv(static_cast<std::uint64_t>(d));
    for (const auto d : p.dy) fnv(static_cast<std::uint64_t>(d));
  }
  for (const auto& t : payload.topologies) fnv_topology(t);
  return h;
}

std::uint64_t GenerationResult::library_hash() const {
  return payload ? payload_hash(*payload) : 0;
}

util::Json GenerationResult::to_json() const {
  util::Json j;
  j["id"] = id;
  j["status"] = to_string(status);
  if (!reason.empty()) j["reason"] = reason;
  j["patterns"] = payload ? payload->patterns.size() : std::size_t{0};
  j["topologies"] = payload ? payload->topologies.size() : std::size_t{0};
  j["cache_hit"] = cache_hit;
  if (deduped) j["deduped"] = true;
  if (degraded) j["degraded"] = true;
  if (truncated) j["truncated"] = true;
  j["attempts"] = attempts;
  j["rounds"] = rounds;
  j["queue_wait_ms"] = queue_wait_ms;
  j["service_ms"] = service_ms;
  j["total_ms"] = total_ms;
  j["library_hash"] = util::format("%016llx",
                                   static_cast<unsigned long long>(library_hash()));
  return j;
}

ParsedRequest parse_request_line(const std::string& line) {
  ParsedRequest out;
  try {
    out.request = GenerationRequest::from_json(util::Json::parse(line));
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

}  // namespace cp::serve
