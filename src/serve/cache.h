#pragma once
// LRU result cache keyed by GenerationRequest::content_hash().
//
// Agent sessions and library builders re-issue many identical small
// generation requests (same style/size/seed defaults); a hit returns the
// previously computed payload and skips the diffusion chain entirely —
// the dominant serving cost. Entries are shared_ptr<const GenerationPayload>
// so a hit is a pointer copy, never a deep copy, and a payload handed to a
// client stays valid after eviction.
//
// Thread-safe: one mutex around the map+list (lookup/insert are pointer
// operations, so the critical sections are tiny next to a diffusion call).
// Hits/misses are counted both locally (hits()/misses(), for tests) and in
// the obs registry (`serve/cache_hit`, `serve/cache_miss`).

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "serve/request.h"

namespace cp::serve {

class PatternCache {
 public:
  /// `capacity` = max entries; 0 disables the cache (every lookup misses,
  /// inserts are dropped).
  explicit PatternCache(std::size_t capacity) : capacity_(capacity) {}

  /// Payload for `key`, or null on miss. A hit refreshes recency.
  std::shared_ptr<const GenerationPayload> lookup(std::uint64_t key);

  /// Insert (or refresh) `key`; evicts the least-recently-used entry when
  /// over capacity.
  void insert(std::uint64_t key, std::shared_ptr<const GenerationPayload> payload);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  long long hits() const { return hits_.load(std::memory_order_relaxed); }
  long long misses() const { return misses_.load(std::memory_order_relaxed); }
  long long evictions() const { return evictions_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const GenerationPayload> payload;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
  std::atomic<long long> evictions_{0};
};

}  // namespace cp::serve
