#pragma once
// The pattern-generation server: request lifecycle around the diffusion
// stack (docs/SERVING.md).
//
//   submit() -> RequestQueue (bounded; admission control, priority aging,
//   deadlines) -> Batcher (microbatching) -> one dispatcher thread that
//   coalesces compatible requests into single BatchSampler::sample_jobs
//   invocations fanned out on a util::ThreadPool, legalizes candidates in
//   parallel, retries streams that fail legalization, and fulfills the
//   request futures. An LRU PatternCache keyed by the request content hash
//   short-circuits repeated requests past the diffusion chain entirely.
//
// Determinism contract (audited by tests/serve/server_test.cpp and the
// `chatpattern_serve --workers` replay): request sample k is always drawn
// from Rng(request.seed).fork(next_stream + k) and candidates are accepted
// in stream order, so a request's payload is a pure function of its content
// fields. Worker count, queue order, batch composition, cache state and
// retry rounds change only *when* the answer arrives, never what it is.
//
// Fault tolerance (docs/ROBUSTNESS.md): sampling and legalization run
// behind retry-with-backoff; exhausted sampling falls back to
// ServerConfig::fallback (result marked degraded); an unexpected batch
// error fails the affected requests as kFailed — the dispatcher thread
// never dies with work queued behind it.
//
// Shutdown is a graceful drain: close admissions, finish everything already
// queued, then stop the dispatcher. The destructor does the same.

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "diffusion/batch_sampler.h"
#include "legalize/legalizer.h"
#include "pattlib/pattern_store.h"
#include "serve/batcher.h"
#include "serve/cache.h"
#include "serve/request_queue.h"
#include "util/retry.h"
#include "util/thread_pool.h"

namespace cp::serve {

struct ServerConfig {
  /// Fan-out width. 1 = fully serial (no pool) — the determinism baseline.
  int workers = 1;
  std::size_t queue_capacity = 64;
  std::size_t cache_entries = 256;     // 0 disables the result cache
  BatchPolicy batch;                   // microbatching knobs
  double aging_interval_ms = 100.0;    // priority aging rate (see queue)
  /// Legalization retry budget: a request may consume up to
  /// `max_attempts_per_pattern * count + 64` sampled topologies before it
  /// completes as kIncomplete with whatever it has.
  long long max_attempts_per_pattern = 16;

  /// Fast-sampling default (diffusion/timestep_schedule.h): the visited-
  /// timestep placement applied to requests whose `schedule` field is
  /// empty. Lets an operator flip the whole server to few-step mode
  /// (e.g. kQuadratic) without touching clients; individual requests
  /// still override it per call. kSearched requires the generator's
  /// samplers to carry a registered searched list, else they fall back to
  /// noise-uniform.
  diffusion::ScheduleKind default_schedule = diffusion::ScheduleKind::kNoiseUniform;

  /// Degraded-mode serving (docs/ROBUSTNESS.md). A sample that throws
  /// (fault point `denoiser/infer`, or a real inference failure) is retried
  /// under `sample_retry` with the identical Rng stream, so a transient
  /// failure changes nothing about the payload. When the retry budget is
  /// exhausted and `fallback` is non-null, the sample is drawn from the
  /// fallback generator instead and the result is marked degraded=true
  /// (and never cached). With no fallback the sample is dropped, consuming
  /// attempt budget. Legalization failures (fault point `legalize/run`)
  /// retry the same candidate under `legalize_retry`. The dispatcher
  /// survives all of it: a request can fail (kFailed), the process cannot.
  util::RetryPolicy sample_retry;
  util::RetryPolicy legalize_retry;
  /// Borrowed, may be null; must outlive the server (e.g. the single-scale
  /// tabular sampler backing the cascade).
  const diffusion::TopologyGenerator* fallback = nullptr;

  /// Borrowed, may be null; must outlive the server. Enables requests with
  /// source="store": retrieval from a persistent pattern library instead of
  /// generation. Store requests are answered synchronously at submit (cheap
  /// const reads) and never enter the queue or the cache; with no store
  /// attached they are rejected. The store must not be mutated while the
  /// server is accepting requests (see pattlib/pattern_store.h thread model).
  const pattlib::PatternStore* store = nullptr;
  /// Store-retrieval guard rails (docs/ROBUSTNESS.md): the query limit is
  /// clipped to `store_result_cap` (result marked truncated when the cap
  /// binds; 0 = uncapped), the read runs under `store_retry` with the
  /// `pattlib/query` fault point, and an exhausted retry budget completes
  /// the request as kFailed (counted under `serve/store_errors`) instead of
  /// throwing through submit.
  long long store_result_cap = 1024;
  util::RetryPolicy store_retry;
};

class Server {
 public:
  /// `generator` and `legalizers[style]` are borrowed and must outlive the
  /// server. One legalizer per condition index (style).
  Server(const diffusion::TopologyGenerator& generator,
         std::vector<const legalize::Legalizer*> legalizers, ServerConfig config = {});
  ~Server();  // graceful drain, then stop

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admission outcome. The future is always valid: rejected submissions
  /// carry a ready kRejected result, so replay loops handle every line
  /// uniformly.
  struct Submitted {
    bool admitted = false;
    std::string reason;  // rejection reason when !admitted
    std::future<GenerationResult> result;
  };

  /// Completion hook for push-style consumers (the multi-process worker
  /// loop): invoked exactly once per submitted request, on whichever thread
  /// completes it, right before the future becomes ready. Must not throw.
  using ResultCallback = std::function<void(const GenerationResult&)>;

  /// Blocking admission (backpressure): waits for a queue slot. Rejected
  /// only when the request is invalid or the server is shutting down.
  Submitted submit(GenerationRequest request, ResultCallback on_result = nullptr) {
    return submit_impl(std::move(request), true, std::move(on_result));
  }

  /// Non-blocking admission: a full queue rejects with reason "queue_full".
  Submitted try_submit(GenerationRequest request, ResultCallback on_result = nullptr) {
    return submit_impl(std::move(request), false, std::move(on_result));
  }

  /// Cancel a still-queued request (false once it is in flight or done).
  bool cancel(const std::string& id) { return queue_.cancel(id); }

  /// Block until every admitted request has completed. Does not close
  /// admissions — use between phases of a replay.
  void drain();

  /// Close admissions, drain, stop the dispatcher. Idempotent.
  void shutdown();

  const ServerConfig& config() const { return config_; }
  PatternCache& cache() { return cache_; }
  std::size_t queue_depth() const { return queue_.size(); }

 private:
  /// In-flight bookkeeping of one batched request during execute_batch.
  struct Active {
    PendingRequest pending;
    std::uint64_t key = 0;          // content hash
    int dedup_leader = -1;          // index of the identical in-batch twin
    GenerationPayload payload;
    std::uint64_t next_stream = 0;  // first unconsumed Rng stream
    long long attempts = 0;
    long long budget = 0;
    int rounds = 0;
    bool done = false;
    bool cache_hit = false;
    bool degraded = false;  // any accepted sample came from the fallback
  };

  /// Result of one guarded sampling fan-out: slot i holds jobs[i]'s
  /// topology plus whether it came from the fallback (degraded) or from
  /// nowhere at all (failed — retries and fallback both exhausted).
  struct GuardedSamples {
    std::vector<squish::Topology> topologies;
    std::vector<std::uint8_t> degraded;
    std::vector<std::uint8_t> failed;
  };

  Submitted submit_impl(GenerationRequest request, bool blocking, ResultCallback on_result);
  GenerationResult store_lookup(const GenerationRequest& request);
  void dispatch_loop();
  void execute_batch(std::vector<PendingRequest> batch);
  void complete(PendingRequest pending, GenerationResult result);
  GuardedSamples sample_jobs_guarded(const std::vector<diffusion::BatchSampler::SampleJob>& jobs);

  ServerConfig config_;
  std::vector<const legalize::Legalizer*> legalizers_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when workers <= 1
  diffusion::BatchSampler sampler_;
  PatternCache cache_;
  RequestQueue queue_;
  Batcher batcher_;

  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  long long outstanding_ = 0;  // admitted but not yet completed

  std::atomic<bool> stopped_{false};
  std::thread dispatcher_;
};

}  // namespace cp::serve
