#include "serve/net_server.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>

#include "obs/registry.h"
#include "serve/wire.h"
#include "util/fs.h"
#include "util/logging.h"

namespace cp::serve {

namespace {

double ms_since(std::chrono::steady_clock::time_point then,
                std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - then).count();
}

}  // namespace

NetServer::NetServer(NetServerConfig config)
    : config_(std::move(config)),
      listener_(util::net::listen_tcp(config_.host, config_.port, config_.backlog, &port_)),
      ledger_(config_.journal_path) {
  util::net::set_cloexec(listener_.fd(), true);
  WorkerPool::Handler handler;
  handler.on_ready = [this](int) { write_state_file(); };
  handler.on_result_line = [this](int shard, const std::string& line) {
    on_worker_result(shard, line);
  };
  handler.on_down = [this](int shard, const std::string& why) { on_worker_down(shard, why); };
  pool_ = std::make_unique<WorkerPool>(config_.worker_argv, config_.supervisor,
                                       std::move(handler));
}

NetServer::~NetServer() = default;

void NetServer::write_state_file() {
  if (config_.state_file.empty()) return;
  util::Json j;
  j["port"] = static_cast<long long>(port_);
  j["pid"] = static_cast<long long>(::getpid());
  util::JsonArray pids;
  for (const pid_t pid : pool_->pids()) pids.emplace_back(static_cast<long long>(pid));
  j["workers"] = util::Json(std::move(pids));
  j["alive"] = static_cast<long long>(pool_->shard_map().alive_count());
  try {
    util::atomic_write_file(config_.state_file, j.dump() + "\n");
  } catch (const std::exception& e) {
    CP_LOG_WARN << "serve front-end: state file: " << e.what();
  }
}

int NetServer::run() {
  pool_->start();
  write_state_file();

  std::vector<struct pollfd> fds;
  while (!(draining_ && inflight_.empty())) {
    fds.clear();
    if (Clock::now() >= accept_backoff_until_) {
      struct pollfd p;
      p.fd = listener_.fd();
      p.events = POLLIN;
      p.revents = 0;
      fds.push_back(p);
    }
    for (const auto& [id, conn] : conns_) {
      struct pollfd p;
      p.fd = conn.sock.fd();
      p.events = static_cast<short>(POLLIN | (conn.outbuf.empty() ? 0 : POLLOUT));
      p.revents = 0;
      fds.push_back(p);
    }
    pool_->collect_pollfds(&fds);

    const int timeout = std::min(pool_->next_timeout_ms(), 100);
    ::poll(fds.data(), fds.size(), timeout);

    accept_new();
    // Service every connection (nonblocking reads make "try all" cheap and
    // immune to pollfd/index bookkeeping bugs).
    std::vector<long long> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) ids.push_back(id);
    for (const long long id : ids) service_conn(id);

    pool_->pump();
    pool_->tick();

    // Idle sweep: a quiet connection that is owed nothing is closed — the
    // per-connection read timeout of the protocol.
    const auto now = Clock::now();
    for (const auto& [id, conn] : conns_) {
      if (conn.owed == 0 && conn.outbuf.empty() &&
          ms_since(conn.last_activity, now) > config_.idle_timeout_ms) {
        obs::count("serve_net/idle_closed");
        doomed_conns_.push_back(id);
      }
    }
    for (const long long id : doomed_conns_) conns_.erase(id);
    doomed_conns_.clear();
  }

  // Drained: every accepted request completed. Flush what clients are owed,
  // then stop the workers.
  for (auto& [id, conn] : conns_) {
    if (!conn.outbuf.empty()) {
      util::net::send_all(conn.sock.fd(), conn.outbuf, 1000);
      conn.outbuf.clear();
    }
  }
  conns_.clear();
  pool_->shutdown(config_.drain_timeout_ms);
  ledger_.flush();
  write_state_file();
  if (ledger_.outstanding() != 0) {
    CP_LOG_WARN << "serve front-end: " << ledger_.outstanding()
                << " accepted request(s) never completed (ledger leak)";
    return 1;
  }
  return 0;
}

void NetServer::accept_new() {
  for (;;) {
    util::net::Socket sock;
    const util::net::IoStatus st = util::net::accept_conn(listener_.fd(), &sock);
    if (st == util::net::IoStatus::kAgain) return;
    if (st != util::net::IoStatus::kOk) {
      // Transient accept failure (EMFILE/ENFILE/ECONNABORTED...). The pending
      // connection stays queued, so keeping the listener in the poll set
      // would busy-spin; park it briefly instead.
      obs::count("serve_net/accept_errors");
      accept_backoff_until_ = Clock::now() + std::chrono::milliseconds(50);
      return;
    }
    util::net::set_cloexec(sock.fd(), true);  // workers must not inherit clients
    Conn conn;
    conn.sock = std::move(sock);
    conn.last_activity = Clock::now();
    conns_.emplace(next_conn_id_++, std::move(conn));
    obs::count("serve_net/connections");
  }
}

void NetServer::service_conn(long long conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  char chunk[4096];
  for (;;) {
    std::size_t n = 0;
    const util::net::IoStatus st = util::net::read_some(conn.sock.fd(), chunk, sizeof(chunk), &n);
    if (st == util::net::IoStatus::kOk) {
      conn.last_activity = Clock::now();
      conn.inbuf.append(chunk, n);
      std::string line;
      while (conn.inbuf.next_line(&line)) {
        if (!line.empty()) handle_client_line(conn_id, line);
        if (conns_.find(conn_id) == conns_.end()) return;  // closed by a handler
      }
      if (conn.inbuf.pending() > config_.max_line_bytes) {
        obs::count("serve_net/overlong_lines");
        close_conn(conn_id);
        return;
      }
      continue;
    }
    if (st == util::net::IoStatus::kAgain) break;
    close_conn(conn_id);  // kClosed / kError: peer went away
    return;
  }
  flush_conn(conn_id);
}

void NetServer::handle_client_line(long long conn_id, const std::string& line) {
  // Control command? (Cheap check before the request parse: commands are
  // rare, so probe only when the object has a "cmd" member.)
  if (line.find("\"cmd\"") != std::string::npos) {
    try {
      const util::Json j = util::Json::parse(line);
      if (j.is_object() && !j.get_string("cmd", "").empty()) {
        handle_command(conn_id, j);
        return;
      }
    } catch (const std::exception&) {
      // fall through to the request path, which reports the parse error
    }
  }

  ParsedRequest parsed = parse_request_line(line);
  if (!parsed.ok) {
    obs::count("serve_net/parse_errors");
    std::string id;
    try {
      const util::Json j = util::Json::parse(line);
      if (j.is_object()) id = j.get_string("id", "");
    } catch (const std::exception&) {
    }
    reject(conn_id, id, "parse_error: " + parsed.error);
    return;
  }
  GenerationRequest request = std::move(parsed.request);

  // Admission control. Every rejection is a complete, well-formed result
  // line — clients always get exactly one line per request line.
  if (draining_) {
    reject(conn_id, request.id, "shutting_down");
    return;
  }
  if (config_.max_inflight > 0 &&
      static_cast<long long>(inflight_.size()) >= config_.max_inflight) {
    obs::count("serve_net/shed_load");
    reject(conn_id, request.id, "shed_load");
    return;
  }
  if (config_.tenant_quota > 0 && !request.tenant.empty() &&
      tenant_inflight_[request.tenant] >= config_.tenant_quota) {
    obs::count("serve_net/tenant_rejected");
    reject(conn_id, request.id, "tenant_quota");
    return;
  }

  const std::uint64_t key = request.content_hash();
  const std::uint64_t seq = ledger_.accept(request.id, key);
  Inflight inf;
  inf.conn_id = conn_id;
  inf.client_id = request.id;
  inf.tenant = request.tenant;
  inf.key = key;
  inf.accepted_at = Clock::now();
  inf.request = std::move(request);
  inf.request.id = wire::internal_id(seq);
  if (!inf.tenant.empty()) ++tenant_inflight_[inf.tenant];
  inflight_.emplace(seq, std::move(inf));
  auto conn = conns_.find(conn_id);
  if (conn != conns_.end()) ++conn->second.owed;
  obs::count("serve_net/accepted");
  obs::gauge("serve_net/inflight", static_cast<double>(inflight_.size()));
  dispatch(seq);
}

void NetServer::dispatch(std::uint64_t seq) {
  Inflight& inf = inflight_.at(seq);
  const int shard = pool_->shard_map().owner(inf.key);
  if (shard < 0 || !pool_->send_request(shard, inf.request.to_json().dump())) {
    synth_failure(seq, shard < 0 ? "no_workers" : "worker_unavailable");
    return;
  }
  inf.shard = shard;
}

void NetServer::handle_command(long long conn_id, const util::Json& j) {
  const std::string cmd = j.get_string("cmd", "");
  if (cmd == "stats") {
    util::Json reply_j;
    reply_j["accepted"] = ledger_.accepted();
    reply_j["completed"] = ledger_.completed();
    reply_j["inflight"] = static_cast<long long>(inflight_.size());
    reply_j["double_completes"] = ledger_.double_completes();
    reply_j["workers"] = static_cast<long long>(pool_->shards());
    reply_j["workers_alive"] = static_cast<long long>(pool_->shard_map().alive_count());
    reply_j["worker_restarts"] = pool_->total_restarts();
    reply_j["rolling_restart"] = pool_->rolling_restart_active();
    reply(conn_id, reply_j.dump());
    return;
  }
  if (cmd == "rolling_restart") {
    pool_->rolling_restart();
    reply(conn_id, "{\"ok\":true}");
    return;
  }
  if (cmd == "shutdown") {
    draining_ = true;
    reply(conn_id, "{\"ok\":true}");
    return;
  }
  reply(conn_id, "{\"error\":\"unknown cmd '" + cmd + "'\"}");
}

void NetServer::on_worker_result(int shard, const std::string& line) {
  util::Json j;
  try {
    j = util::Json::parse(line);
  } catch (const std::exception&) {
    obs::count("serve_net/bad_result_lines");
    CP_LOG_WARN << "serve front-end: unparseable result from shard " << shard;
    return;  // the seq stays inflight; the watchdog owns a wedged worker
  }
  std::uint64_t seq = 0;
  if (!j.is_object() || !wire::parse_internal_id(j.get_string("id", ""), &seq)) {
    obs::count("serve_net/bad_result_lines");
    return;
  }
  auto it = inflight_.find(seq);
  if (it == inflight_.end()) {
    obs::count("serve_net/orphan_results");
    return;
  }
  Inflight& inf = it->second;
  j["id"] = inf.client_id;
  // A retried request survived a worker loss: the payload bits are the same
  // (determinism contract) but the result must say the fault happened.
  if (inf.retried) j["degraded"] = true;
  finish(seq, j.dump(), j.get_string("status", "unknown").c_str());
}

void NetServer::on_worker_down(int shard, const std::string& why) {
  obs::count("serve_net/worker_down_events");
  write_state_file();
  // Collect first: retrying mutates inflight_ entries and a synthesized
  // failure erases them.
  std::vector<std::uint64_t> lost;
  for (const auto& [seq, inf] : inflight_) {
    if (inf.shard == shard) lost.push_back(seq);
  }
  if (!lost.empty()) {
    CP_LOG_WARN << "serve front-end: shard " << shard << " lost " << lost.size()
                << " inflight request(s) (" << why << "); retrying on survivors";
  }
  for (const std::uint64_t seq : lost) {
    // A failed send_request below kills that worker and synchronously
    // re-enters this handler, which may complete seqs the outer frame still
    // holds — so every iteration re-resolves and tolerates absence.
    auto it = inflight_.find(seq);
    if (it == inflight_.end()) continue;
    Inflight& inf = it->second;
    if (inf.retried) {
      synth_failure(seq, "worker_lost_twice");
      continue;
    }
    const int next = pool_->shard_map().owner(inf.key);  // dead shard excluded
    if (next < 0) {
      synth_failure(seq, "worker_lost_no_survivors");
      continue;
    }
    inf.retried = true;
    inf.shard = next;
    // Never cached: the retried answer must not seed the survivor's cache
    // with a payload the dead worker already half-owned.
    inf.request.no_cache = true;
    if (!pool_->send_request(next, inf.request.to_json().dump())) {
      synth_failure(seq, "worker_lost_no_survivors");
      continue;
    }
    obs::count("serve_net/retries");
  }
}

void NetServer::finish(std::uint64_t seq, const std::string& result_line, const char* status) {
  auto it = inflight_.find(seq);
  if (it == inflight_.end()) return;
  Inflight& inf = it->second;
  ledger_.complete(seq, status);
  if (!inf.tenant.empty()) {
    auto t = tenant_inflight_.find(inf.tenant);
    if (t != tenant_inflight_.end() && --t->second <= 0) tenant_inflight_.erase(t);
  }
  obs::count("serve_net/completed");
  obs::observe("serve_net/request_ms", ms_since(inf.accepted_at, Clock::now()));
  const long long conn_id = inf.conn_id;
  inflight_.erase(it);
  obs::gauge("serve_net/inflight", static_cast<double>(inflight_.size()));
  auto conn = conns_.find(conn_id);
  if (conn != conns_.end()) {
    --conn->second.owed;
    reply(conn_id, result_line);
  }
}

void NetServer::synth_failure(std::uint64_t seq, const std::string& reason) {
  auto it = inflight_.find(seq);
  if (it == inflight_.end()) return;  // completed by a re-entrant down event
  const Inflight& inf = it->second;
  GenerationResult result;
  result.id = inf.client_id;
  result.status = RequestStatus::kFailed;
  result.reason = reason;
  obs::count("serve_net/synth_failures");
  finish(seq, result.to_json().dump(), "failed");
}

void NetServer::reject(long long conn_id, const std::string& id, const std::string& reason) {
  GenerationResult result;
  result.id = id;
  result.status = RequestStatus::kRejected;
  result.reason = reason;
  reply(conn_id, result.to_json().dump());
}

void NetServer::reply(long long conn_id, const std::string& line) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  it->second.outbuf.append(line).append("\n");
  flush_conn(conn_id);
}

void NetServer::flush_conn(long long conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  while (!conn.outbuf.empty()) {
    std::size_t n = 0;
    const util::net::IoStatus st = util::net::write_some(conn.sock.fd(), conn.outbuf, &n);
    if (st == util::net::IoStatus::kOk) {
      conn.outbuf.erase(0, n);
      continue;
    }
    if (st == util::net::IoStatus::kAgain) return;  // poll() adds POLLOUT
    close_conn(conn_id);
    return;
  }
}

void NetServer::close_conn(long long conn_id) {
  // Orphan this connection's inflight work: the requests still complete
  // (and the ledger still balances); only the delivery is dropped.
  for (auto& [seq, inf] : inflight_) {
    if (inf.conn_id == conn_id) inf.conn_id = -1;
  }
  conns_.erase(conn_id);
}

}  // namespace cp::serve
