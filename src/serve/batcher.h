#pragma once
// Microbatching policy: turn a stream of queued requests into coalesced
// batches for single BatchSampler invocations.
//
// Classic dynamic-batching tradeoff: a bigger batch amortizes fan-out and
// keeps every worker busy, but waiting for it to fill adds latency to the
// requests already queued. The policy is the standard two-knob cut:
//
//     take a batch when  (a) max_batch_requests compatible requests are
//     pending, or (b) max_wait_us has elapsed since the consumer started
//     assembling one — whichever comes first.
//
// "Compatible" = equal serve::BatchKey (same condition/size/steps), so the
// coalesced requests can share one SampleConfig per sample_jobs call while
// keeping per-request seeds (see request.h). Batch composition affects only
// scheduling; every request's payload is stream-determined.

#include <chrono>
#include <vector>

#include "serve/request_queue.h"

namespace cp::serve {

struct BatchPolicy {
  int max_batch_requests = 8;  // cut at this many coalesced requests
  long long max_wait_us = 2000;  // ... or after this long assembling
};

class Batcher {
 public:
  Batcher(RequestQueue* queue, BatchPolicy policy) : queue_(queue), policy_(policy) {}

  const BatchPolicy& policy() const { return policy_; }

  /// Next coalesced batch, blocking until work arrives. Empty means the
  /// queue is closed and fully drained — the consumer's shutdown signal.
  /// Records the `serve/batch_requests` histogram and each request's
  /// queue-wait (`serve/queue_wait_s`).
  std::vector<PendingRequest> next_batch();

 private:
  RequestQueue* queue_;
  BatchPolicy policy_;
};

}  // namespace cp::serve
