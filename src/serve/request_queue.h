#pragma once
// Bounded admission queue of the serving layer (docs/SERVING.md).
//
// Backpressure lives here: the queue holds at most `capacity` pending
// requests. try_enqueue() is the admission decision — a full queue rejects
// immediately with a machine-readable reason instead of buffering without
// bound ("load shedding"); enqueue_wait() is the cooperating-client variant
// that blocks until space frees (what the trace-replay binary uses, so a
// 10k-line trace streams through a 64-slot queue).
//
// Scheduling policy:
//   * Priority aging: a pending request's effective priority is
//     `priority + waited_ms / aging_interval_ms`, so low-priority work is
//     promoted the longer it waits and cannot starve under a steady
//     high-priority stream.
//   * Deadlines: a request whose deadline passes while still queued is
//     completed as kDeadlineExpired at pop time — it never wastes a
//     diffusion call. (In-flight requests are not interrupted; the deadline
//     bounds *queueing*, the admission knob bounds *load*.)
//   * Cancellation: cancel(id) removes a still-queued request and completes
//     its future as kCancelled.
//
// pop_batch() is the consumer side used by the Batcher: it returns the
// highest-effective-priority request plus every compatible (equal BatchKey)
// pending request up to a cap, waiting briefly for the batch to fill.
// Scheduling order affects *when* a request runs, never what it produces —
// payload determinism is the Server's per-request stream contract.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "serve/request.h"

namespace cp::serve {

using Clock = std::chrono::steady_clock;

/// A queued request plus its completion channel and admission bookkeeping.
struct PendingRequest {
  GenerationRequest request;
  int condition = 0;  // resolved style index
  std::promise<GenerationResult> promise;
  /// Invoked (if set) with the final result right before the promise is
  /// fulfilled, on whichever thread completed the request — the push-style
  /// completion channel of Server::submit's ResultCallback. Must not throw.
  std::function<void(const GenerationResult&)> on_result;
  /// Invoked (if set) right after the promise is fulfilled, on whichever
  /// thread completed the request — the Server's outstanding-work hook.
  std::function<void()> on_complete;
  Clock::time_point admitted_at{};
  std::uint64_t sequence = 0;  // FIFO tie-break within equal priority
};

/// Fulfill a pending request: set the promise, then fire on_complete.
void fulfill(PendingRequest& pending, GenerationResult result);

/// Admission decision. `reason` is one of "queue_full", "shutting_down"
/// (plus "invalid: ..." produced by the Server before the queue is reached).
struct Admission {
  bool admitted = false;
  std::string reason;
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity, double aging_interval_ms = 100.0)
      : capacity_(capacity), aging_interval_ms_(aging_interval_ms) {}
  ~RequestQueue();

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Non-blocking admission: reject with a reason when full or closed.
  Admission try_enqueue(PendingRequest pending);

  /// Blocking admission (backpressure): wait for a free slot. Only a closed
  /// queue rejects.
  Admission enqueue_wait(PendingRequest pending);

  /// Cancel a still-queued request: completes its future as kCancelled and
  /// frees the slot. False if `id` is not queued (unknown or in flight).
  bool cancel(const std::string& id);

  /// Consumer side. Blocks until at least one request is available (or the
  /// queue is closed and empty — then returns empty, the shutdown signal).
  /// Returns the best request by (effective priority, FIFO) plus up to
  /// `max_requests - 1` compatible pending requests, waiting at most
  /// `max_wait` for the batch to fill once the head is chosen. Requests
  /// whose deadline has passed are completed as kDeadlineExpired and
  /// consume no slot in the returned batch.
  std::vector<PendingRequest> pop_batch(int max_requests, std::chrono::microseconds max_wait);

  /// Stop admitting (try/wait enqueue reject with "shutting_down"); already
  /// queued requests still drain through pop_batch. Wakes all waiters.
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  double effective_priority(const PendingRequest& p, Clock::time_point now) const;
  /// Complete + drop entries whose deadline has passed. Caller holds lock.
  void expire_locked(Clock::time_point now);
  void publish_depth_locked();

  const std::size_t capacity_;
  const double aging_interval_ms_;
  mutable std::mutex mutex_;
  std::condition_variable space_cv_;  // slot freed
  std::condition_variable work_cv_;   // request arrived / closed
  std::deque<PendingRequest> pending_;
  std::uint64_t next_sequence_ = 0;
  bool closed_ = false;
};

}  // namespace cp::serve
