#include "serve/worker.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "obs/registry.h"
#include "serve/wire.h"
#include "util/fault.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/net.h"

namespace cp::serve {

namespace {

/// Serialized writer of the worker channel: the main loop, the heartbeat
/// thread and the Server's completion threads all emit lines. A failed or
/// timed-out write poisons the channel (`ok()` false) — the supervisor is
/// gone or wedged, and the worker's only sane move is to exit.
class ChannelWriter {
 public:
  ChannelWriter(int fd, int timeout_ms) : fd_(fd), timeout_ms_(timeout_ms) {}

  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (failed_) return;
    const util::net::IoStatus st = util::net::send_all(fd_, line + "\n", timeout_ms_);
    if (st != util::net::IoStatus::kOk) {
      failed_ = true;
      CP_LOG_WARN << "serve worker: channel write failed (" << util::net::to_string(st) << ")";
    }
  }

  bool ok() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return !failed_;
  }

 private:
  int fd_;
  int timeout_ms_;
  mutable std::mutex mutex_;
  bool failed_ = false;
};

}  // namespace

int run_worker(const diffusion::TopologyGenerator& generator,
               std::vector<const legalize::Legalizer*> legalizers, ServerConfig config,
               const WorkerOptions& options) {
  util::net::ignore_sigpipe();
  ChannelWriter writer(options.channel_fd, options.write_timeout_ms);
  Server server(generator, std::move(legalizers), config);

  // Heartbeats start before `ready` so a worker wedged inside its very
  // first request still beats; the supervisor only *arms* the heartbeat
  // timeout once it has seen the ready line.
  std::atomic<bool> stop_heartbeat{false};
  std::mutex hb_mutex;
  std::condition_variable hb_cv;
  std::thread heartbeat;
  if (options.heartbeat_ms > 0) {
    heartbeat = std::thread([&] {
      std::uint64_t n = 0;
      std::unique_lock<std::mutex> lock(hb_mutex);
      while (!stop_heartbeat.load()) {
        writer.write_line("{\"hb\":" + std::to_string(++n) + "}");
        hb_cv.wait_for(lock, std::chrono::milliseconds(options.heartbeat_ms),
                       [&] { return stop_heartbeat.load(); });
      }
    });
  }
  auto join_heartbeat = [&] {
    {
      // Under hb_mutex: storing without it can race the heartbeat thread
      // between its predicate check and wait_for, losing the wakeup.
      std::lock_guard<std::mutex> lock(hb_mutex);
      stop_heartbeat.store(true);
    }
    hb_cv.notify_all();
    if (heartbeat.joinable()) heartbeat.join();
  };

  writer.write_line(std::string(wire::kReadyLine));

  // Completion path: push each result over the channel as it finishes. The
  // fault point simulates a worker that computes but never reports — the
  // logical wedge only the front-end's request watchdog can recover.
  auto on_result = [&writer](const GenerationResult& result) {
    try {
      util::fault::point("serve_net/worker_result");
    } catch (const std::exception&) {
      obs::count("serve_net/worker_result_dropped");
      return;  // line dropped; the supervisor's watchdog owns recovery
    }
    writer.write_line(result.to_json().dump());
  };

  util::net::LineReader reader(options.channel_fd);
  std::string line;
  int exit_code = 0;
  for (;;) {
    if (!writer.ok()) {
      exit_code = 3;
      break;
    }
    // Wake periodically so a poisoned writer is noticed even on an idle
    // channel.
    const util::net::IoStatus st = reader.read_line(&line, 1000);
    if (st == util::net::IoStatus::kTimeout) continue;
    if (st != util::net::IoStatus::kOk) {
      // Channel closed: the supervisor died or dropped us. Nothing to
      // report to; exit without draining (the front-end re-routes).
      exit_code = st == util::net::IoStatus::kClosed ? 0 : 3;
      break;
    }
    if (line.empty()) continue;
    if (line == wire::kStopCmd) break;
    if (line == wire::kDrainCmd) {
      server.drain();
      writer.write_line(std::string(wire::kDrainedLine));
      continue;
    }
    ParsedRequest parsed = parse_request_line(line);
    if (!parsed.ok) {
      // Defensive: the front-end validates before forwarding, so this is a
      // framing bug — answer it anyway so no seq is left unaccounted.
      obs::count("serve_net/worker_parse_errors");
      GenerationResult result;
      try {
        const util::Json j = util::Json::parse(line);
        if (j.is_object()) result.id = j.get_string("id", "");
      } catch (const std::exception&) {
        // not even JSON; id stays empty
      }
      result.status = RequestStatus::kRejected;
      result.reason = "parse_error: " + parsed.error;
      writer.write_line(result.to_json().dump());
      continue;
    }
    // Blocking admission: the socketpair buffer is the front-end's queue
    // ahead of this one, and backpressure propagating into it is fine —
    // the front-end never blocks on worker writes.
    server.submit(std::move(parsed.request), on_result);
  }

  join_heartbeat();
  server.shutdown();
  return exit_code;
}

}  // namespace cp::serve
