#pragma once
// Worker-process main loop of the multi-process serving tier
// (docs/SERVING.md "Process architecture").
//
// A worker is one forked+exec'd chatpattern_serve process that owns a full
// serve::Server (its own dispatcher thread, thread pool and PatternCache —
// fault isolation is the point: a crash here kills one shard's cache, not
// the front-end). It speaks NDJSON on a single inherited socketpair fd:
//
//   in:  request lines (GenerationRequest wire form, ids rewritten to
//        "s<seq>" by the front-end) and control commands
//        ({"cmd":"drain"}, {"cmd":"stop"}).
//   out: result lines (GenerationResult wire form), {"ready":true} once the
//        Server is constructed, {"hb":N} heartbeats from a dedicated thread,
//        and {"drained":true} after a drain command completes.
//
// Results are pushed from the Server's completion threads via the
// ResultCallback submit hook — the worker never blocks on futures, so a
// single slow request cannot stall the channel. All channel writes share
// one mutex (dispatcher thread, heartbeat thread and the main loop all
// write). The fault point `serve_net/worker_result` guards each result
// write: an injected fault drops the line (the request "completes" but the
// supervisor never hears), which is exactly the logical wedge the request
// watchdog exists to catch.

#include <vector>

#include "serve/server.h"

namespace cp::serve {

struct WorkerOptions {
  int channel_fd = -1;       // inherited supervisor channel (blocking ok)
  int shard = 0;             // this worker's shard index (logs/diagnostics)
  int heartbeat_ms = 200;    // heartbeat period; <= 0 disables heartbeats
  int write_timeout_ms = 10000;  // per-line channel write budget
};

/// Run the worker loop until the channel closes or a stop command arrives.
/// Returns a process exit code: 0 = clean stop/drain, 3 = channel failure.
/// `generator` / `legalizers` / `config` are the same Server inputs the
/// single-process replay uses — every worker trains the same deterministic
/// backend, so routing never changes payload bits.
int run_worker(const diffusion::TopologyGenerator& generator,
               std::vector<const legalize::Legalizer*> legalizers, ServerConfig config,
               const WorkerOptions& options);

}  // namespace cp::serve
