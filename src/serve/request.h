#pragma once
// The typed request/result model of the serving layer (docs/SERVING.md).
//
// A GenerationRequest is one client order: "N DRC-clean patterns (or raw
// topologies) of this style and size, from this seed". Requests travel as
// newline-delimited JSON (NDJSON) — one object per line, the wire format of
// the `chatpattern_serve` binary — and carry two kinds of fields:
//
//   * content fields (style, size, steps, count, seed, legalize target):
//     everything that determines *what* is generated. These are folded into
//     content_hash(), the key of the serve::PatternCache — two requests with
//     equal hashes receive bit-identical payloads.
//   * scheduling fields (id, priority, deadline_ms): how urgently the work
//     runs. Deliberately excluded from the hash, so a high-priority retry of
//     a cached request still hits.
//
// Determinism contract: sample k of a request is always drawn from Rng
// stream Rng(seed).fork(k), and candidates are accepted in stream order.
// The payload therefore depends only on the content fields — never on queue
// order, batch composition, or worker-thread count (see server.h).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "geometry/polygon.h"
#include "squish/squish.h"
#include "util/json.h"

namespace cp::serve {

struct GenerationRequest {
  // -- scheduling fields (not hashed) --
  std::string id;           // client-chosen, non-empty; used for cancellation
  int priority = 1;         // higher runs earlier; aged to prevent starvation
  double deadline_ms = 0;   // relative to admission; 0 = none
  /// Accounting principal for the network front-end's per-tenant admission
  /// quotas (serve/net_server.h); free-form, "" = the anonymous tenant.
  /// Ignored by the in-process server. Not hashed: the same content served
  /// to two tenants is still the same content.
  std::string tenant;
  /// Bypass the PatternCache entirely (no lookup, no insert). Set by the
  /// front-end on requests it re-sends after losing a worker mid-flight:
  /// per the degraded-serving convention (docs/ROBUSTNESS.md) an
  /// interrupted request's payload is delivered but never cached. Not
  /// hashed — it changes caching, never the payload.
  bool no_cache = false;

  // -- content fields (hashed) --
  std::string style = "Layer-10001";  // condition label; resolved at submit
  int count = 1;                      // patterns requested
  int rows = 128, cols = 128;
  int sample_steps = 16;
  int polish_rounds = 2;
  /// Visited-timestep placement for fast sampling (diffusion/
  /// timestep_schedule.h): "noise_uniform" | "uniform" | "quadratic" |
  /// "searched". Empty = the server's ServerConfig::default_schedule. A
  /// content field: two requests differing only here can legitimately
  /// deliver different payloads, so it is hashed and batch-keyed.
  std::string schedule;
  /// Inference-precision tier: "fp32" (default, bit-identical to the golden
  /// sampling path) or "int8" (the quantized kernels — faster, different
  /// bits). A content field: it changes the delivered payload, so it is
  /// hashed and batch-keyed and an int8 request can never be served a cached
  /// fp32 payload or vice versa.
  std::string precision = "fp32";
  geometry::Coord width_nm = 2048, height_nm = 2048;
  std::uint64_t seed = 1;
  /// true: deliver legalized SquishPatterns (retrying streams that fail
  /// legalization); false: deliver the first `count` raw topologies.
  bool legalize = true;
  /// Payload origin: "" = generate via the diffusion stack (the default);
  /// "store" = retrieve from the server's attached pattlib::PatternStore
  /// instead. Store requests reinterpret `style` as the store's free-form
  /// style tag ("*" = any tag) and `count` as the query limit; they are
  /// answered synchronously at submit, bypassing the queue AND the cache
  /// (store contents may grow between calls). A content field: it changes
  /// what the payload is, so it is hashed.
  std::string source;

  /// Canonical content hash over the content fields only (SplitMix64
  /// avalanche chain). The PatternCache key.
  std::uint64_t content_hash() const;

  /// Wire form (one NDJSON object). Scheduling defaults are omitted.
  util::Json to_json() const;

  /// Parse and validate one request object. Throws std::invalid_argument
  /// with a reason on malformed input (missing/empty id, unknown style,
  /// non-positive count/size, bad types).
  static GenerationRequest from_json(const util::Json& j);
};

/// Validation shared by NDJSON parsing and the direct submit() API: empty
/// string when `request` is well-formed, else the rejection reason
/// (missing id, unknown style, non-positive count/size/steps, ...).
std::string validate(const GenerationRequest& request);

/// Sampling-compatibility key: requests whose keys compare equal can be
/// coalesced into one BatchSampler::sample_jobs invocation (they share the
/// SampleConfig; seeds and legalization targets stay per-request).
struct BatchKey {
  int condition = 0;
  int rows = 0, cols = 0;
  int sample_steps = 0;
  int polish_rounds = 0;
  std::string schedule;   // raw request field; "" = server default
  std::string precision;  // "fp32" | "int8"
  bool operator==(const BatchKey&) const = default;
};

/// The key of `request` given its resolved condition index.
BatchKey batch_key(const GenerationRequest& request, int condition);

enum class RequestStatus {
  kOk,               // full payload delivered
  kIncomplete,       // attempt budget ran out; partial payload delivered
  kRejected,         // refused at admission (queue full / invalid / draining)
  kDeadlineExpired,  // deadline passed before generation started
  kCancelled,        // cancelled while queued (or server destroyed)
  kFailed,           // internal error during generation; the request failed,
                     // the dispatcher survived (docs/ROBUSTNESS.md)
};

const char* to_string(RequestStatus status);

/// What a completed request delivers. Exactly one of the two vectors is
/// populated (patterns when request.legalize, topologies otherwise).
/// Shared immutably between the cache and every result that hit it.
struct GenerationPayload {
  std::vector<squish::SquishPattern> patterns;
  std::vector<squish::Topology> topologies;

  std::size_t size() const { return patterns.size() + topologies.size(); }
};

/// Order-sensitive FNV-1a over the payload contents; the per-request
/// "library hash" used by the determinism audits (1 worker vs N workers
/// must agree bit-for-bit).
std::uint64_t payload_hash(const GenerationPayload& payload);

struct GenerationResult {
  std::string id;
  RequestStatus status = RequestStatus::kRejected;
  std::string reason;       // non-empty for rejected/expired/cancelled
  std::shared_ptr<const GenerationPayload> payload;  // null unless ok/incomplete

  bool cache_hit = false;   // payload came from the PatternCache
  bool deduped = false;     // payload shared with an identical in-batch twin
  /// True when at least one delivered sample came from the degraded-mode
  /// fallback generator after the primary's retry budget was exhausted
  /// (docs/ROBUSTNESS.md), or — at the network front-end — when the request
  /// was re-run after a worker loss. Degraded payloads are never cached: a
  /// later identical request gets a fresh, non-degraded attempt.
  bool degraded = false;
  /// Store-retrieval only: the requested count exceeded the server's
  /// ServerConfig::store_result_cap and the payload was clipped to the cap
  /// (distinguishes "the cap bound the result" from "the store ran out").
  bool truncated = false;
  long long attempts = 0;   // topologies sampled for this request
  int rounds = 0;           // generation rounds (>1 means legalization retries)
  double queue_wait_ms = 0; // admission -> batch formation
  double service_ms = 0;    // batch formation -> completion
  double total_ms = 0;

  bool ok() const { return status == RequestStatus::kOk; }
  std::size_t delivered() const { return payload ? payload->size() : 0; }
  /// payload_hash of the payload (0 when absent).
  std::uint64_t library_hash() const;

  /// Wire form: a summary line (counts, timings, hex library hash) — the
  /// patterns themselves stay server-side, like the agent tool results.
  util::Json to_json() const;
};

/// Outcome of parsing one NDJSON trace line.
struct ParsedRequest {
  bool ok = false;
  GenerationRequest request;
  std::string error;  // parse/validation failure reason
};

/// Parse one trace line (tolerates surrounding whitespace). Never throws:
/// malformed lines come back as {ok=false, error}.
ParsedRequest parse_request_line(const std::string& line);

}  // namespace cp::serve
