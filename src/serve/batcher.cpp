#include "serve/batcher.h"

#include "obs/registry.h"

namespace cp::serve {

std::vector<PendingRequest> Batcher::next_batch() {
  std::vector<PendingRequest> batch = queue_->pop_batch(
      policy_.max_batch_requests, std::chrono::microseconds(policy_.max_wait_us));
  if (!batch.empty()) {
    obs::count("serve/batches");
    obs::observe("serve/batch_requests", static_cast<double>(batch.size()));
    const auto now = Clock::now();
    for (const auto& p : batch) {
      obs::observe("serve/queue_wait_s",
                   std::chrono::duration<double>(now - p.admitted_at).count());
    }
  }
  return batch;
}

}  // namespace cp::serve
