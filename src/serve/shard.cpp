#include "serve/shard.h"

#include <stdexcept>

#include "util/rng.h"

namespace cp::serve {

ShardMap::ShardMap(int shards) {
  if (shards <= 0) throw std::invalid_argument("ShardMap: shards must be positive");
  alive_.assign(static_cast<std::size_t>(shards), 0);
}

void ShardMap::set_alive(int shard, bool alive) {
  alive_.at(static_cast<std::size_t>(shard)) = alive ? 1 : 0;
}

int ShardMap::alive_count() const {
  int n = 0;
  for (const std::uint8_t a : alive_) n += a;
  return n;
}

std::uint64_t ShardMap::weight(std::uint64_t key, int shard) {
  // Distinct avalanche stream per shard: the golden-ratio salt keeps the
  // per-shard streams decorrelated, splitmix64 does the mixing.
  std::uint64_t state =
      key ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(shard) + 1));
  return util::splitmix64(state);
}

int ShardMap::owner(std::uint64_t key) const { return owner_excluding(key, -1); }

int ShardMap::owner_excluding(std::uint64_t key, int excluded) const {
  int best = -1;
  std::uint64_t best_weight = 0;
  for (int s = 0; s < shards(); ++s) {
    if (alive_[static_cast<std::size_t>(s)] == 0 || s == excluded) continue;
    const std::uint64_t w = weight(key, s);
    if (best < 0 || w > best_weight || (w == best_weight && s < best)) {
      best = s;
      best_weight = w;
    }
  }
  return best;
}

}  // namespace cp::serve
