#pragma once
// TCP front-end of the multi-process serving tier (docs/SERVING.md
// "Process architecture").
//
// One single-threaded poll() event loop owns everything: the listening
// socket, every client connection, the worker channels (via WorkerPool) and
// all timers. Single-threadedness is a correctness feature, not a
// limitation — it makes fork() safe, removes every lock from the front-end,
// and means a front-end data race is structurally impossible. The front-end
// never computes: it parses, routes, and relays, so its event loop stays
// responsive even when every worker is saturated.
//
// Protocol: NDJSON both ways, the same wire format as the offline replay
// files. Clients write GenerationRequest lines and read GenerationResult
// lines (completion order, matched by id); control objects
// ({"cmd":"stats"}, {"cmd":"rolling_restart"}, {"cmd":"shutdown"}) get one
// JSON reply line each.
//
// Request lifecycle:
//   parse -> admission (global max_inflight => "shed_load"; per-tenant
//   quota => "tenant_quota") -> ledger.accept(seq) -> id rewritten to
//   "s<seq>" -> routed to shard = ShardMap::owner(content_hash) -> worker
//   computes -> result relayed with the client id restored ->
//   ledger.complete(seq).
//
// Worker loss: every request in flight on the dead shard is retried once
// on the surviving owner of its key, re-sent with no_cache=true and its
// relayed result forced degraded=true — a retried answer is bit-identical
// (determinism contract) but must never seed any worker's cache nor
// pretend the fault did not happen. A second loss, or no surviving shard,
// synthesizes a kFailed result. Either way the ledger completes every
// accepted seq exactly once: the front-end does not crash and does not
// leak work, which is precisely what the chaos gate asserts.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/ledger.h"
#include "serve/request.h"
#include "serve/supervisor.h"
#include "util/json.h"
#include "util/net.h"

namespace cp::serve {

struct NetServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral (port() reports the bound one)
  int backlog = 128;
  std::size_t max_line_bytes = 1 << 20;  // per-connection framing cap
  int idle_timeout_ms = 60000;  // close quiet connections with nothing owed
  long long max_inflight = 16384;  // global admission cap; 0 = unlimited
  long long tenant_quota = 0;      // per-tenant inflight cap; 0 = unlimited
  int drain_timeout_ms = 15000;    // worker drain budget at shutdown
  std::string journal_path;        // request ledger journal ("" = in-memory)
  std::string state_file;  // live {port, pid, worker pids} JSON ("" = none)
  SupervisorConfig supervisor;
  std::vector<std::string> worker_argv;  // WorkerPool spawn command
};

class NetServer {
 public:
  /// Binds and listens (throws on failure); workers spawn in run().
  explicit NetServer(NetServerConfig config);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  int port() const { return port_; }

  /// The event loop. Returns once a {"cmd":"shutdown"} (or request_stop())
  /// has been honoured and every accepted request has completed.
  int run();

  /// Ask the loop to drain and exit (idempotent; callable from a signal
  /// handler — it only sets a flag).
  void request_stop() { draining_ = true; }

  const RequestLedger& ledger() const { return ledger_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Conn {
    util::net::Socket sock;
    util::net::LineBuffer inbuf;
    std::string outbuf;
    Clock::time_point last_activity{};
    long long owed = 0;  // results not yet delivered to this connection
  };

  struct Inflight {
    long long conn_id = -1;  // -1: connection gone, discard the result
    std::string client_id;
    std::string tenant;
    std::uint64_t key = 0;
    int shard = -1;
    bool retried = false;
    GenerationRequest request;  // kept for the one retry re-send
    Clock::time_point accepted_at{};
  };

  void accept_new();
  void service_conn(long long conn_id);
  void handle_client_line(long long conn_id, const std::string& line);
  void handle_command(long long conn_id, const util::Json& j);
  void on_worker_result(int shard, const std::string& line);
  void on_worker_down(int shard, const std::string& why);
  void dispatch(std::uint64_t seq);  // route/send inflight_[seq]
  void finish(std::uint64_t seq, const std::string& result_line, const char* status);
  void reply(long long conn_id, const std::string& line);
  void synth_failure(std::uint64_t seq, const std::string& reason);
  void reject(long long conn_id, const std::string& id, const std::string& reason);
  void flush_conn(long long conn_id);
  void close_conn(long long conn_id);
  void write_state_file();

  NetServerConfig config_;
  int port_ = 0;  // declared before listener_: listen_tcp writes into it
  util::net::Socket listener_;
  RequestLedger ledger_;
  std::unique_ptr<WorkerPool> pool_;

  std::unordered_map<long long, Conn> conns_;
  long long next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, Inflight> inflight_;  // ledger seq ->
  std::unordered_map<std::string, long long> tenant_inflight_;
  std::vector<long long> doomed_conns_;  // closed during this iteration
  Clock::time_point accept_backoff_until_{};  // listener parked after accept error
  bool draining_ = false;
};

}  // namespace cp::serve
