#include "serve/cache.h"

#include "obs/registry.h"

namespace cp::serve {

std::shared_ptr<const GenerationPayload> PatternCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve/cache_miss");
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  hits_.fetch_add(1, std::memory_order_relaxed);
  obs::count("serve/cache_hit");
  return it->second->payload;
}

void PatternCache::insert(std::uint64_t key,
                          std::shared_ptr<const GenerationPayload> payload) {
  if (capacity_ == 0 || payload == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->payload = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(payload)});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve/cache_evict");
  }
}

std::size_t PatternCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace cp::serve
