#pragma once
// Binary (de)serialisation of tensors and parameter sets, so trained
// denoisers can be cached between runs of the bench harness.

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layers.h"

namespace cp::nn {

void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is);

/// Save/load all parameter values of a model (shapes must already match on
/// load; throws std::runtime_error otherwise).
void save_params(std::ostream& os, const std::vector<Param*>& params);
void load_params(std::istream& is, const std::vector<Param*>& params);

/// Crash-safe save: tmp + fsync + rename with a CRC32 integrity trailer
/// (util::atomic_write_file_checksummed) — a crash mid-save leaves any
/// previous file intact. Throws std::runtime_error on I/O failure.
void save_params_file(const std::string& path, const std::vector<Param*>& params);
/// Returns false if the file does not exist; throws std::runtime_error on
/// corrupt content (bad magic/shape, truncation, checksum mismatch).
/// Trailer-less legacy files are still accepted.
bool load_params_file(const std::string& path, const std::vector<Param*>& params);

}  // namespace cp::nn
