#pragma once
// Binary (de)serialisation of tensors and parameter sets, so trained
// denoisers can be cached between runs of the bench harness.

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layers.h"

namespace cp::nn {

void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is);

/// Save/load all parameter values of a model (shapes must already match on
/// load; throws std::runtime_error otherwise).
void save_params(std::ostream& os, const std::vector<Param*>& params);
void load_params(std::istream& is, const std::vector<Param*>& params);

void save_params_file(const std::string& path, const std::vector<Param*>& params);
/// Returns false if the file does not exist; throws on corrupt content.
bool load_params_file(const std::string& path, const std::vector<Param*>& params);

}  // namespace cp::nn
