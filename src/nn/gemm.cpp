#include "nn/gemm.h"

#include <atomic>
#include <cmath>
#include <cstring>

#if defined(__GNUC__) && defined(__x86_64__)
#define CP_GEMM_X86 1
#include <immintrin.h>
#else
#define CP_GEMM_X86 0
#endif

namespace cp::nn::gemm {

namespace {

std::atomic<bool> g_simd_enabled{true};

// Fixed-width vector chunk: a compile-time trip count lets the -O2
// autovectorizer (very-cheap cost model) emit SIMD without a runtime
// profitability check or loop versioning.
//
// The __restrict__ qualifiers must sit on the kernel *parameters*: GCC 12
// discards the no-alias guarantee when it is asserted via restrict-qualified
// local copies, and the axpy loops fall back to scalar code. Internal static
// kernels carry the qualifiers; the public wrappers below just forward.
constexpr int kChunk = 8;

// Register-tiled: each C-wide output tile accumulates in registers across
// the whole k loop, so y traffic drops from O(in*out) to O(out) per row.
// Every y[o] is still b[o] plus the k-ascending sum — bit-identical to
// forward_naive for any tile width (independent elements run in lockstep).
//
// always_inline so the body specializes into each ISA wrapper below:
// __attribute__((target("avx2"))) on the *caller* is what compiles this
// body with 256-bit registers. target_clones does not reliably dispatch
// here (GCC 12 resolves the ifunc to the default clone under -O2), hence
// the manual __builtin_cpu_supports dispatch in forward_packed.
template <int C>
__attribute__((always_inline)) inline void forward_packed_body(
    int n, int in, int out, const float* __restrict__ x, const float* __restrict__ wt,
    const float* __restrict__ b, float* __restrict__ y) {
  const int vec_end = out - out % C;
  for (int i = 0; i < n; ++i) {
    const float* xi = x + static_cast<std::size_t>(i) * in;
    float* yi = y + static_cast<std::size_t>(i) * out;
    int o = 0;
    for (; o < vec_end; o += C) {
      float acc[C];
      for (int j = 0; j < C; ++j) acc[j] = b[o + j];
      for (int k = 0; k < in; ++k) {
        const float xv = xi[k];
        const float* wk = wt + static_cast<std::size_t>(k) * out + o;
        for (int j = 0; j < C; ++j) acc[j] += xv * wk[j];
      }
      for (int j = 0; j < C; ++j) yi[o + j] = acc[j];
    }
    for (; o < out; ++o) {
      float acc = b[o];
      for (int k = 0; k < in; ++k) acc += xi[k] * wt[static_cast<std::size_t>(k) * out + o];
      yi[o] = acc;
    }
  }
}

void forward_packed_impl(int n, int in, int out, const float* __restrict__ x,
                         const float* __restrict__ wt, const float* __restrict__ b,
                         float* __restrict__ y) {
  forward_packed_body<kChunk>(n, in, out, x, wt, b, y);
}

#if CP_GEMM_X86
// 16-wide fp32 twin: two 8-float accumulator registers per tile under AVX2.
// Plain AVX2 (no FMA ISA flag) rounds the multiply and the add separately,
// exactly like the SSE2 baseline, so this stays bit-identical even though
// the build default is -ffp-contract=fast (contraction needs an FMA
// instruction to exist in the enabled ISA). 32-wide spills registers and
// loses; 16 is the measured sweet spot on this microarchitecture.
__attribute__((target("avx2"))) void forward_packed_wide_avx2(
    int n, int in, int out, const float* __restrict__ x, const float* __restrict__ wt,
    const float* __restrict__ b, float* __restrict__ y) {
  forward_packed_body<16>(n, in, out, x, wt, b, y);
}
#endif

void backward_dx_impl(int n, int in, int out, const float* __restrict__ g,
                      const float* __restrict__ w, float* __restrict__ dx) {
  const int vec_end = in - in % kChunk;
  for (int i = 0; i < n; ++i) {
    const float* gi = g + static_cast<std::size_t>(i) * out;
    float* di = dx + static_cast<std::size_t>(i) * in;
    std::memset(di, 0, sizeof(float) * static_cast<std::size_t>(in));
    for (int o = 0; o < out; ++o) {
      const float gv = gi[o];
      const float* wo = w + static_cast<std::size_t>(o) * in;
      int k = 0;
      for (; k < vec_end; k += kChunk) {
        for (int j = 0; j < kChunk; ++j) di[k + j] += gv * wo[k + j];
      }
      for (; k < in; ++k) di[k] += gv * wo[k];
    }
  }
}

void backward_accum_impl(int n, int in, int out, const float* __restrict__ g,
                         const float* __restrict__ x, float* __restrict__ dw,
                         float* __restrict__ db) {
  const int vec_end = in - in % kChunk;
  for (int i = 0; i < n; ++i) {
    const float* gi = g + static_cast<std::size_t>(i) * out;
    const float* xi = x + static_cast<std::size_t>(i) * in;
    for (int o = 0; o < out; ++o) {
      const float gv = gi[o];
      float* wo = dw + static_cast<std::size_t>(o) * in;
      int k = 0;
      for (; k < vec_end; k += kChunk) {
        for (int j = 0; j < kChunk; ++j) wo[k + j] += gv * xi[k + j];
      }
      for (; k < in; ++k) wo[k] += gv * xi[k];
      db[o] += gv;
    }
  }
}

// ---------------------------------------------------------------------------
// int8 kernels. The integer GEMM is exact in any order; the float epilogues
// below are written as the *same* operation sequence scalar and AVX2 so the
// two produce bit-identical bytes (tests/nn/gemm_test.cpp locks this in).

/// Rational-tanh SiLU: th(t) = t(27+t^2)/(27+9t^2) clamped to [-1,1],
/// silu(v) = (v/2)(1+th(v/2)). One div, no exp — vectorizable.
inline float fast_silu(float v) {
  const float t = v * 0.5f;
  const float t2 = t * t;
  float th = (t * (27.0f + t2)) / (27.0f + 9.0f * t2);
  th = th < -1.0f ? -1.0f : th;
  th = th > 1.0f ? 1.0f : th;
  return (v * 0.5f) * (1.0f + th);
}

inline float apply_act(QuantAct act, float v) {
  return act == QuantAct::kRelu ? (v > 0.0f ? v : 0.0f) : fast_silu(v);
}

void forward_quantized_scalar(int n, int pin, int pout, const std::int16_t* __restrict__ qx,
                              const std::int16_t* __restrict__ wq,
                              std::int32_t* __restrict__ acc) {
  for (int i = 0; i < n; ++i) {
    const std::int16_t* xi = qx + static_cast<std::size_t>(i) * pin;
    std::int32_t* ai = acc + static_cast<std::size_t>(i) * pout;
    for (int o = 0; o < pout; ++o) {
      std::int32_t a = 0;
      for (int k = 0; k < pin; ++k) {
        a += static_cast<std::int32_t>(xi[k]) *
             wq[(static_cast<std::size_t>(k / 2) * pout + o) * 2 + (k & 1)];
      }
      ai[o] = a;
    }
  }
}

void epilogue_act_quant_scalar(QuantAct act, int n, int pout, const std::int32_t* acc,
                               const float* rs, const float* scale, const float* bias,
                               float* vtmp, std::int16_t* qy, float* rs_out) {
  for (int i = 0; i < n; ++i) {
    const std::int32_t* ai = acc + static_cast<std::size_t>(i) * pout;
    const float s = rs[i];
    float m = 0.0f;
    for (int o = 0; o < pout; ++o) {
      const float v =
          apply_act(act, bias[o] + static_cast<float>(ai[o]) * (s * scale[o]));
      vtmp[o] = v;
      const float a = v < 0.0f ? -v : v;
      m = a > m ? a : m;
    }
    std::int16_t* yi = qy + static_cast<std::size_t>(i) * pout;
    if (m == 0.0f) {
      std::memset(yi, 0, sizeof(std::int16_t) * static_cast<std::size_t>(pout));
      rs_out[i] = 0.0f;
      continue;
    }
    rs_out[i] = m / 127.0f;
    const float inv = 127.0f / m;
    for (int o = 0; o < pout; ++o) {
      yi[o] = static_cast<std::int16_t>(std::lrintf(vtmp[o] * inv));
    }
  }
}

#if CP_GEMM_X86

/// vpmaddwd microkernel: broadcast one int16 (x[k], x[k+1]) pair to every
/// lane, multiply-add against the pair-interleaved weight rows, accumulate
/// int32. Four 8-lane accumulators (32 output channels) per tile keep the
/// madd/add dependency chains apart.
__attribute__((target("avx2"))) void forward_quantized_avx2(
    int n, int pin, int pout, const std::int16_t* __restrict__ qx,
    const std::int16_t* __restrict__ wq, std::int32_t* __restrict__ acc) {
  const int otiles = pout / 8;
  for (int i = 0; i < n; ++i) {
    const std::int16_t* xi = qx + static_cast<std::size_t>(i) * pin;
    std::int32_t* ai = acc + static_cast<std::size_t>(i) * pout;
    int ot = 0;
    for (; ot + 4 <= otiles; ot += 4) {
      __m256i a0 = _mm256_setzero_si256(), a1 = _mm256_setzero_si256(),
              a2 = _mm256_setzero_si256(), a3 = _mm256_setzero_si256();
      const std::int16_t* w = wq + static_cast<std::size_t>(ot) * 16;
      for (int k = 0; k < pin; k += 2) {
        std::int32_t pair;
        std::memcpy(&pair, xi + k, sizeof(pair));
        const __m256i xv = _mm256_set1_epi32(pair);
        const std::int16_t* wk = w + static_cast<std::size_t>(k / 2) * pout * 2;
        a0 = _mm256_add_epi32(
            a0, _mm256_madd_epi16(xv, _mm256_loadu_si256((const __m256i*)(wk))));
        a1 = _mm256_add_epi32(
            a1, _mm256_madd_epi16(xv, _mm256_loadu_si256((const __m256i*)(wk + 16))));
        a2 = _mm256_add_epi32(
            a2, _mm256_madd_epi16(xv, _mm256_loadu_si256((const __m256i*)(wk + 32))));
        a3 = _mm256_add_epi32(
            a3, _mm256_madd_epi16(xv, _mm256_loadu_si256((const __m256i*)(wk + 48))));
      }
      _mm256_storeu_si256((__m256i*)(ai + ot * 8), a0);
      _mm256_storeu_si256((__m256i*)(ai + ot * 8 + 8), a1);
      _mm256_storeu_si256((__m256i*)(ai + ot * 8 + 16), a2);
      _mm256_storeu_si256((__m256i*)(ai + ot * 8 + 24), a3);
    }
    for (; ot < otiles; ++ot) {
      __m256i a0 = _mm256_setzero_si256();
      const std::int16_t* w = wq + static_cast<std::size_t>(ot) * 16;
      for (int k = 0; k < pin; k += 2) {
        std::int32_t pair;
        std::memcpy(&pair, xi + k, sizeof(pair));
        const __m256i xv = _mm256_set1_epi32(pair);
        const std::int16_t* wk = w + static_cast<std::size_t>(k / 2) * pout * 2;
        a0 = _mm256_add_epi32(
            a0, _mm256_madd_epi16(xv, _mm256_loadu_si256((const __m256i*)(wk))));
      }
      _mm256_storeu_si256((__m256i*)(ai + ot * 8), a0);
    }
  }
}

/// Same operations as fast_silu, lane-parallel. min/max clamp order and the
/// (v/2)*(1+th) product order match the scalar exactly.
__attribute__((target("avx2"))) inline __m256 fast_silu_ps(__m256 v) {
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 c27 = _mm256_set1_ps(27.0f);
  const __m256 c9 = _mm256_set1_ps(9.0f);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 t = _mm256_mul_ps(v, half);
  const __m256 t2 = _mm256_mul_ps(t, t);
  const __m256 num = _mm256_mul_ps(t, _mm256_add_ps(c27, t2));
  const __m256 den = _mm256_add_ps(c27, _mm256_mul_ps(c9, t2));
  __m256 th = _mm256_div_ps(num, den);
  th = _mm256_max_ps(_mm256_sub_ps(_mm256_setzero_ps(), one), th);
  th = _mm256_min_ps(one, th);
  return _mm256_mul_ps(_mm256_mul_ps(v, half), _mm256_add_ps(one, th));
}

template <QuantAct A>
__attribute__((target("avx2"))) void epilogue_act_quant_avx2(
    int n, int pout, const std::int32_t* acc, const float* rs, const float* scale,
    const float* bias, float* vtmp, std::int16_t* qy, float* rs_out) {
  const __m256 signmask = _mm256_set1_ps(-0.0f);
  const int pout16 = pout - pout % 16;
  for (int i = 0; i < n; ++i) {
    const std::int32_t* ai = acc + static_cast<std::size_t>(i) * pout;
    const __m256 s = _mm256_set1_ps(rs[i]);
    __m256 mx = _mm256_setzero_ps();
    for (int o = 0; o < pout; o += 8) {
      const __m256 f = _mm256_cvtepi32_ps(_mm256_loadu_si256((const __m256i*)(ai + o)));
      const __m256 w = _mm256_mul_ps(s, _mm256_loadu_ps(scale + o));
      __m256 val = _mm256_add_ps(_mm256_loadu_ps(bias + o), _mm256_mul_ps(f, w));
      val = A == QuantAct::kRelu ? _mm256_max_ps(val, _mm256_setzero_ps())
                                 : fast_silu_ps(val);
      _mm256_storeu_ps(vtmp + o, val);
      mx = _mm256_max_ps(mx, _mm256_andnot_ps(signmask, val));
    }
    __m128 m4 = _mm_max_ps(_mm256_castps256_ps128(mx), _mm256_extractf128_ps(mx, 1));
    m4 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
    m4 = _mm_max_ss(m4, _mm_shuffle_ps(m4, m4, 1));
    const float m = _mm_cvtss_f32(m4);
    std::int16_t* yi = qy + static_cast<std::size_t>(i) * pout;
    if (m == 0.0f) {
      std::memset(yi, 0, sizeof(std::int16_t) * static_cast<std::size_t>(pout));
      rs_out[i] = 0.0f;
      continue;
    }
    rs_out[i] = m / 127.0f;
    const float invf = 127.0f / m;
    const __m256 inv = _mm256_set1_ps(invf);
    int o = 0;
    for (; o < pout16; o += 16) {
      const __m256i q0 = _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(vtmp + o), inv));
      const __m256i q1 =
          _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(vtmp + o + 8), inv));
      __m256i p = _mm256_packs_epi32(q0, q1);  // lane-interleaved
      p = _mm256_permute4x64_epi64(p, 0xD8);   // restore linear order
      _mm256_storeu_si256((__m256i*)(yi + o), p);
    }
    // pout % 16 == 8 tail: lrintf is round-to-nearest-even like cvtps.
    for (; o < pout; ++o) {
      yi[o] = static_cast<std::int16_t>(std::lrintf(vtmp[o] * invf));
    }
  }
}

#endif  // CP_GEMM_X86

}  // namespace

bool cpu_has_avx2() {
#if CP_GEMM_X86
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

void set_simd_enabled(bool enabled) {
  g_simd_enabled.store(enabled, std::memory_order_relaxed);
}

bool simd_enabled() { return g_simd_enabled.load(std::memory_order_relaxed); }

void pack_wt(int in, int out, const float* w, float* wt) {
  for (int o = 0; o < out; ++o) {
    const float* wo = w + static_cast<std::size_t>(o) * in;
    for (int k = 0; k < in; ++k) wt[static_cast<std::size_t>(k) * out + o] = wo[k];
  }
}

void forward_naive(int n, int in, int out, const float* x, const float* w, const float* b,
                   float* y) {
  for (int i = 0; i < n; ++i) {
    const float* xi = x + static_cast<std::size_t>(i) * in;
    float* yi = y + static_cast<std::size_t>(i) * out;
    for (int o = 0; o < out; ++o) {
      const float* wo = w + static_cast<std::size_t>(o) * in;
      float acc = b[o];
      for (int k = 0; k < in; ++k) acc += xi[k] * wo[k];
      yi[o] = acc;
    }
  }
}

void forward_packed(int n, int in, int out, const float* x, const float* wt, const float* b,
                    float* y) {
#if CP_GEMM_X86
  if (out >= kWideMinOut && simd_enabled() && cpu_has_avx2()) {
    forward_packed_wide_avx2(n, in, out, x, wt, b, y);
    return;
  }
#endif
  forward_packed_impl(n, in, out, x, wt, b, y);
}

void backward_dx(int n, int in, int out, const float* g, const float* w, float* dx) {
  backward_dx_impl(n, in, out, g, w, dx);
}

void backward_accum(int n, int in, int out, const float* g, const float* x, float* dw,
                    float* db) {
  backward_accum_impl(n, in, out, g, x, dw, db);
}

void quantize_weights(int in, int out, const float* w, const float* b, QuantizedPack& pack) {
  pack.in = in;
  pack.out = out;
  pack.pin = quant_pad(in);
  pack.pout = quant_pad(out);
  pack.wq.assign(static_cast<std::size_t>(pack.pin / 2) * pack.pout * 2, 0);
  pack.scale.assign(static_cast<std::size_t>(pack.pout), 0.0f);
  pack.bias.assign(static_cast<std::size_t>(pack.pout), 0.0f);
  for (int o = 0; o < out; ++o) {
    const float* wo = w + static_cast<std::size_t>(o) * in;
    float m = 0.0f;
    for (int k = 0; k < in; ++k) m = std::max(m, std::fabs(wo[k]));
    pack.scale[static_cast<std::size_t>(o)] = m == 0.0f ? 0.0f : m / 127.0f;
    pack.bias[static_cast<std::size_t>(o)] = b[o];
    const float inv = m == 0.0f ? 0.0f : 127.0f / m;
    for (int k = 0; k < in; ++k) {
      pack.wq[(static_cast<std::size_t>(k / 2) * pack.pout + o) * 2 + (k & 1)] =
          static_cast<std::int16_t>(std::lrintf(wo[k] * inv));
    }
  }
}

void quantize_rows(int n, int in, int pin, const float* x, std::int16_t* qx, float* rs) {
  for (int i = 0; i < n; ++i) {
    const float* xi = x + static_cast<std::size_t>(i) * in;
    std::int16_t* qi = qx + static_cast<std::size_t>(i) * pin;
    float m = 0.0f;
    for (int k = 0; k < in; ++k) {
      const float a = xi[k] < 0.0f ? -xi[k] : xi[k];
      m = a > m ? a : m;
    }
    if (m == 0.0f) {
      std::memset(qi, 0, sizeof(std::int16_t) * static_cast<std::size_t>(pin));
      rs[i] = 0.0f;
      continue;
    }
    rs[i] = m / 127.0f;
    const float inv = 127.0f / m;
    for (int k = 0; k < in; ++k) {
      qi[k] = static_cast<std::int16_t>(std::lrintf(xi[k] * inv));
    }
    for (int k = in; k < pin; ++k) qi[k] = 0;
  }
}

void forward_quantized(int n, int pin, int pout, const std::int16_t* qx,
                       const std::int16_t* wq, std::int32_t* acc) {
#if CP_GEMM_X86
  if (simd_enabled() && cpu_has_avx2() && pout % 8 == 0) {
    forward_quantized_avx2(n, pin, pout, qx, wq, acc);
    return;
  }
#endif
  forward_quantized_scalar(n, pin, pout, qx, wq, acc);
}

void epilogue_act_quant(QuantAct act, int n, int pout, const std::int32_t* acc,
                        const float* rs, const float* scale, const float* bias, float* vtmp,
                        std::int16_t* qy, float* rs_out) {
#if CP_GEMM_X86
  if (simd_enabled() && cpu_has_avx2() && pout % 8 == 0) {
    if (act == QuantAct::kRelu) {
      epilogue_act_quant_avx2<QuantAct::kRelu>(n, pout, acc, rs, scale, bias, vtmp, qy,
                                               rs_out);
    } else {
      epilogue_act_quant_avx2<QuantAct::kSiluFast>(n, pout, acc, rs, scale, bias, vtmp, qy,
                                                   rs_out);
    }
    return;
  }
#endif
  epilogue_act_quant_scalar(act, n, pout, acc, rs, scale, bias, vtmp, qy, rs_out);
}

void epilogue_dequant(int n, int pout, int out, const std::int32_t* acc, const float* rs,
                      const float* scale, const float* bias, float* y) {
  for (int i = 0; i < n; ++i) {
    const std::int32_t* ai = acc + static_cast<std::size_t>(i) * pout;
    float* yi = y + static_cast<std::size_t>(i) * out;
    const float s = rs[i];
    for (int o = 0; o < out; ++o) {
      yi[o] = bias[o] + static_cast<float>(ai[o]) * (s * scale[o]);
    }
  }
}

}  // namespace cp::nn::gemm
