#include "nn/gemm.h"

#include <cstring>

namespace cp::nn::gemm {

namespace {

// Fixed-width vector chunk: a compile-time trip count lets the -O2
// autovectorizer (very-cheap cost model) emit SIMD without a runtime
// profitability check or loop versioning.
//
// The __restrict__ qualifiers must sit on the kernel *parameters*: GCC 12
// discards the no-alias guarantee when it is asserted via restrict-qualified
// local copies, and the axpy loops fall back to scalar code. Internal static
// kernels carry the qualifiers; the public wrappers below just forward.
constexpr int kChunk = 8;

// Register-tiled: each kChunk-wide output tile accumulates in registers
// across the whole k loop, so y traffic drops from O(in*out) to O(out) per
// row. Every y[o] is still b[o] plus the k-ascending sum — bit-identical to
// forward_naive.
void forward_packed_impl(int n, int in, int out, const float* __restrict__ x,
                         const float* __restrict__ wt, const float* __restrict__ b,
                         float* __restrict__ y) {
  const int vec_end = out - out % kChunk;
  for (int i = 0; i < n; ++i) {
    const float* xi = x + static_cast<std::size_t>(i) * in;
    float* yi = y + static_cast<std::size_t>(i) * out;
    int o = 0;
    for (; o < vec_end; o += kChunk) {
      float acc[kChunk];
      for (int j = 0; j < kChunk; ++j) acc[j] = b[o + j];
      for (int k = 0; k < in; ++k) {
        const float xv = xi[k];
        const float* wk = wt + static_cast<std::size_t>(k) * out + o;
        for (int j = 0; j < kChunk; ++j) acc[j] += xv * wk[j];
      }
      for (int j = 0; j < kChunk; ++j) yi[o + j] = acc[j];
    }
    for (; o < out; ++o) {
      float acc = b[o];
      for (int k = 0; k < in; ++k) acc += xi[k] * wt[static_cast<std::size_t>(k) * out + o];
      yi[o] = acc;
    }
  }
}

void backward_dx_impl(int n, int in, int out, const float* __restrict__ g,
                      const float* __restrict__ w, float* __restrict__ dx) {
  const int vec_end = in - in % kChunk;
  for (int i = 0; i < n; ++i) {
    const float* gi = g + static_cast<std::size_t>(i) * out;
    float* di = dx + static_cast<std::size_t>(i) * in;
    std::memset(di, 0, sizeof(float) * static_cast<std::size_t>(in));
    for (int o = 0; o < out; ++o) {
      const float gv = gi[o];
      const float* wo = w + static_cast<std::size_t>(o) * in;
      int k = 0;
      for (; k < vec_end; k += kChunk) {
        for (int j = 0; j < kChunk; ++j) di[k + j] += gv * wo[k + j];
      }
      for (; k < in; ++k) di[k] += gv * wo[k];
    }
  }
}

void backward_accum_impl(int n, int in, int out, const float* __restrict__ g,
                         const float* __restrict__ x, float* __restrict__ dw,
                         float* __restrict__ db) {
  const int vec_end = in - in % kChunk;
  for (int i = 0; i < n; ++i) {
    const float* gi = g + static_cast<std::size_t>(i) * out;
    const float* xi = x + static_cast<std::size_t>(i) * in;
    for (int o = 0; o < out; ++o) {
      const float gv = gi[o];
      float* wo = dw + static_cast<std::size_t>(o) * in;
      int k = 0;
      for (; k < vec_end; k += kChunk) {
        for (int j = 0; j < kChunk; ++j) wo[k + j] += gv * xi[k + j];
      }
      for (; k < in; ++k) wo[k] += gv * xi[k];
      db[o] += gv;
    }
  }
}

}  // namespace

void pack_wt(int in, int out, const float* w, float* wt) {
  for (int o = 0; o < out; ++o) {
    const float* wo = w + static_cast<std::size_t>(o) * in;
    for (int k = 0; k < in; ++k) wt[static_cast<std::size_t>(k) * out + o] = wo[k];
  }
}

void forward_naive(int n, int in, int out, const float* x, const float* w, const float* b,
                   float* y) {
  for (int i = 0; i < n; ++i) {
    const float* xi = x + static_cast<std::size_t>(i) * in;
    float* yi = y + static_cast<std::size_t>(i) * out;
    for (int o = 0; o < out; ++o) {
      const float* wo = w + static_cast<std::size_t>(o) * in;
      float acc = b[o];
      for (int k = 0; k < in; ++k) acc += xi[k] * wo[k];
      yi[o] = acc;
    }
  }
}

void forward_packed(int n, int in, int out, const float* x, const float* wt, const float* b,
                    float* y) {
  forward_packed_impl(n, in, out, x, wt, b, y);
}

void backward_dx(int n, int in, int out, const float* g, const float* w, float* dx) {
  backward_dx_impl(n, in, out, g, w, dx);
}

void backward_accum(int n, int in, int out, const float* g, const float* x, float* dw,
                    float* db) {
  backward_accum_impl(n, in, out, g, x, dw, db);
}

}  // namespace cp::nn::gemm
