#include "nn/serialize.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/fault.h"
#include "util/fs.h"

namespace cp::nn {

namespace {
constexpr std::uint32_t kMagic = 0x43504e4e;  // "CPNN"
// Corrupt-header guard: a bit-flipped shape must not trigger a giant
// allocation. 2^28 floats (1 GiB) is far above any model this library
// builds.
constexpr long long kMaxTensorNumel = 1LL << 28;
}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  // Disk-full simulation for the raw-stream path: a fired `io/write` aborts
  // mid-file, which is exactly the partial-write hazard save_params_file's
  // atomic path exists to contain.
  util::fault::point("io/write");
  const std::uint32_t rank = static_cast<std::uint32_t>(t.rank());
  os.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (int i = 0; i < t.rank(); ++i) {
    const std::int32_t d = t.dim(i);
    os.write(reinterpret_cast<const char*>(&d), sizeof(d));
  }
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!os) throw std::runtime_error("write_tensor: stream write failed");
}

Tensor read_tensor(std::istream& is) {
  std::uint32_t rank = 0;
  is.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  if (!is || rank > 8) throw std::runtime_error("read_tensor: corrupt header");
  std::vector<int> shape(rank);
  long long numel = 1;
  for (auto& d : shape) {
    std::int32_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!is || v < 0) throw std::runtime_error("read_tensor: corrupt shape");
    numel *= v;
    if (numel > kMaxTensorNumel) {
      throw std::runtime_error("read_tensor: implausible tensor size (corrupt shape)");
    }
    d = v;
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!is) throw std::runtime_error("read_tensor: truncated data");
  return t;
}

void save_params(std::ostream& os, const std::vector<Param*>& params) {
  os.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  const std::uint32_t count = static_cast<std::uint32_t>(params.size());
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  if (!os) throw std::runtime_error("save_params: stream write failed");
  for (const Param* p : params) write_tensor(os, p->value);
}

void load_params(std::istream& is, const std::vector<Param*>& params) {
  std::uint32_t magic = 0, count = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!is || magic != kMagic) throw std::runtime_error("load_params: bad magic");
  if (count != params.size()) throw std::runtime_error("load_params: parameter count mismatch");
  for (Param* p : params) {
    Tensor t = read_tensor(is);
    if (!t.same_shape(p->value)) throw std::runtime_error("load_params: shape mismatch");
    p->value = std::move(t);
    p->bump_version();  // invalidate packed-weight caches
  }
}

void save_params_file(const std::string& path, const std::vector<Param*>& params) {
  // Crash-safe: serialize fully in memory, then tmp + fsync + rename with a
  // CRC32 trailer. A crash (or injected fault) mid-save leaves any previous
  // file intact; a torn or bit-rotted file is rejected at load time.
  std::ostringstream os(std::ios::binary);
  save_params(os, params);
  util::atomic_write_file_checksummed(path, os.str());
}

bool load_params_file(const std::string& path, const std::vector<Param*>& params) {
  if (!std::filesystem::exists(path)) return false;
  // Trailer-less files from pre-trailer writers still load; a present but
  // mismatching trailer throws ("load_params: checksum mismatch ...").
  const std::string data = util::read_file_checksummed(path, "load_params");
  std::istringstream is(data, std::ios::binary);
  load_params(is, params);
  // A genuine file (legacy or trailer-stripped) ends exactly at the last
  // tensor; leftover bytes mean a corrupted trailer was mistaken for payload.
  if (is.peek() != std::char_traits<char>::eof()) {
    throw std::runtime_error("load_params: trailing bytes after parameters in '" + path + "'");
  }
  return true;
}

}  // namespace cp::nn
