#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace cp::nn {

namespace {
constexpr std::uint32_t kMagic = 0x43504e4e;  // "CPNN"
}

void write_tensor(std::ostream& os, const Tensor& t) {
  const std::uint32_t rank = static_cast<std::uint32_t>(t.rank());
  os.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (int i = 0; i < t.rank(); ++i) {
    const std::int32_t d = t.dim(i);
    os.write(reinterpret_cast<const char*>(&d), sizeof(d));
  }
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor read_tensor(std::istream& is) {
  std::uint32_t rank = 0;
  is.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  if (!is || rank > 8) throw std::runtime_error("read_tensor: corrupt header");
  std::vector<int> shape(rank);
  for (auto& d : shape) {
    std::int32_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!is || v < 0) throw std::runtime_error("read_tensor: corrupt shape");
    d = v;
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!is) throw std::runtime_error("read_tensor: truncated data");
  return t;
}

void save_params(std::ostream& os, const std::vector<Param*>& params) {
  os.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  const std::uint32_t count = static_cast<std::uint32_t>(params.size());
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Param* p : params) write_tensor(os, p->value);
}

void load_params(std::istream& is, const std::vector<Param*>& params) {
  std::uint32_t magic = 0, count = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!is || magic != kMagic) throw std::runtime_error("load_params: bad magic");
  if (count != params.size()) throw std::runtime_error("load_params: parameter count mismatch");
  for (Param* p : params) {
    Tensor t = read_tensor(is);
    if (!t.same_shape(p->value)) throw std::runtime_error("load_params: shape mismatch");
    p->value = std::move(t);
    p->bump_version();  // invalidate packed-weight caches
  }
}

void save_params_file(const std::string& path, const std::vector<Param*>& params) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_params_file: cannot open " + path);
  save_params(os, params);
}

bool load_params_file(const std::string& path, const std::vector<Param*>& params) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  load_params(is, params);
  return true;
}

}  // namespace cp::nn
