#include "nn/layers.h"

#include <cmath>
#include <stdexcept>

namespace cp::nn {

Linear::Linear(int in_features, int out_features, util::Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
  weight_.value = Tensor::randn({out_features, in_features}, rng, stddev);
  weight_.grad = Tensor::zeros({out_features, in_features});
  bias_.value = Tensor::zeros({out_features});
  bias_.grad = Tensor::zeros({out_features});
}

Tensor Linear::forward(const Tensor& x) {
  input_ = x;
  return linear_forward(x, weight_.value, bias_.value);
}

Tensor Linear::backward(const Tensor& grad_out) {
  const int n = input_.dim(0);
  const int in = input_.dim(1);
  const int out = weight_.value.dim(0);
  // dW += g^T x ; db += sum g ; dx = g W
  for (int i = 0; i < n; ++i) {
    const float* xi = input_.data() + static_cast<std::size_t>(i) * in;
    const float* gi = grad_out.data() + static_cast<std::size_t>(i) * out;
    for (int o = 0; o < out; ++o) {
      float* wo = weight_.grad.data() + static_cast<std::size_t>(o) * in;
      const float g = gi[o];
      for (int k = 0; k < in; ++k) wo[k] += g * xi[k];
      bias_.grad[static_cast<std::size_t>(o)] += g;
    }
  }
  Tensor grad_in({n, in});
  for (int i = 0; i < n; ++i) {
    const float* gi = grad_out.data() + static_cast<std::size_t>(i) * out;
    float* di = grad_in.data() + static_cast<std::size_t>(i) * in;
    for (int o = 0; o < out; ++o) {
      const float* wo = weight_.value.data() + static_cast<std::size_t>(o) * in;
      const float g = gi[o];
      for (int k = 0; k < in; ++k) di[k] += g * wo[k];
    }
  }
  return grad_in;
}

Tensor ReLU::forward(const Tensor& x) {
  input_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = y[i] > 0 ? y[i] : 0.0f;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i) {
    if (input_[i] <= 0) g[i] = 0.0f;
  }
  return g;
}

namespace {
inline float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

Tensor SiLU::forward(const Tensor& x) {
  input_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = x[i] * sigmoidf(x[i]);
  return y;
}

Tensor SiLU::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i) {
    const float s = sigmoidf(input_[i]);
    g[i] *= s * (1.0f + input_[i] * (1.0f - s));
  }
  return g;
}

Tensor Sigmoid::forward(const Tensor& x) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = sigmoidf(y[i]);
  output_ = y;
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i) g[i] *= output_[i] * (1.0f - output_[i]);
  return g;
}

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, util::Rng& rng)
    : in_ch_(in_channels), out_ch_(out_channels), k_(kernel) {
  if (kernel % 2 == 0) throw std::invalid_argument("Conv2d: kernel must be odd");
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_channels * kernel * kernel));
  weight_.value = Tensor::randn({out_channels, in_channels, kernel, kernel}, rng, stddev);
  weight_.grad = Tensor::zeros({out_channels, in_channels, kernel, kernel});
  bias_.value = Tensor::zeros({out_channels});
  bias_.grad = Tensor::zeros({out_channels});
}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != in_ch_) throw std::invalid_argument("Conv2d: bad input");
  input_ = x;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int pad = k_ / 2;
  Tensor y({n, out_ch_, h, w});
  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < out_ch_; ++oc) {
      for (int r = 0; r < h; ++r) {
        for (int c = 0; c < w; ++c) {
          float acc = bias_.value[static_cast<std::size_t>(oc)];
          for (int ic = 0; ic < in_ch_; ++ic) {
            for (int kr = 0; kr < k_; ++kr) {
              const int rr = r + kr - pad;
              if (rr < 0 || rr >= h) continue;
              for (int kc = 0; kc < k_; ++kc) {
                const int cc = c + kc - pad;
                if (cc < 0 || cc >= w) continue;
                acc += x.at4(b, ic, rr, cc) *
                       weight_.value[((static_cast<std::size_t>(oc) * in_ch_ + ic) * k_ + kr) *
                                         k_ +
                                     kc];
              }
            }
          }
          y.at4(b, oc, r, c) = acc;
        }
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const int n = input_.dim(0), h = input_.dim(2), w = input_.dim(3);
  const int pad = k_ / 2;
  Tensor grad_in({n, in_ch_, h, w});
  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < out_ch_; ++oc) {
      for (int r = 0; r < h; ++r) {
        for (int c = 0; c < w; ++c) {
          const float g = grad_out.at4(b, oc, r, c);
          bias_.grad[static_cast<std::size_t>(oc)] += g;
          for (int ic = 0; ic < in_ch_; ++ic) {
            for (int kr = 0; kr < k_; ++kr) {
              const int rr = r + kr - pad;
              if (rr < 0 || rr >= h) continue;
              for (int kc = 0; kc < k_; ++kc) {
                const int cc = c + kc - pad;
                if (cc < 0 || cc >= w) continue;
                const std::size_t widx =
                    ((static_cast<std::size_t>(oc) * in_ch_ + ic) * k_ + kr) * k_ + kc;
                weight_.grad[widx] += g * input_.at4(b, ic, rr, cc);
                grad_in.at4(b, ic, rr, cc) += g * weight_.value[widx];
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) all.push_back(p);
  }
  return all;
}

void Sequential::zero_grad() {
  for (Param* p : params()) p->grad.fill(0.0f);
}

float bce_with_logits(const Tensor& logits, const Tensor& targets, Tensor& grad) {
  if (!logits.same_shape(targets)) throw std::invalid_argument("bce_with_logits: shape mismatch");
  grad = Tensor::zeros(logits.shape());
  const std::size_t n = logits.numel();
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float x = logits[i];
    const float t = targets[i];
    // Stable: max(x,0) - x t + log(1 + exp(-|x|)).
    loss += std::max(x, 0.0f) - x * t + std::log1p(std::exp(-std::fabs(x)));
    grad[i] = (sigmoidf(x) - t) / static_cast<float>(n);
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

float mse_loss(const Tensor& pred, const Tensor& target, Tensor& grad) {
  if (!pred.same_shape(target)) throw std::invalid_argument("mse_loss: shape mismatch");
  grad = Tensor::zeros(pred.shape());
  const std::size_t n = pred.numel();
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pred[i] - target[i];
    loss += d * d;
    grad[i] = 2.0f * d / static_cast<float>(n);
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

}  // namespace cp::nn
