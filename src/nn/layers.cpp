#include "nn/layers.h"

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "nn/gemm.h"

namespace cp::nn {

std::uint64_t next_param_version() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

const Tensor& Workspace::packed_wt(const Param& p) {
  PackEntry* entry = nullptr;
  for (auto& e : packs_) {
    if (e.param == &p) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    packs_.emplace_back();
    entry = &packs_.back();
    entry->param = &p;
    entry->version = 0;  // differs from any live Param version (they start at 1)
  }
  if (entry->version != p.version) {
    const int out = p.value.dim(0);
    const int in = static_cast<int>(p.value.numel()) / (out > 0 ? out : 1);
    entry->wt.resize(in, out);
    gemm::pack_wt(in, out, p.value.data(), entry->wt.data());
    entry->version = p.version;
  }
  return entry->wt;
}

const gemm::QuantizedPack& Workspace::quantized_pack(const Param& w, const Param& b) {
  QuantPackEntry* entry = nullptr;
  for (auto& e : qpacks_) {
    if (e.weight == &w) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    qpacks_.emplace_back();
    entry = &qpacks_.back();
    entry->weight = &w;
    entry->weight_version = 0;  // differs from any live version (they start at 1)
    entry->bias_version = 0;
  }
  if (entry->weight_version != w.version || entry->bias_version != b.version) {
    const int out = w.value.dim(0);
    const int in = static_cast<int>(w.value.numel()) / (out > 0 ? out : 1);
    gemm::quantize_weights(in, out, w.value.data(), b.value.data(), entry->pack);
    entry->weight_version = w.version;
    entry->bias_version = b.version;
  }
  return entry->pack;
}

Linear::Linear(int in_features, int out_features, util::Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
  weight_.value = Tensor::randn({out_features, in_features}, rng, stddev);
  weight_.grad = Tensor::zeros({out_features, in_features});
  bias_.value = Tensor::zeros({out_features});
  bias_.grad = Tensor::zeros({out_features});
}

Tensor Linear::forward(const Tensor& x) {
  input_ = x;
  return linear_forward(x, weight_.value, bias_.value);
}

Tensor Linear::backward(const Tensor& grad_out) {
  const int n = input_.dim(0);
  const int in = input_.dim(1);
  const int out = weight_.value.dim(0);
  // dW += g^T x ; db += sum g ; dx = g W — same per-element accumulation
  // order as the original loops (see nn/gemm.h), so training trajectories
  // are bit-unchanged.
  gemm::backward_accum(n, in, out, grad_out.data(), input_.data(), weight_.grad.data(),
                       bias_.grad.data());
  Tensor grad_in({n, in});
  gemm::backward_dx(n, in, out, grad_out.data(), weight_.value.data(), grad_in.data());
  return grad_in;
}

void Linear::infer(const Tensor& x, Tensor& y, Workspace& ws) const {
  if (x.rank() != 2 || x.dim(1) != weight_.value.dim(1)) {
    throw std::invalid_argument("Linear::infer: bad input");
  }
  const int n = x.dim(0);
  const int in = x.dim(1);
  const int out = weight_.value.dim(0);
  y.resize(n, out);
  if (out >= gemm::kVecMinOut) {
    const Tensor& wt = ws.packed_wt(weight_);
    gemm::forward_packed(n, in, out, x.data(), wt.data(), bias_.value.data(), y.data());
  } else {
    gemm::forward_naive(n, in, out, x.data(), weight_.value.data(), bias_.value.data(),
                        y.data());
  }
}

Tensor ReLU::forward(const Tensor& x) {
  input_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = y[i] > 0 ? y[i] : 0.0f;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i) {
    if (input_[i] <= 0) g[i] = 0.0f;
  }
  return g;
}

void ReLU::infer(const Tensor& x, Tensor& y, Workspace&) const {
  y.resize_like(x);
  const float* xd = x.data();
  float* yd = y.data();
  for (std::size_t i = 0; i < x.numel(); ++i) yd[i] = xd[i] > 0 ? xd[i] : 0.0f;
}

namespace {
inline float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

Tensor SiLU::forward(const Tensor& x) {
  input_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = x[i] * sigmoidf(x[i]);
  return y;
}

Tensor SiLU::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i) {
    const float s = sigmoidf(input_[i]);
    g[i] *= s * (1.0f + input_[i] * (1.0f - s));
  }
  return g;
}

void SiLU::infer(const Tensor& x, Tensor& y, Workspace&) const {
  y.resize_like(x);
  const float* xd = x.data();
  float* yd = y.data();
  for (std::size_t i = 0; i < x.numel(); ++i) yd[i] = xd[i] * sigmoidf(xd[i]);
}

Tensor Sigmoid::forward(const Tensor& x) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = sigmoidf(y[i]);
  output_ = y;
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i) g[i] *= output_[i] * (1.0f - output_[i]);
  return g;
}

void Sigmoid::infer(const Tensor& x, Tensor& y, Workspace&) const {
  y.resize_like(x);
  const float* xd = x.data();
  float* yd = y.data();
  for (std::size_t i = 0; i < x.numel(); ++i) yd[i] = sigmoidf(xd[i]);
}

namespace {

/// Lower NCHW input to im2col columns: row p = (b*h + r)*w + c holds the
/// receptive field of output pixel (b, r, c), column k = (ic*kk + kr)*kk + kc
/// — the flattened weight layout, so the GEMM contraction index runs in the
/// same order as the legacy loop nest (padding taps contribute exact zeros).
void im2col(const Tensor& x, int kk, Tensor& cols) {
  const int n = x.dim(0), in_ch = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int pad = kk / 2;
  const int cols_k = in_ch * kk * kk;
  cols.resize(n * h * w, cols_k);
  float* row = cols.data();
  for (int b = 0; b < n; ++b) {
    for (int r = 0; r < h; ++r) {
      for (int c = 0; c < w; ++c) {
        for (int ic = 0; ic < in_ch; ++ic) {
          for (int kr = 0; kr < kk; ++kr) {
            const int rr = r + kr - pad;
            for (int kc = 0; kc < kk; ++kc) {
              const int cc = c + kc - pad;
              *row++ = (rr >= 0 && rr < h && cc >= 0 && cc < w) ? x.at4(b, ic, rr, cc) : 0.0f;
            }
          }
        }
      }
    }
  }
}

/// ymat [P, out_ch] = cols · W^T + b with the same vector/naive dispatch as
/// Linear, so forward() and infer() hit the identical kernel.
void conv_matmul(const Tensor& cols, const Param& weight, const Tensor& bias, Workspace& ws,
                 Tensor& ymat) {
  const int p = cols.dim(0);
  const int k = cols.dim(1);
  const int out_ch = weight.value.dim(0);
  ymat.resize(p, out_ch);
  if (out_ch >= gemm::kVecMinOut) {
    const Tensor& wt = ws.packed_wt(weight);
    gemm::forward_packed(p, k, out_ch, cols.data(), wt.data(), bias.data(), ymat.data());
  } else {
    gemm::forward_naive(p, k, out_ch, cols.data(), weight.value.data(), bias.data(),
                        ymat.data());
  }
}

/// Transpose ymat [P, out_ch] back to NCHW.
void scatter_nchw(const Tensor& ymat, int n, int out_ch, int h, int w, Tensor& y) {
  for (int b = 0; b < n; ++b) {
    for (int r = 0; r < h; ++r) {
      for (int c = 0; c < w; ++c) {
        const int p = (b * h + r) * w + c;
        const float* row = ymat.data() + static_cast<std::size_t>(p) * out_ch;
        for (int oc = 0; oc < out_ch; ++oc) y.at4(b, oc, r, c) = row[oc];
      }
    }
  }
}

}  // namespace

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, util::Rng& rng)
    : in_ch_(in_channels), out_ch_(out_channels), k_(kernel) {
  if (kernel % 2 == 0) throw std::invalid_argument("Conv2d: kernel must be odd");
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_channels * kernel * kernel));
  weight_.value = Tensor::randn({out_channels, in_channels, kernel, kernel}, rng, stddev);
  weight_.grad = Tensor::zeros({out_channels, in_channels, kernel, kernel});
  bias_.value = Tensor::zeros({out_channels});
  bias_.grad = Tensor::zeros({out_channels});
}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != in_ch_) throw std::invalid_argument("Conv2d: bad input");
  input_ = x;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  Tensor& cols = train_ws_.scratch(0);
  im2col(x, k_, cols);
  Tensor& ymat = train_ws_.scratch(1);
  conv_matmul(cols, weight_, bias_.value, train_ws_, ymat);
  Tensor y({n, out_ch_, h, w});
  scatter_nchw(ymat, n, out_ch_, h, w, y);
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const int n = input_.dim(0), h = input_.dim(2), w = input_.dim(3);
  const int np = n * h * w;
  const int nk = in_ch_ * k_ * k_;
  const int pad = k_ / 2;
  // Re-lower the cached input (cheap next to the GEMMs, and correct even if
  // another layer's forward ran in between and touched shared scratch).
  Tensor& cols = train_ws_.scratch(0);
  im2col(input_, k_, cols);
  // Gather grad_out into [P, out_ch] to match the im2col row order.
  Tensor& gmat = train_ws_.scratch(2);
  gmat.resize(np, out_ch_);
  for (int b = 0; b < n; ++b) {
    for (int r = 0; r < h; ++r) {
      for (int c = 0; c < w; ++c) {
        const int p = (b * h + r) * w + c;
        float* row = gmat.data() + static_cast<std::size_t>(p) * out_ch_;
        for (int oc = 0; oc < out_ch_; ++oc) row[oc] = grad_out.at4(b, oc, r, c);
      }
    }
  }
  gemm::backward_accum(np, nk, out_ch_, gmat.data(), cols.data(), weight_.grad.data(),
                       bias_.grad.data());
  Tensor& dcols = train_ws_.scratch(3);
  dcols.resize(np, nk);
  gemm::backward_dx(np, nk, out_ch_, gmat.data(), weight_.value.data(), dcols.data());
  // col2im: scatter-add the column gradients back onto the input grid.
  Tensor grad_in({n, in_ch_, h, w});
  for (int b = 0; b < n; ++b) {
    for (int r = 0; r < h; ++r) {
      for (int c = 0; c < w; ++c) {
        const int p = (b * h + r) * w + c;
        const float* row = dcols.data() + static_cast<std::size_t>(p) * nk;
        int k = 0;
        for (int ic = 0; ic < in_ch_; ++ic) {
          for (int kr = 0; kr < k_; ++kr) {
            const int rr = r + kr - pad;
            for (int kc = 0; kc < k_; ++kc, ++k) {
              const int cc = c + kc - pad;
              if (rr < 0 || rr >= h || cc < 0 || cc >= w) continue;
              grad_in.at4(b, ic, rr, cc) += row[k];
            }
          }
        }
      }
    }
  }
  return grad_in;
}

void Conv2d::infer(const Tensor& x, Tensor& y, Workspace& ws) const {
  if (x.rank() != 4 || x.dim(1) != in_ch_) throw std::invalid_argument("Conv2d::infer: bad input");
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  Tensor& cols = ws.scratch(0);
  im2col(x, k_, cols);
  Tensor& ymat = ws.scratch(1);
  conv_matmul(cols, weight_, bias_.value, ws, ymat);
  y.resize({n, out_ch_, h, w});
  scatter_nchw(ymat, n, out_ch_, h, w, y);
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

const Tensor& Sequential::infer(const Tensor& x, Workspace& ws) const {
  Tensor& a0 = ws.activation(0);
  Tensor& a1 = ws.activation(1);
  const Tensor* cur = &x;
  bool flip = false;
  for (const auto& layer : layers_) {
    Tensor& out = flip ? a1 : a0;
    layer->infer(*cur, out, ws);
    cur = &out;
    flip = !flip;
  }
  if (cur == &x) {
    a0 = x;  // empty network: identity, but still return workspace-owned storage
    return a0;
  }
  return *cur;
}

namespace {

/// One quantizable stage: a Linear plus the activation fused into its
/// epilogue (the final stage has none — it dequantizes to float).
struct QuantStage {
  const Linear* linear = nullptr;
  gemm::QuantAct act = gemm::QuantAct::kSiluFast;
};

/// Match (Linear [SiLU|ReLU])* Linear; false on anything else (Conv2d,
/// Sigmoid heads, bare activations, trailing activations).
bool collect_quant_stages(const Sequential& net, std::vector<QuantStage>* stages) {
  if (stages != nullptr) stages->clear();
  if (net.size() == 0) return false;
  std::size_t i = 0;
  while (i < net.size()) {
    const auto* linear = dynamic_cast<const Linear*>(&net.layer(i));
    if (linear == nullptr) return false;
    QuantStage stage;
    stage.linear = linear;
    ++i;
    if (i < net.size()) {  // intermediate Linear: requires a fusable activation
      if (dynamic_cast<const SiLU*>(&net.layer(i)) != nullptr) {
        stage.act = gemm::QuantAct::kSiluFast;
      } else if (dynamic_cast<const ReLU*>(&net.layer(i)) != nullptr) {
        stage.act = gemm::QuantAct::kRelu;
      } else {
        return false;
      }
      ++i;
      if (i >= net.size()) return false;  // trailing activation: no final Linear
    }
    if (stages != nullptr) stages->push_back(stage);
  }
  return true;
}

}  // namespace

bool Sequential::quantizable() const { return collect_quant_stages(*this, nullptr); }

const Tensor& Sequential::infer_quantized(const Tensor& x, Workspace& ws) const {
  if (x.rank() != 2 || !quantizable()) return infer(x, ws);
  const int n = x.dim(0);
  const int in = x.dim(1);
  const int pin = gemm::quant_pad(in);
  // Slots 2/3 so the staging buffers never collide with the chain's
  // ping-pong buffers inside infer_quantized_pre.
  std::vector<std::int16_t>& qx = ws.qi16(2);
  std::vector<float>& rs = ws.qf32(3);
  qx.resize(static_cast<std::size_t>(n) * pin);
  rs.resize(static_cast<std::size_t>(n));
  gemm::quantize_rows(n, in, pin, x.data(), qx.data(), rs.data());
  return infer_quantized_pre(n, qx.data(), rs.data(), ws);
}

const Tensor& Sequential::infer_quantized_pre(int n, const std::int16_t* qx, const float* rs,
                                              Workspace& ws) const {
  std::vector<QuantStage> stages;
  if (!collect_quant_stages(*this, &stages)) {
    throw std::logic_error("Sequential::infer_quantized_pre: stack is not quantizable");
  }
  const std::int16_t* cur = qx;
  const float* cur_rs = rs;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const Linear& lin = *stages[s].linear;
    const gemm::QuantizedPack& pack = ws.quantized_pack(lin.weight(), lin.bias());
    std::vector<std::int32_t>& acc = ws.qi32(0);
    acc.resize(static_cast<std::size_t>(n) * pack.pout);
    gemm::forward_quantized(n, pack.pin, pack.pout, cur, pack.wq.data(), acc.data());
    if (s + 1 < stages.size()) {
      // Ping-pong between int16 slots 0/1; the epilogue's requantized rows
      // have stride pack.pout == quant_pad(next stage's input) by
      // construction, so they feed the next GEMM directly.
      std::vector<std::int16_t>& qy = ws.qi16(s % 2);
      std::vector<float>& rs_out = ws.qf32(s % 2);
      std::vector<float>& vtmp = ws.qf32(2);
      qy.resize(static_cast<std::size_t>(n) * pack.pout);
      rs_out.resize(static_cast<std::size_t>(n));
      vtmp.resize(static_cast<std::size_t>(pack.pout));
      gemm::epilogue_act_quant(stages[s].act, n, pack.pout, acc.data(), cur_rs,
                               pack.scale.data(), pack.bias.data(), vtmp.data(), qy.data(),
                               rs_out.data());
      cur = qy.data();
      cur_rs = rs_out.data();
    } else {
      Tensor& y = ws.activation(0);
      y.resize(n, pack.out);
      gemm::epilogue_dequant(n, pack.pout, pack.out, acc.data(), cur_rs, pack.scale.data(),
                             pack.bias.data(), y.data());
      return y;
    }
  }
  throw std::logic_error("Sequential::infer_quantized_pre: empty stage list");
}

const std::vector<Param*>& Sequential::params() {
  if (params_dirty_) {
    params_cache_.clear();
    for (auto& layer : layers_) {
      for (Param* p : layer->params()) params_cache_.push_back(p);
    }
    params_dirty_ = false;
  }
  return params_cache_;
}

void Sequential::zero_grad() {
  for (Param* p : params()) p->grad.fill(0.0f);
}

float bce_with_logits(const Tensor& logits, const Tensor& targets, Tensor& grad) {
  if (!logits.same_shape(targets)) throw std::invalid_argument("bce_with_logits: shape mismatch");
  grad = Tensor::zeros(logits.shape());
  const std::size_t n = logits.numel();
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float x = logits[i];
    const float t = targets[i];
    // Stable: max(x,0) - x t + log(1 + exp(-|x|)).
    loss += std::max(x, 0.0f) - x * t + std::log1p(std::exp(-std::fabs(x)));
    grad[i] = (sigmoidf(x) - t) / static_cast<float>(n);
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

float mse_loss(const Tensor& pred, const Tensor& target, Tensor& grad) {
  if (!pred.same_shape(target)) throw std::invalid_argument("mse_loss: shape mismatch");
  grad = Tensor::zeros(pred.shape());
  const std::size_t n = pred.numel();
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pred[i] - target[i];
    loss += d * d;
    grad[i] = 2.0f * d / static_cast<float>(n);
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

}  // namespace cp::nn
