#pragma once
// Blocked, compiler-vectorizable GEMM kernels for the NN hot paths.
//
// Every kernel here preserves the *per-element accumulation order* of the
// original naive triple loops: each output element is a sum over its
// contraction index taken strictly in ascending order, one float rounding
// per multiply-add. Vectorization only runs independent output elements in
// lockstep, so results are bit-identical to the naive reference for every
// shape — the determinism contract the golden files and the
// parallel-vs-serial suites rely on (enforced by tests/nn/gemm_test.cpp).
//
// The forward kernel needs the weight matrix transposed ("packed") so the
// inner loop walks contiguous output elements: with wt[k][o] the k-loop
// broadcasts one input value and does a fixed-width fused axpy over o, which
// GCC/Clang vectorize at -O2 (the fixed 8-wide chunk sidesteps the
// very-cheap cost model's refusal of runtime trip counts). nn::Workspace
// caches the packed transpose per Param across inference calls.
//
// Shapes (row-major): x [n, in] · w [out, in] (+ b [out]) -> y [n, out].

#include <cstdint>

namespace cp::nn::gemm {

/// Minimum output width for the packed vector path to win; below this the
/// naive kernel is used (a dot-product column cannot be vectorized without
/// reordering the sum).
inline constexpr int kVecMinOut = 8;

/// Pack w [out, in] into wt [in, out] (transpose) for forward_packed.
void pack_wt(int in, int out, const float* w, float* wt);

/// Reference kernel: y = x w^T + b, plain triple loop. This is the exact
/// pre-blocking `linear_forward` loop; the vector kernels are tested
/// bit-identical against it.
void forward_naive(int n, int in, int out, const float* x, const float* w, const float* b,
                   float* y);

/// Vector kernel: y = x wt + b with wt = w^T packed by pack_wt. Requires
/// out >= 1; fastest when out >= kVecMinOut.
void forward_packed(int n, int in, int out, const float* x, const float* wt, const float* b,
                    float* y);

/// dx = g · w (g [n, out], w [out, in]); overwrites dx. Per-element sum runs
/// over o ascending — the legacy Linear::backward order.
void backward_dx(int n, int in, int out, const float* g, const float* w, float* dx);

/// dw += g^T · x and db += column sums of g (the parameter-gradient
/// accumulation of Linear::backward). Per-element sums run over the batch
/// index ascending — the legacy order.
void backward_accum(int n, int in, int out, const float* g, const float* x, float* dw,
                    float* db);

}  // namespace cp::nn::gemm
