#pragma once
// Blocked, compiler-vectorizable GEMM kernels for the NN hot paths.
//
// Every fp32 kernel here preserves the *per-element accumulation order* of
// the original naive triple loops: each output element is a sum over its
// contraction index taken strictly in ascending order, one float rounding
// per multiply-add. Vectorization only runs independent output elements in
// lockstep, so results are bit-identical to the naive reference for every
// shape — the determinism contract the golden files and the
// parallel-vs-serial suites rely on (enforced by tests/nn/gemm_test.cpp).
//
// The forward kernel needs the weight matrix transposed ("packed") so the
// inner loop walks contiguous output elements: with wt[k][o] the k-loop
// broadcasts one input value and does a fixed-width fused axpy over o, which
// GCC/Clang vectorize at -O2 (the fixed 8-wide chunk sidesteps the
// very-cheap cost model's refusal of runtime trip counts). nn::Workspace
// caches the packed transpose per Param across inference calls.
//
// Two vector tiers share that contract (DESIGN.md "Quantized inference"):
//
//  * fp32: the portable 8-wide tile (SSE2 baseline) plus a 16-wide AVX2
//    twin selected at runtime via __builtin_cpu_supports. Both run the same
//    k-ascending accumulation per element, and plain AVX2 (no FMA flag)
//    rounds the multiply and the add separately exactly like SSE2, so the
//    wide kernel stays bit-identical and remains the *default* path.
//  * int8 (opt-in): per-output-channel symmetric weight quantization into a
//    pair-interleaved int16 pack, dynamic per-row activation quantization,
//    int32 accumulation (vpmaddwd on AVX2) and a fused
//    bias+dequant+activation+requant epilogue. The scalar fallback computes
//    the identical integers and the identical float epilogue (AVX2 uses
//    round-to-nearest-even exactly like lrintf), so quantized results are
//    bit-deterministic across ISAs — just not equal to fp32.
//
// Shapes (row-major): x [n, in] · w [out, in] (+ b [out]) -> y [n, out].

#include <cstdint>
#include <vector>

namespace cp::nn::gemm {

/// Minimum output width for the packed vector path to win; below this the
/// naive kernel is used (a dot-product column cannot be vectorized without
/// reordering the sum).
inline constexpr int kVecMinOut = 8;

/// Minimum output width for the 16-wide AVX2 fp32 tile (two tiles' worth of
/// accumulators; narrower shapes stay on the 8-wide kernel).
inline constexpr int kWideMinOut = 16;

/// True when the CPU supports AVX2 (cached runtime probe).
bool cpu_has_avx2();

/// Runtime switch for the SIMD-dispatched kernels (fp32 16-wide AVX2 tile
/// and the AVX2 int8 kernels). Defaults to enabled; benches disable it to
/// measure the portable baseline and tests disable it to verify the scalar
/// fallbacks produce bit-identical results. Process-wide (atomic).
void set_simd_enabled(bool enabled);
bool simd_enabled();

/// Pack w [out, in] into wt [in, out] (transpose) for forward_packed.
void pack_wt(int in, int out, const float* w, float* wt);

/// Reference kernel: y = x w^T + b, plain triple loop. This is the exact
/// pre-blocking `linear_forward` loop; the vector kernels are tested
/// bit-identical against it.
void forward_naive(int n, int in, int out, const float* x, const float* w, const float* b,
                   float* y);

/// Vector kernel: y = x wt + b with wt = w^T packed by pack_wt. Requires
/// out >= 1; fastest when out >= kVecMinOut. Dispatches to the 16-wide AVX2
/// tile when available (bit-identical; see header comment).
void forward_packed(int n, int in, int out, const float* x, const float* wt, const float* b,
                    float* y);

/// dx = g · w (g [n, out], w [out, in]); overwrites dx. Per-element sum runs
/// over o ascending — the legacy Linear::backward order.
void backward_dx(int n, int in, int out, const float* g, const float* w, float* dx);

/// dw += g^T · x and db += column sums of g (the parameter-gradient
/// accumulation of Linear::backward). Per-element sums run over the batch
/// index ascending — the legacy order.
void backward_accum(int n, int in, int out, const float* g, const float* x, float* dw,
                    float* db);

// ---------------------------------------------------------------------------
// int8 quantized inference (opt-in; see DESIGN.md "Quantized inference").

/// Round a dimension up to the int8 kernels' lane multiple. Padded input
/// lanes carry zero weights and zero activations (exact zero contribution);
/// padded output channels carry zero scale and zero bias, so they dequantize
/// to activation(0) and never perturb the per-row absmax.
inline int quant_pad(int d) { return (d + 7) & ~7; }

/// Activation fused into the quantized epilogue. kSiluFast is the rational
/// tanh approximation th(t) = t(27+t^2)/(27+9t^2) — vectorizable, within
/// ~3e-3 of exact SiLU, and computed identically by the scalar and AVX2
/// epilogues.
enum class QuantAct : std::uint8_t { kSiluFast, kRelu };

/// Per-output-channel symmetric int8 weight quantization, stored widened to
/// int16 in a pair-interleaved layout for vpmaddwd:
///     wq[((k/2) * pout + o) * 2 + (k & 1)] = round(w[o][k] * 127 / max_k|w[o][k]|)
/// with k < pin (even), o < pout, both padded via quant_pad.
struct QuantizedPack {
  int in = 0, out = 0;    // logical dims
  int pin = 0, pout = 0;  // padded dims: pin even, pout a multiple of 8
  std::vector<std::int16_t> wq;  // [pin/2][pout][2] pair-interleaved
  std::vector<float> scale;      // [pout] per-channel scales (0 on padding)
  std::vector<float> bias;       // [pout] padded copy of b (0 on padding)
};

/// Build `pack` from w [out, in] and b [out].
void quantize_weights(int in, int out, const float* w, const float* b, QuantizedPack& pack);

/// Dynamic per-row symmetric activation quantization: for each of n rows of
/// x [n, in], rs[i] = max_k|x[i][k]| / 127 and qx[i][k] = lrintf(x[i][k]/rs[i])
/// (zero rows quantize to all-zero with rs = 0). qx rows are padded to pin
/// with zeros. Scalar on purpose: one implementation, one rounding rule.
void quantize_rows(int n, int in, int pin, const float* x, std::int16_t* qx, float* rs);

/// acc[i][o] = sum_k qx[i][k] * wq[k][o] over the padded dims — exact int32
/// arithmetic, so the AVX2 and scalar kernels agree bit-for-bit. `wq` is the
/// pair-interleaved pack; pin must be even, pout a multiple of 8.
void forward_quantized(int n, int pin, int pout, const std::int16_t* qx,
                       const std::int16_t* wq, std::int32_t* acc);

/// Fused epilogue for a hidden layer: v = act(bias[o] + acc[i][o] *
/// (rs[i] * scale[o])), then requantize the row symmetrically into qy
/// (int16, [n, pout]) with the new row scale in rs_out. `vtmp` is caller
/// scratch of at least pout floats. Round-to-nearest-even on both paths.
void epilogue_act_quant(QuantAct act, int n, int pout, const std::int32_t* acc,
                        const float* rs, const float* scale, const float* bias, float* vtmp,
                        std::int16_t* qy, float* rs_out);

/// Final-layer epilogue: dequantize without activation or requantization,
/// writing y [n, out] (padding channels stripped).
void epilogue_dequant(int n, int pout, int out, const std::int32_t* acc, const float* rs,
                      const float* scale, const float* bias, float* y);

}  // namespace cp::nn::gemm
