#pragma once
// Neural-network layers with explicit forward/backward passes.
//
// Two execution paths share the same parameters:
//
//  * Training: `forward()` is stateful per batch — it caches whatever the
//    corresponding `backward()` needs. Parameters are exposed as
//    (value, grad) pairs for the optimizer.
//  * Inference: `infer()` is `const` and stateless. All scratch lives in a
//    caller-owned Workspace, so concurrent callers with per-thread
//    workspaces can share one network with no locks and no allocations on
//    the hot loop (buffers are reused via Tensor::resize once warm).
//
// Both paths produce bit-identical outputs: the blocked kernels in nn/gemm.h
// preserve the per-element accumulation order of the naive loops.
//
// This is all the machinery the MLP denoiser and the autoencoder baselines
// need; Conv2d is provided for the convolutional variants and tested against
// finite differences.

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "nn/gemm.h"
#include "nn/tensor.h"

namespace cp::nn {

/// Monotonic process-wide stamp; every Param construction or mutation draws
/// a fresh value, so a (pointer, version) pair uniquely identifies weight
/// *contents* even across address reuse. Thread-safe (atomic counter).
std::uint64_t next_param_version();

struct Param {
  Tensor value;
  Tensor grad;
  /// Bumped by the optimizers and the serializer whenever `value` changes;
  /// keys Workspace's packed-weight cache.
  std::uint64_t version = next_param_version();

  void bump_version() { version = next_param_version(); }
};

/// Caller-owned scratch for the stateless inference path. One workspace per
/// thread; never shared concurrently. Pools:
///  * activation(i): ping-pong output buffers used by Sequential::infer.
///  * scratch(i):    layer-internal temporaries (im2col columns, matmul
///                   staging) — valid only within a single infer() call.
///  * packed_wt(p):  transposed weight cache for the vector GEMM kernel,
///                   invalidated automatically via Param::version.
///  * quantized_pack(w, b): int8 weight pack for the quantized path,
///                   invalidated via *both* Params' versions.
/// All buffers grow on demand and are reused via Tensor::resize, so steady
/// state inference performs zero heap allocations.
class Workspace {
 public:
  Tensor& activation(std::size_t i) { return slot(activations_, i); }
  Tensor& scratch(std::size_t i) { return slot(scratch_, i); }

  /// The packed transpose of `p.value` (flattened to 2-D, [in, out]) for
  /// gemm::forward_packed. Re-packed only when `p.version` changes.
  const Tensor& packed_wt(const Param& p);

  /// The int8 pack of a Linear's (weight, bias) for the quantized inference
  /// path. Re-quantized whenever either Param's version changes — optimizer
  /// steps and the serializer's load path bump both, so a stale pack can
  /// never be served after a weight update (tests/nn/infer_test.cpp).
  const gemm::QuantizedPack& quantized_pack(const Param& w, const Param& b);

  /// Typed scratch pools for the quantized chain (int16 activations, int32
  /// accumulators, row scales). Same growth-and-reuse discipline as the
  /// Tensor pools.
  std::vector<std::int16_t>& qi16(std::size_t i) { return slot_v(qi16_, i); }
  std::vector<std::int32_t>& qi32(std::size_t i) { return slot_v(qi32_, i); }
  std::vector<float>& qf32(std::size_t i) { return slot_v(qf32_, i); }

 private:
  // Deques so references handed out stay valid as pools grow on demand.
  static Tensor& slot(std::deque<Tensor>& pool, std::size_t i) {
    while (pool.size() <= i) pool.emplace_back();
    return pool[i];
  }
  template <typename T>
  static std::vector<T>& slot_v(std::deque<std::vector<T>>& pool, std::size_t i) {
    while (pool.size() <= i) pool.emplace_back();
    return pool[i];
  }

  struct PackEntry {
    const Param* param = nullptr;
    std::uint64_t version = 0;
    Tensor wt;
  };

  struct QuantPackEntry {
    const Param* weight = nullptr;
    std::uint64_t weight_version = 0;
    std::uint64_t bias_version = 0;
    gemm::QuantizedPack pack;
  };

  std::deque<Tensor> activations_;
  std::deque<Tensor> scratch_;
  std::deque<PackEntry> packs_;
  std::deque<QuantPackEntry> qpacks_;
  std::deque<std::vector<std::int16_t>> qi16_;
  std::deque<std::vector<std::int32_t>> qi32_;
  std::deque<std::vector<float>> qf32_;
};

class Layer {
 public:
  virtual ~Layer() = default;
  virtual Tensor forward(const Tensor& x) = 0;
  virtual Tensor backward(const Tensor& grad_out) = 0;
  /// Stateless forward: writes the result into `y` (resized as needed),
  /// touching only `ws` for scratch. Must match forward() bit-for-bit.
  virtual void infer(const Tensor& x, Tensor& y, Workspace& ws) const = 0;
  virtual std::vector<Param*> params() { return {}; }
  virtual const char* name() const = 0;
};

/// Fully connected: y = x W^T + b.
class Linear : public Layer {
 public:
  Linear(int in_features, int out_features, util::Rng& rng);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void infer(const Tensor& x, Tensor& y, Workspace& ws) const override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  const char* name() const override { return "Linear"; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  const Param& weight() const { return weight_; }
  const Param& bias() const { return bias_; }
  int in_features() const { return weight_.value.dim(1); }
  int out_features() const { return weight_.value.dim(0); }

 private:
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  Tensor input_;  // cached for backward
};

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void infer(const Tensor& x, Tensor& y, Workspace& ws) const override;
  const char* name() const override { return "ReLU"; }

 private:
  Tensor input_;
};

/// SiLU (x * sigmoid(x)) — the activation of the paper's U-Net backbone.
class SiLU : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void infer(const Tensor& x, Tensor& y, Workspace& ws) const override;
  const char* name() const override { return "SiLU"; }

 private:
  Tensor input_;
};

class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void infer(const Tensor& x, Tensor& y, Workspace& ws) const override;
  const char* name() const override { return "Sigmoid"; }

 private:
  Tensor output_;
};

/// Same-padded 2-D convolution on NCHW tensors (odd kernel), lowered to the
/// blocked GEMM via im2col. The flattened weight [out_ch, in_ch*k*k] matches
/// the im2col column order, so the kernels in nn/gemm.h apply directly.
class Conv2d : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, util::Rng& rng);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void infer(const Tensor& x, Tensor& y, Workspace& ws) const override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  const char* name() const override { return "Conv2d"; }

 private:
  int in_ch_, out_ch_, k_;
  Param weight_;  // [out, in, k, k]
  Param bias_;    // [out]
  Tensor input_;
  Workspace train_ws_;  // training-path scratch: im2col columns reused by backward
};

/// A simple sequential container.
class Sequential {
 public:
  Sequential() = default;
  void add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
    params_dirty_ = true;
  }
  Tensor forward(const Tensor& x);
  /// Propagate the loss gradient back through all layers (accumulates
  /// parameter grads; call zero_grad() between steps).
  Tensor backward(const Tensor& grad_out);
  /// Stateless forward through all layers, ping-ponging between the
  /// workspace's activation buffers. Returns a reference into `ws`, valid
  /// until the next infer() with the same workspace. Bit-identical to
  /// forward(); safe to call concurrently with per-thread workspaces.
  const Tensor& infer(const Tensor& x, Workspace& ws) const;
  /// True when the stack matches the quantizable pattern
  /// (Linear [SiLU|ReLU])* Linear — the shapes infer_quantized can run.
  bool quantizable() const;
  /// Opt-in int8 inference (DESIGN.md "Quantized inference"): dynamic
  /// per-row activation quantization, per-channel weight quantization from
  /// the workspace's version-stamped pack cache, int32 accumulation and a
  /// fused bias+dequant+activation+requant epilogue between layers. NOT
  /// bit-equal to infer() (quantization error ~1e-2 on unit-scale inputs);
  /// bit-deterministic across thread counts and ISAs. Falls back to infer()
  /// when the stack is not quantizable or `x` is not 2-D.
  const Tensor& infer_quantized(const Tensor& x, Workspace& ws) const;
  /// Quantized inference from pre-quantized rows: qx is [n, pin] int16 with
  /// per-row scales rs[n], where pin = gemm::quant_pad of the first
  /// Linear's input width (callers that build int16 features directly skip
  /// the float staging pass entirely). Throws when not quantizable().
  const Tensor& infer_quantized_pre(int n, const std::int16_t* qx, const float* rs,
                                    Workspace& ws) const;
  /// Flattened parameter list; cached (rebuilt only after add()).
  const std::vector<Param*>& params();
  void zero_grad();
  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Param*> params_cache_;
  bool params_dirty_ = true;
};

/// Binary cross-entropy with logits; returns mean loss and writes
/// d(loss)/d(logits) into grad (same shape). targets in {0,1} (or soft).
float bce_with_logits(const Tensor& logits, const Tensor& targets, Tensor& grad);

/// Mean squared error; returns mean loss and writes gradient.
float mse_loss(const Tensor& pred, const Tensor& target, Tensor& grad);

}  // namespace cp::nn
