#pragma once
// Neural-network layers with explicit forward/backward passes.
//
// The Layer interface is stateful per batch: forward() caches whatever the
// corresponding backward() needs. Parameters are exposed as (value, grad)
// pairs for the optimizer. This is all the machinery the MLP denoiser and
// the autoencoder baselines need; Conv2d is provided for the convolutional
// variants and tested against finite differences.

#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace cp::nn {

struct Param {
  Tensor value;
  Tensor grad;
};

class Layer {
 public:
  virtual ~Layer() = default;
  virtual Tensor forward(const Tensor& x) = 0;
  virtual Tensor backward(const Tensor& grad_out) = 0;
  virtual std::vector<Param*> params() { return {}; }
  virtual const char* name() const = 0;
};

/// Fully connected: y = x W^T + b.
class Linear : public Layer {
 public:
  Linear(int in_features, int out_features, util::Rng& rng);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  const char* name() const override { return "Linear"; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  int in_features() const { return weight_.value.dim(1); }
  int out_features() const { return weight_.value.dim(0); }

 private:
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  Tensor input_;  // cached for backward
};

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  const char* name() const override { return "ReLU"; }

 private:
  Tensor input_;
};

/// SiLU (x * sigmoid(x)) — the activation of the paper's U-Net backbone.
class SiLU : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  const char* name() const override { return "SiLU"; }

 private:
  Tensor input_;
};

class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  const char* name() const override { return "Sigmoid"; }

 private:
  Tensor output_;
};

/// Same-padded 2-D convolution on NCHW tensors (odd kernel).
class Conv2d : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, util::Rng& rng);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  const char* name() const override { return "Conv2d"; }

 private:
  int in_ch_, out_ch_, k_;
  Param weight_;  // [out, in, k, k]
  Param bias_;    // [out]
  Tensor input_;
};

/// A simple sequential container.
class Sequential {
 public:
  Sequential() = default;
  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }
  Tensor forward(const Tensor& x);
  /// Propagate the loss gradient back through all layers (accumulates
  /// parameter grads; call zero_grad() between steps).
  Tensor backward(const Tensor& grad_out);
  std::vector<Param*> params();
  void zero_grad();
  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Binary cross-entropy with logits; returns mean loss and writes
/// d(loss)/d(logits) into grad (same shape). targets in {0,1} (or soft).
float bce_with_logits(const Tensor& logits, const Tensor& targets, Tensor& grad);

/// Mean squared error; returns mean loss and writes gradient.
float mse_loss(const Tensor& pred, const Tensor& target, Tensor& grad);

}  // namespace cp::nn
