#pragma once
// Minimal dense float tensor for the from-scratch neural-network library.
// Row-major, shapes up to rank 4 (NCHW for the conv layer). No autograd —
// layers implement explicit backward passes, which keeps the library small,
// debuggable and fast enough for CPU training of the denoisers.

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace cp::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape, float fill = 0.0f);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape), 0.0f); }
  /// He/Kaiming-style normal init with the given stddev.
  static Tensor randn(std::vector<int> shape, util::Rng& rng, float stddev = 1.0f);

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const { return shape_[static_cast<std::size_t>(i)]; }
  int rank() const { return static_cast<int>(shape_.size()); }
  std::size_t numel() const { return data_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D access for [rows, cols] tensors.
  float& at(int r, int c) { return data_[static_cast<std::size_t>(r) * shape_[1] + c]; }
  float at(int r, int c) const { return data_[static_cast<std::size_t>(r) * shape_[1] + c]; }

  /// 4-D access for [n, c, h, w] tensors.
  float& at4(int n, int c, int h, int w);
  float at4(int n, int c, int h, int w) const;

  void fill(float v);
  void add_scaled(const Tensor& other, float scale);  // this += scale * other

  /// Reshape to `shape`, reusing the existing allocation when capacity
  /// permits (std::vector never shrinks). Existing element values are not
  /// meaningful afterwards; callers overwrite. This is what keeps the
  /// inference workspaces allocation-free once warm.
  void resize(std::vector<int> shape);
  /// 2-D fast path for resize: no shape-vector construction on the caller
  /// side, so steady-state calls are allocation-free.
  void resize(int rows, int cols);
  /// Match `other`'s shape (allocation-free once capacity suffices).
  void resize_like(const Tensor& other);

  std::string shape_string() const;

  /// True if shapes match exactly.
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// y = x @ w^T + b, x:[n,in], w:[out,in], b:[out] -> y:[n,out].
/// Dispatches to the blocked vector kernel in nn/gemm.h when the shape
/// profits; bit-identical to the naive loop for every shape.
Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor& b);

}  // namespace cp::nn
