#include "nn/tensor.h"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace cp::nn {

Tensor::Tensor(std::vector<int> shape, float fill) : shape_(std::move(shape)) {
  std::size_t n = 1;
  for (int d : shape_) {
    if (d < 0) throw std::invalid_argument("Tensor: negative dimension");
    n *= static_cast<std::size_t>(d);
  }
  data_.assign(n, fill);
}

Tensor Tensor::randn(std::vector<int> shape, util::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

float& Tensor::at4(int n, int c, int h, int w) {
  return data_[((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(int n, int c, int h, int w) const {
  return data_[((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::add_scaled(const Tensor& other, float scale) {
  if (!same_shape(other)) throw std::invalid_argument("Tensor::add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ',';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor& b) {
  if (x.rank() != 2 || w.rank() != 2 || b.rank() != 1) {
    throw std::invalid_argument("linear_forward: bad ranks");
  }
  const int n = x.dim(0);
  const int in = x.dim(1);
  const int out = w.dim(0);
  if (w.dim(1) != in || b.dim(0) != out) {
    throw std::invalid_argument("linear_forward: shape mismatch");
  }
  Tensor y({n, out});
  for (int i = 0; i < n; ++i) {
    const float* xi = x.data() + static_cast<std::size_t>(i) * in;
    float* yi = y.data() + static_cast<std::size_t>(i) * out;
    for (int o = 0; o < out; ++o) {
      const float* wo = w.data() + static_cast<std::size_t>(o) * in;
      float acc = b[static_cast<std::size_t>(o)];
      for (int k = 0; k < in; ++k) acc += xi[k] * wo[k];
      yi[o] = acc;
    }
  }
  return y;
}

}  // namespace cp::nn
