#include "nn/tensor.h"

#include <numeric>
#include <sstream>
#include <stdexcept>

#include "nn/gemm.h"

namespace cp::nn {

Tensor::Tensor(std::vector<int> shape, float fill) : shape_(std::move(shape)) {
  std::size_t n = 1;
  for (int d : shape_) {
    if (d < 0) throw std::invalid_argument("Tensor: negative dimension");
    n *= static_cast<std::size_t>(d);
  }
  data_.assign(n, fill);
}

Tensor Tensor::randn(std::vector<int> shape, util::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

float& Tensor::at4(int n, int c, int h, int w) {
  return data_[((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(int n, int c, int h, int w) const {
  return data_[((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::resize(std::vector<int> shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d < 0) throw std::invalid_argument("Tensor::resize: negative dimension");
    n *= static_cast<std::size_t>(d);
  }
  shape_ = std::move(shape);
  data_.resize(n);
}

void Tensor::resize(int rows, int cols) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("Tensor::resize: negative dimension");
  if (shape_.size() == 2) {
    shape_[0] = rows;
    shape_[1] = cols;
  } else {
    shape_.assign({rows, cols});
  }
  data_.resize(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
}

void Tensor::resize_like(const Tensor& other) {
  if (shape_ != other.shape_) shape_ = other.shape_;
  data_.resize(other.data_.size());
}

void Tensor::add_scaled(const Tensor& other, float scale) {
  if (!same_shape(other)) throw std::invalid_argument("Tensor::add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ',';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor& b) {
  if (x.rank() != 2 || w.rank() != 2 || b.rank() != 1) {
    throw std::invalid_argument("linear_forward: bad ranks");
  }
  const int n = x.dim(0);
  const int in = x.dim(1);
  const int out = w.dim(0);
  if (w.dim(1) != in || b.dim(0) != out) {
    throw std::invalid_argument("linear_forward: shape mismatch");
  }
  Tensor y({n, out});
  if (out >= gemm::kVecMinOut) {
    std::vector<float> wt(static_cast<std::size_t>(in) * out);
    gemm::pack_wt(in, out, w.data(), wt.data());
    gemm::forward_packed(n, in, out, x.data(), wt.data(), b.data(), y.data());
  } else {
    gemm::forward_naive(n, in, out, x.data(), w.data(), b.data(), y.data());
  }
  return y;
}

}  // namespace cp::nn
