#include "nn/optim.h"

#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "nn/serialize.h"

namespace cp::nn {

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2, float eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.push_back(Tensor::zeros(p->value.shape()));
    v_.push_back(Tensor::zeros(p->value.shape()));
  }
}

float Adam::clip_grad_norm(float max_norm) {
  double sq = 0.0;
  for (Param* p : params_) {
    for (std::size_t i = 0; i < p->grad.numel(); ++i) {
      sq += static_cast<double>(p->grad[i]) * p->grad[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Param* p : params_) {
      for (std::size_t i = 0; i < p->grad.numel(); ++i) p->grad[i] *= scale;
    }
  }
  return norm;
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t j = 0; j < params_.size(); ++j) {
    Param* p = params_[j];
    Tensor& m = m_[j];
    Tensor& v = v_[j];
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      const float g = p->grad[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      p->value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    p->bump_version();  // invalidate packed-weight caches
  }
}

void Adam::save_state(std::ostream& os) const {
  const std::int64_t t = t_;
  os.write(reinterpret_cast<const char*>(&t), sizeof(t));
  const std::uint32_t count = static_cast<std::uint32_t>(params_.size());
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  if (!os) throw std::runtime_error("Adam::save_state: stream write failed");
  for (const Tensor& m : m_) write_tensor(os, m);
  for (const Tensor& v : v_) write_tensor(os, v);
}

void Adam::load_state(std::istream& is) {
  std::int64_t t = 0;
  std::uint32_t count = 0;
  is.read(reinterpret_cast<char*>(&t), sizeof(t));
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!is || t < 0 || count != params_.size()) {
    throw std::runtime_error("Adam::load_state: corrupt or mismatched state");
  }
  std::vector<Tensor> m, v;
  m.reserve(count);
  v.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) m.push_back(read_tensor(is));
  for (std::uint32_t i = 0; i < count; ++i) v.push_back(read_tensor(is));
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!m[i].same_shape(params_[i]->value) || !v[i].same_shape(params_[i]->value)) {
      throw std::runtime_error("Adam::load_state: moment shape mismatch");
    }
  }
  m_ = std::move(m);
  v_ = std::move(v);
  t_ = t;
}

void Sgd::step() {
  for (Param* p : params_) {
    for (std::size_t i = 0; i < p->value.numel(); ++i) p->value[i] -= lr_ * p->grad[i];
    p->bump_version();  // invalidate packed-weight caches
  }
}

}  // namespace cp::nn
