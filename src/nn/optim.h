#pragma once
// Optimizers. Adam with the paper's training hyper-parameters as defaults
// (lr 2e-4, standard betas) plus gradient-norm clipping (the paper clips at
// 1.0).

#include <iosfwd>
#include <vector>

#include "nn/layers.h"

namespace cp::nn {

class Adam {
 public:
  explicit Adam(std::vector<Param*> params, float lr = 2e-4f, float beta1 = 0.9f,
                float beta2 = 0.999f, float eps = 1e-8f);

  /// Apply one update from the accumulated grads (then caller zero_grads).
  void step();

  /// Global-norm gradient clipping; call before step(). Returns the norm.
  float clip_grad_norm(float max_norm);

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  long long steps() const { return t_; }

  /// Checkpoint support (diffusion::Trainer): serialize / restore the first
  /// and second moments plus the step count. load_state throws
  /// std::runtime_error when the stream does not match this optimizer's
  /// parameter shapes (corrupt or mismatched checkpoint).
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  float lr_, beta1_, beta2_, eps_;
  long long t_ = 0;
};

/// Plain SGD, used by the linear-autoencoder baseline.
class Sgd {
 public:
  explicit Sgd(std::vector<Param*> params, float lr = 1e-2f) : params_(std::move(params)), lr_(lr) {}
  void step();

 private:
  std::vector<Param*> params_;
  float lr_;
};

}  // namespace cp::nn
