// chatpattern_serve — serving front-end of the repo (docs/SERVING.md).
//
// Four modes sharing one NDJSON protocol (one JSON object per line):
//
//   (default)        Offline trace replay through an in-process
//                    serve::Server. Emits one result line per input line in
//                    input order. Malformed input lines yield a "rejected"
//                    result line (count parity), are reported to stderr
//                    with their line number, and make the exit code 1.
//   --listen         Multi-process TCP front-end: binds --host/--port,
//                    forks --procs worker processes (re-exec of this
//                    binary), supervises them (heartbeats, request
//                    watchdog, exponential-backoff restarts) and routes
//                    client request lines to consistent-hash shards. Runs
//                    until a {"cmd":"shutdown"} line.
//   --worker-fd K    Internal: worker-process mode, spawned by --listen.
//                    Serves its shard over the inherited channel fd K.
//   --connect-port P Replay a trace over TCP against a running --listen
//                    front-end (pipelined over --conns connections) and
//                    print the same combined-hash summary as the offline
//                    replay — the cross-process determinism audit.
//
// Offline replay / worker flags (on top of bench/common.h's --seed,
// --train, --draws, --outdir, --manifest, --csv):
//   --trace FILE      NDJSON request trace ("-" = stdin; default "-")
//   --out FILE        result NDJSON destination (default: stdout)
//   --workers N       in-process fan-out width (1 = serial; default 1)
//   --queue N         admission queue capacity (default 64)
//   --cache N         result-cache entries (default 256)
//   --max-batch N     microbatch size cap in requests (default 8)
//   --max-wait-us N   microbatch fill wait (default 2000)
//
// --listen flags:
//   --host H --port P (port 0 = ephemeral), --procs N (workers; default 2),
//   --journal FILE (request ledger), --port-file FILE (bound port, written
//   once ready to accept), --state-file FILE (live {port,pid,workers}
//   JSON, atomically rewritten on every membership change — the chaos
//   harness reads worker pids here), --max-inflight N, --tenant-quota N,
//   --idle-timeout-ms N, --hb-timeout-ms N, --watchdog-ms N,
//   --startup-timeout-ms N, --drain-timeout-ms N, --worker-hb-ms N.
//   Worker processes inherit --seed/--train/--draws/--workers/--queue/
//   --cache/--max-batch/--max-wait-us.
//
// --connect-port flags: --connect-host H (default 127.0.0.1), --conns N,
//   --replay-timeout-ms N, plus --trace/--out as in replay mode.
//
// Exit codes: 0 = success; 1 = trace contained malformed lines (replay
// modes); 2 = cannot read trace / write outputs / bind; 3 = TCP replay did
// not complete (connection lost or timed out).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "serve/client.h"
#include "serve/net_server.h"
#include "serve/server.h"
#include "serve/worker.h"
#include "util/cli.h"
#include "util/fs.h"
#include "util/net.h"
#include "util/subprocess.h"

using namespace cp;

namespace {

/// Shared server-config flags (offline replay and worker mode alike).
serve::ServerConfig server_config_from_flags(const util::CliFlags& flags) {
  serve::ServerConfig config;
  config.workers = static_cast<int>(flags.get_int("workers", 1));
  config.queue_capacity = static_cast<std::size_t>(flags.get_int("queue", 64));
  config.cache_entries = static_cast<std::size_t>(flags.get_int("cache", 256));
  config.batch.max_batch_requests = static_cast<int>(flags.get_int("max-batch", 8));
  config.batch.max_wait_us = flags.get_int("max-wait-us", 2000);
  return config;
}

/// Read the --trace input (file or stdin) into lines. Returns false on an
/// unreadable file.
bool read_trace(const std::string& trace_path, std::vector<std::string>* lines) {
  std::ifstream trace_file;
  std::istream* trace = &std::cin;
  if (trace_path != "-") {
    trace_file.open(trace_path);
    if (!trace_file) {
      std::fprintf(stderr, "error: cannot open trace file '%s'\n", trace_path.c_str());
      return false;
    }
    trace = &trace_file;
  }
  std::string line;
  while (std::getline(*trace, line)) lines->push_back(line);
  return true;
}

bool blank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

int run_replay_mode(int argc, char** argv) {
  bench::Env env = bench::make_env(argc, argv, /*default_samples=*/0);
  util::CliFlags flags(argc, argv);
  const std::string trace_path = flags.get("trace", "-");
  const std::string out_path = flags.get("out", "");

  serve::ServerConfig config = server_config_from_flags(flags);

  std::vector<std::string> trace_lines;
  if (!read_trace(trace_path, &trace_lines)) return 2;

  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (!out_path.empty()) {
    out_file = bench::open_output(bench::out_path(env, out_path));
    out = &out_file;
  }

  const std::vector<const legalize::Legalizer*> legalizers = {&env.chat->legalizer(0),
                                                              &env.chat->legalizer(1)};
  // Degraded-mode fallback: when the cascade sampler's retry budget is
  // exhausted (injected or real faults), requests are served from the
  // single-resolution fine sampler and marked degraded instead of failing.
  config.fallback = &env.chat->fine_sampler();
  serve::Server server(env.chat->sampler(), legalizers, config);

  // One slot per input line, in input order. Parse failures complete
  // immediately; valid lines hold the future of their submission.
  struct Slot {
    std::string id;
    bool submitted = false;
    std::future<serve::GenerationResult> future;
    serve::GenerationResult immediate;  // used when !submitted
  };
  std::vector<Slot> slots;
  long long line_no = 0;
  long long malformed = 0;
  for (const std::string& line : trace_lines) {
    ++line_no;
    if (blank(line)) continue;
    Slot slot;
    serve::ParsedRequest parsed = serve::parse_request_line(line);
    if (!parsed.ok) {
      obs::count("serve/rejected_parse");
      ++malformed;
      // Strict-input contract: every malformed line is named to stderr and
      // fails the replay's exit code — but still yields a result line, so
      // result count always equals request count.
      std::fprintf(stderr, "[serve] malformed line %lld: %s\n", line_no, parsed.error.c_str());
      slot.id = util::format("line-%lld", line_no);
      slot.immediate.id = slot.id;
      slot.immediate.status = serve::RequestStatus::kRejected;
      slot.immediate.reason = "parse_error: " + parsed.error;
      slots.push_back(std::move(slot));
      continue;
    }
    slot.id = parsed.request.id;
    serve::Server::Submitted submitted = server.submit(std::move(parsed.request));
    slot.submitted = true;
    slot.future = std::move(submitted.result);
    slots.push_back(std::move(slot));
  }

  // Collect in input order; each get() blocks until that request completes.
  std::uint64_t combined = 1469598103934665603ULL;
  auto fnv = [&combined](std::uint64_t v) {
    combined ^= v;
    combined *= 1099511628211ULL;
  };
  long long ok = 0, incomplete = 0, rejected = 0, expired = 0, cancelled = 0, failed = 0;
  long long cache_hits = 0, deduped = 0, degraded = 0;
  for (Slot& slot : slots) {
    serve::GenerationResult result =
        slot.submitted ? slot.future.get() : std::move(slot.immediate);
    switch (result.status) {
      case serve::RequestStatus::kOk: ++ok; break;
      case serve::RequestStatus::kIncomplete: ++incomplete; break;
      case serve::RequestStatus::kRejected: ++rejected; break;
      case serve::RequestStatus::kDeadlineExpired: ++expired; break;
      case serve::RequestStatus::kCancelled: ++cancelled; break;
      case serve::RequestStatus::kFailed: ++failed; break;
    }
    if (result.cache_hit) ++cache_hits;
    if (result.deduped) ++deduped;
    if (result.degraded) ++degraded;
    fnv(result.library_hash());
    (*out) << result.to_json().dump() << "\n";
  }
  out->flush();
  server.shutdown();

  std::fprintf(stderr,
               "[serve] replayed %zu requests: ok %lld, incomplete %lld, rejected %lld, "
               "expired %lld, cancelled %lld, failed %lld; cache hits %lld, deduped %lld, "
               "degraded %lld\n",
               slots.size(), ok, incomplete, rejected, expired, cancelled, failed,
               cache_hits, deduped, degraded);
  std::fprintf(stderr, "[serve] combined_hash %016llx workers %d\n",
               static_cast<unsigned long long>(combined), config.workers);
  if (malformed > 0) {
    std::fprintf(stderr, "[serve] %lld malformed trace line(s); exiting nonzero\n", malformed);
  }

  env.manifest.metrics["requests"] = static_cast<long long>(slots.size());
  env.manifest.metrics["ok"] = ok;
  env.manifest.metrics["incomplete"] = incomplete;
  env.manifest.metrics["rejected"] = rejected;
  env.manifest.metrics["failed"] = failed;
  env.manifest.metrics["degraded"] = degraded;
  env.manifest.metrics["cache_hits"] = cache_hits;
  env.manifest.metrics["deduped"] = deduped;
  env.manifest.metrics["malformed"] = malformed;
  env.manifest.metrics["workers"] = config.workers;
  env.manifest.metrics["combined_hash"] =
      util::format("%016llx", static_cast<unsigned long long>(combined));
  bench::write_manifest(env);
  return malformed > 0 ? 1 : 0;
}

int run_worker_mode(int argc, char** argv) {
  bench::Env env = bench::make_env(argc, argv, /*default_samples=*/0);
  util::CliFlags flags(argc, argv);
  serve::ServerConfig config = server_config_from_flags(flags);
  const std::vector<const legalize::Legalizer*> legalizers = {&env.chat->legalizer(0),
                                                              &env.chat->legalizer(1)};
  config.fallback = &env.chat->fine_sampler();

  serve::WorkerOptions options;
  options.channel_fd = static_cast<int>(flags.get_int("worker-fd", -1));
  options.shard = static_cast<int>(flags.get_int("shard", 0));
  options.heartbeat_ms = static_cast<int>(flags.get_int("worker-hb-ms", 200));
  if (options.channel_fd < 0) {
    std::fprintf(stderr, "error: --worker-fd requires a valid fd\n");
    return 2;
  }
  return serve::run_worker(env.chat->sampler(), legalizers, config, options);
}

int run_listen_mode(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  serve::NetServerConfig config;
  config.host = flags.get("host", "127.0.0.1");
  config.port = static_cast<int>(flags.get_int("port", 0));
  config.max_inflight = flags.get_int("max-inflight", 16384);
  config.tenant_quota = flags.get_int("tenant-quota", 0);
  config.idle_timeout_ms = static_cast<int>(flags.get_int("idle-timeout-ms", 60000));
  config.drain_timeout_ms = static_cast<int>(flags.get_int("drain-timeout-ms", 15000));
  config.journal_path = flags.get("journal", "");
  config.state_file = flags.get("state-file", "");
  config.supervisor.workers = static_cast<int>(flags.get_int("procs", 2));
  config.supervisor.heartbeat_timeout_ms =
      static_cast<int>(flags.get_int("hb-timeout-ms", 2000));
  config.supervisor.startup_timeout_ms =
      static_cast<int>(flags.get_int("startup-timeout-ms", 120000));
  config.supervisor.watchdog_ms = static_cast<int>(flags.get_int("watchdog-ms", 20000));
  config.supervisor.backoff_base_ms = static_cast<int>(flags.get_int("backoff-base-ms", 100));
  config.supervisor.backoff_max_ms = static_cast<int>(flags.get_int("backoff-max-ms", 5000));
  config.supervisor.min_uptime_ms = static_cast<int>(flags.get_int("min-uptime-ms", 5000));

  // Worker spawn command: this binary, re-exec'd with the training and
  // in-worker serving knobs forwarded verbatim. The pool appends
  // --worker-fd/--shard per spawn; CHATPATTERN_FAULTS reaches workers via
  // the inherited environment.
  const std::string self = util::self_exe_path(argv[0]);
  config.worker_argv = {self};
  for (const char* flag :
       {"seed", "train", "draws", "workers", "queue", "cache", "max-batch", "max-wait-us",
        "worker-hb-ms"}) {
    if (flags.has(flag)) {
      config.worker_argv.push_back(std::string("--") + flag);
      config.worker_argv.push_back(flags.get(flag, ""));
    }
  }

  try {
    serve::NetServer server(config);
    const std::string port_file = flags.get("port-file", "");
    if (!port_file.empty()) {
      util::atomic_write_file(port_file, std::to_string(server.port()) + "\n");
    }
    std::fprintf(stderr, "[serve] listening on %s:%d with %d worker process(es)\n",
                 config.host.c_str(), server.port(), config.supervisor.workers);
    const int rc = server.run();
    std::fprintf(stderr,
                 "[serve] front-end done: accepted %lld, completed %lld, outstanding %lld\n",
                 server.ledger().accepted(), server.ledger().completed(),
                 server.ledger().outstanding());
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

int run_connect_mode(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  const std::string trace_path = flags.get("trace", "-");
  const std::string out_path = flags.get("out", "");

  std::vector<std::string> raw;
  if (!read_trace(trace_path, &raw)) return 2;
  std::vector<std::string> lines;
  for (const std::string& line : raw) {
    if (!blank(line)) lines.push_back(line);
  }

  serve::ReplayClientOptions options;
  options.host = flags.get("connect-host", "127.0.0.1");
  options.port = static_cast<int>(flags.get_int("connect-port", 0));
  options.connections = static_cast<int>(flags.get_int("conns", 4));
  options.overall_timeout_ms = static_cast<int>(flags.get_int("replay-timeout-ms", 600000));

  const serve::ReplayReport report = serve::replay_over_tcp(lines, options);

  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (!out_path.empty()) {
    out_file = bench::open_output(out_path);
    out = &out_file;
  }
  long long ok = 0, failed = 0, rejected = 0, other = 0, degraded = 0, cache_hits = 0;
  for (const auto& o : report.outcomes) {
    if (o.status == "ok") ++ok;
    else if (o.status == "failed") ++failed;
    else if (o.status == "rejected") ++rejected;
    else ++other;
    if (o.degraded) ++degraded;
    if (o.cache_hit) ++cache_hits;
    util::Json j;
    j["id"] = o.id;
    j["status"] = o.status;
    j["answered"] = o.answered;
    j["library_hash"] = util::format("%016llx",
                                     static_cast<unsigned long long>(o.library_hash));
    if (o.degraded) j["degraded"] = true;
    if (o.cache_hit) j["cache_hit"] = true;
    j["latency_ms"] = o.latency_ms;
    (*out) << j.dump() << "\n";
  }
  out->flush();

  std::fprintf(stderr,
               "[serve] tcp replay %lld requests: answered %lld, ok %lld, failed %lld, "
               "rejected %lld, other %lld; cache hits %lld, degraded %lld\n",
               report.sent, report.answered, ok, failed, rejected, other, cache_hits,
               degraded);
  std::fprintf(stderr, "[serve] combined_hash %016llx conns %d\n",
               static_cast<unsigned long long>(report.combined_hash), options.connections);
  if (!report.ok) {
    std::fprintf(stderr, "error: tcp replay incomplete: %s\n", report.error.c_str());
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  if (flags.has("worker-fd")) return run_worker_mode(argc, argv);
  if (flags.has("listen")) return run_listen_mode(argc, argv);
  if (flags.has("connect-port")) return run_connect_mode(argc, argv);
  return run_replay_mode(argc, argv);
}
