// chatpattern_serve — NDJSON trace replay front-end for serve::Server
// (docs/SERVING.md).
//
// Reads one GenerationRequest JSON object per line from --trace (a file, or
// "-" for stdin), submits every line through the serving layer with blocking
// admission (backpressure), and emits one NDJSON result line per input line
// *in input order* — malformed lines yield a "rejected" result line rather
// than aborting the replay, so result count always equals request count.
//
// The offline-friendly twin of a network front-end: the protocol is exactly
// what a socket server would speak, but replaying files keeps the binary
// runnable in CI and lets the determinism audit diff whole runs. The final
// summary prints a combined library hash over every payload in input order;
// replaying the same trace with --workers 1 and --workers N must agree
// bit-for-bit (tested by scripts/run_serving_smoke.sh and
// tests/serve/server_test.cpp).
//
// Flags (on top of the shared bench/common.h set: --seed, --train, --outdir,
// --manifest, --csv):
//   --trace FILE      NDJSON request trace ("-" = stdin; default "-")
//   --out FILE        result NDJSON destination (default: stdout)
//   --workers N       fan-out width (1 = serial; default 1)
//   --queue N         admission queue capacity (default 64)
//   --cache N         result-cache entries (default 256)
//   --max-batch N     microbatch size cap in requests (default 8)
//   --max-wait-us N   microbatch fill wait (default 2000)
//
// Exit codes: 0 = trace fully replayed; 2 = cannot read trace / write
// outputs (matching the bench harness convention).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "serve/server.h"
#include "util/cli.h"

using namespace cp;

int main(int argc, char** argv) {
  bench::Env env = bench::make_env(argc, argv, /*default_samples=*/0);
  util::CliFlags flags(argc, argv);
  const std::string trace_path = flags.get("trace", "-");
  const std::string out_path = flags.get("out", "");

  serve::ServerConfig config;
  config.workers = static_cast<int>(flags.get_int("workers", 1));
  config.queue_capacity = static_cast<std::size_t>(flags.get_int("queue", 64));
  config.cache_entries = static_cast<std::size_t>(flags.get_int("cache", 256));
  config.batch.max_batch_requests = static_cast<int>(flags.get_int("max-batch", 8));
  config.batch.max_wait_us = flags.get_int("max-wait-us", 2000);

  std::ifstream trace_file;
  std::istream* trace = &std::cin;
  if (trace_path != "-") {
    trace_file.open(trace_path);
    if (!trace_file) {
      std::fprintf(stderr, "error: cannot open trace file '%s'\n", trace_path.c_str());
      return 2;
    }
    trace = &trace_file;
  }

  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (!out_path.empty()) {
    out_file = bench::open_output(bench::out_path(env, out_path));
    out = &out_file;
  }

  const std::vector<const legalize::Legalizer*> legalizers = {&env.chat->legalizer(0),
                                                              &env.chat->legalizer(1)};
  // Degraded-mode fallback: when the cascade sampler's retry budget is
  // exhausted (injected or real faults), requests are served from the
  // single-resolution fine sampler and marked degraded instead of failing.
  config.fallback = &env.chat->fine_sampler();
  serve::Server server(env.chat->sampler(), legalizers, config);

  // One slot per input line, in input order. Parse failures complete
  // immediately; valid lines hold the future of their submission.
  struct Slot {
    std::string id;
    bool submitted = false;
    std::future<serve::GenerationResult> future;
    serve::GenerationResult immediate;  // used when !submitted
  };
  std::vector<Slot> slots;
  std::string line;
  long long line_no = 0;
  while (std::getline(*trace, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;  // blank
    Slot slot;
    serve::ParsedRequest parsed = serve::parse_request_line(line);
    if (!parsed.ok) {
      obs::count("serve/rejected_parse");
      slot.id = util::format("line-%lld", line_no);
      slot.immediate.id = slot.id;
      slot.immediate.status = serve::RequestStatus::kRejected;
      slot.immediate.reason = "parse_error: " + parsed.error;
      slots.push_back(std::move(slot));
      continue;
    }
    slot.id = parsed.request.id;
    serve::Server::Submitted submitted = server.submit(std::move(parsed.request));
    slot.submitted = true;
    slot.future = std::move(submitted.result);
    slots.push_back(std::move(slot));
  }

  // Collect in input order; each get() blocks until that request completes.
  std::uint64_t combined = 1469598103934665603ULL;
  auto fnv = [&combined](std::uint64_t v) {
    combined ^= v;
    combined *= 1099511628211ULL;
  };
  long long ok = 0, incomplete = 0, rejected = 0, expired = 0, cancelled = 0, failed = 0;
  long long cache_hits = 0, deduped = 0, degraded = 0;
  for (Slot& slot : slots) {
    serve::GenerationResult result =
        slot.submitted ? slot.future.get() : std::move(slot.immediate);
    switch (result.status) {
      case serve::RequestStatus::kOk: ++ok; break;
      case serve::RequestStatus::kIncomplete: ++incomplete; break;
      case serve::RequestStatus::kRejected: ++rejected; break;
      case serve::RequestStatus::kDeadlineExpired: ++expired; break;
      case serve::RequestStatus::kCancelled: ++cancelled; break;
      case serve::RequestStatus::kFailed: ++failed; break;
    }
    if (result.cache_hit) ++cache_hits;
    if (result.deduped) ++deduped;
    if (result.degraded) ++degraded;
    fnv(result.library_hash());
    (*out) << result.to_json().dump() << "\n";
  }
  out->flush();
  server.shutdown();

  std::fprintf(stderr,
               "[serve] replayed %zu requests: ok %lld, incomplete %lld, rejected %lld, "
               "expired %lld, cancelled %lld, failed %lld; cache hits %lld, deduped %lld, "
               "degraded %lld\n",
               slots.size(), ok, incomplete, rejected, expired, cancelled, failed,
               cache_hits, deduped, degraded);
  std::fprintf(stderr, "[serve] combined_hash %016llx workers %d\n",
               static_cast<unsigned long long>(combined), config.workers);

  env.manifest.metrics["requests"] = static_cast<long long>(slots.size());
  env.manifest.metrics["ok"] = ok;
  env.manifest.metrics["incomplete"] = incomplete;
  env.manifest.metrics["rejected"] = rejected;
  env.manifest.metrics["failed"] = failed;
  env.manifest.metrics["degraded"] = degraded;
  env.manifest.metrics["cache_hits"] = cache_hits;
  env.manifest.metrics["deduped"] = deduped;
  env.manifest.metrics["workers"] = config.workers;
  env.manifest.metrics["combined_hash"] =
      util::format("%016llx", static_cast<unsigned long long>(combined));
  bench::write_manifest(env);
  return 0;
}
