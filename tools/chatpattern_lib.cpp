// chatpattern_lib — command-line manager for persistent pattern libraries
// (docs/LIBRARY.md).
//
// Subcommands (first positional argument):
//   fixture --out FILE [--structures N] [--motifs M]
//       Write a deterministic multi-structure GDS fixture whose structures
//       repeat M distinct motifs — cross-structure duplicates by
//       construction, so an import exercises the dedup index. Used by
//       scripts/check_pattlib.sh and handy for a quick local walkthrough.
//   import --store FILE --gds FILE [--window N] [--stride N] [--style TAG]
//          [--layer L] [--min-density D] [--max-density D] [--max-windows N]
//       Stream the GDS through the windowing pass into the store (bounded
//       memory; see io/gds_stream.h). Prints one "imported: k=v ..." line.
//   query --store FILE [--style TAG] [--source-contains S] [--layer L]
//         [--drc unknown|clean|violating] [--min-density D] [--max-density D]
//         [--limit N]
//       Print one line per matching pattern, in insertion order
//       (deterministic across runs and re-opens).
//   stats --store FILE
//       Store-level counters plus per-style and per-layer histograms.
//   export --store FILE (--gds OUT | --pbm DIR) [query flags]
//       Export the query's matches as a GDS library or a PBM directory.
//
// Exit codes: 0 = success, 1 = usage error, 2 = runtime failure (corrupt
// file, I/O error) with the reason on stderr.

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/gds.h"
#include "pattlib/ingest.h"
#include "pattlib/pattern_store.h"
#include "util/cli.h"
#include "util/strings.h"

using namespace cp;

namespace {

int usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s <fixture|import|query|stats|export> [flags]\n"
               "see the header of tools/chatpattern_lib.cpp or docs/LIBRARY.md\n",
               program);
  return 1;
}

/// Deterministic fixture: `structures` structures, structure s carrying
/// motif s %% `motifs` twice (at x = 0 and x = 4096), every motif a distinct
/// topology (different bar count). Importing with the default 2048 nm
/// window yields exactly `motifs` unique patterns.
io::GdsLibrary make_fixture(int structures, int motifs) {
  io::GdsLibrary lib;
  lib.name = "PATTLIB_FIXTURE";
  for (int s = 0; s < structures; ++s) {
    io::GdsStructure str;
    str.name = util::format("CELL_%03d", s);
    str.layer = 1;
    const int m = s % motifs;
    const int bars = 2 + m;
    for (const geometry::Coord base : {geometry::Coord{0}, geometry::Coord{4096}}) {
      for (int j = 0; j < bars; ++j) {
        const geometry::Coord y0 = 128 + static_cast<geometry::Coord>(j) * 256;
        const geometry::Coord x1 = base + 1024 + ((m + j) % 3) * 256;
        str.rects.push_back(geometry::Rect{base, y0, x1, y0 + 128});
      }
    }
    lib.structures.push_back(std::move(str));
  }
  return lib;
}

pattlib::Query query_from_flags(const util::CliFlags& flags) {
  pattlib::Query q;
  q.style_tag = flags.get("style", "");
  q.source_contains = flags.get("source-contains", "");
  q.layer = static_cast<int>(flags.get_int("layer", -1));
  const std::string drc = flags.get("drc", "");
  if (drc == "unknown") q.drc = 0;
  else if (drc == "clean") q.drc = 1;
  else if (drc == "violating") q.drc = 2;
  else if (!drc.empty()) throw std::invalid_argument("bad --drc '" + drc + "'");
  q.min_density = flags.get_double("min-density", 0.0);
  q.max_density = flags.get_double("max-density", 1.0);
  q.limit = flags.get_int("limit", 0);
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliFlags flags(argc, argv);
  if (flags.positional().empty()) return usage(argv[0]);
  const std::string cmd = flags.positional().front();

  try {
    if (cmd == "fixture") {
      const std::string out = flags.get("out", "");
      if (out.empty()) return usage(argv[0]);
      const io::GdsLibrary lib = make_fixture(static_cast<int>(flags.get_int("structures", 6)),
                                              static_cast<int>(flags.get_int("motifs", 3)));
      io::write_gds(out, lib);
      std::printf("fixture: structures=%zu out=%s\n", lib.structures.size(), out.c_str());
      return 0;
    }

    const std::string store_path = flags.get("store", "");
    if (store_path.empty()) return usage(argv[0]);

    if (cmd == "import") {
      const std::string gds = flags.get("gds", "");
      if (gds.empty()) return usage(argv[0]);
      pattlib::PatternStore store(store_path);
      pattlib::IngestConfig cfg;
      cfg.window.window_nm = flags.get_int("window", 2048);
      cfg.window.stride_nm = flags.get_int("stride", 0);
      cfg.window.min_density = flags.get_double("min-density", 0.0);
      cfg.window.max_density = flags.get_double("max-density", 1.0);
      cfg.style_tag = flags.get("style", "ingested");
      cfg.layer = static_cast<int>(flags.get_int("layer", -1));
      cfg.max_windows = flags.get_int("max-windows", 0);
      const pattlib::IngestStats st = pattlib::ingest_gds(gds, store, cfg);
      std::printf(
          "imported: structures=%lld rects=%lld windows_seen=%lld windows_kept=%lld "
          "added=%lld deduped=%lld bytes=%llu store_size=%zu\n",
          st.structures, st.rects, st.windows_seen, st.windows_kept, st.added, st.deduped,
          static_cast<unsigned long long>(st.bytes_streamed), store.size());
      return 0;
    }

    if (cmd == "query") {
      const pattlib::PatternStore store(store_path);
      for (const std::uint64_t id : store.query(query_from_flags(flags))) {
        const pattlib::StoredPattern& e = store.at(id);
        std::printf("%llu hash=%016llx %dx%d density=%.4f style=%s layer=%d drc=%s src=%s:%s\n",
                    static_cast<unsigned long long>(id),
                    static_cast<unsigned long long>(e.topology_hash), e.pattern.topology.rows(),
                    e.pattern.topology.cols(), e.meta.density, e.meta.style_tag.c_str(),
                    e.meta.layer, pattlib::to_string(e.meta.drc), e.meta.source.c_str(),
                    e.meta.structure.c_str());
      }
      return 0;
    }

    if (cmd == "stats") {
      const pattlib::PatternStore store(store_path);
      const pattlib::StoreStats st = store.stats();
      std::printf("patterns=%zu file_bytes=%llu recovered_bytes=%llu\n", st.patterns,
                  static_cast<unsigned long long>(st.file_bytes),
                  static_cast<unsigned long long>(st.recovered_bytes));
      for (const auto& [style, n] : st.by_style) std::printf("style %s %zu\n", style.c_str(), n);
      for (const auto& [layer, n] : st.by_layer) std::printf("layer %d %zu\n", layer, n);
      return 0;
    }

    if (cmd == "export") {
      const pattlib::PatternStore store(store_path);
      const std::vector<std::uint64_t> ids = store.query(query_from_flags(flags));
      const std::string gds = flags.get("gds", "");
      const std::string pbm = flags.get("pbm", "");
      if (gds.empty() == pbm.empty()) return usage(argv[0]);  // exactly one target
      const int written = gds.empty() ? store.export_pbm(pbm, ids) : store.export_gds(gds, ids);
      std::printf("exported: patterns=%zu files=%d\n", ids.size(), written);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage(argv[0]);
}
