#!/usr/bin/env bash
# Quantized-inference gate (docs in DESIGN.md "Quantized inference",
# EXPERIMENTS.md "denoiser inference bench"): one command that proves the
# three claims the vectorized/int8 tier stands on, by running the dedicated
# gtest suites in dependency order:
#
#   1. kernel contracts — the 16-wide AVX2 fp32 twin is bit-identical to the
#      portable kernel, the int8 scalar and AVX2 kernels agree bit-for-bit,
#      and a warm workspace never serves a stale int8 weight pack after an
#      optimizer step / load_params / manual version bump (nn_test, filtered
#      to the gemm + infer suites);
#   2. statistical equivalence — sampling through the int8 tier keeps
#      density / complexity / diversity within the documented thresholds of
#      fp32 sampling on the same trained MLP denoiser, is bit-deterministic,
#      and both opt-in routes (MlpConfig::quantized, PrecisionScope) select
#      the same kernels (quant_quality_test);
#   3. serve separation — precision is a content field: int8 requests hash,
#      batch and cache separately from fp32 and can never be served a
#      cross-precision payload (serve_test, filtered to the precision and
#      cache-separation cases).
#
# The split mirrors how the claims fail: 1 breaking means a kernel or the
# version-stamp plumbing regressed (fix the code); 2 breaking alone means
# quantization error drifted past the documented thresholds (inspect the
# printed per-metric table); 3 breaking means the serving layer can leak
# bits across precision tiers.
#
# Usage: check_quant.sh <nn_test-binary> <quant_quality_test-binary> <serve_test-binary>
# Wired into ctest as `check_quant` (tests/CMakeLists.txt).
set -euo pipefail

USAGE="usage: check_quant.sh <nn_test-binary> <quant_quality_test-binary> <serve_test-binary>"
NN_BIN=${1:?${USAGE}}
QUALITY_BIN=${2:?${USAGE}}
SERVE_BIN=${3:?${USAGE}}

echo "== gate 1/3: kernel bit-contracts + pack invalidation =="
"$NN_BIN" --gtest_brief=1 \
  --gtest_filter='GemmTest.*:InferTest.*' || {
  echo "FAIL(kernels): a SIMD/int8 kernel contract or the quantized pack version stamping regressed" >&2
  exit 1
}

echo "== gate 2/3: int8 statistical equivalence =="
"$QUALITY_BIN" --gtest_brief=1 || {
  echo "FAIL(quality): int8 sampling metrics drifted outside the documented thresholds" >&2
  exit 1
}

echo "== gate 3/3: serve-layer precision separation =="
"$SERVE_BIN" --gtest_brief=1 \
  --gtest_filter='*Precision*:*QuantizedRequestsNeverShareCacheWithFp32*:RequestHash.*:RequestWire.BatchKeyGroupsCompatibleRequests' || {
  echo "FAIL(serve): int8 and fp32 requests are not fully separated in hash/batch/cache" >&2
  exit 1
}

echo "OK: vectorized fp32 is bit-identical, int8 is statistically equivalent and served separately"
