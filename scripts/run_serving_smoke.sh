#!/usr/bin/env bash
# Serving-layer smoke test: generate a 49-request NDJSON trace (with
# duplicate contents), replay it through the chatpattern_serve binary, and
# assert (1) exit code 0, (2) one result line per trace line, (3) the replay
# is bit-identical between 1 worker and 4 workers — the serving determinism
# contract (docs/SERVING.md). A second trace with a malformed line asserts
# the strict-replay contract: the bad line still yields a rejected result,
# its line number is reported on stderr, and the process exits 1.
#
# Usage: run_serving_smoke.sh <chatpattern_serve-binary> [workdir]
# Wired into ctest as `serving_smoke` (tests/CMakeLists.txt).
set -euo pipefail

SERVE_BIN=${1:?usage: run_serving_smoke.sh <chatpattern_serve-binary> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"
TRACE="$WORKDIR/trace.ndjson"

# 49 lines: 48 valid requests over 12 distinct contents (heavy cache/dedup
# traffic) plus one raw-topology request.
: > "$TRACE"
for i in $(seq 0 47); do
  seed=$((100 + i % 12))
  style=$([ $((i % 2)) -eq 0 ] && echo Layer-10001 || echo Layer-10003)
  echo "{\"id\":\"s$i\",\"style\":\"$style\",\"count\":1,\"rows\":32,\"cols\":32,\"steps\":6,\"polish\":1,\"width_nm\":2048,\"height_nm\":2048,\"seed\":$seed}" >> "$TRACE"
done
echo '{"id":"raw","legalize":false,"rows":16,"cols":16,"steps":4,"polish":0,"seed":9}' >> "$TRACE"

run() {
  local workers=$1 out=$2
  "$SERVE_BIN" --trace "$TRACE" --out "$out" --train 24 --workers "$workers" \
    2> "$WORKDIR/stderr_w$workers.log"
}

run 1 "$WORKDIR/out_w1.ndjson"
run 4 "$WORKDIR/out_w4.ndjson"

lines=$(wc -l < "$TRACE")
for w in 1 4; do
  results=$(wc -l < "$WORKDIR/out_w$w.ndjson")
  if [ "$results" -ne "$lines" ]; then
    echo "FAIL: workers=$w produced $results result lines for $lines trace lines" >&2
    exit 1
  fi
done

# Determinism: identical per-request library hashes regardless of workers.
hash_of() { grep -o '"library_hash":"[0-9a-f]*"' "$1" | sort; }
if ! diff <(hash_of "$WORKDIR/out_w1.ndjson") <(hash_of "$WORKDIR/out_w4.ndjson") > /dev/null; then
  echo "FAIL: 1-worker and 4-worker replays produced different libraries" >&2
  exit 1
fi

# Strict-replay contract: a malformed input line surfaces as a rejected
# result AND fails the replay with exit 1, naming the offending line number.
BAD="$WORKDIR/trace_bad.ndjson"
head -n 3 "$TRACE" > "$BAD"
echo 'this line is not json' >> "$BAD"
tail -n +4 "$TRACE" | head -n 2 >> "$BAD"

rc=0
"$SERVE_BIN" --trace "$BAD" --out "$WORKDIR/out_bad.ndjson" --train 24 --workers 2 \
  2> "$WORKDIR/stderr_bad.log" || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "FAIL: malformed trace exited $rc (want 1)" >&2
  exit 1
fi
if ! grep -q 'malformed line 4' "$WORKDIR/stderr_bad.log"; then
  echo "FAIL: stderr did not report 'malformed line 4'" >&2
  cat "$WORKDIR/stderr_bad.log" >&2
  exit 1
fi
bad_lines=$(wc -l < "$BAD")
bad_results=$(wc -l < "$WORKDIR/out_bad.ndjson")
if [ "$bad_results" -ne "$bad_lines" ]; then
  echo "FAIL: strict replay produced $bad_results results for $bad_lines lines" >&2
  exit 1
fi
if ! grep -q '"status":"rejected"' "$WORKDIR/out_bad.ndjson"; then
  echo "FAIL: malformed trace line did not produce a rejected result" >&2
  exit 1
fi

echo "OK: replayed $lines lines, results deterministic across 1 and 4 workers; strict malformed-line exit verified"
