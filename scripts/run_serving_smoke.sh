#!/usr/bin/env bash
# Serving-layer smoke test: generate a 50-request NDJSON trace (with
# duplicate contents and a malformed line), replay it through the
# chatpattern_serve binary, and assert (1) exit code 0, (2) one result line
# per trace line, (3) the replay is bit-identical between 1 worker and 4
# workers — the serving determinism contract (docs/SERVING.md).
#
# Usage: run_serving_smoke.sh <chatpattern_serve-binary> [workdir]
# Wired into ctest as `serving_smoke` (tests/CMakeLists.txt).
set -euo pipefail

SERVE_BIN=${1:?usage: run_serving_smoke.sh <chatpattern_serve-binary> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"
TRACE="$WORKDIR/trace.ndjson"

# 50 lines: 48 valid requests over 12 distinct contents (heavy cache/dedup
# traffic), one raw-topology request, one malformed line.
: > "$TRACE"
for i in $(seq 0 47); do
  seed=$((100 + i % 12))
  style=$([ $((i % 2)) -eq 0 ] && echo Layer-10001 || echo Layer-10003)
  echo "{\"id\":\"s$i\",\"style\":\"$style\",\"count\":1,\"rows\":32,\"cols\":32,\"steps\":6,\"polish\":1,\"width_nm\":2048,\"height_nm\":2048,\"seed\":$seed}" >> "$TRACE"
done
echo '{"id":"raw","legalize":false,"rows":16,"cols":16,"steps":4,"polish":0,"seed":9}' >> "$TRACE"
echo 'this line is not json' >> "$TRACE"

run() {
  local workers=$1 out=$2
  "$SERVE_BIN" --trace "$TRACE" --out "$out" --train 24 --workers "$workers" \
    2> "$WORKDIR/stderr_w$workers.log"
}

run 1 "$WORKDIR/out_w1.ndjson"
run 4 "$WORKDIR/out_w4.ndjson"

lines=$(wc -l < "$TRACE")
for w in 1 4; do
  results=$(wc -l < "$WORKDIR/out_w$w.ndjson")
  if [ "$results" -ne "$lines" ]; then
    echo "FAIL: workers=$w produced $results result lines for $lines trace lines" >&2
    exit 1
  fi
done

# Determinism: identical per-request library hashes regardless of workers.
hash_of() { grep -o '"library_hash":"[0-9a-f]*"' "$1" | sort; }
if ! diff <(hash_of "$WORKDIR/out_w1.ndjson") <(hash_of "$WORKDIR/out_w4.ndjson") > /dev/null; then
  echo "FAIL: 1-worker and 4-worker replays produced different libraries" >&2
  exit 1
fi

# The malformed line must surface as a rejected result, not abort the run.
if ! grep -q '"status":"rejected"' "$WORKDIR/out_w1.ndjson"; then
  echo "FAIL: malformed trace line did not produce a rejected result" >&2
  exit 1
fi

echo "OK: replayed $lines lines, results deterministic across 1 and 4 workers"
