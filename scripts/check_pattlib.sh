#!/usr/bin/env bash
# Pattern-library gate (docs/LIBRARY.md): one command that proves the claims
# the persistent store stands on, in dependency order:
#
#   1. unit contracts — canonical-hash dedup, metadata queries, persistence
#      round trips, torn-tail crash recovery (bit-identical restart), bit-rot
#      detection, windowing arithmetic and streaming ingestion (pattlib_test);
#   2. end-to-end CLI walk — a deterministic GDS fixture is imported through
#      the bounded-memory streaming path; the dedup counts must come out
#      exactly (6 structures x 2 motif placements, 3 distinct motifs =>
#      3 added / 9 deduped), a second import of the same file must add
#      nothing, queries must be byte-identical across runs and re-opens,
#      and a torn append (garbage tail) must be recovered on the next open
#      with the store still answering the same query.
#
# 1 breaking means the store/windowing logic regressed (fix the code);
# 2 breaking alone means the CLI plumbing or the on-disk format drifted.
#
# Usage: check_pattlib.sh <pattlib_test-binary> <chatpattern_lib-binary>
# Wired into ctest as `check_pattlib` (tests/CMakeLists.txt).
set -euo pipefail

USAGE="usage: check_pattlib.sh <pattlib_test-binary> <chatpattern_lib-binary>"
TEST_BIN=${1:?${USAGE}}
CLI_BIN=${2:?${USAGE}}

WORK=$(mktemp -d "${TMPDIR:-/tmp}/check_pattlib.XXXXXX")
trap 'rm -rf "$WORK"' EXIT
GDS="$WORK/fixture.gds"
STORE="$WORK/library.cppl"

echo "== gate 1/2: pattlib unit suites =="
"$TEST_BIN" --gtest_brief=1 || {
  echo "FAIL(unit): a store/windowing/ingestion contract regressed" >&2
  exit 1
}

echo "== gate 2/2: end-to-end CLI walk =="
"$CLI_BIN" fixture --out "$GDS" --structures 6 --motifs 3 >/dev/null

IMPORT1=$("$CLI_BIN" import --store "$STORE" --gds "$GDS")
echo "$IMPORT1"
echo "$IMPORT1" | grep -q 'added=3 deduped=9 ' || {
  echo "FAIL(import): expected added=3 deduped=9, got: $IMPORT1" >&2
  exit 1
}

IMPORT2=$("$CLI_BIN" import --store "$STORE" --gds "$GDS")
echo "$IMPORT2"
echo "$IMPORT2" | grep -q 'added=0 deduped=12 ' || {
  echo "FAIL(reimport): a second import of the same file added patterns: $IMPORT2" >&2
  exit 1
}

"$CLI_BIN" query --store "$STORE" > "$WORK/query1.txt"
"$CLI_BIN" query --store "$STORE" > "$WORK/query2.txt"
diff -u "$WORK/query1.txt" "$WORK/query2.txt" || {
  echo "FAIL(determinism): identical queries returned different output" >&2
  exit 1
}
[ "$(wc -l < "$WORK/query1.txt")" -eq 3 ] || {
  echo "FAIL(query): expected 3 stored patterns" >&2
  exit 1
}

# Simulate a crashed writer: a torn tail must be recovered on the next open,
# and the recovery must be visible in stats exactly once.
printf '\x01torn-append-garbage' >> "$STORE"
STATS=$("$CLI_BIN" stats --store "$STORE")
echo "$STATS"
echo "$STATS" | grep -q 'patterns=3 ' || {
  echo "FAIL(recovery): torn tail changed the pattern count: $STATS" >&2
  exit 1
}
echo "$STATS" | grep -q 'recovered_bytes=20' || {
  echo "FAIL(recovery): torn tail was not recovered: $STATS" >&2
  exit 1
}
"$CLI_BIN" stats --store "$STORE" | grep -q 'recovered_bytes=0' || {
  echo "FAIL(recovery): recovery did not materialise on disk (second open recovered again)" >&2
  exit 1
}

# The recovered store still answers the same query and still dedups.
"$CLI_BIN" query --store "$STORE" > "$WORK/query3.txt"
diff -u "$WORK/query1.txt" "$WORK/query3.txt" || {
  echo "FAIL(recovery): recovered store answers queries differently" >&2
  exit 1
}
"$CLI_BIN" import --store "$STORE" --gds "$GDS" | grep -q 'added=0 ' || {
  echo "FAIL(recovery): recovered store lost its dedup index" >&2
  exit 1
}

echo "OK: store contracts hold and the CLI import/query/recovery walk is deterministic"
